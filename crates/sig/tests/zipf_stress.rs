//! Zipfian stress past 100% load factor (the web-scale regime).
//!
//! Table I's workloads keep the signature comfortably underloaded; this
//! suite pushes `n/m` well past 1.0 with a Zipf-like (log-uniform rank)
//! address stream and checks the three things the approximate store
//! promises at saturation:
//!
//! 1. eviction counters actually count collision overwrites,
//! 2. `ExtendedSlot` keeps full (loc, thread, ts) fidelity for the
//!    surviving entry and aliases collided addresses to it, and
//! 3. the measured false-positive rate — ground-truthed against
//!    [`PerfectSignature`] — is bracketed by the Formula 2 estimate
//!    `1 − (1 − 1/m)^n`.

use dp_sig::{predicted_fpr, AccessStore, ExtendedSlot, PerfectSignature, SigEntry, Signature};
use dp_types::loc::loc;

/// Self-contained xorshift64* so the stream is seeded and reproducible
/// without pulling the trace crate into dp-sig's dev-deps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    /// Log-uniform rank in `[0, n)` — a heavy Zipf-like head.
    fn zipf(&mut self, n: u64) -> u64 {
        let u = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        (((n as f64).powf(u) - 1.0) as u64).min(n - 1)
    }
}

const BASE: u64 = 0x5000_0000;

/// Inserts a Zipfian stream of `events` accesses over `universe` ranks
/// into both stores; returns the stream's distinct addresses.
fn load_zipfian(
    sig: &mut Signature<ExtendedSlot>,
    perfect: &mut PerfectSignature,
    seed: u64,
    universe: u64,
    events: u64,
) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    let mut seen = std::collections::HashSet::new();
    for ts in 1..=events {
        let rank = if ts % 3 == 0 { rng.next() % universe } else { rng.zipf(universe) };
        let addr = BASE + rank * 8;
        let entry = SigEntry::new(loc(1, (rank % 900) as u32 + 1), (rank % 5) as u16, ts);
        sig.put(addr, entry);
        perfect.put(addr, entry);
        seen.insert(addr);
    }
    seen.into_iter().collect()
}

#[test]
fn saturated_signature_counts_evictions_and_stays_bounded() {
    let m = 1 << 12;
    let mut sig = Signature::<ExtendedSlot>::new(m);
    let mut perfect = PerfectSignature::new();
    let addrs = load_zipfian(&mut sig, &mut perfect, 11, 40_000, 60_000);

    let load = addrs.len() as f64 / m as f64;
    assert!(load >= 1.0, "stress must exceed 100% load factor, got {load:.2}");
    assert_eq!(perfect.occupied(), addrs.len(), "perfect store is exact");
    assert!(sig.occupied() <= m, "occupancy cannot exceed capacity");
    // At several addresses per slot, most slots are occupied and most
    // inserts displaced something.
    assert!(sig.occupied() as f64 >= 0.9 * m as f64, "occupied {}/{m}", sig.occupied());
    assert!(
        sig.evictions() > addrs.len() as u64 / 2,
        "evictions {} should reflect heavy collision traffic",
        sig.evictions()
    );
    // Memory stays fixed at saturation — that is the whole point of the
    // signature vs the perfect table.
    assert!(sig.memory_usage() < perfect.memory_usage());
}

#[test]
fn extended_slot_keeps_fidelity_and_aliases_on_collision() {
    let m = 1 << 10;
    let mut sig = Signature::<ExtendedSlot>::new(m);

    // Find two distinct addresses sharing a slot.
    let a = BASE;
    let target = sig.slot_of(a);
    let b = (1..)
        .map(|i| BASE + i * 8)
        .find(|&x| sig.slot_of(x) == target)
        .expect("a colliding partner exists");

    let ea = SigEntry::new(loc(1, 41), 3, 1000);
    sig.put(a, ea);
    // Full-fidelity readback: ExtendedSlot preserves loc, thread AND ts.
    assert_eq!(sig.get(a), Some(ea));
    assert_eq!(sig.evictions(), 0);

    // The colliding insert displaces the older entry; both addresses now
    // alias the survivor (the store holds no address to tell them apart)
    // and the displacement is counted.
    let eb = SigEntry::new(loc(1, 77), 1, 2000);
    sig.put(b, eb);
    assert_eq!(sig.get(a), Some(eb), "collided lookup aliases the surviving entry");
    assert_eq!(sig.get(b), Some(eb));
    assert_eq!(sig.evictions(), 1);

    // Removing one alias clears the shared slot for both — the accepted
    // cost of the single-hash design (Section III-B).
    sig.remove(a);
    assert_eq!(sig.get(b), None);
}

/// Formula 2's estimate is the occupancy probability `1 − (1 − 1/m)^n`;
/// a lookup of an *absent* address false-positives exactly when it lands
/// on an occupied slot. Probing many fresh addresses measures that rate
/// directly, with [`PerfectSignature`] certifying the probes are absent.
#[test]
fn formula2_brackets_measured_fpr_at_saturation() {
    for (seed, m, universe, events) in
        [(5u64, 1 << 12, 30_000u64, 40_000u64), (6, 1 << 13, 120_000, 90_000)]
    {
        let mut sig = Signature::<ExtendedSlot>::new(m);
        let mut perfect = PerfectSignature::new();
        let addrs = load_zipfian(&mut sig, &mut perfect, seed, universe, events);
        assert!(addrs.len() >= m, "load factor must be ≥ 1");

        // Probe fresh addresses from a disjoint range.
        let probes = 40_000u64;
        let mut hits = 0u64;
        for i in 0..probes {
            let addr = BASE + (universe + 1 + i) * 8;
            assert!(perfect.get(addr).is_none(), "ground truth: probe address never inserted");
            if sig.get(addr).is_some() {
                hits += 1;
            }
        }
        let measured = hits as f64 / probes as f64;
        let estimated = predicted_fpr(m, addrs.len() as u64);
        assert!(
            measured >= 0.85 * estimated && measured <= 1.15 * estimated,
            "seed {seed}: measured FPR {measured:.4} not bracketed by Formula 2 \
             estimate {estimated:.4} (m={m}, n={})",
            addrs.len()
        );
        // Saturation sanity: the estimate itself must be large here.
        assert!(estimated > 0.5, "estimate {estimated:.4} — stress too mild to be meaningful");
    }
}
