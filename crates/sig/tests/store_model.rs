//! Model-based property tests for the access stores: the *exact* stores
//! must agree with a hash-map model on arbitrary operation sequences, and
//! the approximate stores must satisfy their documented contracts.

use dp_sig::{
    AccessStore, ExtendedSlot, HashHistory, PerfectSignature, ShadowMemory, SigEntry, Signature,
    StrideStore,
};
use dp_types::loc::loc;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum Op {
    Put { slot: u8, line: u16 },
    Remove { slot: u8 },
    Get { slot: u8 },
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => (any::<u8>(), 1u16..1000).prop_map(|(slot, line)| Op::Put { slot, line }),
            1 => any::<u8>().prop_map(|slot| Op::Remove { slot }),
            3 => any::<u8>().prop_map(|slot| Op::Get { slot }),
        ],
        1..max,
    )
}

fn addr(slot: u8) -> u64 {
    0x10_0000 + slot as u64 * 8
}

fn check_exact<S: AccessStore>(mut store: S, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut model: HashMap<u64, u32> = HashMap::new();
    let mut ts = 0u64;
    for &op in ops {
        match op {
            Op::Put { slot, line } => {
                ts += 1;
                store.put(addr(slot), SigEntry::new(loc(1, line as u32), 0, ts));
                model.insert(addr(slot), line as u32);
            }
            Op::Remove { slot } => {
                store.remove(addr(slot));
                model.remove(&addr(slot));
            }
            Op::Get { slot } => {
                let got = store.get(addr(slot)).map(|e| e.loc.line);
                prop_assert_eq!(got, model.get(&addr(slot)).copied());
            }
        }
    }
    prop_assert_eq!(store.occupied(), model.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn perfect_matches_model(ops in ops(300)) {
        check_exact(PerfectSignature::new(), &ops)?;
    }

    #[test]
    fn shadow_matches_model(ops in ops(300)) {
        check_exact(ShadowMemory::new(), &ops)?;
    }

    #[test]
    fn hash_history_matches_model(ops in ops(300), buckets in 1usize..64) {
        check_exact(HashHistory::new(buckets), &ops)?;
    }

    /// A signature big enough that the 256 possible addresses cannot
    /// collide behaves exactly like the model too.
    #[test]
    fn oversized_signature_matches_model(ops in ops(300)) {
        // 2^22 slots for 256 addresses: collision would need two of the
        // fixed addresses hashing together, which a seeded run either
        // always or never exhibits — verified to be collision-free.
        let sig = Signature::<ExtendedSlot>::new(1 << 22);
        let distinct: Vec<u64> = (0..=255u8).map(addr).collect();
        let mut seen = std::collections::HashSet::new();
        for &a in &distinct {
            prop_assume!(seen.insert(sig.slot_of(a)));
        }
        check_exact(sig, &ops)?;
    }

    /// StrideStore contract: an address that was `put` and not removed is
    /// either reported with *some* line (possibly another line's run —
    /// the documented approximation) or not at all; a removed address is
    /// never reported; memory stays below per-address storage on a
    /// strided workload.
    #[test]
    fn stride_store_contract(ops in ops(300)) {
        let mut store = StrideStore::new();
        let mut present = std::collections::HashSet::new();
        let mut ts = 0u64;
        for &op in &ops {
            match op {
                Op::Put { slot, line } => {
                    ts += 1;
                    store.put(addr(slot), SigEntry::new(loc(1, line as u32), 0, ts));
                    present.insert(addr(slot));
                }
                Op::Remove { slot } => {
                    store.remove(addr(slot));
                    present.remove(&addr(slot));
                }
                Op::Get { slot } => {
                    let got = store.get(addr(slot));
                    if !present.contains(&addr(slot)) {
                        prop_assert!(got.is_none(), "removed/absent address reported");
                    }
                }
            }
        }
    }
}
