//! Two-level shadow memory — the classical exact baseline whose memory
//! overhead motivates signatures (Section III-B).
//!
//! "In shadow memory, the access history of addresses is stored in a table
//! where the index of an address is the address itself. ... the memory
//! overhead of shadow memory is still too high" even with multilevel
//! tables. We implement the multilevel variant: a page directory keyed by
//! `addr >> PAGE_BITS`, each materialized page holding one
//! [`SigEntry`]-equivalent record per 8-byte granule. Memory grows with the
//! *extent* of touched pages, which is what the "Naive" bars of Figures 7/8
//! report.

use crate::entry::SigEntry;
use crate::store::AccessStore;
use dp_types::{Address, FxHashMap, SourceLoc, ThreadId, Timestamp};

/// log2 of granules per page.
const PAGE_BITS: u32 = 12; // 4096 granules = 32 KiB of target memory per page
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// One packed shadow record (same information as
/// [`ExtendedSlot`](crate::ExtendedSlot)).
#[derive(Clone, Copy)]
struct Cell {
    loc: u32,
    thread: ThreadId,
    ts: Timestamp,
}

const EMPTY_CELL: Cell = Cell { loc: 0, thread: 0, ts: 0 };

type Page = Box<[Cell; PAGE_SIZE]>;

/// Exact access store with page-granular allocation, indexed by address.
pub struct ShadowMemory {
    pages: FxHashMap<u64, Page>,
    occupied: usize,
}

impl Default for ShadowMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowMemory {
    /// Creates an empty shadow memory.
    pub fn new() -> Self {
        ShadowMemory { pages: FxHashMap::default(), occupied: 0 }
    }

    /// Addresses are tracked at 8-byte granularity, like the profiler's
    /// simulated address space.
    #[inline]
    fn split(addr: Address) -> (u64, usize) {
        let granule = addr >> 3;
        (granule >> PAGE_BITS, (granule as usize) & (PAGE_SIZE - 1))
    }

    /// Number of materialized pages (diagnostic; drives memory accounting).
    pub fn pages(&self) -> usize {
        self.pages.len()
    }
}

impl AccessStore for ShadowMemory {
    const APPROXIMATE: bool = false;
    const HAS_TS: bool = true;
    const HAS_THREAD: bool = true;

    fn get(&self, addr: Address) -> Option<SigEntry> {
        let (pg, off) = Self::split(addr);
        let cell = self.pages.get(&pg)?[off];
        if cell.loc == 0 {
            None
        } else {
            Some(SigEntry { loc: SourceLoc::unpack(cell.loc), thread: cell.thread, ts: cell.ts })
        }
    }

    fn put(&mut self, addr: Address, entry: SigEntry) {
        let (pg, off) = Self::split(addr);
        let page = self.pages.entry(pg).or_insert_with(|| Box::new([EMPTY_CELL; PAGE_SIZE]));
        if page[off].loc == 0 {
            self.occupied += 1;
        }
        page[off] = Cell { loc: entry.loc.pack(), thread: entry.thread, ts: entry.ts };
    }

    fn remove(&mut self, addr: Address) {
        let (pg, off) = Self::split(addr);
        if let Some(page) = self.pages.get_mut(&pg) {
            if page[off].loc != 0 {
                page[off] = EMPTY_CELL;
                self.occupied -= 1;
            }
        }
    }

    fn clear(&mut self) {
        self.pages.clear();
        self.occupied = 0;
    }

    fn occupied(&self) -> usize {
        self.occupied
    }

    fn memory_usage(&self) -> usize {
        self.pages.len() * (PAGE_SIZE * std::mem::size_of::<Cell>() + 16)
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;

    fn e(line: u32, ts: u64) -> SigEntry {
        SigEntry::new(loc(1, line), 0, ts)
    }

    #[test]
    fn exact_roundtrip() {
        let mut s = ShadowMemory::new();
        s.put(0x1000, e(60, 1));
        s.put(0x1008, e(61, 2));
        assert_eq!(s.get(0x1000).unwrap().loc.line, 60);
        assert_eq!(s.get(0x1008).unwrap().loc.line, 61);
        assert_eq!(s.get(0x1010), None);
        assert_eq!(s.occupied(), 2);
    }

    #[test]
    fn remove_works() {
        let mut s = ShadowMemory::new();
        s.put(0x40, e(5, 1));
        s.remove(0x40);
        assert_eq!(s.get(0x40), None);
        assert_eq!(s.occupied(), 0);
        s.remove(0xdead_0000); // absent page: no-op
    }

    #[test]
    fn memory_tracks_address_extent_not_count() {
        // Two stores with the same number of addresses but different
        // spatial spread: shadow memory charges for the spread one.
        let mut dense = ShadowMemory::new();
        let mut sparse = ShadowMemory::new();
        for i in 0..1000u64 {
            dense.put(0x10_0000 + i * 8, e(1, i));
            sparse.put(i * 0x10_0000, e(1, i)); // one page each
        }
        assert!(sparse.memory_usage() > 100 * dense.memory_usage());
        assert_eq!(dense.occupied(), sparse.occupied());
    }

    #[test]
    fn granularity_is_8_bytes() {
        let mut s = ShadowMemory::new();
        s.put(0x100, e(1, 1));
        // Same granule: overwrites.
        s.put(0x107, e(2, 2));
        assert_eq!(s.get(0x100).unwrap().loc.line, 2);
        assert_eq!(s.occupied(), 1);
    }
}
