//! The "perfect signature" accuracy baseline (Section VI-A).
//!
//! "Essentially, the perfect signature is a table where each memory address
//! has its own entry, so that false positives are never produced." We use a
//! hash map with the fast Fx hasher; exactness, not speed, is its job —
//! it defines ground truth for the FPR/FNR measurements of Table I.

use crate::entry::SigEntry;
use crate::store::AccessStore;
use dp_types::{Address, ByteReader, ByteWriter, FxHashMap, WireError};

/// Exact per-address access store.
#[derive(Debug, Default, Clone)]
pub struct PerfectSignature {
    map: FxHashMap<Address, SigEntry>,
    evictions: u64,
}

impl PerfectSignature {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates with capacity for `n` addresses.
    pub fn with_capacity(n: usize) -> Self {
        PerfectSignature {
            map: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            evictions: 0,
        }
    }

    /// Extracts (returns and removes) the entry for `addr`.
    pub fn take(&mut self, addr: Address) -> Option<SigEntry> {
        self.map.remove(&addr)
    }
}

impl AccessStore for PerfectSignature {
    const APPROXIMATE: bool = false;
    const HAS_TS: bool = true;
    const HAS_THREAD: bool = true;

    #[inline]
    fn get(&self, addr: Address) -> Option<SigEntry> {
        self.map.get(&addr).copied()
    }

    #[inline]
    fn put(&mut self, addr: Address, entry: SigEntry) {
        if self.map.insert(addr, entry).is_some() {
            self.evictions += 1;
        }
    }

    #[inline]
    fn remove(&mut self, addr: Address) {
        self.map.remove(&addr);
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    fn occupied(&self) -> usize {
        self.map.len()
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn memory_usage(&self) -> usize {
        // hashbrown stores (K, V) plus one control byte per bucket.
        self.map.capacity() * (std::mem::size_of::<(Address, SigEntry)>() + 1)
            + std::mem::size_of::<Self>()
    }

    /// Checkpoint form: eviction counter, entry count, then
    /// `(addr, entry)` pairs sorted by address so identical states
    /// serialize to identical bytes regardless of hash-map iteration
    /// order (checkpoint determinism is what the resume-equivalence
    /// tests compare).
    fn save_state(&self, out: &mut ByteWriter) -> bool {
        out.u64(self.evictions);
        out.u64(self.map.len() as u64);
        let mut entries: Vec<(&Address, &SigEntry)> = self.map.iter().collect();
        entries.sort_by_key(|(a, _)| **a);
        for (addr, e) in entries {
            out.u64(*addr);
            out.u32(e.loc.pack());
            out.u16(e.thread);
            out.u64(e.ts);
        }
        true
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut r = ByteReader::new(bytes);
        let evictions = r.u64()?;
        let n = r.u64()? as usize;
        let mut map = FxHashMap::with_capacity_and_hasher(n, Default::default());
        for _ in 0..n {
            let addr = r.u64()?;
            let loc = dp_types::SourceLoc::unpack(r.u32()?);
            let thread = r.u16()?;
            let ts = r.u64()?;
            map.insert(addr, SigEntry { loc, thread, ts });
        }
        if !r.is_done() {
            return Err(WireError::Invalid("trailing bytes after perfect-signature state"));
        }
        self.map = map;
        self.evictions = evictions;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;

    fn e(line: u32) -> SigEntry {
        SigEntry::new(loc(1, line), 0, 0)
    }

    #[test]
    fn exactness_no_cross_talk() {
        let mut p = PerfectSignature::new();
        // Addresses that would collide in any small signature stay distinct.
        for i in 0..10_000u64 {
            p.put(i * 8, e(i as u32 % 1000 + 1));
        }
        for i in 0..10_000u64 {
            assert_eq!(p.get(i * 8).unwrap().loc.line, i as u32 % 1000 + 1);
        }
        assert_eq!(p.occupied(), 10_000);
    }

    #[test]
    fn remove_and_take() {
        let mut p = PerfectSignature::new();
        p.put(0x8, e(1));
        assert_eq!(p.take(0x8).unwrap().loc.line, 1);
        assert_eq!(p.get(0x8), None);
        p.put(0x8, e(2));
        p.remove(0x8);
        assert_eq!(p.get(0x8), None);
    }

    #[test]
    fn evictions_count_reinserts_only() {
        let mut p = PerfectSignature::new();
        p.put(0x8, e(1));
        p.put(0x10, e(2));
        assert_eq!(p.evictions(), 0, "distinct keys never displace each other");
        p.put(0x8, e(3));
        assert_eq!(p.evictions(), 1);
        p.remove(0x8);
        p.put(0x8, e(4));
        assert_eq!(p.evictions(), 1, "re-insert after removal hits an empty entry");
        assert_eq!(p.slot_capacity(), 0, "exact stores have no fixed slot capacity");
    }

    #[test]
    fn save_restore_roundtrips_exactly() {
        let mut p = PerfectSignature::new();
        for i in 0..500u64 {
            p.put(i * 8, SigEntry::new(loc(1, 1 + (i % 90) as u32), (i % 4) as u16, i));
        }
        p.put(0x8, e(77)); // one eviction
        let mut out = ByteWriter::new();
        assert!(p.save_state(&mut out));
        let bytes = out.into_bytes();
        let mut q = PerfectSignature::new();
        q.restore_state(&bytes).unwrap();
        assert_eq!(q.occupied(), p.occupied());
        assert_eq!(q.evictions(), p.evictions());
        for i in 0..500u64 {
            assert_eq!(q.get(i * 8), p.get(i * 8));
        }
        // Deterministic bytes regardless of map iteration order.
        let mut again = ByteWriter::new();
        assert!(q.save_state(&mut again));
        assert_eq!(again.into_bytes(), bytes);
    }

    #[test]
    fn memory_grows_with_footprint() {
        let mut p = PerfectSignature::new();
        let m0 = p.memory_usage();
        for i in 0..100_000u64 {
            p.put(i * 8, e(1));
        }
        assert!(p.memory_usage() > m0 + 100_000 * std::mem::size_of::<SigEntry>() / 2);
    }
}
