//! The fixed-size, single-hash signature (Section III-B).

use crate::entry::{SigEntry, Slot};
use crate::hash::SigHash;
use crate::store::AccessStore;
use dp_types::{Address, ByteReader, ByteWriter, WireError};

/// An approximate set-with-payload over addresses: a fixed-length slot
/// array indexed by one hash function.
///
/// Supported operations follow the paper: *insertion* ([`Signature::put`]),
/// *membership check* ([`Signature::get`]), element removal for
/// variable-lifetime analysis ([`Signature::remove`]) and *disambiguation*
/// ([`Signature::intersect_slots`]). Hash collisions overwrite — the
/// signature deliberately keeps no collision chains, which is what bounds
/// both its memory (fixed) and its per-access cost (one hash, one array
/// access). Collisions surface as false positives/negatives in the profiled
/// dependences at the rates quantified in Table I and predicted by
/// [`predicted_fpr`](crate::predicted_fpr).
#[derive(Debug, Clone)]
pub struct Signature<S: Slot> {
    slots: Box<[S]>,
    hash: SigHash,
    occupied: usize,
    evictions: u64,
}

impl<S: Slot> Signature<S> {
    /// Creates a signature with `nslots` slots, all vacant.
    pub fn new(nslots: usize) -> Self {
        Signature {
            slots: vec![S::EMPTY; nslots].into_boxed_slice(),
            hash: SigHash::new(nslots),
            occupied: 0,
            evictions: 0,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn nslots(&self) -> usize {
        self.slots.len()
    }

    /// The slot index `addr` maps to.
    #[inline]
    pub fn slot_of(&self, addr: Address) -> usize {
        self.hash.index(addr)
    }

    /// Reads a slot by index (diagnostics and state migration).
    #[inline]
    pub fn slot(&self, idx: usize) -> S {
        self.slots[idx]
    }

    /// Overwrites a slot by index (state migration during redistribution:
    /// the extracted slot of the old worker is injected into the new one).
    pub fn set_slot(&mut self, idx: usize, slot: S) {
        let was = self.slots[idx].is_empty();
        let is = slot.is_empty();
        self.slots[idx] = slot;
        match (was, is) {
            (true, false) => self.occupied += 1,
            (false, true) => self.occupied -= 1,
            _ => {}
        }
    }

    /// Extracts (returns and clears) the slot `addr` maps to.
    pub fn take(&mut self, addr: Address) -> Option<SigEntry> {
        let idx = self.slot_of(addr);
        let e = self.slots[idx].decode();
        if e.is_some() {
            self.slots[idx] = S::EMPTY;
            self.occupied -= 1;
        }
        e
    }

    /// Disambiguation (Section III-B): slot indices occupied in both
    /// signatures. If an address was inserted into both, its slot is
    /// guaranteed to be in the result (no false negatives); colliding
    /// addresses can contribute false positives, exactly as in
    /// transactional-memory signatures.
    pub fn intersect_slots(&self, other: &Signature<S>) -> Vec<usize> {
        assert_eq!(self.nslots(), other.nslots(), "intersect requires equal-size signatures");
        (0..self.nslots())
            .filter(|&i| !self.slots[i].is_empty() && !other.slots[i].is_empty())
            .collect()
    }

    /// Load factor in `[0, 1]`.
    pub fn load(&self) -> f64 {
        self.occupied as f64 / self.nslots().max(1) as f64
    }
}

impl<S: Slot> AccessStore for Signature<S> {
    const APPROXIMATE: bool = true;
    const HAS_TS: bool = S::HAS_TS;
    const HAS_THREAD: bool = S::HAS_THREAD;

    #[inline]
    fn get(&self, addr: Address) -> Option<SigEntry> {
        self.slots[self.hash.index(addr)].decode()
    }

    #[inline]
    fn put(&mut self, addr: Address, entry: SigEntry) {
        let idx = self.hash.index(addr);
        if self.slots[idx].is_empty() {
            self.occupied += 1;
        } else {
            self.evictions += 1;
        }
        self.slots[idx] = S::encode(entry);
    }

    #[inline]
    fn remove(&mut self, addr: Address) {
        let idx = self.hash.index(addr);
        if !self.slots[idx].is_empty() {
            self.slots[idx] = S::EMPTY;
            self.occupied -= 1;
        }
    }

    fn clear(&mut self) {
        self.slots.fill(S::EMPTY);
        self.occupied = 0;
    }

    fn occupied(&self) -> usize {
        self.occupied
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn slot_capacity(&self) -> usize {
        self.nslots()
    }

    fn memory_usage(&self) -> usize {
        self.slots.len() * std::mem::size_of::<S>() + std::mem::size_of::<Self>()
    }

    /// Checkpoint form: slot count (so restore can verify the hash
    /// configuration matches), eviction counter, then one record per
    /// *occupied* slot — sparse, since real signatures run far below
    /// full occupancy. Entries round-trip through [`SigEntry`], so a
    /// lossy layout (e.g. [`CompactSlot`](crate::CompactSlot)) restores
    /// to exactly the bytes it would have held anyway.
    fn save_state(&self, out: &mut ByteWriter) -> bool {
        out.u64(self.nslots() as u64);
        out.u64(self.evictions);
        out.u64(self.occupied as u64);
        for (idx, slot) in self.slots.iter().enumerate() {
            if let Some(e) = slot.decode() {
                out.u64(idx as u64);
                out.u32(e.loc.pack());
                out.u16(e.thread);
                out.u64(e.ts);
            }
        }
        true
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut r = ByteReader::new(bytes);
        let nslots = r.u64()? as usize;
        if nslots != self.nslots() {
            return Err(WireError::Invalid("signature slot count differs from checkpoint"));
        }
        let evictions = r.u64()?;
        let occupied = r.u64()? as usize;
        self.clear();
        for _ in 0..occupied {
            let idx = r.u64()? as usize;
            if idx >= nslots {
                return Err(WireError::Invalid("slot index out of range"));
            }
            let loc = dp_types::SourceLoc::unpack(r.u32()?);
            let thread = r.u16()?;
            let ts = r.u64()?;
            self.set_slot(idx, S::encode(SigEntry { loc, thread, ts }));
        }
        if !r.is_done() {
            return Err(WireError::Invalid("trailing bytes after signature state"));
        }
        self.evictions = evictions;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{CompactSlot, ExtendedSlot};
    use dp_types::loc::loc;

    fn e(line: u32, thread: u16, ts: u64) -> SigEntry {
        SigEntry::new(loc(1, line), thread, ts)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s: Signature<ExtendedSlot> = Signature::new(1 << 16);
        s.put(0x1000, e(60, 1, 5));
        assert_eq!(s.get(0x1000), Some(e(60, 1, 5)));
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn overwrite_same_address() {
        let mut s: Signature<ExtendedSlot> = Signature::new(1 << 12);
        s.put(0x8, e(10, 0, 1));
        s.put(0x8, e(20, 0, 2));
        assert_eq!(s.get(0x8).unwrap().loc.line, 20);
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn remove_clears_slot() {
        let mut s: Signature<CompactSlot> = Signature::new(1 << 12);
        s.put(0x10, e(3, 0, 0));
        s.remove(0x10);
        assert_eq!(s.get(0x10), None);
        assert_eq!(s.occupied(), 0);
        // Removing an absent address is a no-op.
        s.remove(0x10);
        assert_eq!(s.occupied(), 0);
    }

    #[test]
    fn collision_overwrites_no_chains() {
        // With exactly one slot every address collides: membership returns
        // the latest entry regardless of address — the documented
        // approximation.
        let mut s: Signature<ExtendedSlot> = Signature::new(1);
        s.put(0xA, e(1, 0, 1));
        s.put(0xB, e(2, 0, 2));
        assert_eq!(s.get(0xA).unwrap().loc.line, 2);
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn take_extracts_and_clears() {
        let mut s: Signature<ExtendedSlot> = Signature::new(1 << 10);
        s.put(0x20, e(7, 2, 9));
        let got = s.take(0x20).unwrap();
        assert_eq!(got, e(7, 2, 9));
        assert_eq!(s.get(0x20), None);
        assert_eq!(s.take(0x20), None);
    }

    #[test]
    fn set_slot_tracks_occupancy() {
        let mut s: Signature<ExtendedSlot> = Signature::new(4);
        s.set_slot(2, ExtendedSlot::encode(e(1, 0, 0)));
        assert_eq!(s.occupied(), 1);
        s.set_slot(2, ExtendedSlot::EMPTY);
        assert_eq!(s.occupied(), 0);
    }

    #[test]
    fn intersection_contains_common_elements() {
        let mut a: Signature<CompactSlot> = Signature::new(1 << 14);
        let mut b: Signature<CompactSlot> = Signature::new(1 << 14);
        for addr in (0..100u64).map(|i| 0x1000 + i * 8) {
            a.put(addr, e(1, 0, 0));
        }
        for addr in (50..150u64).map(|i| 0x1000 + i * 8) {
            b.put(addr, e(2, 0, 0));
        }
        let common = a.intersect_slots(&b);
        // Every truly-common address's slot must appear.
        for addr in (50..100u64).map(|i| 0x1000 + i * 8) {
            assert!(common.contains(&a.slot_of(addr)));
        }
    }

    #[test]
    fn evictions_count_occupied_slot_overwrites() {
        let mut s: Signature<ExtendedSlot> = Signature::new(1);
        s.put(0xA, e(1, 0, 1));
        assert_eq!(s.evictions(), 0, "put into a vacant slot is not an eviction");
        s.put(0xB, e(2, 0, 2)); // collision overwrite
        s.put(0xA, e(3, 0, 3)); // same-address update: indistinguishable, counts too
        assert_eq!(s.evictions(), 2);
        assert_eq!(s.slot_capacity(), 1);
        s.remove(0xA);
        s.put(0xB, e(4, 0, 4));
        assert_eq!(s.evictions(), 2, "the freed slot was vacant again");
    }

    #[test]
    fn memory_usage_is_slot_dominated() {
        let s: Signature<CompactSlot> = Signature::new(1_000_000);
        let m = s.memory_usage();
        assert!((4_000_000..4_001_000).contains(&m), "{m}");
        // The paper's 10^8-slot × 4 B configuration = 382 MiB.
        let big = 100_000_000usize * 4;
        assert_eq!(big / (1024 * 1024), 381);
    }

    #[test]
    fn save_restore_roundtrips_state() {
        let mut s: Signature<ExtendedSlot> = Signature::new(1 << 10);
        for a in 0..200u64 {
            s.put(0x1000 + a * 8, e(1 + a as u32, (a % 3) as u16, a));
        }
        s.remove(0x1000);
        let mut out = ByteWriter::new();
        assert!(s.save_state(&mut out));
        let bytes = out.into_bytes();
        let mut t: Signature<ExtendedSlot> = Signature::new(1 << 10);
        t.restore_state(&bytes).unwrap();
        assert_eq!(t.occupied(), s.occupied());
        assert_eq!(t.evictions(), s.evictions());
        for a in 0..200u64 {
            assert_eq!(t.get(0x1000 + a * 8), s.get(0x1000 + a * 8));
        }
        // A resave must produce identical bytes (determinism).
        let mut again = ByteWriter::new();
        assert!(t.save_state(&mut again));
        assert_eq!(again.into_bytes(), bytes);
    }

    #[test]
    fn restore_rejects_size_mismatch_and_garbage() {
        let s: Signature<CompactSlot> = Signature::new(64);
        let mut out = ByteWriter::new();
        assert!(s.save_state(&mut out));
        let bytes = out.into_bytes();
        let mut wrong: Signature<CompactSlot> = Signature::new(128);
        assert!(wrong.restore_state(&bytes).is_err());
        let mut right: Signature<CompactSlot> = Signature::new(64);
        assert!(right.restore_state(&bytes[..bytes.len() - 1]).is_err());
        assert!(right.restore_state(&bytes).is_ok());
    }

    #[test]
    fn clear_resets() {
        let mut s: Signature<ExtendedSlot> = Signature::new(64);
        for a in 0..32u64 {
            s.put(a * 16, e(1, 0, a));
        }
        assert!(s.occupied() > 0);
        s.clear();
        assert_eq!(s.occupied(), 0);
        assert_eq!(s.load(), 0.0);
    }
}
