//! A stride-compressed access store — the core idea of SD3, the paper's
//! primary comparator.
//!
//! "SD3 \[16\] exploits pipeline and data parallelism to extract data
//! dependences from loops. At the same time, SD3 reduces the memory
//! overhead by compressing strided accesses using a finite state machine."
//!
//! Each *source line* owns a list of **runs** `(base, stride, len)`,
//! learned by a per-line FSM exactly as in SD3: the first access opens a
//! run, the second fixes the stride, subsequent accesses either extend the
//! run or open a new one. Membership is answered from a coarse spatial
//! bucket index over the runs. Memory therefore scales with the number of
//! *distinct strided sequences*, not with the number of addresses —
//! excellent for affine array walks, no better than per-address storage
//! for random access.
//!
//! The compression trades the same things the paper's comparison hinges
//! on: per-address timestamps are gone (`HAS_TS = false`, so loop-carried
//! classification and race detection are unavailable) and when several
//! lines interleave over one address the attribution is approximate (the
//! run with the most recent activity wins, not necessarily the most
//! recent toucher of that address). Experiment E14 quantifies both sides.

use crate::entry::SigEntry;
use crate::store::AccessStore;
use dp_types::{Address, FxHashMap, FxHashSet, SourceLoc, ThreadId, Timestamp};

const BUCKET_SHIFT: u32 = 12; // 4 KiB spatial buckets

#[derive(Debug, Clone)]
struct Run {
    base: Address,
    stride: u64, // 0 while the FSM is still learning (single element)
    len: u64,
    loc: SourceLoc,
    thread: ThreadId,
    last_ts: Timestamp,
}

impl Run {
    #[inline]
    fn end(&self) -> Address {
        if self.len <= 1 {
            self.base
        } else {
            self.base + self.stride * (self.len - 1)
        }
    }

    #[inline]
    fn contains(&self, addr: Address) -> bool {
        if addr < self.base || addr > self.end() {
            return false;
        }
        if self.len <= 1 || self.stride == 0 {
            return addr == self.base;
        }
        (addr - self.base).is_multiple_of(self.stride)
    }
}

/// SD3-style stride-compressed access store.
pub struct StrideStore {
    runs: Vec<Run>,
    /// Open (extendable) run per source line, by packed location.
    open_by_line: FxHashMap<u32, usize>,
    /// Spatial index: bucket -> run ids overlapping the bucket.
    buckets: FxHashMap<u64, Vec<usize>>,
    /// Addresses explicitly forgotten (variable-lifetime analysis).
    removed: FxHashSet<Address>,
}

impl Default for StrideStore {
    fn default() -> Self {
        Self::new()
    }
}

impl StrideStore {
    /// Empty store.
    pub fn new() -> Self {
        StrideStore {
            runs: Vec::new(),
            open_by_line: FxHashMap::default(),
            buckets: FxHashMap::default(),
            removed: FxHashSet::default(),
        }
    }

    fn index_address(&mut self, run_id: usize, addr: Address) {
        let b = addr >> BUCKET_SHIFT;
        let ids = self.buckets.entry(b).or_default();
        if ids.last() != Some(&run_id) {
            ids.push(run_id);
        }
    }

    fn open_run(&mut self, entry: SigEntry, addr: Address) {
        let id = self.runs.len();
        self.runs.push(Run {
            base: addr,
            stride: 0,
            len: 1,
            loc: entry.loc,
            thread: entry.thread,
            last_ts: entry.ts,
        });
        self.open_by_line.insert(entry.loc.pack(), id);
        self.index_address(id, addr);
    }

    /// Number of runs learned so far (compression diagnostic: compare to
    /// the number of distinct addresses).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

impl AccessStore for StrideStore {
    const APPROXIMATE: bool = true;
    const HAS_TS: bool = false;
    const HAS_THREAD: bool = false;

    fn get(&self, addr: Address) -> Option<SigEntry> {
        if self.removed.contains(&addr) {
            return None;
        }
        let ids = self.buckets.get(&(addr >> BUCKET_SHIFT))?;
        ids.iter()
            .filter_map(|&i| {
                let r = &self.runs[i];
                r.contains(addr).then_some(r)
            })
            .max_by_key(|r| r.last_ts)
            .map(|r| SigEntry { loc: r.loc, thread: r.thread, ts: 0 })
    }

    fn put(&mut self, addr: Address, entry: SigEntry) {
        self.removed.remove(&addr);
        let key = entry.loc.pack();
        if let Some(&id) = self.open_by_line.get(&key) {
            // Borrow juggling: decide on the FSM transition first.
            enum Action {
                Touch,
                LearnStride(u64),
                Extend,
                Reopen,
            }
            let action = {
                let r = &self.runs[id];
                if addr == r.base && r.len == 1 {
                    Action::Touch
                } else if r.len == 1 && addr > r.base {
                    Action::LearnStride(addr - r.base)
                } else if r.stride > 0 && addr == r.end() + r.stride {
                    Action::Extend
                } else if r.contains(addr) {
                    Action::Touch
                } else {
                    Action::Reopen
                }
            };
            match action {
                Action::Touch => {
                    let r = &mut self.runs[id];
                    r.last_ts = entry.ts;
                    r.thread = entry.thread;
                }
                Action::LearnStride(s) => {
                    {
                        let r = &mut self.runs[id];
                        r.stride = s;
                        r.len = 2;
                        r.last_ts = entry.ts;
                        r.thread = entry.thread;
                    }
                    self.index_address(id, addr);
                }
                Action::Extend => {
                    {
                        let r = &mut self.runs[id];
                        r.len += 1;
                        r.last_ts = entry.ts;
                        r.thread = entry.thread;
                    }
                    self.index_address(id, addr);
                }
                Action::Reopen => self.open_run(entry, addr),
            }
        } else {
            self.open_run(entry, addr);
        }
    }

    fn remove(&mut self, addr: Address) {
        self.removed.insert(addr);
    }

    fn clear(&mut self) {
        self.runs.clear();
        self.open_by_line.clear();
        self.buckets.clear();
        self.removed.clear();
    }

    fn occupied(&self) -> usize {
        self.runs.len()
    }

    fn memory_usage(&self) -> usize {
        use std::mem::size_of;
        self.runs.len() * size_of::<Run>()
            + self.open_by_line.len() * (size_of::<(u32, usize)>() + 8)
            + self.buckets.values().map(|v| v.capacity() * size_of::<usize>() + 24).sum::<usize>()
            + self.removed.len() * (size_of::<Address>() + 8)
            + size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;

    fn e(line: u32, ts: u64) -> SigEntry {
        SigEntry::new(loc(1, line), 0, ts)
    }

    #[test]
    fn strided_walk_compresses_to_one_run() {
        let mut s = StrideStore::new();
        for i in 0..10_000u64 {
            s.put(0x1000 + i * 8, e(5, i + 1));
        }
        assert_eq!(s.run_count(), 1, "affine walk must stay one run");
        // Every address answers with the line.
        for i in [0u64, 1, 9_999] {
            assert_eq!(s.get(0x1000 + i * 8).unwrap().loc.line, 5);
        }
        // Off-stride addresses are not claimed.
        assert_eq!(s.get(0x1004), None);
        assert!(s.memory_usage() < 200_000, "{}", s.memory_usage());
    }

    #[test]
    fn random_access_degenerates_to_many_runs() {
        let mut s = StrideStore::new();
        let mut rng = 7u64;
        for i in 0..2000u64 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.put((rng >> 20) & !7, e(5, i));
        }
        assert!(s.run_count() > 500, "{}", s.run_count());
    }

    #[test]
    fn two_lines_two_runs() {
        let mut s = StrideStore::new();
        for i in 0..100u64 {
            s.put(0x1000 + i * 8, e(5, 2 * i));
            s.put(0x8000 + i * 8, e(9, 2 * i + 1));
        }
        assert_eq!(s.run_count(), 2);
        assert_eq!(s.get(0x1000).unwrap().loc.line, 5);
        assert_eq!(s.get(0x8000).unwrap().loc.line, 9);
    }

    #[test]
    fn latest_active_run_wins_on_overlap() {
        let mut s = StrideStore::new();
        for i in 0..10u64 {
            s.put(0x1000 + i * 8, e(5, i));
        }
        for i in 0..10u64 {
            s.put(0x1000 + i * 8, e(9, 100 + i));
        }
        // Line 9's run is more recent.
        assert_eq!(s.get(0x1008).unwrap().loc.line, 9);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut s = StrideStore::new();
        s.put(0x40, e(1, 1));
        s.remove(0x40);
        assert_eq!(s.get(0x40), None);
        s.put(0x40, e(2, 2));
        assert_eq!(s.get(0x40).unwrap().loc.line, 2);
    }

    #[test]
    fn non_monotone_stride_reopens() {
        let mut s = StrideStore::new();
        s.put(0x100, e(5, 1));
        s.put(0x110, e(5, 2)); // stride 0x10 learned
        s.put(0x120, e(5, 3)); // extend
        s.put(0x90, e(5, 4)); // backwards: reopen
        assert_eq!(s.run_count(), 2);
        assert_eq!(s.get(0x90).unwrap().loc.line, 5);
        assert_eq!(s.get(0x120).unwrap().loc.line, 5);
    }

    #[test]
    fn clear_empties() {
        let mut s = StrideStore::new();
        s.put(0x8, e(1, 1));
        s.clear();
        assert_eq!(s.get(0x8), None);
        assert_eq!(s.run_count(), 0);
    }
}
