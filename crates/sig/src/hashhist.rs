//! The "hash table" baseline (Section III-B).
//!
//! "An alternative is to record memory accesses using a hash table, but
//! this approach incurs additional time overhead since when more than one
//! address is hashed into the same bucket, the bucket has to be searched
//! for the address in question. ... the hash table approach is about
//! 1.5 – 3.7× slower than our approach."
//!
//! To reproduce that comparison honestly we implement an open-chaining
//! hash table with a *fixed* bucket count, SipHash-quality hashing (std's
//! default) and per-bucket linear search — i.e. the costs the paper
//! attributes to the approach: hash + chase + compare, plus allocation for
//! chain nodes. It is exact (never confuses addresses).

use crate::entry::SigEntry;
use crate::store::AccessStore;
use dp_types::Address;
use std::collections::hash_map::RandomState;
use std::hash::BuildHasher;

/// Exact chained hash table of per-address entries.
pub struct HashHistory {
    buckets: Vec<Vec<(Address, SigEntry)>>,
    state: RandomState,
    occupied: usize,
}

impl HashHistory {
    /// Creates a table with `nbuckets` chains.
    pub fn new(nbuckets: usize) -> Self {
        assert!(nbuckets >= 1);
        HashHistory { buckets: vec![Vec::new(); nbuckets], state: RandomState::new(), occupied: 0 }
    }

    #[inline]
    fn bucket(&self, addr: Address) -> usize {
        (self.state.hash_one(addr) as usize) % self.buckets.len()
    }

    /// Longest chain length (diagnostic for the slowdown analysis).
    pub fn max_chain(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }
}

impl AccessStore for HashHistory {
    const APPROXIMATE: bool = false;
    const HAS_TS: bool = true;
    const HAS_THREAD: bool = true;

    fn get(&self, addr: Address) -> Option<SigEntry> {
        let b = &self.buckets[self.bucket(addr)];
        b.iter().find(|(a, _)| *a == addr).map(|&(_, e)| e)
    }

    fn put(&mut self, addr: Address, entry: SigEntry) {
        let idx = self.bucket(addr);
        let b = &mut self.buckets[idx];
        if let Some(slot) = b.iter_mut().find(|(a, _)| *a == addr) {
            slot.1 = entry;
        } else {
            b.push((addr, entry));
            self.occupied += 1;
        }
    }

    fn remove(&mut self, addr: Address) {
        let idx = self.bucket(addr);
        let b = &mut self.buckets[idx];
        if let Some(pos) = b.iter().position(|(a, _)| *a == addr) {
            b.swap_remove(pos);
            self.occupied -= 1;
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.occupied = 0;
    }

    fn occupied(&self) -> usize {
        self.occupied
    }

    fn memory_usage(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<Vec<(Address, SigEntry)>>()
            + self
                .buckets
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<(Address, SigEntry)>())
                .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;

    fn e(line: u32) -> SigEntry {
        SigEntry::new(loc(1, line), 0, 0)
    }

    #[test]
    fn exact_under_forced_collisions() {
        let mut h = HashHistory::new(4); // tiny: every bucket chains
        for i in 0..256u64 {
            h.put(i * 8, e(i as u32 + 1));
        }
        for i in 0..256u64 {
            assert_eq!(h.get(i * 8).unwrap().loc.line, i as u32 + 1);
        }
        assert_eq!(h.occupied(), 256);
        assert!(h.max_chain() >= 32);
    }

    #[test]
    fn update_in_place() {
        let mut h = HashHistory::new(16);
        h.put(0x8, e(1));
        h.put(0x8, e(2));
        assert_eq!(h.get(0x8).unwrap().loc.line, 2);
        assert_eq!(h.occupied(), 1);
    }

    #[test]
    fn remove_is_exact() {
        let mut h = HashHistory::new(1); // all in one bucket
        h.put(0x8, e(1));
        h.put(0x10, e(2));
        h.remove(0x8);
        assert_eq!(h.get(0x8), None);
        assert_eq!(h.get(0x10).unwrap().loc.line, 2);
        assert_eq!(h.occupied(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut h = HashHistory::new(8);
        h.put(1, e(1));
        h.clear();
        assert_eq!(h.occupied(), 0);
        assert_eq!(h.get(1), None);
    }
}
