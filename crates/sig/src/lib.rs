//! Signature-based memory-access tracking (Section III-B of the paper).
//!
//! The profiler must remember, for every memory address, the most recent
//! read and the most recent write (their source locations, threads and
//! timestamps). Shadow memory does this exactly but its footprint follows
//! the address-space extent; hash tables do it exactly but pay for bucket
//! searches on every access. A *signature* — a concept borrowed from
//! transactional-memory conflict detection — trades a controlled amount of
//! accuracy for bounded, tunable memory: a fixed-length slot array indexed
//! by a single hash of the address.
//!
//! This crate provides:
//!
//! - [`Signature`] — the fixed-size, single-hash signature with
//!   [`CompactSlot`] (4 B/slot, matching the paper's evaluation
//!   configuration) and [`ExtendedSlot`] (16 B/slot; adds the thread id and
//!   timestamp needed for multi-threaded targets and loop-carried
//!   classification) layouts;
//! - [`PerfectSignature`] — the exact baseline used to quantify false
//!   positive/negative rates (Section VI-A);
//! - [`ShadowMemory`] — the classical two-level shadow-memory baseline;
//! - [`HashHistory`] — the "hash table" baseline the paper measures as
//!   1.5–3.7× slower than signatures;
//! - [`StrideStore`] — an SD3-style stride-compressed store (the paper's
//!   primary comparator compresses strided accesses with an FSM);
//! - [`predicted_fpr`] — Formula 2, the analytical false-positive model.
//!
//! All stores implement [`AccessStore`], so every profiling engine in
//! `dp-core` is generic over the tracking policy.

#![warn(missing_docs)]

pub mod entry;
pub mod fpr;
pub mod hash;
pub mod hashhist;
pub mod perfect;
pub mod shadow;
pub mod signature;
pub mod store;
pub mod stride;

pub use entry::{CompactSlot, ExtendedSlot, SigEntry, Slot};
pub use fpr::{predicted_fpr, recommended_slots};
pub use hash::SigHash;
pub use hashhist::HashHistory;
pub use perfect::PerfectSignature;
pub use shadow::ShadowMemory;
pub use signature::Signature;
pub use store::AccessStore;
pub use stride::StrideStore;
