//! The access-store abstraction every profiling engine is generic over.

use crate::entry::SigEntry;
use dp_types::{Address, ByteWriter, WireError};

/// Remembers the most recent access entry per address.
///
/// Two instances are used per profiled address space — one for reads, one
/// for writes (Algorithm 1). Implementations may be approximate
/// ([`Signature`](crate::Signature)) or exact
/// ([`PerfectSignature`](crate::PerfectSignature),
/// [`ShadowMemory`](crate::ShadowMemory), [`HashHistory`](crate::HashHistory)).
pub trait AccessStore: Send {
    /// Whether lookups can return an entry written for a *different*
    /// (colliding) address. Exact stores return `false`.
    const APPROXIMATE: bool;
    /// Whether entries preserve timestamps (see
    /// [`Slot::HAS_TS`](crate::Slot::HAS_TS)).
    const HAS_TS: bool;
    /// Whether entries preserve thread ids.
    const HAS_THREAD: bool;

    /// The membership check: the last recorded entry for `addr`, if any.
    fn get(&self, addr: Address) -> Option<SigEntry>;

    /// Insertion: records `entry` as the latest access to `addr`.
    fn put(&mut self, addr: Address, entry: SigEntry);

    /// Removal, for variable-lifetime analysis: forget `addr`. On an
    /// approximate store this clears the slot `addr` hashes to, which may
    /// also forget a colliding address — the accepted cost of the
    /// single-hash design (Section III-B).
    fn remove(&mut self, addr: Address);

    /// Drops all entries.
    fn clear(&mut self);

    /// Number of occupied slots/entries (diagnostic).
    fn occupied(&self) -> usize;

    /// Cumulative count of insertions that displaced existing state: a
    /// put into an already-occupied slot (approximate stores cannot tell
    /// a same-address update from a collision overwrite — the slot holds
    /// no address) or a re-insert of an existing key (exact stores). In a
    /// collision-free signature the two definitions coincide, which is
    /// what the gauge tests exploit. Stores that don't track it report 0.
    fn evictions(&self) -> u64 {
        0
    }

    /// Fixed slot capacity for stores with one (the signature's `m` of
    /// Formula 2); 0 for stores whose capacity grows with the footprint.
    fn slot_capacity(&self) -> usize {
        0
    }

    /// Bytes of memory attributable to this store, for the accounting
    /// behind Figures 7/8.
    fn memory_usage(&self) -> usize;

    /// Serializes the store's complete state into `out` for a crash-safe
    /// checkpoint, returning `true` on success. The default says the
    /// store cannot be checkpointed (`false`, nothing written) — engines
    /// then refuse `write_checkpoint` rather than persisting a lie.
    /// [`Signature`](crate::Signature) and
    /// [`PerfectSignature`](crate::PerfectSignature) override this.
    fn save_state(&self, out: &mut ByteWriter) -> bool {
        let _ = out;
        false
    }

    /// Restores state previously produced by [`AccessStore::save_state`]
    /// on an identically-configured store. The default rejects, matching
    /// the default `save_state`.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let _ = bytes;
        Err(WireError::Invalid("this access store does not support checkpointing"))
    }
}
