//! Slot layouts and the logical entry they encode.
//!
//! The paper's slots store "the source line number where the memory access
//! occurs" in a few bytes. Our [`CompactSlot`] does exactly that (a packed
//! `file:line` in 4 bytes — the size the paper's evaluation assumes).
//! Multi-threaded targets (Section V) and loop-carried classification
//! additionally need the accessing thread and the access timestamp; the
//! [`ExtendedSlot`] stores those at 16 bytes per slot. The memory-overhead
//! ablation (DESIGN.md E13) quantifies the difference.

use dp_types::{SourceLoc, ThreadId, Timestamp};

/// The logical content of one signature slot: who accessed last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigEntry {
    /// Source location of the most recent access.
    pub loc: SourceLoc,
    /// Thread that performed it (0 when the layout cannot store it).
    pub thread: ThreadId,
    /// Timestamp of the access (0 when the layout cannot store it).
    pub ts: Timestamp,
}

impl SigEntry {
    /// Creates an entry.
    #[inline]
    pub fn new(loc: SourceLoc, thread: ThreadId, ts: Timestamp) -> Self {
        SigEntry { loc, thread, ts }
    }
}

/// A fixed-width slot representation.
///
/// Implementations must reserve one bit pattern ([`Slot::EMPTY`]) for the
/// vacant state, distinguishable from every encoded entry.
pub trait Slot: Copy + Send + 'static {
    /// Whether this layout preserves the access timestamp. Engines consult
    /// this to decide if loop-carried classification and timestamp-reversal
    /// (race) detection are meaningful.
    const HAS_TS: bool;
    /// Whether this layout preserves the accessing thread.
    const HAS_THREAD: bool;
    /// The vacant slot.
    const EMPTY: Self;

    /// Encodes an entry. Lossy layouts drop fields they cannot hold.
    fn encode(entry: SigEntry) -> Self;
    /// Decodes the slot; `None` if vacant.
    fn decode(self) -> Option<SigEntry>;
    /// True if vacant.
    fn is_empty(self) -> bool;
}

/// 4-byte slot: packed `file:line` only. This is the configuration whose
/// memory footprint the paper reports ("each slot is four bytes; 10⁸ slots
/// consume only 382 MB").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactSlot(u32);

impl Slot for CompactSlot {
    const HAS_TS: bool = false;
    const HAS_THREAD: bool = false;
    const EMPTY: Self = CompactSlot(0);

    #[inline]
    fn encode(entry: SigEntry) -> Self {
        CompactSlot(entry.loc.pack())
    }

    #[inline]
    fn decode(self) -> Option<SigEntry> {
        if self.0 == 0 {
            None
        } else {
            Some(SigEntry { loc: SourceLoc::unpack(self.0), thread: 0, ts: 0 })
        }
    }

    #[inline]
    fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// 16-byte slot: location, thread and timestamp. Required for
/// multi-threaded targets (thread ids in dependence records, Figure 3;
/// timestamp-reversal race detection, Section V-B) and for loop-carried
/// dependence classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtendedSlot {
    loc: u32,
    thread: u16,
    _pad: u16,
    ts: u64,
}

impl Slot for ExtendedSlot {
    const HAS_TS: bool = true;
    const HAS_THREAD: bool = true;
    const EMPTY: Self = ExtendedSlot { loc: 0, thread: 0, _pad: 0, ts: 0 };

    #[inline]
    fn encode(entry: SigEntry) -> Self {
        ExtendedSlot { loc: entry.loc.pack(), thread: entry.thread, _pad: 0, ts: entry.ts }
    }

    #[inline]
    fn decode(self) -> Option<SigEntry> {
        if self.loc == 0 {
            None
        } else {
            Some(SigEntry { loc: SourceLoc::unpack(self.loc), thread: self.thread, ts: self.ts })
        }
    }

    #[inline]
    fn is_empty(self) -> bool {
        self.loc == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;

    #[test]
    fn compact_roundtrip_drops_thread_and_ts() {
        let e = SigEntry::new(loc(1, 60), 3, 99);
        let d = CompactSlot::encode(e).decode().unwrap();
        assert_eq!(d.loc, e.loc);
        assert_eq!(d.thread, 0);
        assert_eq!(d.ts, 0);
    }

    #[test]
    fn extended_roundtrip_exact() {
        let e = SigEntry::new(loc(4, 58), 2, 1_000_000);
        assert_eq!(ExtendedSlot::encode(e).decode().unwrap(), e);
    }

    #[test]
    fn empties() {
        assert!(CompactSlot::EMPTY.is_empty());
        assert!(ExtendedSlot::EMPTY.is_empty());
        assert!(CompactSlot::EMPTY.decode().is_none());
        assert!(ExtendedSlot::EMPTY.decode().is_none());
        assert!(!CompactSlot::encode(SigEntry::new(loc(1, 1), 0, 0)).is_empty());
    }

    #[test]
    fn slot_sizes_match_paper_accounting() {
        assert_eq!(std::mem::size_of::<CompactSlot>(), 4);
        assert_eq!(std::mem::size_of::<ExtendedSlot>(), 16);
    }
}
