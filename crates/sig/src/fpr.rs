//! Formula 2 of the paper: the analytical false-positive model.
//!
//! "Assume that we use a hash function that selects each array slot with
//! equal probability. Let m be the number of slots in the array. Then, the
//! estimated false positive rate P_fp, i.e., the probability that a certain
//! slot is used after inserting n elements is:
//! `P_fp = 1 − (1 − 1/m)^n`."
//!
//! P_fp is inversely proportional to m (signature size) and proportional to
//! n (number of distinct addresses), which is exactly what Table I shows
//! empirically and what experiment E2 validates.

/// Formula 2: predicted probability that a given slot is occupied after
/// inserting `n` distinct elements into a signature of `m` slots.
pub fn predicted_fpr(m: usize, n: u64) -> f64 {
    assert!(m >= 1);
    // (1 - 1/m)^n computed in log-space for numerical stability at the
    // paper's scales (m up to 1e8, n up to 1e9).
    let ln = (n as f64) * (1.0 - 1.0 / m as f64).ln();
    1.0 - ln.exp()
}

/// Inverse of Formula 2: the slot count needed to keep the predicted false
/// positive rate at or below `target_fpr` when `n` distinct addresses will
/// be inserted. (Section III-B: "If an estimation of the total number of
/// memory accesses in the target program is available, the signature size
/// can also be estimated using formula 2.")
pub fn recommended_slots(n: u64, target_fpr: f64) -> usize {
    assert!(target_fpr > 0.0 && target_fpr < 1.0);
    // From 1 - (1-1/m)^n <= p:  m >= 1 / (1 - (1-p)^(1/n)).
    let base = (1.0 - target_fpr).powf(1.0 / n.max(1) as f64);
    (1.0 / (1.0 - base)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_n_and_m() {
        assert!(predicted_fpr(1_000_000, 2_000_000) > predicted_fpr(1_000_000, 1_000_000));
        assert!(predicted_fpr(10_000_000, 1_000_000) < predicted_fpr(1_000_000, 1_000_000));
    }

    #[test]
    fn limits() {
        assert!(predicted_fpr(1_000_000, 0) == 0.0);
        assert!(predicted_fpr(1, 10) > 0.999); // single slot saturates
        assert!(predicted_fpr(100_000_000, 1) < 1e-7);
    }

    #[test]
    fn matches_paper_scales() {
        // c-ray: 1.1e6 addresses. At 1e6 slots Table I reports ~20% FPR in
        // *dependences*; the slot-occupancy probability of Formula 2 is an
        // upper-level driver and should be substantial (>0.5) there, and
        // tiny at 1e8 slots.
        assert!(predicted_fpr(1_000_000, 1_100_000) > 0.5);
        assert!(predicted_fpr(100_000_000, 1_100_000) < 0.02);
    }

    #[test]
    fn recommended_slots_inverts() {
        let n = 1_000_000u64;
        for target in [0.5, 0.1, 0.01] {
            let m = recommended_slots(n, target);
            assert!(predicted_fpr(m, n) <= target * 1.001, "target {target}");
            // And it should be reasonably tight: half the slots must violate.
            assert!(predicted_fpr((m / 2).max(1), n) > target);
        }
    }

    #[test]
    fn stability_at_large_scale() {
        let p = predicted_fpr(100_000_000, 1_900_000_000);
        assert!(p > 0.9999 && p <= 1.0);
        let q = predicted_fpr(100_000_000, 260_000);
        assert!(q > 0.0025 && q < 0.0027, "{q}"); // ≈ n/m
    }
}
