//! The signature's single hash function.
//!
//! The paper deliberately uses *one* hash function (not the k hashes of a
//! Bloom filter) "to simplify the removal of elements because it is
//! required by variable lifetime analysis": with a single hash, removing an
//! address is clearing one slot. We use multiply-shift (Fibonacci) hashing,
//! which distributes both sequential and strided addresses well and costs
//! one multiplication per access.

use dp_types::Address;

/// Golden-ratio multiplier (Knuth's multiplicative hashing constant for
/// 64-bit words).
const PHI64: u64 = 0x9e37_79b9_7f4a_7c15;

/// Maps an address to a slot index in `[0, nslots)`.
///
/// `nslots` need not be a power of two: the high 64 bits of the 128-bit
/// product `mix * nslots` give an unbiased range reduction (Lemire's
/// method), so arbitrary slot counts such as the paper's 10⁶/10⁷/10⁸ work
/// without rounding.
#[derive(Debug, Clone, Copy)]
pub struct SigHash {
    nslots: u64,
}

impl SigHash {
    /// Creates a hash for a signature with `nslots` slots (must be ≥ 1).
    pub fn new(nslots: usize) -> Self {
        assert!(nslots >= 1, "signature needs at least one slot");
        SigHash { nslots: nslots as u64 }
    }

    /// Number of slots this hash targets.
    #[inline]
    pub fn nslots(&self) -> usize {
        self.nslots as usize
    }

    /// The slot index for `addr`.
    #[inline]
    pub fn index(&self, addr: Address) -> usize {
        let mut x = addr.wrapping_mul(PHI64);
        // One xor-shift round keeps high-bit entropy flowing into the
        // Lemire reduction for small strides.
        x ^= x >> 32;
        (((x as u128) * (self.nslots as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_in_range() {
        for nslots in [1usize, 2, 3, 1000, 1 << 20, 999_983] {
            let h = SigHash::new(nslots);
            for a in [0u64, 1, 0xdead_beef, u64::MAX, 0x7fff_ffff_ffff_fff8] {
                assert!(h.index(a) < nslots, "addr {a:#x} nslots {nslots}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let h = SigHash::new(4096);
        assert_eq!(h.index(0x1234), h.index(0x1234));
    }

    #[test]
    fn strided_addresses_spread() {
        // 8-byte strided walk (the dominant pattern in array code) should
        // fill most of the table, not a subgroup.
        let n = 4096usize;
        let h = SigHash::new(n);
        let mut hit = vec![false; n];
        for i in 0..n as u64 {
            hit[h.index(0x7f00_0000_0000 + i * 8)] = true;
        }
        let filled = hit.iter().filter(|&&b| b).count();
        assert!(filled > n / 2, "only {filled}/{n} slots used");
    }

    #[test]
    fn non_power_of_two_unbiased_ish() {
        let n = 1000usize;
        let h = SigHash::new(n);
        let mut counts = vec![0u32; n];
        for i in 0..100_000u64 {
            counts[h.index(i * 8 + 0x1000)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 220 && min > 20, "imbalanced: min={min} max={max}");
    }

    #[test]
    #[should_panic]
    fn zero_slots_rejected() {
        let _ = SigHash::new(0);
    }
}
