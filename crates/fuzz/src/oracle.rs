//! The differential oracle: one program, every engine, one verdict.
//!
//! For a sequential program the oracle records its trace once and feeds
//! the identical event stream to ten legs:
//!
//! 1. serial in-line engine (the reference),
//! 2. parallel pipeline, SPSC transport,
//! 3. parallel pipeline, MPMC transport,
//! 4. parallel pipeline, lock-based transport,
//! 5. the DPSV service engine wrapping the serial engine,
//! 6. the DPSV service engine wrapping the parallel pipeline,
//! 7. the service engine over a flaky transport (seeded mid-stream
//!    disconnect, checkpointed resume with resend overlap, every frame
//!    delivered twice) wrapping the serial engine,
//! 8. the same flaky transport wrapping the parallel pipeline,
//! 9. serial engine checkpointed mid-stream and resumed,
//! 10. parallel pipeline checkpointed mid-stream and resumed,
//! 11. the service engine answering live `Query` frames mid-stream from
//!     its incremental analysis state (serial engine) — the *final*
//!     snapshot must equal the post-hoc loop/comm/race passes over the
//!     finished profile,
//! 12. the same online-analysis equivalence over the parallel pipeline.
//!
//! All legs must produce the same dependence multiset, and the serial
//! result must additionally show zero false positives and zero false
//! negatives against the perfect-signature baseline. Both comparisons
//! are exact, not statistical: [`injective_slots`] grows the signature
//! until the multiply-shift hash is injective on the program's actual
//! address footprint (checked for the serial slot count *and* the
//! per-worker slot count), at which point the approximate signature is
//! semantically a perfect table and any difference is a real bug.
//!
//! A deliberately undersized run (4 slots per address) is profiled too,
//! yielding a measured FPR/FNR sample the campaign driver aggregates
//! against the Formula 2 prediction.
//!
//! Multi-threaded programs cannot be replayed from a recorded trace (the
//! recorder is sequential), so they run live under the fork-join
//! profiler with structural invariants: the run completes, traces
//! accesses, loses no worker and conserves events.

use std::collections::{BTreeMap, HashSet};

use dp_analysis::compare;
use dp_core::{
    MtProfiler, ProfileResult, ProfilerConfig, SequentialProfiler, SessionSpec, TransportKind,
};
use dp_server::SessionEngine;
use dp_sig::{predicted_fpr, SigHash};
use dp_trace::fuzz::is_mt;
use dp_trace::ir::Program;
use dp_trace::{FrameChunker, Interp, TraceReader, TraceWriter};
use dp_types::protocol::{Frame, Hello};
use dp_types::{Interner, TraceEvent};

/// How the oracle sizes and drives its legs.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Worker count for the parallel legs.
    pub workers: usize,
    /// Starting signature size for the injectivity search.
    pub base_slots: usize,
    /// Also run the undersized-signature accuracy leg.
    pub accuracy: bool,
    /// Deliberate stream mutation applied to the parallel-SPSC leg only
    /// — the hand-injected divergence the harness must catch.
    pub corruption: Option<Corruption>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { workers: 3, base_slots: 1 << 16, accuracy: true, corruption: None }
    }
}

/// A deliberate divergence injected into one leg's event stream, used to
/// prove the oracle catches real disagreements (and to exercise the
/// minimizer on something that genuinely fails).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Drop the i-th memory access (modulo the access count).
    DropAccess(usize),
    /// Duplicate the i-th memory access (modulo the access count).
    DuplicateAccess(usize),
}

impl Corruption {
    /// Applies the mutation to a copy of the stream. A stream with no
    /// accesses is returned unchanged.
    pub fn apply(&self, events: &[TraceEvent]) -> Vec<TraceEvent> {
        let access_positions: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.as_access().is_some())
            .map(|(i, _)| i)
            .collect();
        if access_positions.is_empty() {
            return events.to_vec();
        }
        let mut out = events.to_vec();
        match *self {
            Corruption::DropAccess(i) => {
                out.remove(access_positions[i % access_positions.len()]);
            }
            Corruption::DuplicateAccess(i) => {
                let pos = access_positions[i % access_positions.len()];
                let ev = out[pos];
                out.insert(pos, ev);
            }
        }
        out
    }
}

/// Which leg diverged and how — enough to reproduce without the oracle.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Name of the disagreeing leg (e.g. `"par-mpmc"`, `"resumed-serial"`).
    pub leg: &'static str,
    /// Human-readable first differences.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "leg {} diverged: {}", self.leg, self.detail)
    }
}

/// One undersized-signature accuracy measurement.
#[derive(Debug, Clone, Copy)]
pub struct AccuracySample {
    /// Distinct addresses the program touched.
    pub distinct_addrs: u64,
    /// Slots of the deliberately undersized signature.
    pub slots: usize,
    /// Measured false-positive rate (percent of reported dependences).
    pub measured_fpr: f64,
    /// Measured false-negative rate (percent of baseline dependences).
    pub measured_fnr: f64,
    /// Formula 2 slot-level collision probability for (slots, addrs).
    pub predicted_slot_fpr: f64,
    /// Dependence-level bound implied by Formula 2: a dependence is
    /// wrong when either of its two endpoint lookups collides, so
    /// `100·(1−(1−p)²)` percent.
    pub dep_bound: f64,
}

/// What a passing oracle run observed.
#[derive(Debug, Clone, Copy)]
pub struct OracleOutcome {
    /// Engine legs that agreed (1 for a live multi-threaded run).
    pub legs: usize,
    /// Memory accesses in the reference run.
    pub accesses: u64,
    /// Injective signature size used for the equality legs (the MT leg
    /// reports the configured base size).
    pub slots: usize,
    /// Undersized-signature measurement, when the leg ran.
    pub accuracy: Option<AccuracySample>,
}

/// Canonical dependence multiset of a result: `dtype sink|thread <-
/// source|thread var` mapped to its occurrence count.
pub fn dep_map(r: &ProfileResult) -> BTreeMap<String, u64> {
    r.deps
        .dependences()
        .map(|(d, v)| {
            (
                format!(
                    "{:?} {}|{} <- {}|{} var{}",
                    d.edge.dtype,
                    d.sink.loc,
                    d.sink.thread,
                    d.edge.source_loc,
                    d.edge.source_thread,
                    d.edge.var
                ),
                v.count,
            )
        })
        .collect()
}

/// Records a sequential program into an in-memory trace and returns its
/// events, interner, and the name table in id order — the shared input
/// of every replay leg.
pub fn record(prog: &Program) -> (Vec<TraceEvent>, Interner, Vec<String>) {
    let mut wtr = TraceWriter::with_names(Vec::new(), &prog.interner).expect("in-memory trace");
    Interp::new(prog).run_seq(&mut wtr);
    let bytes = wtr.finish().expect("in-memory trace");
    let mut reader = TraceReader::new(bytes.as_slice()).expect("reread own trace");
    let interner = reader.interner().clone();
    let mut events = Vec::new();
    for rec in reader.by_ref() {
        events.push(rec.expect("reread own trace"));
    }
    let names = (0..interner.len()).map(|id| interner.resolve(id as u32).to_owned()).collect();
    (events, interner, names)
}

/// Replays events through a fresh engine built from `spec`.
pub fn offline(spec: &SessionSpec, events: &[TraceEvent]) -> ProfileResult {
    let mut session = spec.build();
    for ev in events {
        session.on_event(*ev);
    }
    session.finish()
}

/// Replays events through the socket-free DPSV service engine, driven
/// frame-by-frame exactly like a connection handler.
pub fn served(spec: &SessionSpec, events: &[TraceEvent], names: Vec<String>) -> ProfileResult {
    let hello = Hello { session: "fuzz".into(), spec: spec.encode(), checkpoint_every: 0, names };
    let (mut engine, ack) = SessionEngine::open(&hello, 1, None, 0).expect("hello");
    assert!(matches!(ack, Frame::HelloAck { resume_from: 0, .. }));
    let mut chunker = FrameChunker::new(64);
    for ev in events {
        for frame in chunker.push(*ev) {
            engine.handle(frame).expect("event frame");
        }
    }
    if let Some(frame) = chunker.flush() {
        engine.handle(frame).expect("flush frame");
    }
    engine.finish_result().expect("engine still live before Finish")
}

/// Replays events through the service engine while issuing live
/// `Query` frames every few chunks, and checks the analysis-equivalence
/// bar: the final query's snapshot — serialized from the engine's
/// incremental loop/comm/race state — must equal the post-hoc
/// [`dp_analysis::posthoc_report`] over the finished profile,
/// dependence for dependence (same loop verdicts, same communication
/// matrix, same race hints, serialized identically).
pub fn online_equivalence(
    leg: &'static str,
    spec: &SessionSpec,
    events: &[TraceEvent],
    names: Vec<String>,
) -> Result<(), Box<Divergence>> {
    use dp_types::protocol::query_kind;

    let hello = Hello {
        session: "online".into(),
        spec: spec.encode(),
        checkpoint_every: 0,
        names: names.clone(),
    };
    let (mut engine, ack) = SessionEngine::open(&hello, 1, None, 0).expect("hello");
    assert!(matches!(ack, Frame::HelloAck { resume_from: 0, .. }));
    let mut chunker = FrameChunker::new(64);
    let mut chunks = 0u64;
    let mut id = 0u64;
    for ev in events {
        for frame in chunker.push(*ev) {
            let is_chunk = matches!(frame, Frame::Chunk { .. });
            engine.handle(frame).expect("event frame");
            // Mid-stream queries make the incremental state fold from
            // many partial deltas, not one big catch-up — the verdict
            // below proves interval boundaries don't change the answer.
            if is_chunk {
                chunks += 1;
                if chunks.is_multiple_of(5) {
                    id += 1;
                    engine.handle(Frame::Query { id, kind: query_kind::ALL }).expect("query");
                }
            }
        }
    }
    if let Some(frame) = chunker.flush() {
        engine.handle(frame).expect("flush frame");
    }
    id += 1;
    let replies = engine.handle(Frame::Query { id, kind: query_kind::ALL }).expect("final query");
    let json = match &replies[..] {
        [Frame::QueryResult { json, .. }] => json.clone(),
        other => panic!("wanted one QueryResult, got {other:?}"),
    };
    let result = engine.finish_result().expect("engine still live before Finish");

    let mut interner = Interner::default();
    for n in &names {
        interner.intern(n);
    }
    let expected = dp_analysis::posthoc_report(&result).to_json(&interner, true, true, true);
    // The live snapshot wraps the report body in session/position/deltas
    // metadata; the report itself must match byte for byte.
    if json.ends_with(&expected[1..]) {
        Ok(())
    } else {
        Err(Box::new(Divergence {
            leg,
            detail: format!(
                "incremental snapshot diverged from post-hoc analysis\n live: {json}\n post: \
                 {expected}"
            ),
        }))
    }
}

/// Replays events through the service engine over a simulated flaky
/// transport: frames are cut at a seeded offset mid-stream (the
/// server's disconnect path writes an emergency checkpoint and drops
/// the engine), the client re-`Hello`s the same session, and resends
/// from the acked resume watermark with deliberate overlap — and every
/// single frame, both before and after the cut, is delivered *twice*,
/// the way a retransmitting network would. The positional protocol must
/// make all of it land in the profile exactly once.
pub fn flaky_served(
    spec: &SessionSpec,
    events: &[TraceEvent],
    names: Vec<String>,
    seed: u64,
) -> ProfileResult {
    let base = std::env::temp_dir().join(format!(
        "dp-fuzz-flaky-{}-{}-{seed}",
        std::process::id(),
        spec.parallel as u8
    ));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("flaky temp dir");
    let hello = Hello { session: "flaky".into(), spec: spec.encode(), checkpoint_every: 0, names };

    // First connection: duplicated delivery of every frame up to a
    // seeded cut, then the client is "lost" — emergency checkpoint,
    // engine dropped.
    let (mut engine, ack) = SessionEngine::open(&hello, 1, Some(&base), 0).expect("hello");
    assert!(matches!(ack, Frame::HelloAck { resume_from: 0, .. }));
    let frames: Vec<Frame> = {
        let mut c = FrameChunker::new(16);
        let mut v: Vec<Frame> = events.iter().flat_map(|ev| c.push(*ev)).collect();
        v.extend(c.flush());
        v
    };
    let cut = if frames.is_empty() { 0 } else { seed as usize % frames.len() };
    for f in &frames[..cut] {
        engine.handle(f.clone()).expect("pre-cut frame");
        engine.handle(f.clone()).expect("pre-cut duplicate");
    }
    engine.write_checkpoint().expect("emergency checkpoint");
    drop(engine);

    // Reconnect under the same name: the ack carries the watermark.
    // Resend from a few events *before* it (retry overlap), duplicated
    // again — the positional skip dedupes overlap and duplicates alike.
    let (mut engine, ack) = SessionEngine::open(&hello, 2, Some(&base), 0).expect("re-hello");
    let resume = match ack {
        Frame::HelloAck { resume_from, .. } => resume_from,
        other => panic!("wanted HelloAck, got {other:?}"),
    };
    let overlap = resume.min(seed % 5);
    let start = resume - overlap;
    let mut c = FrameChunker::with_base(16, start);
    let mut resent: Vec<Frame> =
        events[start as usize..].iter().flat_map(|ev| c.push(*ev)).collect();
    resent.extend(c.flush());
    for f in resent {
        engine.handle(f.clone()).expect("resent frame");
        engine.handle(f).expect("resent duplicate");
    }
    let acks = engine.handle(Frame::Sync { nonce: 1 }).expect("sync");
    match acks[..] {
        [Frame::SyncAck { nonce: 1, position }] => {
            assert_eq!(position, events.len() as u64, "watermark covers the whole stream");
        }
        ref other => panic!("wanted one SyncAck, got {other:?}"),
    }
    let result = engine.finish_result().expect("engine still live before Finish");
    let _ = std::fs::remove_dir_all(&base);
    result
}

/// Replays events with a kill at `cut`: the first engine checkpoints
/// after `cut` events and is dropped (the process is gone — only the
/// checkpoint bytes survive); a second engine is rebuilt from the
/// decoded checkpoint config and fed the remainder.
pub fn resumed(spec: &SessionSpec, events: &[TraceEvent], cut: usize) -> ProfileResult {
    let cut = cut.min(events.len());
    let mut first = spec.build();
    for ev in &events[..cut] {
        first.on_event(*ev);
    }
    let data = first.checkpoint_data(1, cut as u64, spec.encode()).expect("checkpoint");
    drop(first);
    let respec = SessionSpec::decode(&data.config).expect("checkpointed spec decodes");
    let mut second = respec.resume(&data).expect("resume");
    for ev in &events[cut..] {
        second.on_event(*ev);
    }
    second.finish()
}

/// Replays events through the perfect-signature baseline.
pub fn perfect(events: &[TraceEvent]) -> ProfileResult {
    let mut p = SequentialProfiler::perfect();
    for ev in events {
        p.on_event(ev);
    }
    p.finish()
}

/// Smallest slot count ≥ `base` whose multiply-shift hash is injective
/// on `addrs` *both* as a single serial signature and split across
/// `workers` per-worker signatures. Each doubling also tries `n+1`
/// (Lemire reduction handles any modulus), so the search has many
/// independent chances per octave and fails only with astronomically
/// small probability before the cap.
pub fn injective_slots(addrs: &[u64], base: usize, workers: usize) -> usize {
    fn injective(nslots: usize, addrs: &[u64]) -> bool {
        let hash = SigHash::new(nslots);
        let mut seen = HashSet::with_capacity(addrs.len());
        addrs.iter().all(|&a| seen.insert(hash.index(a)))
    }
    let mut size = base.max(workers * 2).max(2 * addrs.len().max(1));
    const CAP: usize = 1 << 27;
    while size <= CAP {
        for total in [size, size + 1] {
            let per_worker = ProfilerConfig::default()
                .with_workers(workers)
                .with_slots(total)
                .slots_per_worker();
            if injective(total, addrs) && injective(per_worker, addrs) {
                return total;
            }
        }
        size *= 2;
    }
    panic!("no injective signature size ≤ {CAP} for {} addresses", addrs.len());
}

fn diff(want: &BTreeMap<String, u64>, got: &BTreeMap<String, u64>) -> String {
    let mut lines = Vec::new();
    for (k, v) in want {
        match got.get(k) {
            None => lines.push(format!("missing: {k} (count {v})")),
            Some(g) if g != v => lines.push(format!("count {g} != {v}: {k}")),
            _ => {}
        }
    }
    for (k, v) in got {
        if !want.contains_key(k) {
            lines.push(format!("extra: {k} (count {v})"));
        }
    }
    let total = lines.len();
    lines.truncate(5);
    if total > 5 {
        lines.push(format!("… and {} more", total - 5));
    }
    lines.join("; ")
}

fn expect_equal(
    leg: &'static str,
    want: &BTreeMap<String, u64>,
    r: &ProfileResult,
) -> Result<(), Box<Divergence>> {
    let got = dep_map(r);
    if &got == want {
        Ok(())
    } else {
        Err(Box::new(Divergence { leg, detail: diff(want, &got) }))
    }
}

/// Runs the full differential oracle on one program.
pub fn check_program(prog: &Program, cfg: &OracleConfig) -> Result<OracleOutcome, Box<Divergence>> {
    if is_mt(prog) {
        return check_mt(prog, cfg);
    }
    let (events, _interner, names) = record(prog);
    let addrs: Vec<u64> = {
        let set: HashSet<u64> =
            events.iter().filter_map(|e| e.as_access()).map(|a| a.addr).collect();
        set.into_iter().collect()
    };
    let slots = injective_slots(&addrs, cfg.base_slots, cfg.workers);
    let serial_spec = SessionSpec { slots, ..SessionSpec::default() };
    let par_spec = |transport| SessionSpec {
        parallel: true,
        workers: cfg.workers,
        transport,
        slots,
        ..SessionSpec::default()
    };

    let reference = offline(&serial_spec, &events);
    let want = dep_map(&reference);
    let mut legs = 1usize;

    // Parallel transports. The SPSC leg is where a hand-injected
    // corruption lands, so the harness can prove divergences are caught.
    let spsc_events: Vec<TraceEvent> = match &cfg.corruption {
        None => events.clone(),
        Some(c) => c.apply(&events),
    };
    expect_equal("par-spsc", &want, &offline(&par_spec(TransportKind::Spsc), &spsc_events))?;
    legs += 1;
    expect_equal("par-mpmc", &want, &offline(&par_spec(TransportKind::Mpmc), &events))?;
    legs += 1;
    expect_equal("par-lock", &want, &offline(&par_spec(TransportKind::Lock), &events))?;
    legs += 1;

    // Service layer, both engines.
    expect_equal("served-serial", &want, &served(&serial_spec, &events, names.clone()))?;
    legs += 1;
    expect_equal(
        "served-par",
        &want,
        &served(&par_spec(TransportKind::Spsc), &events, names.clone()),
    )?;
    legs += 1;

    // Online analysis: live mid-stream queries; the final incremental
    // snapshot must equal the post-hoc passes over the same profile.
    online_equivalence("online-serial", &serial_spec, &events, names.clone())?;
    legs += 1;
    online_equivalence("online-par", &par_spec(TransportKind::Spsc), &events, names.clone())?;
    legs += 1;

    // Flaky transport: seeded mid-stream disconnect + reconnect with
    // resend overlap, every frame delivered twice. The seed varies per
    // program so the cut lands at different frame offsets across a
    // campaign.
    let flaky_seed = (events.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    expect_equal(
        "flaky-served-serial",
        &want,
        &flaky_served(&serial_spec, &events, names.clone(), flaky_seed),
    )?;
    legs += 1;
    expect_equal(
        "flaky-served-par",
        &want,
        &flaky_served(&par_spec(TransportKind::Spsc), &events, names, flaky_seed ^ 0xdead_beef),
    )?;
    legs += 1;

    // Kill-and-resume mid-stream, both engines.
    let cut = events.len() / 2;
    expect_equal("resumed-serial", &want, &resumed(&serial_spec, &events, cut))?;
    legs += 1;
    expect_equal("resumed-par", &want, &resumed(&par_spec(TransportKind::Spsc), &events, cut))?;
    legs += 1;

    // Ground truth: the injectively-sized signature must be *exact* —
    // zero false positives and zero false negatives vs the perfect
    // baseline.
    let baseline = perfect(&events);
    let acc = compare(&baseline, &reference);
    if acc.false_positives != 0 || acc.false_negatives != 0 {
        return Err(Box::new(Divergence {
            leg: "perfect",
            detail: format!(
                "injective signature not exact: {} false positives, {} false negatives \
                 ({} baseline deps, {} slots)",
                acc.false_positives, acc.false_negatives, acc.baseline, slots
            ),
        }));
    }
    legs += 1;

    // Undersized accuracy leg: 4 slots per distinct address, measured
    // against the perfect baseline and bounded later (in aggregate) by
    // the Formula 2 prediction.
    let n = addrs.len() as u64;
    let accuracy = if cfg.accuracy && cfg.corruption.is_none() && n >= 16 {
        let small_slots = (n as usize) * 4;
        let small = offline(&SessionSpec { slots: small_slots, ..SessionSpec::default() }, &events);
        let a = compare(&baseline, &small);
        let p = predicted_fpr(small_slots, n);
        let sample = AccuracySample {
            distinct_addrs: n,
            slots: small_slots,
            measured_fpr: a.fpr(),
            measured_fnr: a.fnr(),
            predicted_slot_fpr: p,
            dep_bound: 100.0 * (1.0 - (1.0 - p) * (1.0 - p)),
        };
        // A catastrophic per-seed miss is a bug even before aggregation:
        // allow generous slack (3× the dep-level bound plus an absolute
        // floor for tiny dependence sets where one dep is many percent).
        let ceiling = (3.0 * sample.dep_bound).max(35.0);
        if sample.measured_fpr > ceiling || sample.measured_fnr > ceiling {
            return Err(Box::new(Divergence {
                leg: "accuracy",
                detail: format!(
                    "undersized run blew past Formula 2: measured fpr {:.2}% fnr {:.2}% \
                     vs dep-level bound {:.2}% (n={n}, m={small_slots})",
                    sample.measured_fpr, sample.measured_fnr, sample.dep_bound
                ),
            }));
        }
        Some(sample)
    } else {
        None
    };

    Ok(OracleOutcome { legs, accesses: reference.stats.accesses, slots, accuracy })
}

/// Live fork-join leg for multi-threaded programs (the trace recorder is
/// sequential, so MT targets cannot take the replay legs). Structural
/// invariants only: the run completes, traces accesses, loses no worker,
/// and conserves events when metrics are compiled in.
fn check_mt(prog: &Program, cfg: &OracleConfig) -> Result<OracleOutcome, Box<Divergence>> {
    let pcfg = ProfilerConfig::default().with_workers(cfg.workers).with_slots(cfg.base_slots);
    let prof = MtProfiler::new(pcfg);
    Interp::new(prog).run_mt(&prof);
    let r = prof.finish();
    if r.stats.accesses == 0 {
        return Err(Box::new(Divergence { leg: "mt", detail: "no accesses traced".into() }));
    }
    if !r.stats.worker_failures.is_empty() {
        return Err(Box::new(Divergence {
            leg: "mt",
            detail: format!("lost workers: {:?}", r.stats.worker_failures),
        }));
    }
    if r.metrics.enabled && !r.metrics.conservation.holds() {
        return Err(Box::new(Divergence {
            leg: "mt",
            detail: format!("conservation violated: {:?}", r.metrics.conservation),
        }));
    }
    Ok(OracleOutcome { legs: 1, accesses: r.stats.accesses, slots: cfg.base_slots, accuracy: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_trace::fuzz::{generate, FuzzConfig};

    #[test]
    fn injectivity_search_terminates_and_is_injective() {
        let addrs: Vec<u64> = (0..4_000u64).map(|i| 0x10_0000 + i * 24).collect();
        let slots = injective_slots(&addrs, 1 << 10, 3);
        let hash = SigHash::new(slots);
        let mut seen = HashSet::new();
        assert!(addrs.iter().all(|&a| seen.insert(hash.index(a))));
    }

    #[test]
    fn oracle_passes_on_generated_sequential_programs() {
        let cfg = OracleConfig::default();
        for seed in 0..8u64 {
            let prog = generate(seed, &FuzzConfig::quick());
            let out = check_program(&prog, &cfg).unwrap_or_else(|d| {
                panic!("seed {seed}: {d}\n{}", dp_trace::fuzz::print_program(&prog))
            });
            assert!(out.legs >= 12, "seed {seed} ran only {} legs", out.legs);
        }
    }

    #[test]
    fn oracle_runs_mt_programs_live() {
        let cfg = OracleConfig::default();
        let mut found = false;
        for seed in 0..12u64 {
            let fc = FuzzConfig { mt: true, ..FuzzConfig::quick() };
            let prog = generate(seed, &fc);
            if !is_mt(&prog) {
                continue;
            }
            found = true;
            let out = check_program(&prog, &cfg).expect("mt invariants");
            assert_eq!(out.legs, 1);
            assert!(out.accesses > 0);
        }
        assert!(found, "no MT program generated in 12 seeds");
    }

    #[test]
    fn injected_corruption_is_caught() {
        // Find a seed where dropping an access visibly changes the
        // dependence set — most do, but the oracle only promises to
        // catch *visible* divergences.
        for seed in 0..20u64 {
            let prog = generate(seed, &FuzzConfig::quick());
            if is_mt(&prog) {
                continue;
            }
            let cfg = OracleConfig {
                corruption: Some(Corruption::DropAccess(7)),
                accuracy: false,
                ..OracleConfig::default()
            };
            if let Err(d) = check_program(&prog, &cfg) {
                assert_eq!(d.leg, "par-spsc", "corruption surfaced on the wrong leg: {d}");
                return;
            }
        }
        panic!("no seed in 0..20 produced a visible injected divergence");
    }
}
