//! Differential fuzzing for the profiler stack.
//!
//! The repository accumulates engines that must all agree on what a
//! dependence is: the in-line serial profiler, the parallel pipeline over
//! its three transports, the DPSV service layer, and checkpoint/resume.
//! Hand-written workloads exercise each engine, but only on the programs
//! someone thought to write. This crate closes the gap adversarially:
//!
//! - [`oracle`] — runs one generated MiniVM program through *every*
//!   engine and demands dependence-for-dependence equality, plus zero
//!   false positives/negatives against the perfect-signature baseline.
//!   Equality is made deterministic (never flaky) by sizing the
//!   signature so its hash is injective on the program's footprint — an
//!   injective signature *is* a perfect table, so any divergence is a
//!   real bug, not a hash collision.
//! - [`driver`] — the fuzz campaign loop: generate N seeded programs,
//!   check each, shrink any failure to a minimal repro and write it to
//!   a corpus directory, and validate measured FPR/FNR of deliberately
//!   undersized signatures against the paper's Formula 2 bound.
//! - [`webscale`] — a synthetic web-scale family: Zipfian event streams
//!   over ~10^6 distinct addresses at signature load factors beyond
//!   Table I, stressing eviction and router redistribution paths that
//!   small programs never reach.
//!
//! The program generator, corpus text format and minimizer live in
//! `dp_trace::fuzz`; this crate owns everything that needs the engines.

#![warn(missing_docs)]

pub mod driver;
pub mod oracle;
pub mod webscale;

pub use driver::{run_fuzz, FoundDivergence, FuzzOpts, FuzzReport};
pub use oracle::{
    check_program, dep_map, offline, perfect, record, resumed, served, AccuracySample, Corruption,
    Divergence, OracleConfig, OracleOutcome,
};
pub use webscale::{webscale_check, webscale_events, WebscaleConfig, WebscaleOutcome};
