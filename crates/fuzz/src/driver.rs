//! The fuzz campaign loop: generate, check, shrink, persist, aggregate.

use std::path::PathBuf;

use dp_trace::fuzz::{generate, minimize, print_program, stmt_count, FuzzConfig};
use dp_trace::ir::Program;
use dp_types::wire::atomic_write;

use crate::oracle::{check_program, AccuracySample, Divergence, OracleConfig};
use crate::webscale::{webscale_check, WebscaleConfig};

/// Campaign knobs — the CLI's `depprof fuzz` flags in struct form.
#[derive(Debug, Clone)]
pub struct FuzzOpts {
    /// Programs to generate and check.
    pub seeds: u64,
    /// First seed (so campaigns can be sharded across CI jobs).
    pub start_seed: u64,
    /// Use the small/fast generator configuration and web-scale shape.
    pub quick: bool,
    /// Where minimized failing programs are written (skipped when
    /// `None`).
    pub corpus_dir: Option<PathBuf>,
    /// Predicate-evaluation budget for the minimizer, per failure.
    pub max_shrink_checks: usize,
    /// Also run the web-scale Zipfian stress streams.
    pub webscale: bool,
    /// Workers for the parallel oracle legs.
    pub workers: usize,
    /// Deliberate stream corruption threaded into every sequential
    /// check — used by the harness to prove divergences are caught and
    /// minimized, never set in a real campaign.
    pub corruption: Option<crate::oracle::Corruption>,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        FuzzOpts {
            seeds: 50,
            start_seed: 0,
            quick: false,
            corpus_dir: None,
            max_shrink_checks: 400,
            webscale: true,
            workers: 3,
            corruption: None,
        }
    }
}

/// One caught divergence, shrunk and (optionally) persisted.
#[derive(Debug, Clone)]
pub struct FoundDivergence {
    /// Generator seed of the original failing program.
    pub seed: u64,
    /// Leg that disagreed.
    pub leg: String,
    /// First differences, human-readable.
    pub detail: String,
    /// The minimized program that still fails.
    pub program: Program,
    /// Statement count of the minimized program.
    pub stmts: usize,
    /// Where the repro was written, when a corpus dir was configured.
    pub corpus_path: Option<PathBuf>,
}

/// Campaign summary.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Seeds checked.
    pub seeds: u64,
    /// Sequential programs among them.
    pub sequential: u64,
    /// Multi-threaded programs among them.
    pub mt: u64,
    /// Total accesses across all reference runs.
    pub total_accesses: u64,
    /// Divergences caught (empty on a healthy campaign).
    pub divergences: Vec<FoundDivergence>,
    /// Undersized-signature accuracy samples.
    pub samples: Vec<AccuracySample>,
    /// Web-scale stress streams run.
    pub webscale_runs: u64,
    /// Web-scale failures (empty on a healthy campaign).
    pub webscale_failures: Vec<String>,
}

impl FuzzReport {
    /// Mean measured false-positive rate over all accuracy samples.
    pub fn mean_fpr(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.measured_fpr))
    }

    /// Mean measured false-negative rate over all accuracy samples.
    pub fn mean_fnr(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.measured_fnr))
    }

    /// Mean Formula 2 dependence-level bound over the same samples.
    pub fn mean_dep_bound(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.dep_bound))
    }

    /// True when measured accuracy stayed within the Formula 2 envelope
    /// in aggregate: the mean measured FPR and FNR do not exceed the
    /// mean dependence-level bound.
    pub fn accuracy_within_formula2(&self) -> bool {
        self.samples.is_empty()
            || (self.mean_fpr() <= self.mean_dep_bound() + 1e-9
                && self.mean_fnr() <= self.mean_dep_bound() + 1e-9)
    }

    /// Overall campaign verdict.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
            && self.webscale_failures.is_empty()
            && self.accuracy_within_formula2()
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Shrinks a failing program under "the oracle still rejects it" and
/// writes the repro to the corpus directory as a standalone `.minivm`
/// file with the provenance in a comment header.
fn shrink_and_save(
    seed: u64,
    prog: &Program,
    d: Divergence,
    ocfg: &OracleConfig,
    opts: &FuzzOpts,
    log: &mut dyn FnMut(String),
) -> FoundDivergence {
    let mut pred = |p: &Program| check_program(p, ocfg).is_err();
    let min = minimize(prog, opts.max_shrink_checks, &mut pred);
    let stmts = stmt_count(&min);
    log(format!(
        "seed {seed}: minimized {} -> {} statements (leg {})",
        stmt_count(prog),
        stmts,
        d.leg
    ));
    let corpus_path = opts.corpus_dir.as_ref().and_then(|dir| {
        let path = dir.join(format!("seed{seed}_{}.minivm", d.leg));
        let body = format!(
            "; fuzz repro: seed {seed}, diverging leg {}\n; {}\n{}",
            d.leg,
            d.detail.replace('\n', " "),
            print_program(&min)
        );
        std::fs::create_dir_all(dir).ok()?;
        atomic_write(&path, body.as_bytes()).ok()?;
        Some(path)
    });
    FoundDivergence {
        seed,
        leg: d.leg.to_string(),
        detail: d.detail,
        program: min,
        stmts,
        corpus_path,
    }
}

/// Runs a fuzz campaign. `log` receives progress lines (the CLI prints
/// them; tests usually discard them).
pub fn run_fuzz(opts: &FuzzOpts, log: &mut dyn FnMut(String)) -> FuzzReport {
    let mut report = FuzzReport::default();
    let ocfg = OracleConfig {
        workers: opts.workers,
        accuracy: true,
        corruption: opts.corruption,
        ..OracleConfig::default()
    };
    for i in 0..opts.seeds {
        let seed = opts.start_seed + i;
        // Every fourth program is a fork-join MT target; the rest take
        // the full eight-leg replay oracle.
        let mut cfg = if opts.quick { FuzzConfig::quick() } else { FuzzConfig::default() };
        cfg.mt = seed % 4 == 3;
        let prog = generate(seed, &cfg);
        match check_program(&prog, &ocfg) {
            Ok(out) => {
                if out.legs == 1 {
                    report.mt += 1;
                } else {
                    report.sequential += 1;
                }
                report.total_accesses += out.accesses;
                if let Some(s) = out.accuracy {
                    report.samples.push(s);
                }
            }
            Err(d) => {
                log(format!("seed {seed}: DIVERGENCE on {} — {}", d.leg, d.detail));
                let found = shrink_and_save(seed, &prog, *d, &ocfg, opts, log);
                report.divergences.push(found);
            }
        }
        if (i + 1) % 25 == 0 {
            log(format!(
                "checked {}/{} seeds ({} seq, {} mt, {} divergences)",
                i + 1,
                opts.seeds,
                report.sequential,
                report.mt,
                report.divergences.len()
            ));
        }
    }
    report.seeds = opts.seeds;

    if opts.webscale {
        let cfgs = if opts.quick {
            vec![WebscaleConfig::quick(opts.start_seed)]
        } else {
            vec![WebscaleConfig::quick(opts.start_seed), WebscaleConfig::full(opts.start_seed + 1)]
        };
        for cfg in cfgs {
            match webscale_check(&cfg) {
                Ok(out) => {
                    report.webscale_runs += 1;
                    log(format!(
                        "webscale seed {}: {} events, {} distinct addrs, load {:.2}, \
                         {} serial / {} parallel evictions, {} redistributions",
                        cfg.seed,
                        out.events,
                        out.distinct_addrs,
                        out.load_factor,
                        out.evictions_serial,
                        out.evictions_parallel,
                        out.redistributions
                    ));
                }
                Err(e) => report.webscale_failures.push(e),
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Corruption;

    #[test]
    fn quick_campaign_is_clean() {
        let opts = FuzzOpts { seeds: 12, quick: true, webscale: false, ..FuzzOpts::default() };
        let report = run_fuzz(&opts, &mut |_| {});
        assert!(report.passed(), "divergences: {:?}", report.divergences);
        assert_eq!(report.seeds, 12);
        assert!(report.sequential > 0 && report.mt > 0);
        assert!(report.total_accesses > 0);
    }

    #[test]
    fn injected_divergence_is_caught_and_minimized() {
        let dir = std::env::temp_dir().join(format!("dp-fuzz-corpus-{}", std::process::id()));
        let opts = FuzzOpts {
            seeds: 8,
            quick: true,
            webscale: false,
            corpus_dir: Some(dir.clone()),
            corruption: Some(Corruption::DropAccess(5)),
            ..FuzzOpts::default()
        };
        let report = run_fuzz(&opts, &mut |_| {});
        assert!(!report.divergences.is_empty(), "corruption was not caught");
        for d in &report.divergences {
            assert!(d.stmts <= 20, "repro not minimal: {} statements", d.stmts);
            let path = d.corpus_path.as_ref().expect("repro written");
            let text = std::fs::read_to_string(path).unwrap();
            let back = dp_trace::fuzz::parse_program(&text).expect("repro parses");
            assert_eq!(format!("{:?}", back.funcs), format!("{:?}", d.program.funcs));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn accuracy_aggregate_respects_formula_2() {
        let opts = FuzzOpts { seeds: 16, quick: true, webscale: false, ..FuzzOpts::default() };
        let report = run_fuzz(&opts, &mut |_| {});
        assert!(!report.samples.is_empty(), "no accuracy samples collected");
        assert!(
            report.accuracy_within_formula2(),
            "mean fpr {:.2}% / fnr {:.2}% vs bound {:.2}%",
            report.mean_fpr(),
            report.mean_fnr(),
            report.mean_dep_bound()
        );
    }
}
