//! Web-scale synthetic stress: Zipfian streams past Table I load factors.
//!
//! Generated MiniVM programs have footprints of a few hundred addresses —
//! they never push a real signature into eviction, and they never make
//! the router's hot-address redistribution fire. This module fabricates
//! the opposite regime directly at the event level: a seeded stream over
//! a universe of millions of addresses, with Zipfian (log-uniform rank)
//! reuse so a small head is blisteringly hot while a long tail drives the
//! signature load factor past 1.0 and forces evictions.
//!
//! At saturation the approximate signature legitimately disagrees with
//! the perfect baseline (that is Formula 2's whole subject), and serial
//! vs parallel runs legitimately disagree with each other (slots are
//! partitioned differently), so the oracle here is *within-class*
//! determinism instead of one global equality:
//!
//! - serial class: serial == served(serial) == resumed(serial);
//! - parallel class: spsc == mpmc == lock == served(par) == resumed(par).
//!
//! Plus structural evidence that the stress actually stressed: the
//! stream touched more distinct addresses than the signature has slots,
//! and the engines counted evictions.

use dp_core::{SessionSpec, TransportKind};
use dp_trace::fuzz::FuzzRng;
use dp_types::loc::loc;
use dp_types::{MemAccess, TraceEvent};
use std::collections::HashSet;

use crate::oracle::{dep_map, offline, resumed, served};

/// Shape of one web-scale stress stream.
#[derive(Debug, Clone, Copy)]
pub struct WebscaleConfig {
    /// Stream seed.
    pub seed: u64,
    /// Address-universe size (distinct addresses possible).
    pub universe: u64,
    /// Events in the stream.
    pub events: u64,
    /// Writes per thousand events.
    pub write_permille: u64,
    /// Total signature slots — deliberately smaller than the distinct
    /// footprint, so the load factor lands past 1.0.
    pub slots: usize,
    /// Workers for the parallel class.
    pub workers: usize,
}

impl WebscaleConfig {
    /// CI-friendly scale: ~10^5 distinct addresses, load factor ≈ 2.
    pub fn quick(seed: u64) -> Self {
        WebscaleConfig {
            seed,
            universe: 600_000,
            events: 500_000,
            write_permille: 300,
            slots: 1 << 16,
            workers: 3,
        }
    }

    /// Full scale: millions of distinct addresses, load factor ≈ 5.
    pub fn full(seed: u64) -> Self {
        WebscaleConfig {
            seed,
            universe: 8_000_000,
            events: 4_000_000,
            write_permille: 300,
            slots: 1 << 18,
            workers: 3,
        }
    }
}

/// Evidence a passing stress run hands back.
#[derive(Debug, Clone, Copy)]
pub struct WebscaleOutcome {
    /// Events generated.
    pub events: u64,
    /// Distinct addresses actually touched.
    pub distinct_addrs: u64,
    /// Signature load factor (distinct addresses per serial slot).
    pub load_factor: f64,
    /// Evictions counted by the serial engine.
    pub evictions_serial: u64,
    /// Evictions counted across the parallel pipeline's workers.
    pub evictions_parallel: u64,
    /// Redistribution rounds the router performed under the Zipfian head.
    pub redistributions: u64,
}

/// Generates the seeded stream. Ranks are drawn log-uniformly (a heavy
/// Zipf-like head) two thirds of the time and uniformly over the whole
/// universe one third of the time — the uniform component is what drags
/// the distinct footprint into the millions at full scale.
pub fn webscale_events(cfg: &WebscaleConfig) -> Vec<TraceEvent> {
    let mut rng = FuzzRng::new(cfg.seed ^ 0x5eb5_ca1e);
    const BASE: u64 = 0x4000_0000;
    let mut out = Vec::with_capacity(cfg.events as usize);
    for ts in 1..=cfg.events {
        let rank = if rng.chance(1, 3) { rng.below(cfg.universe) } else { rng.zipf(cfg.universe) };
        let addr = BASE + rank * 8;
        // A few hundred source lines, so the dependence set stays
        // bounded while the address footprint explodes.
        let line = (rank % 384) as u32 + 1;
        let acc = if rng.chance(cfg.write_permille, 1000) {
            MemAccess::write(addr, ts, loc(1, line), 0, 0)
        } else {
            MemAccess::read(addr, ts, loc(1, line + 400), 0, 0)
        };
        out.push(TraceEvent::Access(acc));
    }
    out
}

/// Runs the within-class differential check on one stress stream.
pub fn webscale_check(cfg: &WebscaleConfig) -> Result<WebscaleOutcome, String> {
    let events = webscale_events(cfg);
    let distinct: u64 = {
        let set: HashSet<u64> =
            events.iter().filter_map(|e| e.as_access()).map(|a| a.addr).collect();
        set.len() as u64
    };
    if distinct <= cfg.slots as u64 {
        return Err(format!(
            "stress misconfigured: {distinct} distinct addrs does not exceed {} slots",
            cfg.slots
        ));
    }

    let serial_spec = SessionSpec { slots: cfg.slots, ..SessionSpec::default() };
    let par_spec = |transport| SessionSpec {
        parallel: true,
        workers: cfg.workers,
        transport,
        slots: cfg.slots,
        ..SessionSpec::default()
    };
    let names = vec!["web".to_string()];
    let cut = events.len() / 2;

    // Serial class.
    let serial = offline(&serial_spec, &events);
    let want_serial = dep_map(&serial);
    for (leg, r) in [
        ("served-serial", served(&serial_spec, &events, names.clone())),
        ("resumed-serial", resumed(&serial_spec, &events, cut)),
    ] {
        if dep_map(&r) != want_serial {
            return Err(format!("webscale leg {leg} diverged from serial (seed {})", cfg.seed));
        }
    }

    // Parallel class.
    let par = offline(&par_spec(TransportKind::Spsc), &events);
    let want_par = dep_map(&par);
    for (leg, r) in [
        ("par-mpmc", offline(&par_spec(TransportKind::Mpmc), &events)),
        ("par-lock", offline(&par_spec(TransportKind::Lock), &events)),
        ("served-par", served(&par_spec(TransportKind::Spsc), &events, names)),
        ("resumed-par", resumed(&par_spec(TransportKind::Spsc), &events, cut)),
    ] {
        if dep_map(&r) != want_par {
            return Err(format!("webscale leg {leg} diverged from par-spsc (seed {})", cfg.seed));
        }
    }

    // The stress must actually have saturated the signatures.
    let evictions_serial = serial.metrics.signatures.evictions;
    let evictions_parallel = par.metrics.signatures.evictions;
    if serial.metrics.enabled && evictions_serial == 0 {
        return Err(format!(
            "no serial evictions at load factor {:.2} — stress did not bite",
            distinct as f64 / cfg.slots as f64
        ));
    }
    if par.metrics.enabled && evictions_parallel == 0 {
        return Err("no parallel evictions — stress did not bite".to_string());
    }

    Ok(WebscaleOutcome {
        events: cfg.events,
        distinct_addrs: distinct,
        load_factor: distinct as f64 / cfg.slots as f64,
        evictions_serial,
        evictions_parallel,
        redistributions: par.stats.redistributions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_stress_saturates_and_agrees() {
        let cfg = WebscaleConfig {
            events: 120_000,
            universe: 150_000,
            slots: 1 << 14,
            ..WebscaleConfig::quick(3)
        };
        let out = webscale_check(&cfg).expect("quick webscale run");
        assert!(out.load_factor > 1.0, "load factor {:.2}", out.load_factor);
        assert!(out.distinct_addrs > cfg.slots as u64);
    }

    #[test]
    fn stream_is_seed_deterministic_and_head_heavy() {
        let cfg = WebscaleConfig::quick(9);
        let a = webscale_events(&WebscaleConfig { events: 20_000, ..cfg });
        let b = webscale_events(&WebscaleConfig { events: 20_000, ..cfg });
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y), "same seed must replay identically");
        // Zipfian head: the hottest address should appear far more often
        // than the mean.
        let mut counts = std::collections::HashMap::new();
        for e in &a {
            *counts.entry(e.as_access().unwrap().addr).or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap();
        let mean = a.len() as f64 / counts.len() as f64;
        assert!(max as f64 > 20.0 * mean, "max {max} vs mean {mean:.2}");
    }
}
