//! The merged dependence store.
//!
//! "Finally, we merge identical dependences to reduce the memory overhead
//! and the time needed to write the dependences to disk. ... Merging
//! identical dependences decreased the average output file size for NAS
//! benchmarks from 6.1 GB to 53 KB, corresponding to an average reduction
//! by a factor of 10⁵." (Section III-B)
//!
//! The store is keyed by sink (aggregation as in Figure 1) and merges
//! edges by `(type, source, variable)`, accumulating a count, OR-ing
//! qualifier flags and collecting the set of loops the dependence was
//! observed carried for. `deps_built` counts every pre-merge record, so
//! the merge factor of experiment E9 is `deps_built / merged_len`.

use dp_types::{
    ByteReader, ByteWriter, DepEdge, DepFlags, DepType, Dependence, LoopId, SinkKey, SourceLoc,
    ThreadId, VarId, WireError,
};
use std::collections::{BTreeMap, BTreeSet};

fn dtype_code(d: DepType) -> u8 {
    match d {
        DepType::Raw => 0,
        DepType::War => 1,
        DepType::Waw => 2,
        DepType::Init => 3,
    }
}

fn dtype_from(code: u8) -> Result<DepType, WireError> {
    Ok(match code {
        0 => DepType::Raw,
        1 => DepType::War,
        2 => DepType::Waw,
        3 => DepType::Init,
        _ => return Err(WireError::Invalid("unknown dependence type code")),
    })
}

/// Merge key of an edge under one sink.
pub type EdgeKey = (DepType, SourceLoc, ThreadId, VarId);

/// One touched edge inside an [`AnalysisDelta`]: the edge's identity, the
/// occurrences added since the last drain, and the edge's *cumulative*
/// flag union and carrier set (shipping the full sets makes applying a
/// delta idempotent — OR-ing and union-ing them again changes nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaEdge {
    /// Sink of the dependence.
    pub sink: SinkKey,
    /// Merge key under the sink.
    pub key: EdgeKey,
    /// Occurrences merged into the edge since the previous drain.
    pub count_delta: u64,
    /// Union of qualifier flags over *all* occurrences so far.
    pub flags: DepFlags,
    /// Full set of loops the edge has been observed carried for.
    pub carriers: BTreeSet<LoopId>,
}

/// Loop-record movement inside an [`AnalysisDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaLoop {
    /// The loop.
    pub id: LoopId,
    /// Loop header location.
    pub begin: SourceLoc,
    /// Loop exit location.
    pub end: SourceLoc,
    /// Instances finished since the previous drain.
    pub instances_delta: u64,
    /// Iterations summed since the previous drain.
    pub iters_delta: u64,
}

/// What changed in a [`DepStore`] since the last drain — the unit the
/// online-analysis subsystem folds into its live loop/communication/race
/// state. Deltas from different stores (the parallel engine's per-worker
/// maps) compose by applying each in turn: counts add, flags OR, carrier
/// sets union — exactly the [`DepStore::merge`] rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisDelta {
    /// Edges touched since the last drain, in deterministic
    /// `(sink, key)` order.
    pub edges: Vec<DeltaEdge>,
    /// Loop records touched since the last drain, in id order.
    pub loops: Vec<DeltaLoop>,
}

impl AnalysisDelta {
    /// True when the delta carries no movement.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty() && self.loops.is_empty()
    }
}

/// Dirty-set bookkeeping for delta tracking: for every edge (or loop)
/// touched since the last drain, the pre-touch counters, so the drain can
/// ship exact movement without cloning the whole store.
#[derive(Debug, Clone, Default)]
struct DeltaTrack {
    /// `(sink, key) -> count` before the first touch of this interval
    /// (0 for edges born inside the interval).
    edges: BTreeMap<(SinkKey, EdgeKey), u64>,
    /// `loop -> (instances, total_iters)` before the first touch.
    loops: BTreeMap<LoopId, (u64, u64)>,
}

/// Merged payload of one distinct dependence edge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeVal {
    /// Dynamic occurrences merged into this record.
    pub count: u64,
    /// Union of qualifier flags over all occurrences.
    pub flags: DepFlags,
    /// Loops for which at least one occurrence was loop-carried.
    pub carriers: BTreeSet<LoopId>,
}

/// Aggregated runtime record of one static loop (drives the `BGN`/`END`
/// lines of the report and Table II's iteration context).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRecord {
    /// Loop header location.
    pub begin: SourceLoc,
    /// Loop exit location.
    pub end: SourceLoc,
    /// Dynamic instances (entries) of the loop.
    pub instances: u64,
    /// Iterations summed over all instances (the number printed after
    /// `END loop`).
    pub total_iters: u64,
}

/// Duplicate-free dependence storage with deterministic iteration order.
#[derive(Debug, Clone, Default)]
pub struct DepStore {
    deps: BTreeMap<SinkKey, BTreeMap<EdgeKey, EdgeVal>>,
    loops: BTreeMap<LoopId, LoopRecord>,
    deps_built: u64,
    distinct: u64,
    /// `Some` once delta tracking is enabled ([`DepStore::enable_delta`]).
    delta: Option<DeltaTrack>,
}

impl DepStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one dynamic dependence occurrence.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's record fields
    pub fn add(
        &mut self,
        sink: SinkKey,
        dtype: DepType,
        source_loc: SourceLoc,
        source_thread: ThreadId,
        var: VarId,
        flags: DepFlags,
        carrier: Option<LoopId>,
    ) {
        self.deps_built += 1;
        let key = (dtype, source_loc, source_thread, var);
        let entry = self.deps.entry(sink).or_default().entry(key).or_insert_with(|| {
            self.distinct += 1;
            EdgeVal::default()
        });
        if let Some(track) = self.delta.as_mut() {
            track.edges.entry((sink, key)).or_insert(entry.count);
        }
        entry.count += 1;
        entry.flags |= flags;
        if let Some(l) = carrier {
            entry.carriers.insert(l);
        }
    }

    /// Records a finished loop instance.
    pub fn record_loop(&mut self, id: LoopId, begin: SourceLoc, end: SourceLoc, iters: u64) {
        let r = self.loops.entry(id).or_insert_with(|| LoopRecord {
            begin,
            end,
            instances: 0,
            total_iters: 0,
        });
        if let Some(track) = self.delta.as_mut() {
            track.loops.entry(id).or_insert((r.instances, r.total_iters));
        }
        r.instances += 1;
        r.total_iters += iters;
    }

    /// Turns on delta tracking. Everything already in the store is seeded
    /// into the dirty set at a zero baseline, so the first
    /// [`DepStore::take_delta`] ships the *full* current state — the
    /// catch-up that lets online analysis be enabled lazily mid-session
    /// (or after a checkpoint rehydration) without missing history.
    /// Idempotent: enabling twice does not reset in-flight baselines.
    pub fn enable_delta(&mut self) {
        if self.delta.is_some() {
            return;
        }
        let mut track = DeltaTrack::default();
        for (sink, edges) in &self.deps {
            for key in edges.keys() {
                track.edges.insert((*sink, *key), 0);
            }
        }
        for id in self.loops.keys() {
            track.loops.insert(*id, (0, 0));
        }
        self.delta = Some(track);
    }

    /// True once [`DepStore::enable_delta`] has run.
    pub fn delta_enabled(&self) -> bool {
        self.delta.is_some()
    }

    /// Drains the dirty set into an [`AnalysisDelta`] describing every
    /// edge and loop touched since the previous drain (or since
    /// [`DepStore::enable_delta`]). Returns an empty delta when tracking
    /// is off or nothing moved.
    pub fn take_delta(&mut self) -> AnalysisDelta {
        let Some(track) = self.delta.as_mut() else {
            return AnalysisDelta::default();
        };
        let dirty_edges = std::mem::take(&mut track.edges);
        let dirty_loops = std::mem::take(&mut track.loops);
        let mut out = AnalysisDelta::default();
        for ((sink, key), baseline) in dirty_edges {
            let Some(val) = self.deps.get(&sink).and_then(|m| m.get(&key)) else {
                continue;
            };
            out.edges.push(DeltaEdge {
                sink,
                key,
                count_delta: val.count - baseline,
                flags: val.flags,
                carriers: val.carriers.clone(),
            });
        }
        for (id, (base_inst, base_iters)) in dirty_loops {
            let Some(r) = self.loops.get(&id) else { continue };
            out.loops.push(DeltaLoop {
                id,
                begin: r.begin,
                end: r.end,
                instances_delta: r.instances - base_inst,
                iters_delta: r.total_iters - base_iters,
            });
        }
        out
    }

    /// Total dynamic dependences recorded (pre-merge) — the numerator of
    /// the E9 merge factor.
    pub fn deps_built(&self) -> u64 {
        self.deps_built
    }

    /// Number of distinct (merged) dependences.
    pub fn merged_len(&self) -> u64 {
        self.distinct
    }

    /// Sinks in deterministic order.
    pub fn sinks(&self) -> impl Iterator<Item = (&SinkKey, &BTreeMap<EdgeKey, EdgeVal>)> {
        self.deps.iter()
    }

    /// Loop records in deterministic order.
    pub fn loops(&self) -> impl Iterator<Item = (&LoopId, &LoopRecord)> {
        self.loops.iter()
    }

    /// Looks up one loop record.
    pub fn loop_record(&self, id: LoopId) -> Option<&LoopRecord> {
        self.loops.get(&id)
    }

    /// Flattens into [`Dependence`] values (the unit the accuracy
    /// evaluation compares).
    pub fn dependences(&self) -> impl Iterator<Item = (Dependence, &EdgeVal)> {
        self.deps.iter().flat_map(|(sink, edges)| {
            edges.iter().map(move |(&(dtype, source_loc, source_thread, var), val)| {
                (
                    Dependence {
                        sink: *sink,
                        edge: DepEdge {
                            dtype,
                            source_loc,
                            source_thread,
                            var,
                            carrier: val.carriers.iter().next().copied(),
                            flags: val.flags,
                        },
                    },
                    val,
                )
            })
        })
    }

    /// Merges another store into this one (the final merge of the local
    /// worker maps, Figure 2: "we merge the data from all local maps into
    /// a global map. This step incurs only minor overhead since the local
    /// maps are free of duplicates").
    pub fn merge(&mut self, other: DepStore) {
        for (sink, edges) in other.deps {
            let dst = self.deps.entry(sink).or_default();
            for (k, v) in edges {
                let e = dst.entry(k).or_insert_with(|| {
                    self.distinct += 1;
                    EdgeVal::default()
                });
                if let Some(track) = self.delta.as_mut() {
                    track.edges.entry((sink, k)).or_insert(e.count);
                }
                e.count += v.count;
                e.flags |= v.flags;
                e.carriers.extend(v.carriers);
            }
        }
        for (id, r) in other.loops {
            let dst = self.loops.entry(id).or_insert_with(|| LoopRecord {
                begin: r.begin,
                end: r.end,
                instances: 0,
                total_iters: 0,
            });
            if let Some(track) = self.delta.as_mut() {
                track.loops.entry(id).or_insert((dst.instances, dst.total_iters));
            }
            dst.instances += r.instances;
            dst.total_iters += r.total_iters;
        }
        self.deps_built += other.deps_built;
    }

    /// Applies an [`AnalysisDelta`] drained from another store: counts
    /// add, flags OR, carriers union — the [`merge`](DepStore::merge)
    /// rules, so replaying every delta of a session reconstructs the
    /// merged store. This is the post-hoc fallback path of the online
    /// analysis subsystem: a mirror store fed only by deltas is a valid
    /// input for any non-incremental pass.
    pub fn apply_delta(&mut self, delta: &AnalysisDelta) {
        for e in &delta.edges {
            let dst = self.deps.entry(e.sink).or_default();
            let entry = dst.entry(e.key).or_insert_with(|| {
                self.distinct += 1;
                EdgeVal::default()
            });
            if let Some(track) = self.delta.as_mut() {
                track.edges.entry((e.sink, e.key)).or_insert(entry.count);
            }
            entry.count += e.count_delta;
            entry.flags |= e.flags;
            entry.carriers.extend(e.carriers.iter().copied());
            self.deps_built += e.count_delta;
        }
        for l in &delta.loops {
            let dst = self.loops.entry(l.id).or_insert_with(|| LoopRecord {
                begin: l.begin,
                end: l.end,
                instances: 0,
                total_iters: 0,
            });
            if let Some(track) = self.delta.as_mut() {
                track.loops.entry(l.id).or_insert((dst.instances, dst.total_iters));
            }
            dst.instances += l.instances_delta;
            dst.total_iters += l.iters_delta;
        }
    }

    /// Serializes the complete store — merged dependences, loop records
    /// and the pre-merge counters — for a checkpoint. BTreeMap iteration
    /// makes the byte stream deterministic: identical stores serialize to
    /// identical bytes.
    pub fn save(&self, out: &mut ByteWriter) {
        out.u64(self.deps_built);
        out.u64(self.distinct);
        out.u64(self.deps.len() as u64);
        for (sink, edges) in &self.deps {
            out.u32(sink.loc.pack());
            out.u16(sink.thread);
            out.u64(edges.len() as u64);
            for (&(dtype, source_loc, source_thread, var), v) in edges {
                out.u8(dtype_code(dtype));
                out.u32(source_loc.pack());
                out.u16(source_thread);
                out.u32(var);
                out.u64(v.count);
                out.u8(v.flags.bits());
                out.u32(v.carriers.len() as u32);
                for l in &v.carriers {
                    out.u32(*l);
                }
            }
        }
        out.u64(self.loops.len() as u64);
        for (id, r) in &self.loops {
            out.u32(*id);
            out.u32(r.begin.pack());
            out.u32(r.end.pack());
            out.u64(r.instances);
            out.u64(r.total_iters);
        }
    }

    /// Rebuilds a store previously produced by [`DepStore::save`].
    pub fn load(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        let deps_built = r.u64()?;
        let distinct = r.u64()?;
        let nsinks = r.u64()?;
        let mut deps = BTreeMap::new();
        for _ in 0..nsinks {
            let sink = SinkKey { loc: SourceLoc::unpack(r.u32()?), thread: r.u16()? };
            let nedges = r.u64()?;
            let mut edges = BTreeMap::new();
            for _ in 0..nedges {
                let dtype = dtype_from(r.u8()?)?;
                let source_loc = SourceLoc::unpack(r.u32()?);
                let source_thread = r.u16()?;
                let var = r.u32()?;
                let count = r.u64()?;
                let flags = DepFlags::from_bits_truncate(r.u8()?);
                let ncarriers = r.u32()?;
                let mut carriers = BTreeSet::new();
                for _ in 0..ncarriers {
                    carriers.insert(r.u32()?);
                }
                edges.insert(
                    (dtype, source_loc, source_thread, var),
                    EdgeVal { count, flags, carriers },
                );
            }
            deps.insert(sink, edges);
        }
        let nloops = r.u64()?;
        let mut loops = BTreeMap::new();
        for _ in 0..nloops {
            let id = r.u32()?;
            loops.insert(
                id,
                LoopRecord {
                    begin: SourceLoc::unpack(r.u32()?),
                    end: SourceLoc::unpack(r.u32()?),
                    instances: r.u64()?,
                    total_iters: r.u64()?,
                },
            );
        }
        if !r.is_done() {
            return Err(WireError::Invalid("trailing bytes after dependence store"));
        }
        Ok(DepStore { deps, loops, deps_built, distinct, delta: None })
    }

    /// Approximate heap footprint for the memory accounting.
    pub fn memory_usage(&self) -> usize {
        use std::mem::size_of;
        let per_sink = size_of::<SinkKey>() + size_of::<BTreeMap<EdgeKey, EdgeVal>>() + 32;
        let per_edge = size_of::<EdgeKey>() + size_of::<EdgeVal>() + 32;
        self.deps.len() * per_sink
            + self.distinct as usize * per_edge
            + self.loops.len() * (size_of::<LoopRecord>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;

    fn sink(line: u32) -> SinkKey {
        SinkKey { loc: loc(1, line), thread: 0 }
    }

    #[test]
    fn merging_counts_identical_deps() {
        let mut s = DepStore::new();
        for _ in 0..1000 {
            s.add(sink(63), DepType::Raw, loc(1, 59), 0, 4, DepFlags::empty(), None);
        }
        assert_eq!(s.deps_built(), 1000);
        assert_eq!(s.merged_len(), 1);
        let (_, edges) = s.sinks().next().unwrap();
        assert_eq!(edges.values().next().unwrap().count, 1000);
    }

    #[test]
    fn distinct_edges_kept_apart() {
        let mut s = DepStore::new();
        s.add(sink(63), DepType::Raw, loc(1, 59), 0, 4, DepFlags::empty(), None);
        s.add(sink(63), DepType::Raw, loc(1, 67), 0, 4, DepFlags::empty(), None);
        s.add(sink(63), DepType::War, loc(1, 59), 0, 4, DepFlags::empty(), None);
        s.add(sink(64), DepType::Raw, loc(1, 59), 0, 4, DepFlags::empty(), None);
        assert_eq!(s.merged_len(), 4);
        assert_eq!(s.sinks().count(), 2);
    }

    #[test]
    fn flags_and_carriers_accumulate() {
        let mut s = DepStore::new();
        s.add(sink(5), DepType::Raw, loc(1, 5), 0, 1, DepFlags::INTRA_ITERATION, None);
        s.add(sink(5), DepType::Raw, loc(1, 5), 0, 1, DepFlags::LOOP_CARRIED, Some(3));
        s.add(sink(5), DepType::Raw, loc(1, 5), 0, 1, DepFlags::LOOP_CARRIED, Some(7));
        let (_, edges) = s.sinks().next().unwrap();
        let v = edges.values().next().unwrap();
        assert!(v.flags.contains(DepFlags::LOOP_CARRIED | DepFlags::INTRA_ITERATION));
        assert_eq!(v.carriers.iter().copied().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(v.count, 3);
    }

    #[test]
    fn merge_stores() {
        let mut a = DepStore::new();
        let mut b = DepStore::new();
        a.add(sink(1), DepType::Raw, loc(1, 1), 0, 1, DepFlags::empty(), None);
        b.add(sink(1), DepType::Raw, loc(1, 1), 0, 1, DepFlags::LOOP_CARRIED, Some(2));
        b.add(sink(2), DepType::Waw, loc(1, 1), 0, 1, DepFlags::empty(), None);
        b.record_loop(0, loc(1, 1), loc(1, 9), 100);
        a.record_loop(0, loc(1, 1), loc(1, 9), 100);
        a.merge(b);
        assert_eq!(a.merged_len(), 2);
        assert_eq!(a.deps_built(), 3);
        let r = a.loop_record(0).unwrap();
        assert_eq!(r.instances, 2);
        assert_eq!(r.total_iters, 200);
        let (_, edges) = a.sinks().next().unwrap();
        let v = edges.values().next().unwrap();
        assert_eq!(v.count, 2);
        assert!(v.flags.contains(DepFlags::LOOP_CARRIED));
    }

    #[test]
    fn save_load_roundtrips_and_is_deterministic() {
        let mut s = DepStore::new();
        s.add(sink(63), DepType::Raw, loc(1, 59), 0, 4, DepFlags::INTRA_ITERATION, None);
        s.add(sink(63), DepType::Raw, loc(1, 59), 0, 4, DepFlags::LOOP_CARRIED, Some(3));
        s.add(sink(63), DepType::War, loc(2, 67), 1, 5, DepFlags::REVERSED, Some(7));
        s.add(sink(64), DepType::Init, loc(1, 64), 0, 6, DepFlags::empty(), None);
        s.record_loop(3, loc(1, 10), loc(1, 20), 100);
        s.record_loop(7, loc(2, 1), loc(2, 9), 8);
        let mut out = ByteWriter::new();
        s.save(&mut out);
        let bytes = out.into_bytes();
        let t = DepStore::load(&bytes).unwrap();
        assert_eq!(t.deps_built(), s.deps_built());
        assert_eq!(t.merged_len(), s.merged_len());
        assert_eq!(
            t.dependences().map(|(d, v)| (d, v.clone())).collect::<Vec<_>>(),
            s.dependences().map(|(d, v)| (d, v.clone())).collect::<Vec<_>>()
        );
        assert_eq!(t.loop_record(3), s.loop_record(3));
        assert_eq!(t.loop_record(7), s.loop_record(7));
        let mut again = ByteWriter::new();
        t.save(&mut again);
        assert_eq!(again.into_bytes(), bytes, "resave must be byte-identical");
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(DepStore::load(&[1, 2, 3]).is_err(), "truncated");
        let mut out = ByteWriter::new();
        DepStore::new().save(&mut out);
        let mut bytes = out.into_bytes();
        bytes.push(0); // trailing byte
        assert!(DepStore::load(&bytes).is_err());
    }

    /// Folds a delta into a plain store using the merge rules (counts
    /// add, flags OR, carriers union) — the reference consumer the
    /// online-analysis subsystem mirrors.
    fn fold(target: &mut DepStore, delta: &AnalysisDelta) {
        target.apply_delta(delta);
    }

    fn snapshot(s: &DepStore) -> (Vec<(Dependence, EdgeVal)>, Vec<(LoopId, LoopRecord)>) {
        (
            s.dependences().map(|(d, v)| (d, v.clone())).collect(),
            s.loops().map(|(id, r)| (*id, r.clone())).collect(),
        )
    }

    #[test]
    fn delta_tracks_exact_movement() {
        let mut s = DepStore::new();
        s.enable_delta();
        assert!(s.delta_enabled());
        s.add(sink(1), DepType::Raw, loc(1, 1), 0, 7, DepFlags::INTRA_ITERATION, None);
        s.add(sink(1), DepType::Raw, loc(1, 1), 0, 7, DepFlags::LOOP_CARRIED, Some(3));
        s.record_loop(3, loc(1, 1), loc(1, 9), 10);
        let d = s.take_delta();
        assert_eq!(d.edges.len(), 1);
        assert_eq!(d.edges[0].count_delta, 2);
        assert!(d.edges[0].flags.contains(DepFlags::LOOP_CARRIED | DepFlags::INTRA_ITERATION));
        assert_eq!(d.loops.len(), 1);
        assert_eq!(d.loops[0].instances_delta, 1);
        assert_eq!(d.loops[0].iters_delta, 10);
        // Nothing moved since the drain.
        assert!(s.take_delta().is_empty());
        // Second interval ships only the new movement, but full flag/carrier sets.
        s.add(sink(1), DepType::Raw, loc(1, 1), 0, 7, DepFlags::empty(), Some(5));
        let d2 = s.take_delta();
        assert_eq!(d2.edges[0].count_delta, 1);
        assert!(d2.edges[0].flags.contains(DepFlags::LOOP_CARRIED));
        assert_eq!(d2.edges[0].carriers.iter().copied().collect::<Vec<_>>(), vec![3, 5]);
        assert!(d2.loops.is_empty());
    }

    #[test]
    fn enable_delta_mid_session_ships_full_catchup() {
        let mut s = DepStore::new();
        s.add(sink(1), DepType::Raw, loc(1, 1), 0, 7, DepFlags::LOOP_CARRIED, Some(2));
        s.add(sink(1), DepType::Raw, loc(1, 1), 0, 7, DepFlags::empty(), None);
        s.record_loop(2, loc(1, 1), loc(1, 9), 4);
        s.enable_delta(); // late enable: history must still be shipped
        s.add(sink(2), DepType::War, loc(1, 5), 1, 8, DepFlags::empty(), None);
        let mut mirror = DepStore::new();
        fold(&mut mirror, &s.take_delta());
        assert_eq!(snapshot(&mirror), snapshot(&s));
        // enable_delta is idempotent: re-enabling keeps pending baselines.
        s.add(sink(2), DepType::War, loc(1, 5), 1, 8, DepFlags::empty(), None);
        s.enable_delta();
        let d = s.take_delta();
        assert_eq!(d.edges.len(), 1);
        assert_eq!(d.edges[0].count_delta, 1);
        fold(&mut mirror, &d);
        assert_eq!(snapshot(&mirror), snapshot(&s));
    }

    #[test]
    fn folded_deltas_reconstruct_merged_stores() {
        // Deltas taken across merges of other stores (the parallel
        // engine's final merge) still fold into an identical mirror.
        let mut s = DepStore::new();
        s.enable_delta();
        s.add(sink(1), DepType::Raw, loc(1, 1), 0, 7, DepFlags::empty(), None);
        let mut mirror = DepStore::new();
        fold(&mut mirror, &s.take_delta());
        let mut other = DepStore::new();
        other.add(sink(1), DepType::Raw, loc(1, 1), 0, 7, DepFlags::LOOP_CARRIED, Some(9));
        other.add(sink(3), DepType::Waw, loc(2, 2), 1, 4, DepFlags::REVERSED, None);
        other.record_loop(9, loc(1, 1), loc(1, 3), 6);
        s.merge(other);
        fold(&mut mirror, &s.take_delta());
        assert_eq!(snapshot(&mirror), snapshot(&s));
    }

    #[test]
    fn delta_is_not_persisted_by_save() {
        let mut s = DepStore::new();
        s.enable_delta();
        s.add(sink(1), DepType::Raw, loc(1, 1), 0, 7, DepFlags::empty(), None);
        let mut out = ByteWriter::new();
        s.save(&mut out);
        let t = DepStore::load(&out.into_bytes()).unwrap();
        assert!(!t.delta_enabled(), "tracking restarts from enable_delta after rehydration");
    }

    #[test]
    fn dependences_iterator_roundtrips() {
        let mut s = DepStore::new();
        s.add(sink(63), DepType::Raw, loc(1, 59), 2, 4, DepFlags::REVERSED, Some(1));
        let all: Vec<_> = s.dependences().collect();
        assert_eq!(all.len(), 1);
        let (d, v) = &all[0];
        assert_eq!(d.sink.loc, loc(1, 63));
        assert_eq!(d.edge.source_thread, 2);
        assert_eq!(d.edge.carrier, Some(1));
        assert_eq!(v.count, 1);
    }
}
