//! The merged dependence store.
//!
//! "Finally, we merge identical dependences to reduce the memory overhead
//! and the time needed to write the dependences to disk. ... Merging
//! identical dependences decreased the average output file size for NAS
//! benchmarks from 6.1 GB to 53 KB, corresponding to an average reduction
//! by a factor of 10⁵." (Section III-B)
//!
//! The store is keyed by sink (aggregation as in Figure 1) and merges
//! edges by `(type, source, variable)`, accumulating a count, OR-ing
//! qualifier flags and collecting the set of loops the dependence was
//! observed carried for. `deps_built` counts every pre-merge record, so
//! the merge factor of experiment E9 is `deps_built / merged_len`.

use dp_types::{
    DepEdge, DepFlags, DepType, Dependence, LoopId, SinkKey, SourceLoc, ThreadId, VarId,
};
use std::collections::{BTreeMap, BTreeSet};

/// Merge key of an edge under one sink.
pub type EdgeKey = (DepType, SourceLoc, ThreadId, VarId);

/// Merged payload of one distinct dependence edge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeVal {
    /// Dynamic occurrences merged into this record.
    pub count: u64,
    /// Union of qualifier flags over all occurrences.
    pub flags: DepFlags,
    /// Loops for which at least one occurrence was loop-carried.
    pub carriers: BTreeSet<LoopId>,
}

/// Aggregated runtime record of one static loop (drives the `BGN`/`END`
/// lines of the report and Table II's iteration context).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRecord {
    /// Loop header location.
    pub begin: SourceLoc,
    /// Loop exit location.
    pub end: SourceLoc,
    /// Dynamic instances (entries) of the loop.
    pub instances: u64,
    /// Iterations summed over all instances (the number printed after
    /// `END loop`).
    pub total_iters: u64,
}

/// Duplicate-free dependence storage with deterministic iteration order.
#[derive(Debug, Clone, Default)]
pub struct DepStore {
    deps: BTreeMap<SinkKey, BTreeMap<EdgeKey, EdgeVal>>,
    loops: BTreeMap<LoopId, LoopRecord>,
    deps_built: u64,
    distinct: u64,
}

impl DepStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one dynamic dependence occurrence.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's record fields
    pub fn add(
        &mut self,
        sink: SinkKey,
        dtype: DepType,
        source_loc: SourceLoc,
        source_thread: ThreadId,
        var: VarId,
        flags: DepFlags,
        carrier: Option<LoopId>,
    ) {
        self.deps_built += 1;
        let entry = self
            .deps
            .entry(sink)
            .or_default()
            .entry((dtype, source_loc, source_thread, var))
            .or_insert_with(|| {
                self.distinct += 1;
                EdgeVal::default()
            });
        entry.count += 1;
        entry.flags |= flags;
        if let Some(l) = carrier {
            entry.carriers.insert(l);
        }
    }

    /// Records a finished loop instance.
    pub fn record_loop(&mut self, id: LoopId, begin: SourceLoc, end: SourceLoc, iters: u64) {
        let r = self.loops.entry(id).or_insert_with(|| LoopRecord {
            begin,
            end,
            instances: 0,
            total_iters: 0,
        });
        r.instances += 1;
        r.total_iters += iters;
    }

    /// Total dynamic dependences recorded (pre-merge) — the numerator of
    /// the E9 merge factor.
    pub fn deps_built(&self) -> u64 {
        self.deps_built
    }

    /// Number of distinct (merged) dependences.
    pub fn merged_len(&self) -> u64 {
        self.distinct
    }

    /// Sinks in deterministic order.
    pub fn sinks(&self) -> impl Iterator<Item = (&SinkKey, &BTreeMap<EdgeKey, EdgeVal>)> {
        self.deps.iter()
    }

    /// Loop records in deterministic order.
    pub fn loops(&self) -> impl Iterator<Item = (&LoopId, &LoopRecord)> {
        self.loops.iter()
    }

    /// Looks up one loop record.
    pub fn loop_record(&self, id: LoopId) -> Option<&LoopRecord> {
        self.loops.get(&id)
    }

    /// Flattens into [`Dependence`] values (the unit the accuracy
    /// evaluation compares).
    pub fn dependences(&self) -> impl Iterator<Item = (Dependence, &EdgeVal)> {
        self.deps.iter().flat_map(|(sink, edges)| {
            edges.iter().map(move |(&(dtype, source_loc, source_thread, var), val)| {
                (
                    Dependence {
                        sink: *sink,
                        edge: DepEdge {
                            dtype,
                            source_loc,
                            source_thread,
                            var,
                            carrier: val.carriers.iter().next().copied(),
                            flags: val.flags,
                        },
                    },
                    val,
                )
            })
        })
    }

    /// Merges another store into this one (the final merge of the local
    /// worker maps, Figure 2: "we merge the data from all local maps into
    /// a global map. This step incurs only minor overhead since the local
    /// maps are free of duplicates").
    pub fn merge(&mut self, other: DepStore) {
        for (sink, edges) in other.deps {
            let dst = self.deps.entry(sink).or_default();
            for (k, v) in edges {
                let e = dst.entry(k).or_insert_with(|| {
                    self.distinct += 1;
                    EdgeVal::default()
                });
                e.count += v.count;
                e.flags |= v.flags;
                e.carriers.extend(v.carriers);
            }
        }
        for (id, r) in other.loops {
            let dst = self.loops.entry(id).or_insert_with(|| LoopRecord {
                begin: r.begin,
                end: r.end,
                instances: 0,
                total_iters: 0,
            });
            dst.instances += r.instances;
            dst.total_iters += r.total_iters;
        }
        self.deps_built += other.deps_built;
    }

    /// Approximate heap footprint for the memory accounting.
    pub fn memory_usage(&self) -> usize {
        use std::mem::size_of;
        let per_sink = size_of::<SinkKey>() + size_of::<BTreeMap<EdgeKey, EdgeVal>>() + 32;
        let per_edge = size_of::<EdgeKey>() + size_of::<EdgeVal>() + 32;
        self.deps.len() * per_sink
            + self.distinct as usize * per_edge
            + self.loops.len() * (size_of::<LoopRecord>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;

    fn sink(line: u32) -> SinkKey {
        SinkKey { loc: loc(1, line), thread: 0 }
    }

    #[test]
    fn merging_counts_identical_deps() {
        let mut s = DepStore::new();
        for _ in 0..1000 {
            s.add(sink(63), DepType::Raw, loc(1, 59), 0, 4, DepFlags::empty(), None);
        }
        assert_eq!(s.deps_built(), 1000);
        assert_eq!(s.merged_len(), 1);
        let (_, edges) = s.sinks().next().unwrap();
        assert_eq!(edges.values().next().unwrap().count, 1000);
    }

    #[test]
    fn distinct_edges_kept_apart() {
        let mut s = DepStore::new();
        s.add(sink(63), DepType::Raw, loc(1, 59), 0, 4, DepFlags::empty(), None);
        s.add(sink(63), DepType::Raw, loc(1, 67), 0, 4, DepFlags::empty(), None);
        s.add(sink(63), DepType::War, loc(1, 59), 0, 4, DepFlags::empty(), None);
        s.add(sink(64), DepType::Raw, loc(1, 59), 0, 4, DepFlags::empty(), None);
        assert_eq!(s.merged_len(), 4);
        assert_eq!(s.sinks().count(), 2);
    }

    #[test]
    fn flags_and_carriers_accumulate() {
        let mut s = DepStore::new();
        s.add(sink(5), DepType::Raw, loc(1, 5), 0, 1, DepFlags::INTRA_ITERATION, None);
        s.add(sink(5), DepType::Raw, loc(1, 5), 0, 1, DepFlags::LOOP_CARRIED, Some(3));
        s.add(sink(5), DepType::Raw, loc(1, 5), 0, 1, DepFlags::LOOP_CARRIED, Some(7));
        let (_, edges) = s.sinks().next().unwrap();
        let v = edges.values().next().unwrap();
        assert!(v.flags.contains(DepFlags::LOOP_CARRIED | DepFlags::INTRA_ITERATION));
        assert_eq!(v.carriers.iter().copied().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(v.count, 3);
    }

    #[test]
    fn merge_stores() {
        let mut a = DepStore::new();
        let mut b = DepStore::new();
        a.add(sink(1), DepType::Raw, loc(1, 1), 0, 1, DepFlags::empty(), None);
        b.add(sink(1), DepType::Raw, loc(1, 1), 0, 1, DepFlags::LOOP_CARRIED, Some(2));
        b.add(sink(2), DepType::Waw, loc(1, 1), 0, 1, DepFlags::empty(), None);
        b.record_loop(0, loc(1, 1), loc(1, 9), 100);
        a.record_loop(0, loc(1, 1), loc(1, 9), 100);
        a.merge(b);
        assert_eq!(a.merged_len(), 2);
        assert_eq!(a.deps_built(), 3);
        let r = a.loop_record(0).unwrap();
        assert_eq!(r.instances, 2);
        assert_eq!(r.total_iters, 200);
        let (_, edges) = a.sinks().next().unwrap();
        let v = edges.values().next().unwrap();
        assert_eq!(v.count, 2);
        assert!(v.flags.contains(DepFlags::LOOP_CARRIED));
    }

    #[test]
    fn dependences_iterator_roundtrips() {
        let mut s = DepStore::new();
        s.add(sink(63), DepType::Raw, loc(1, 59), 2, 4, DepFlags::REVERSED, Some(1));
        let all: Vec<_> = s.dependences().collect();
        assert_eq!(all.len(), 1);
        let (d, v) = &all[0];
        assert_eq!(d.sink.loc, loc(1, 63));
        assert_eq!(d.edge.source_thread, 2);
        assert_eq!(d.edge.carrier, Some(1));
        assert_eq!(v.count, 1);
    }
}
