//! The run watchdog: turns hangs into resumable runs.
//!
//! A background thread watches a shared progress counter that the feed
//! loop bumps as records flow. When the counter stands still for a full
//! deadline, the watchdog *fires*: it sets a sticky flag the feed loop
//! polls between records, giving it the chance to write an emergency
//! checkpoint and exit with the documented watchdog exit code. If the
//! feed loop never reacts — it is the thing that is stuck — a second
//! unheeded deadline triggers the hard-timeout action supplied by the
//! caller (the CLI passes `std::process::exit(EXIT_WATCHDOG)`), so a
//! wedged process still dies with a meaningful code and a resumable
//! checkpoint from the last healthy barrier on disk.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Monitors a progress counter and escalates when it stalls.
pub struct Watchdog {
    progress: Arc<AtomicU64>,
    fired: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the monitor thread. `deadline` is the no-progress window
    /// after which the watchdog fires; `on_hard_timeout` runs if a
    /// *second* deadline passes with the fired flag unheeded and still
    /// no progress.
    pub fn spawn(deadline: Duration, on_hard_timeout: impl FnOnce() + Send + 'static) -> Self {
        let progress = Arc::new(AtomicU64::new(0));
        let fired = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let progress = progress.clone();
            let fired = fired.clone();
            let stop = stop.clone();
            std::thread::spawn(move || monitor(deadline, &progress, &fired, &stop, on_hard_timeout))
        };
        Watchdog { progress, fired, stop, handle: Some(handle) }
    }

    /// Records one unit of progress (cheap: a relaxed increment).
    #[inline]
    pub fn tick(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// The shared counter, for feeding progress from another thread.
    pub fn progress_handle(&self) -> Arc<AtomicU64> {
        self.progress.clone()
    }

    /// Whether the watchdog has fired (sticky). The feed loop polls
    /// this between records and, when set, writes an emergency
    /// checkpoint and exits.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// Stops the monitor thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn monitor(
    deadline: Duration,
    progress: &AtomicU64,
    fired: &AtomicBool,
    stop: &AtomicBool,
    on_hard_timeout: impl FnOnce(),
) {
    let poll = (deadline / 8).clamp(Duration::from_millis(1), Duration::from_millis(50));
    let mut last = progress.load(Ordering::Relaxed);
    let mut last_change = Instant::now();
    let mut fired_at: Option<Instant> = None;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(poll);
        let cur = progress.load(Ordering::Relaxed);
        if cur != last {
            last = cur;
            last_change = Instant::now();
            // Progress resumed: disarm the hard timeout (the fired flag
            // stays sticky — the feed loop still gets to checkpoint and
            // exit cleanly at its next poll).
            fired_at = None;
            continue;
        }
        let now = Instant::now();
        if fired.load(Ordering::Acquire) {
            if let Some(t) = fired_at {
                if now.duration_since(t) >= deadline {
                    // The feed loop never reacted to the fired flag: it
                    // is the stuck party. Escalate.
                    on_hard_timeout();
                    return;
                }
            }
        } else if now.duration_since(last_change) >= deadline {
            fired.store(true, Ordering::Release);
            fired_at = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_progress_never_fires() {
        let hard = Arc::new(AtomicBool::new(false));
        let h = hard.clone();
        let wd = Watchdog::spawn(Duration::from_millis(60), move || {
            h.store(true, Ordering::SeqCst);
        });
        let end = Instant::now() + Duration::from_millis(250);
        while Instant::now() < end {
            wd.tick();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!wd.fired());
        wd.stop();
        assert!(!hard.load(Ordering::SeqCst));
    }

    #[test]
    fn stall_fires_then_escalates_to_hard_timeout() {
        let hard = Arc::new(AtomicBool::new(false));
        let h = hard.clone();
        let wd = Watchdog::spawn(Duration::from_millis(40), move || {
            h.store(true, Ordering::SeqCst);
        });
        wd.tick();
        // First deadline: fired flag.
        let end = Instant::now() + Duration::from_secs(2);
        while !wd.fired() && Instant::now() < end {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(wd.fired(), "watchdog never fired on a stalled counter");
        // Second unheeded deadline: hard timeout.
        let end = Instant::now() + Duration::from_secs(2);
        while !hard.load(Ordering::SeqCst) && Instant::now() < end {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(hard.load(Ordering::SeqCst), "hard timeout never ran");
    }

    #[test]
    fn progress_after_firing_disarms_hard_timeout() {
        let hard = Arc::new(AtomicBool::new(false));
        let h = hard.clone();
        let wd = Watchdog::spawn(Duration::from_millis(40), move || {
            h.store(true, Ordering::SeqCst);
        });
        let end = Instant::now() + Duration::from_secs(2);
        while !wd.fired() && Instant::now() < end {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(wd.fired());
        // Resume progress: the sticky flag stays, the escalation stops.
        let end = Instant::now() + Duration::from_millis(200);
        while Instant::now() < end {
            wd.tick();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(wd.fired(), "fired flag is sticky");
        assert!(!hard.load(Ordering::SeqCst), "hard timeout must disarm on progress");
        wd.stop();
    }

    #[test]
    fn stop_prevents_firing() {
        let wd = Watchdog::spawn(Duration::from_millis(30), || {
            panic!("hard timeout after stop");
        });
        wd.stop();
        std::thread::sleep(Duration::from_millis(120));
    }
}
