//! Textual dependence reports in the paper's output format.
//!
//! Sequential targets (Figure 1):
//!
//! ```text
//! 1:60 BGN loop
//! 1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}
//! 1:63 NOM {RAW 1:59|temp1} {RAW 1:67|temp1}
//! 1:74 END loop 1200
//! ```
//!
//! Multi-threaded targets (Figure 3) add thread ids to both endpoints:
//!
//! ```text
//! 4:58|2 NOM {WAR 4:77|2|iter}
//! ```

use crate::result::ProfileResult;
use crate::store::EdgeKey;
use dp_types::{DepType, Interner, SourceLoc, ThreadId};
use std::fmt::Write as _;

#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum RowKind {
    Begin,
    Nom(ThreadId),
    End(u64),
}

/// Renders the dependence report. `show_threads` selects the Figure 3
/// format (thread ids on sinks and sources).
pub fn render(result: &ProfileResult, interner: &Interner, show_threads: bool) -> String {
    let mut rows: Vec<(SourceLoc, RowKind, String)> = Vec::new();

    for (_, rec) in result.deps.loops() {
        rows.push((rec.begin, RowKind::Begin, String::new()));
        rows.push((rec.end, RowKind::End(rec.total_iters), String::new()));
    }

    for (sink, edges) in result.deps.sinks() {
        let mut line = String::new();
        for (&(dtype, source_loc, source_thread, var), val) in edges {
            line.push(' ');
            fmt_edge(&mut line, dtype, source_loc, source_thread, var, interner, show_threads);
            let _ = val;
        }
        rows.push((sink.loc, RowKind::Nom(sink.thread), line));
    }

    rows.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));

    let mut out = String::new();
    for (loc, kind, payload) in rows {
        match kind {
            RowKind::Begin => {
                let _ = writeln!(out, "{loc} BGN loop");
            }
            RowKind::Nom(thread) => {
                if show_threads {
                    let _ = writeln!(out, "{loc}|{thread} NOM{payload}");
                } else {
                    let _ = writeln!(out, "{loc} NOM{payload}");
                }
            }
            RowKind::End(iters) => {
                let _ = writeln!(out, "{loc} END loop {iters}");
            }
        }
    }
    out
}

fn fmt_edge(
    out: &mut String,
    dtype: DepType,
    source_loc: SourceLoc,
    source_thread: ThreadId,
    var: u32,
    interner: &Interner,
    show_threads: bool,
) {
    if dtype == DepType::Init {
        out.push_str("{INIT *}");
        return;
    }
    let name = interner.get(var).unwrap_or("?");
    if show_threads {
        let _ = write!(out, "{{{dtype} {source_loc}|{source_thread}|{name}}}");
    } else {
        let _ = write!(out, "{{{dtype} {source_loc}|{name}}}");
    }
}

/// Renders a compact summary header (program, counts, memory) used by the
/// experiment harness above each report.
pub fn summary(result: &ProfileResult) -> String {
    format!(
        "accesses={} deps_built={} deps_merged={} merge_factor={:.0} workers={} memory={}B",
        result.stats.accesses,
        result.stats.deps_built,
        result.stats.deps_merged,
        result.merge_factor(),
        result.workers,
        result.memory.total(),
    )
}

/// Convenience: the `EdgeKey` type re-exported for callers that format
/// edges themselves.
pub type Edge = EdgeKey;

/// Per-variable digest: for each variable, how many distinct dependences
/// of each type involve it and whether any is loop-carried — the
/// variable-centric view parallelization assistants present next to the
/// statement-centric report.
pub fn variables(result: &ProfileResult, interner: &Interner) -> String {
    use dp_types::DepFlags;
    use std::collections::BTreeMap;
    #[derive(Default)]
    struct Row {
        raw: u64,
        war: u64,
        waw: u64,
        carried: bool,
    }
    let mut per: BTreeMap<&str, Row> = BTreeMap::new();
    for (d, _) in result.deps.dependences() {
        if d.edge.dtype == DepType::Init {
            continue;
        }
        let name = interner.get(d.edge.var).unwrap_or("?");
        let row = per.entry(name).or_default();
        match d.edge.dtype {
            DepType::Raw => row.raw += 1,
            DepType::War => row.war += 1,
            DepType::Waw => row.waw += 1,
            DepType::Init => {}
        }
        row.carried |= d.edge.flags.contains(DepFlags::LOOP_CARRIED);
    }
    let mut out = format!(
        "{:<20} {:>6} {:>6} {:>6}  carried
",
        "variable", "RAW", "WAR", "WAW"
    );
    for (name, r) in per {
        let _ = writeln!(
            out,
            "{name:<20} {:>6} {:>6} {:>6}  {}",
            r.raw,
            r.war,
            r.waw,
            if r.carried { "yes" } else { "no" }
        );
    }
    out
}

/// Machine-readable CSV export of the merged dependences:
/// `type,sink,sink_thread,source,source_thread,var,count,carried,reversed`.
pub fn to_csv(result: &ProfileResult, interner: &Interner) -> String {
    use dp_types::DepFlags;
    let mut out =
        String::from("type,sink,sink_thread,source,source_thread,var,count,carried,reversed\n");
    for (d, v) in result.deps.dependences() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            d.edge.dtype,
            d.sink.loc,
            d.sink.thread,
            d.edge.source_loc,
            d.edge.source_thread,
            interner.get(d.edge.var).unwrap_or("?"),
            v.count,
            d.edge.flags.contains(DepFlags::LOOP_CARRIED),
            d.edge.flags.contains(DepFlags::REVERSED),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialProfiler;
    use dp_types::{loc::loc, MemAccess, TraceEvent};

    #[test]
    fn figure1_style_output() {
        let mut interner = Interner::new();
        let temp1 = interner.intern("temp1");
        let mut p = SequentialProfiler::perfect();
        p.on_event(&TraceEvent::LoopBegin { loop_id: 0, loc: loc(1, 60), thread: 0, ts: 1 });
        p.on_event(&TraceEvent::LoopIter { loop_id: 0, iter: 0, thread: 0, ts: 2 });
        p.on_event(&TraceEvent::Access(MemAccess::write(0x8, 3, loc(1, 59), temp1, 0)));
        p.on_event(&TraceEvent::Access(MemAccess::read(0x8, 4, loc(1, 63), temp1, 0)));
        p.on_event(&TraceEvent::LoopEnd {
            loop_id: 0,
            loc: loc(1, 74),
            iters: 1200,
            thread: 0,
            ts: 5,
        });
        let r = p.finish();
        let text = render(&r, &interner, false);
        assert!(text.contains("1:60 BGN loop"), "{text}");
        assert!(text.contains("1:63 NOM {RAW 1:59|temp1}"), "{text}");
        assert!(text.contains("1:74 END loop 1200"), "{text}");
        assert!(text.contains("1:59 NOM {INIT *}"), "{text}");
    }

    #[test]
    fn figure3_style_output_with_threads() {
        let mut interner = Interner::new();
        let iter = interner.intern("iter");
        let mut p = SequentialProfiler::perfect();
        p.on_event(&TraceEvent::Access(MemAccess {
            addr: 0x10,
            ts: 1,
            loc: loc(4, 77),
            var: iter,
            thread: 2,
            kind: dp_types::AccessKind::Read,
        }));
        p.on_event(&TraceEvent::Access(MemAccess {
            addr: 0x10,
            ts: 2,
            loc: loc(4, 58),
            var: iter,
            thread: 2,
            kind: dp_types::AccessKind::Write,
        }));
        // Write with empty write-sig is INIT; write again for WAR/WAW.
        p.on_event(&TraceEvent::Access(MemAccess {
            addr: 0x10,
            ts: 3,
            loc: loc(4, 58),
            var: iter,
            thread: 2,
            kind: dp_types::AccessKind::Write,
        }));
        let r = p.finish();
        let text = render(&r, &interner, true);
        assert!(text.contains("4:58|2 NOM"), "{text}");
        assert!(text.contains("{WAR 4:77|2|iter}"), "{text}");
    }

    #[test]
    fn variable_digest_counts_types() {
        let mut interner = Interner::new();
        let x = interner.intern("x");
        let y = interner.intern("y");
        let mut p = SequentialProfiler::perfect();
        p.on_event(&TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), x, 0)));
        p.on_event(&TraceEvent::Access(MemAccess::read(0x8, 2, loc(1, 2), x, 0)));
        p.on_event(&TraceEvent::Access(MemAccess::write(0x10, 3, loc(1, 3), y, 0)));
        p.on_event(&TraceEvent::Access(MemAccess::write(0x10, 4, loc(1, 4), y, 0)));
        let r = p.finish();
        let v = variables(&r, &interner);
        assert!(v.lines().any(|l| l.starts_with('x') && l.contains(" 1 ")), "{v}");
        assert!(v.lines().any(|l| l.starts_with('y')), "{v}");
    }

    #[test]
    fn csv_export_roundtrips_fields() {
        let mut interner = Interner::new();
        let x = interner.intern("x");
        let mut p = SequentialProfiler::perfect();
        p.on_event(&TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 10), x, 0)));
        p.on_event(&TraceEvent::Access(MemAccess::read(0x8, 2, loc(1, 11), x, 0)));
        let r = p.finish();
        let csv = to_csv(&r, &interner);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("type,sink"));
        assert!(csv.contains("RAW,1:11,0,1:10,0,x,1,false,false"), "{csv}");
    }

    #[test]
    fn summary_contains_counts() {
        let p = SequentialProfiler::perfect();
        let r = p.finish();
        let s = summary(&r);
        assert!(s.contains("accesses=0"));
        assert!(s.contains("workers=0"));
    }
}
