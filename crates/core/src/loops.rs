//! Runtime control-flow tracking and loop-carried classification.
//!
//! Each engine (or worker) maintains, per target thread, the stack of
//! dynamically active loops with three timestamps per level: instance
//! entry (`begin_ts`), start of the current iteration (`iter_start_ts`)
//! and the running iteration count. When a dependence is built, the sink's
//! stack answers the question the parallelism-discovery application needs
//! (Section VII-A): *which enclosing loop, if any, does this dependence
//! cross an iteration boundary of?*
//!
//! For a source access with timestamp `s` and the active loop `L` of the
//! sink's thread:
//!
//! - `s ≥ iter_start_ts(L)` for the innermost loop → both accesses lie in
//!   the same iteration (`INTRA_ITERATION`);
//! - `begin_ts(L) ≤ s < iter_start_ts(L)` → the source ran in an earlier
//!   iteration of the *same instance* of `L`: the dependence is
//!   **loop-carried** with carrier `L` (innermost such `L` wins);
//! - `s < begin_ts(L)` for every active `L` → the dependence enters the
//!   loop nest from outside and constrains no loop.

use dp_types::{ByteReader, ByteWriter, LoopId, SourceLoc, ThreadId, Timestamp, WireError};

/// One active loop level.
#[derive(Debug, Clone, Copy)]
struct ActiveLoop {
    loop_id: LoopId,
    begin: SourceLoc,
    end: SourceLoc,
    begin_ts: Timestamp,
    iter_start_ts: Timestamp,
    iters: u64,
}

/// Classification of a dependence source relative to the sink's loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarrierInfo {
    /// Source in the current iteration of the innermost active loop (or no
    /// active loop and nothing to say).
    IntraIteration,
    /// Source in an earlier iteration of the given (innermost qualifying)
    /// loop instance.
    Carried(LoopId),
    /// Source predates every active loop instance.
    FromOutside,
}

/// Per-thread stacks of active loops. Engines for sequential targets only
/// ever see thread 0; the structure still supports many threads so the
/// same code serves every engine.
#[derive(Debug, Default)]
pub struct LoopTracker {
    stacks: Vec<Vec<ActiveLoop>>, // indexed by ThreadId
}

impl LoopTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn stack_mut(&mut self, t: ThreadId) -> &mut Vec<ActiveLoop> {
        let i = t as usize;
        if self.stacks.len() <= i {
            self.stacks.resize_with(i + 1, Vec::new);
        }
        &mut self.stacks[i]
    }

    /// Handles a `LoopBegin` event. The paper's `BGN loop` line location is
    /// taken from `loc`; `end_hint` may equal `loc` and is patched by
    /// [`LoopTracker::end`].
    pub fn begin(&mut self, t: ThreadId, loop_id: LoopId, loc: SourceLoc, ts: Timestamp) {
        self.stack_mut(t).push(ActiveLoop {
            loop_id,
            begin: loc,
            end: loc,
            begin_ts: ts,
            iter_start_ts: ts,
            iters: 0,
        });
    }

    /// Handles a `LoopIter` event.
    pub fn iter(&mut self, t: ThreadId, loop_id: LoopId, ts: Timestamp) {
        if let Some(top) = self.stack_mut(t).last_mut() {
            if top.loop_id == loop_id {
                top.iter_start_ts = ts;
                top.iters += 1;
            }
        }
    }

    /// Handles a `LoopEnd` event; returns `(begin, iters)` of the finished
    /// instance for the loop record.
    pub fn end(
        &mut self,
        t: ThreadId,
        loop_id: LoopId,
        end_loc: SourceLoc,
    ) -> Option<(SourceLoc, u64)> {
        let stack = self.stack_mut(t);
        if stack.last().map(|l| l.loop_id) == Some(loop_id) {
            let mut top = stack.pop().unwrap();
            top.end = end_loc;
            Some((top.begin, top.iters))
        } else {
            None
        }
    }

    /// Classifies a dependence whose sink runs now on thread `t` and whose
    /// source carries timestamp `source_ts`.
    pub fn classify(&self, t: ThreadId, source_ts: Timestamp) -> CarrierInfo {
        let Some(stack) = self.stacks.get(t as usize) else {
            return CarrierInfo::IntraIteration;
        };
        // Innermost first.
        for l in stack.iter().rev() {
            if source_ts >= l.iter_start_ts {
                return CarrierInfo::IntraIteration;
            }
            if source_ts >= l.begin_ts {
                return CarrierInfo::Carried(l.loop_id);
            }
        }
        if stack.is_empty() {
            CarrierInfo::IntraIteration
        } else {
            CarrierInfo::FromOutside
        }
    }

    /// Depth of the active loop nest on thread `t` (diagnostics).
    pub fn depth(&self, t: ThreadId) -> usize {
        self.stacks.get(t as usize).map_or(0, Vec::len)
    }

    /// Serializes every thread's active-loop stack for a checkpoint, so
    /// carried classification after a resume sees the same loop nest and
    /// timestamps an uninterrupted run would.
    pub fn save(&self, out: &mut ByteWriter) {
        out.u32(self.stacks.len() as u32);
        for s in &self.stacks {
            out.u32(s.len() as u32);
            for l in s {
                out.u32(l.loop_id);
                out.u32(l.begin.pack());
                out.u32(l.end.pack());
                out.u64(l.begin_ts);
                out.u64(l.iter_start_ts);
                out.u64(l.iters);
            }
        }
    }

    /// Rebuilds a tracker previously produced by [`LoopTracker::save`].
    pub fn load(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        let nthreads = r.u32()?;
        let mut stacks = Vec::with_capacity(nthreads as usize);
        for _ in 0..nthreads {
            let depth = r.u32()?;
            let mut stack = Vec::with_capacity(depth as usize);
            for _ in 0..depth {
                stack.push(ActiveLoop {
                    loop_id: r.u32()?,
                    begin: SourceLoc::unpack(r.u32()?),
                    end: SourceLoc::unpack(r.u32()?),
                    begin_ts: r.u64()?,
                    iter_start_ts: r.u64()?,
                    iters: r.u64()?,
                });
            }
            stacks.push(stack);
        }
        if !r.is_done() {
            return Err(WireError::Invalid("trailing bytes after loop tracker"));
        }
        Ok(LoopTracker { stacks })
    }

    /// Approximate heap footprint.
    pub fn memory_usage(&self) -> usize {
        self.stacks
            .iter()
            .map(|s| s.capacity() * std::mem::size_of::<ActiveLoop>() + 24)
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;

    #[test]
    fn single_loop_classification() {
        let mut t = LoopTracker::new();
        // program: ts 1..: write A (ts 1); loop begins ts 2; iter0 ts 3;
        // access ts 4 (write B); iter1 ts 5; access ts 6 reads B.
        t.begin(0, 0, loc(1, 10), 2);
        t.iter(0, 0, 3);
        // within iter 0, source ts 1 is from before the loop:
        assert_eq!(t.classify(0, 1), CarrierInfo::FromOutside);
        // source ts 4 (this iteration):
        assert_eq!(t.classify(0, 4), CarrierInfo::IntraIteration);
        t.iter(0, 0, 5);
        // now source ts 4 is in the previous iteration → carried:
        assert_eq!(t.classify(0, 4), CarrierInfo::Carried(0));
        // and pre-loop source is still FromOutside:
        assert_eq!(t.classify(0, 1), CarrierInfo::FromOutside);
        let (begin, iters) = t.end(0, 0, loc(1, 20)).unwrap();
        assert_eq!(begin, loc(1, 10));
        assert_eq!(iters, 2);
        assert_eq!(t.depth(0), 0);
    }

    #[test]
    fn nested_outer_carried() {
        let mut t = LoopTracker::new();
        t.begin(0, 0, loc(1, 1), 10); // outer
        t.iter(0, 0, 11); // outer iter 0
        t.begin(0, 1, loc(1, 2), 12); // inner instance 1
        t.iter(0, 1, 13);
        // access at ts 14 inside inner
        t.end(0, 1, loc(1, 5));
        t.iter(0, 0, 20); // outer iter 1
        t.begin(0, 1, loc(1, 2), 21); // inner instance 2
        t.iter(0, 1, 22);
        // source ts 14: previous *outer* iteration; inner instance is new,
        // so carried by the outer loop.
        assert_eq!(t.classify(0, 14), CarrierInfo::Carried(0));
        // source ts 21.5-ish (same inner iteration):
        assert_eq!(t.classify(0, 23), CarrierInfo::IntraIteration);
        t.iter(0, 1, 25);
        // source ts 23: previous inner iteration → carried by inner.
        assert_eq!(t.classify(0, 23), CarrierInfo::Carried(1));
    }

    #[test]
    fn no_active_loop_is_intra() {
        let t = LoopTracker::new();
        assert_eq!(t.classify(0, 5), CarrierInfo::IntraIteration);
        assert_eq!(t.classify(7, 5), CarrierInfo::IntraIteration);
    }

    #[test]
    fn per_thread_stacks_independent() {
        let mut t = LoopTracker::new();
        t.begin(0, 0, loc(1, 1), 1);
        t.iter(0, 0, 2);
        t.begin(3, 1, loc(1, 9), 1);
        t.iter(3, 1, 5);
        t.iter(0, 0, 9);
        assert_eq!(t.classify(0, 4), CarrierInfo::Carried(0));
        assert_eq!(t.classify(3, 6), CarrierInfo::IntraIteration);
        assert_eq!(t.depth(0), 1);
        assert_eq!(t.depth(3), 1);
    }

    #[test]
    fn save_load_preserves_mid_loop_classification() {
        let mut t = LoopTracker::new();
        t.begin(0, 0, loc(1, 1), 10); // outer
        t.iter(0, 0, 11);
        t.begin(0, 1, loc(1, 2), 12); // inner, still active
        t.iter(0, 1, 13);
        t.iter(0, 1, 20);
        let mut out = ByteWriter::new();
        t.save(&mut out);
        let bytes = out.into_bytes();
        let mut u = LoopTracker::load(&bytes).unwrap();
        assert_eq!(u.depth(0), 2);
        for ts in [5u64, 11, 14, 21] {
            assert_eq!(u.classify(0, ts), t.classify(0, ts), "ts {ts}");
        }
        // Ending the inner loop on the restored tracker reports the same
        // instance data as on the original.
        assert_eq!(u.end(0, 1, loc(1, 5)), t.end(0, 1, loc(1, 5)));
        let mut again = ByteWriter::new();
        LoopTracker::load(&bytes).unwrap().save(&mut again);
        assert_eq!(again.into_bytes(), bytes);
    }

    #[test]
    fn load_rejects_truncation() {
        let mut t = LoopTracker::new();
        t.begin(0, 0, loc(1, 1), 1);
        let mut out = ByteWriter::new();
        t.save(&mut out);
        let bytes = out.into_bytes();
        assert!(LoopTracker::load(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn mismatched_end_is_ignored() {
        let mut t = LoopTracker::new();
        t.begin(0, 0, loc(1, 1), 1);
        assert!(t.end(0, 99, loc(1, 2)).is_none());
        assert_eq!(t.depth(0), 1);
    }
}
