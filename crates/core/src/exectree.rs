//! The dynamic execution tree (Section VIII: "the framework reorganizes
//! profiled data into multiple representations, including dynamic
//! execution tree, call tree, ...").
//!
//! Nodes are dynamic nesting contexts — function calls and loop
//! instances — with entry counts; children are keyed by what was entered,
//! so repeated entries of the same construct merge into one node with a
//! count, keeping the tree finite regardless of run length. Per-thread
//! roots give parallel targets one tree per target thread.
//!
//! The *call tree* is this tree restricted to function nodes
//! ([`ExecTree::call_tree`]).

use dp_types::{LoopId, ThreadId};
use std::collections::BTreeMap;

/// What a node of the execution tree represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExecNodeKind {
    /// A function call (static function id).
    Call(u32),
    /// A loop instance (static loop id).
    Loop(LoopId),
}

/// One merged node of the execution tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecNode {
    /// Dynamic entries merged into this node.
    pub count: u64,
    /// Children, keyed by construct.
    pub children: BTreeMap<ExecNodeKind, ExecNode>,
}

impl ExecNode {
    fn merge_from(&mut self, other: &ExecNode) {
        self.count += other.count;
        for (k, v) in &other.children {
            self.children.entry(*k).or_default().merge_from(v);
        }
    }

    /// Total nodes beneath (and including) this node.
    pub fn size(&self) -> usize {
        1 + self.children.values().map(ExecNode::size).sum::<usize>()
    }

    /// Maximum nesting depth beneath this node.
    pub fn depth(&self) -> usize {
        1 + self.children.values().map(ExecNode::depth).max().unwrap_or(0)
    }
}

/// Per-thread dynamic execution trees with the live recording stacks.
#[derive(Debug, Clone, Default)]
pub struct ExecTree {
    roots: BTreeMap<ThreadId, ExecNode>,
    stacks: BTreeMap<ThreadId, Vec<ExecNodeKind>>, // current path per thread
}

impl ExecTree {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records entry into a construct on thread `t`.
    pub fn enter(&mut self, t: ThreadId, kind: ExecNodeKind) {
        let stack = self.stacks.entry(t).or_default();
        stack.push(kind);
        let path = stack.clone();
        let mut node = self.roots.entry(t).or_default();
        for k in path {
            node = node.children.entry(k).or_default();
        }
        node.count += 1;
    }

    /// Records exit from the innermost construct on thread `t` (the kind
    /// is checked so unbalanced streams cannot corrupt the tree).
    pub fn exit(&mut self, t: ThreadId, kind: ExecNodeKind) {
        if let Some(stack) = self.stacks.get_mut(&t) {
            if stack.last() == Some(&kind) {
                stack.pop();
            }
        }
    }

    /// Per-thread root nodes (recording stacks need not be empty).
    pub fn roots(&self) -> impl Iterator<Item = (&ThreadId, &ExecNode)> {
        self.roots.iter()
    }

    /// Merges another tree (workers' local trees → global tree).
    pub fn merge(&mut self, other: &ExecTree) {
        for (t, r) in &other.roots {
            self.roots.entry(*t).or_default().merge_from(r);
        }
    }

    /// The call tree: the execution tree with loop nodes spliced out
    /// (children of a loop attach to the nearest enclosing call).
    pub fn call_tree(&self) -> BTreeMap<ThreadId, ExecNode> {
        fn splice(node: &ExecNode, out: &mut ExecNode) {
            for (k, v) in &node.children {
                match k {
                    ExecNodeKind::Call(_) => {
                        let child = out.children.entry(*k).or_default();
                        child.count += v.count;
                        splice(v, child);
                    }
                    ExecNodeKind::Loop(_) => splice(v, out),
                }
            }
        }
        self.roots
            .iter()
            .map(|(t, r)| {
                let mut out = ExecNode { count: r.count.max(1), children: BTreeMap::new() };
                splice(r, &mut out);
                (*t, out)
            })
            .collect()
    }

    /// Plain-text rendering with `names(kind) -> label`.
    pub fn render(&self, mut names: impl FnMut(ExecNodeKind) -> String) -> String {
        fn walk(
            node: &ExecNode,
            kind: Option<ExecNodeKind>,
            depth: usize,
            names: &mut impl FnMut(ExecNodeKind) -> String,
            out: &mut String,
        ) {
            if let Some(k) = kind {
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!("{} x{}\n", names(k), node.count));
            }
            for (k, v) in &node.children {
                walk(v, Some(*k), depth + 1, names, out);
            }
        }
        let mut out = String::new();
        for (t, r) in &self.roots {
            out.push_str(&format!("thread {t}:\n"));
            walk(r, None, 0, &mut names, &mut out);
        }
        out
    }

    /// Approximate heap footprint.
    pub fn memory_usage(&self) -> usize {
        fn sz(n: &ExecNode) -> usize {
            std::mem::size_of::<ExecNode>()
                + n.children
                    .values()
                    .map(|c| sz(c) + std::mem::size_of::<ExecNodeKind>() + 24)
                    .sum::<usize>()
        }
        self.roots.values().map(sz).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_entries_merge() {
        let mut t = ExecTree::new();
        for _ in 0..3 {
            t.enter(0, ExecNodeKind::Loop(1));
            t.enter(0, ExecNodeKind::Call(2));
            t.exit(0, ExecNodeKind::Call(2));
            t.exit(0, ExecNodeKind::Loop(1));
        }
        let (_, root) = t.roots().next().unwrap();
        assert_eq!(root.children.len(), 1);
        let l = &root.children[&ExecNodeKind::Loop(1)];
        assert_eq!(l.count, 3);
        assert_eq!(l.children[&ExecNodeKind::Call(2)].count, 3);
        assert_eq!(root.size(), 3);
        assert_eq!(root.depth(), 3);
    }

    #[test]
    fn per_thread_roots() {
        let mut t = ExecTree::new();
        t.enter(1, ExecNodeKind::Call(0));
        t.enter(2, ExecNodeKind::Call(0));
        assert_eq!(t.roots().count(), 2);
    }

    #[test]
    fn call_tree_splices_loops() {
        let mut t = ExecTree::new();
        t.enter(0, ExecNodeKind::Call(7));
        t.enter(0, ExecNodeKind::Loop(1));
        t.enter(0, ExecNodeKind::Call(8));
        t.exit(0, ExecNodeKind::Call(8));
        t.exit(0, ExecNodeKind::Loop(1));
        t.exit(0, ExecNodeKind::Call(7));
        let ct = t.call_tree();
        let root = &ct[&0];
        let f7 = &root.children[&ExecNodeKind::Call(7)];
        assert!(f7.children.contains_key(&ExecNodeKind::Call(8)), "loop spliced out");
        assert_eq!(f7.children.len(), 1);
    }

    #[test]
    fn merge_trees() {
        let mut a = ExecTree::new();
        a.enter(0, ExecNodeKind::Call(1));
        a.exit(0, ExecNodeKind::Call(1));
        let mut b = ExecTree::new();
        b.enter(0, ExecNodeKind::Call(1));
        b.exit(0, ExecNodeKind::Call(1));
        b.enter(0, ExecNodeKind::Call(1));
        a.merge(&b);
        let (_, root) = a.roots().next().unwrap();
        assert_eq!(root.children[&ExecNodeKind::Call(1)].count, 3);
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        let mut t = ExecTree::new();
        t.enter(0, ExecNodeKind::Call(1));
        t.exit(0, ExecNodeKind::Call(9)); // mismatched
        t.exit(0, ExecNodeKind::Call(1));
        t.exit(0, ExecNodeKind::Call(1)); // extra
        let (_, root) = t.roots().next().unwrap();
        assert_eq!(root.children[&ExecNodeKind::Call(1)].count, 1);
    }

    #[test]
    fn render_labels() {
        let mut t = ExecTree::new();
        t.enter(0, ExecNodeKind::Call(1));
        let s = t.render(|k| match k {
            ExecNodeKind::Call(f) => format!("fn{f}"),
            ExecNodeKind::Loop(l) => format!("loop{l}"),
        });
        assert!(s.contains("thread 0:"));
        assert!(s.contains("fn1 x1"));
    }
}
