//! The dynamic execution tree (Section VIII: "the framework reorganizes
//! profiled data into multiple representations, including dynamic
//! execution tree, call tree, ...").
//!
//! Nodes are dynamic nesting contexts — function calls and loop
//! instances — with entry counts; children are keyed by what was entered,
//! so repeated entries of the same construct merge into one node with a
//! count, keeping the tree finite regardless of run length. Per-thread
//! roots give parallel targets one tree per target thread.
//!
//! The *call tree* is this tree restricted to function nodes
//! ([`ExecTree::call_tree`]).

use dp_types::{ByteReader, ByteWriter, LoopId, ThreadId, WireError};
use std::collections::BTreeMap;

fn save_kind(k: ExecNodeKind, out: &mut ByteWriter) {
    match k {
        ExecNodeKind::Call(f) => {
            out.u8(0);
            out.u32(f);
        }
        ExecNodeKind::Loop(l) => {
            out.u8(1);
            out.u32(l);
        }
    }
}

fn load_kind(r: &mut ByteReader) -> Result<ExecNodeKind, WireError> {
    Ok(match r.u8()? {
        0 => ExecNodeKind::Call(r.u32()?),
        1 => ExecNodeKind::Loop(r.u32()?),
        _ => return Err(WireError::Invalid("unknown execution-tree node kind")),
    })
}

fn save_node(n: &ExecNode, out: &mut ByteWriter) {
    out.u64(n.count);
    out.u32(n.children.len() as u32);
    for (k, c) in &n.children {
        save_kind(*k, out);
        save_node(c, out);
    }
}

fn load_node(r: &mut ByteReader) -> Result<ExecNode, WireError> {
    let count = r.u64()?;
    let nchildren = r.u32()?;
    let mut children = BTreeMap::new();
    for _ in 0..nchildren {
        let k = load_kind(r)?;
        children.insert(k, load_node(r)?);
    }
    Ok(ExecNode { count, children })
}

/// What a node of the execution tree represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExecNodeKind {
    /// A function call (static function id).
    Call(u32),
    /// A loop instance (static loop id).
    Loop(LoopId),
}

/// One merged node of the execution tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecNode {
    /// Dynamic entries merged into this node.
    pub count: u64,
    /// Children, keyed by construct.
    pub children: BTreeMap<ExecNodeKind, ExecNode>,
}

impl ExecNode {
    fn merge_from(&mut self, other: &ExecNode) {
        self.count += other.count;
        for (k, v) in &other.children {
            self.children.entry(*k).or_default().merge_from(v);
        }
    }

    /// Total nodes beneath (and including) this node.
    pub fn size(&self) -> usize {
        1 + self.children.values().map(ExecNode::size).sum::<usize>()
    }

    /// Maximum nesting depth beneath this node.
    pub fn depth(&self) -> usize {
        1 + self.children.values().map(ExecNode::depth).max().unwrap_or(0)
    }
}

/// Per-thread dynamic execution trees with the live recording stacks.
#[derive(Debug, Clone, Default)]
pub struct ExecTree {
    roots: BTreeMap<ThreadId, ExecNode>,
    stacks: BTreeMap<ThreadId, Vec<ExecNodeKind>>, // current path per thread
}

impl ExecTree {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records entry into a construct on thread `t`.
    pub fn enter(&mut self, t: ThreadId, kind: ExecNodeKind) {
        let stack = self.stacks.entry(t).or_default();
        stack.push(kind);
        let path = stack.clone();
        let mut node = self.roots.entry(t).or_default();
        for k in path {
            node = node.children.entry(k).or_default();
        }
        node.count += 1;
    }

    /// Records exit from the innermost construct on thread `t` (the kind
    /// is checked so unbalanced streams cannot corrupt the tree).
    pub fn exit(&mut self, t: ThreadId, kind: ExecNodeKind) {
        if let Some(stack) = self.stacks.get_mut(&t) {
            if stack.last() == Some(&kind) {
                stack.pop();
            }
        }
    }

    /// Per-thread root nodes (recording stacks need not be empty).
    pub fn roots(&self) -> impl Iterator<Item = (&ThreadId, &ExecNode)> {
        self.roots.iter()
    }

    /// Merges another tree (workers' local trees → global tree).
    pub fn merge(&mut self, other: &ExecTree) {
        for (t, r) in &other.roots {
            self.roots.entry(*t).or_default().merge_from(r);
        }
    }

    /// The call tree: the execution tree with loop nodes spliced out
    /// (children of a loop attach to the nearest enclosing call).
    pub fn call_tree(&self) -> BTreeMap<ThreadId, ExecNode> {
        fn splice(node: &ExecNode, out: &mut ExecNode) {
            for (k, v) in &node.children {
                match k {
                    ExecNodeKind::Call(_) => {
                        let child = out.children.entry(*k).or_default();
                        child.count += v.count;
                        splice(v, child);
                    }
                    ExecNodeKind::Loop(_) => splice(v, out),
                }
            }
        }
        self.roots
            .iter()
            .map(|(t, r)| {
                let mut out = ExecNode { count: r.count.max(1), children: BTreeMap::new() };
                splice(r, &mut out);
                (*t, out)
            })
            .collect()
    }

    /// Plain-text rendering with `names(kind) -> label`.
    pub fn render(&self, mut names: impl FnMut(ExecNodeKind) -> String) -> String {
        fn walk(
            node: &ExecNode,
            kind: Option<ExecNodeKind>,
            depth: usize,
            names: &mut impl FnMut(ExecNodeKind) -> String,
            out: &mut String,
        ) {
            if let Some(k) = kind {
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!("{} x{}\n", names(k), node.count));
            }
            for (k, v) in &node.children {
                walk(v, Some(*k), depth + 1, names, out);
            }
        }
        let mut out = String::new();
        for (t, r) in &self.roots {
            out.push_str(&format!("thread {t}:\n"));
            walk(r, None, 0, &mut names, &mut out);
        }
        out
    }

    /// Serializes the tree *and* the live recording stacks for a
    /// checkpoint, so a resumed run keeps attributing entries to the
    /// correct (possibly still-open) nesting context. Deterministic via
    /// BTreeMap order.
    pub fn save(&self, out: &mut ByteWriter) {
        out.u32(self.roots.len() as u32);
        for (t, n) in &self.roots {
            out.u16(*t);
            save_node(n, out);
        }
        out.u32(self.stacks.len() as u32);
        for (t, s) in &self.stacks {
            out.u16(*t);
            out.u32(s.len() as u32);
            for k in s {
                save_kind(*k, out);
            }
        }
    }

    /// Rebuilds a tree previously produced by [`ExecTree::save`].
    pub fn load(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        let nroots = r.u32()?;
        let mut roots = BTreeMap::new();
        for _ in 0..nroots {
            let t = r.u16()?;
            roots.insert(t, load_node(&mut r)?);
        }
        let nstacks = r.u32()?;
        let mut stacks = BTreeMap::new();
        for _ in 0..nstacks {
            let t = r.u16()?;
            let depth = r.u32()?;
            let mut stack = Vec::with_capacity(depth as usize);
            for _ in 0..depth {
                stack.push(load_kind(&mut r)?);
            }
            stacks.insert(t, stack);
        }
        if !r.is_done() {
            return Err(WireError::Invalid("trailing bytes after execution tree"));
        }
        Ok(ExecTree { roots, stacks })
    }

    /// Approximate heap footprint.
    pub fn memory_usage(&self) -> usize {
        fn sz(n: &ExecNode) -> usize {
            std::mem::size_of::<ExecNode>()
                + n.children
                    .values()
                    .map(|c| sz(c) + std::mem::size_of::<ExecNodeKind>() + 24)
                    .sum::<usize>()
        }
        self.roots.values().map(sz).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_entries_merge() {
        let mut t = ExecTree::new();
        for _ in 0..3 {
            t.enter(0, ExecNodeKind::Loop(1));
            t.enter(0, ExecNodeKind::Call(2));
            t.exit(0, ExecNodeKind::Call(2));
            t.exit(0, ExecNodeKind::Loop(1));
        }
        let (_, root) = t.roots().next().unwrap();
        assert_eq!(root.children.len(), 1);
        let l = &root.children[&ExecNodeKind::Loop(1)];
        assert_eq!(l.count, 3);
        assert_eq!(l.children[&ExecNodeKind::Call(2)].count, 3);
        assert_eq!(root.size(), 3);
        assert_eq!(root.depth(), 3);
    }

    #[test]
    fn per_thread_roots() {
        let mut t = ExecTree::new();
        t.enter(1, ExecNodeKind::Call(0));
        t.enter(2, ExecNodeKind::Call(0));
        assert_eq!(t.roots().count(), 2);
    }

    #[test]
    fn call_tree_splices_loops() {
        let mut t = ExecTree::new();
        t.enter(0, ExecNodeKind::Call(7));
        t.enter(0, ExecNodeKind::Loop(1));
        t.enter(0, ExecNodeKind::Call(8));
        t.exit(0, ExecNodeKind::Call(8));
        t.exit(0, ExecNodeKind::Loop(1));
        t.exit(0, ExecNodeKind::Call(7));
        let ct = t.call_tree();
        let root = &ct[&0];
        let f7 = &root.children[&ExecNodeKind::Call(7)];
        assert!(f7.children.contains_key(&ExecNodeKind::Call(8)), "loop spliced out");
        assert_eq!(f7.children.len(), 1);
    }

    #[test]
    fn merge_trees() {
        let mut a = ExecTree::new();
        a.enter(0, ExecNodeKind::Call(1));
        a.exit(0, ExecNodeKind::Call(1));
        let mut b = ExecTree::new();
        b.enter(0, ExecNodeKind::Call(1));
        b.exit(0, ExecNodeKind::Call(1));
        b.enter(0, ExecNodeKind::Call(1));
        a.merge(&b);
        let (_, root) = a.roots().next().unwrap();
        assert_eq!(root.children[&ExecNodeKind::Call(1)].count, 3);
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        let mut t = ExecTree::new();
        t.enter(0, ExecNodeKind::Call(1));
        t.exit(0, ExecNodeKind::Call(9)); // mismatched
        t.exit(0, ExecNodeKind::Call(1));
        t.exit(0, ExecNodeKind::Call(1)); // extra
        let (_, root) = t.roots().next().unwrap();
        assert_eq!(root.children[&ExecNodeKind::Call(1)].count, 1);
    }

    #[test]
    fn save_load_preserves_tree_and_open_stacks() {
        let mut a = ExecTree::new();
        a.enter(0, ExecNodeKind::Call(7));
        a.enter(0, ExecNodeKind::Loop(1)); // left open across the checkpoint
        a.enter(3, ExecNodeKind::Call(9));
        a.exit(3, ExecNodeKind::Call(9));
        let mut out = ByteWriter::new();
        a.save(&mut out);
        let bytes = out.into_bytes();
        let mut b = ExecTree::load(&bytes).unwrap();
        // Continuing on the restored tree must behave exactly like
        // continuing on the original: the next enter lands under the
        // still-open loop node.
        a.enter(0, ExecNodeKind::Call(8));
        b.enter(0, ExecNodeKind::Call(8));
        let path = |t: &ExecTree| {
            let (_, root) = t.roots().next().unwrap();
            let l = &root.children[&ExecNodeKind::Call(7)].children[&ExecNodeKind::Loop(1)];
            l.children[&ExecNodeKind::Call(8)].count
        };
        assert_eq!(path(&a), 1);
        assert_eq!(path(&b), 1);
        // Resave (before the extra enter) is byte-identical.
        let c = ExecTree::load(&bytes).unwrap();
        let mut again = ByteWriter::new();
        c.save(&mut again);
        assert_eq!(again.into_bytes(), bytes);
    }

    #[test]
    fn load_rejects_truncation_and_trailing_bytes() {
        let mut a = ExecTree::new();
        a.enter(0, ExecNodeKind::Call(1));
        let mut out = ByteWriter::new();
        a.save(&mut out);
        let mut bytes = out.into_bytes();
        assert!(ExecTree::load(&bytes[..bytes.len() - 1]).is_err());
        bytes.push(0);
        assert!(ExecTree::load(&bytes).is_err());
    }

    #[test]
    fn render_labels() {
        let mut t = ExecTree::new();
        t.enter(0, ExecNodeKind::Call(1));
        let s = t.render(|k| match k {
            ExecNodeKind::Call(f) => format!("fn{f}"),
            ExecNodeKind::Loop(l) => format!("loop{l}"),
        });
        assert!(s.contains("thread 0:"));
        assert!(s.contains("fn1 x1"));
    }
}
