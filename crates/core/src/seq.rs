//! The serial profiler (Section III): Algorithm 1 applied in-line on the
//! instrumented program's own thread.
//!
//! This is the `serial` bar of Figure 5 and the engine used with a
//! [`PerfectSignature`] as the accuracy baseline
//! of Table I.

use crate::algo::{AlgoOptions, AlgoState};
use crate::checkpoint::{CheckpointData, CheckpointError};
use crate::config::{ProfilerConfig, TransportKind};
use crate::parallel::AnyParallelProfiler;
use crate::result::{MemoryReport, ProfileResult, ProfileStats};
use dp_sig::{AccessStore, ExtendedSlot, PerfectSignature, Signature};
use dp_types::TraceEvent;

/// Builds the parallel offload engine for a *sequential* target.
///
/// A sequential target has exactly one producing thread — the one running
/// the instrumented program — so every [`TransportKind`] is sound here,
/// including the SPSC fast path that the multi-threaded-target engine
/// must never use. When `cfg.transport` was left at its default this
/// helper upgrades it to [`TransportKind::Spsc`]; an explicit choice
/// (e.g. the Figure 5 lock-based comparator) is honored as-is.
pub fn offload_sequential<S: AccessStore + 'static>(
    mut cfg: ProfilerConfig,
    make_store: impl Fn() -> S,
) -> AnyParallelProfiler<S> {
    if cfg.transport == TransportKind::default() {
        cfg.transport = TransportKind::Spsc;
    }
    AnyParallelProfiler::new(cfg, make_store)
}

/// In-line profiler; implement's the trace substrate's `Tracer` contract
/// via a blanket impl in downstream crates (it only needs
/// [`SequentialProfiler::on_event`]).
pub struct SequentialProfiler<S: AccessStore> {
    algo: AlgoState<S>,
}

impl SequentialProfiler<Signature<ExtendedSlot>> {
    /// Default engine: extended-slot signature with `nslots` total slots
    /// (split evenly between the read and write signatures is *not* done —
    /// the paper sizes each signature at the stated slot count; we follow
    /// that, so memory is `2 × nslots × slot`).
    pub fn with_signature(nslots: usize) -> Self {
        SequentialProfiler {
            algo: AlgoState::new(
                Signature::new(nslots),
                Signature::new(nslots),
                AlgoOptions::default(),
            ),
        }
    }
}

impl SequentialProfiler<PerfectSignature> {
    /// Exact baseline engine ("perfect signature", Section VI-A).
    pub fn perfect() -> Self {
        SequentialProfiler {
            algo: AlgoState::new(
                PerfectSignature::new(),
                PerfectSignature::new(),
                AlgoOptions::default(),
            ),
        }
    }
}

impl<S: AccessStore> SequentialProfiler<S> {
    /// Engine over custom stores (shadow memory, hash history, compact
    /// slots — the baselines of Sections III-B/VI).
    pub fn with_stores(read: S, write: S) -> Self {
        SequentialProfiler { algo: AlgoState::new(read, write, AlgoOptions::default()) }
    }

    /// Engine with explicit [`AlgoOptions`] (e.g. the set-based profiling
    /// mode of Section VI-B1 via `section_shift`).
    pub fn with_options(read: S, write: S, opts: AlgoOptions) -> Self {
        SequentialProfiler { algo: AlgoState::new(read, write, opts) }
    }

    /// Processes one instrumentation event.
    #[inline]
    pub fn on_event(&mut self, ev: &TraceEvent) {
        self.algo.on_event(ev);
    }

    /// Turns on online analysis: the in-line store starts tracking
    /// dependence-map movement (see
    /// [`DepStore::enable_delta`](crate::store::DepStore::enable_delta)).
    /// Idempotent; a late enable catches up by seeding full history.
    pub fn enable_online(&mut self) {
        self.algo.store.enable_delta();
    }

    /// True once [`SequentialProfiler::enable_online`] has run.
    pub fn online_enabled(&self) -> bool {
        self.algo.store.delta_enabled()
    }

    /// Drains the movement since the previous drain (empty when online
    /// analysis is off or nothing moved).
    pub fn take_delta(&mut self) -> crate::store::AnalysisDelta {
        self.algo.store.take_delta()
    }

    /// Captures the full profiler state as a checkpoint: one worker blob
    /// (the in-line engine *is* its single worker), no router, no queue
    /// ledger. Returns `Unsupported` for access stores that cannot
    /// serialize themselves (shadow memory, hash history).
    pub fn checkpoint_data(
        &self,
        generation: u64,
        records_read: u64,
        config: Vec<u8>,
    ) -> Result<CheckpointData, CheckpointError> {
        let mut out = dp_types::wire::ByteWriter::new();
        if !self.algo.save_state(&mut out) {
            return Err(CheckpointError::Unsupported(
                "the access store does not support checkpointing",
            ));
        }
        Ok(CheckpointData {
            generation,
            records_read,
            config,
            router: Vec::new(),
            ledger: Vec::new(),
            workers: vec![out.into_bytes()],
        })
    }

    /// Restores state captured by [`SequentialProfiler::checkpoint_data`]
    /// into this freshly constructed engine (which must have been built
    /// with the same store dimensions and options).
    pub fn restore(&mut self, data: &CheckpointData) -> Result<(), CheckpointError> {
        let [state] = data.workers.as_slice() else {
            return Err(CheckpointError::Wire(dp_types::wire::WireError::Invalid(
                "serial checkpoint must hold exactly one worker blob",
            )));
        };
        self.algo.restore_state(state)?;
        Ok(())
    }

    /// Finishes the run.
    pub fn finish(self) -> ProfileResult {
        let mem_all = self.algo.memory_usage();
        let gauges = self.algo.sig_gauges();
        let (store, exec_tree, counters, sig_mem) = self.algo.finish();
        let mut stats = ProfileStats::default();
        stats.absorb(counters);
        stats.deps_built = store.deps_built();
        stats.deps_merged = store.merged_len();
        let memory = MemoryReport {
            signatures: sig_mem,
            queues: 0,
            chunks: 0,
            dep_store: store.memory_usage() + exec_tree.memory_usage(),
            stats_maps: mem_all.saturating_sub(sig_mem + store.memory_usage()),
        };
        // The in-line engine has no queues: every event is "pushed" and
        // "consumed" at the same program point, so the conservation law
        // holds trivially — but the snapshot is still populated so
        // `--stats` reports signature gauges for serial runs too.
        let metrics = if dp_metrics::ENABLED {
            dp_metrics::MetricsSnapshot {
                enabled: true,
                workers: 0,
                conservation: dp_metrics::Conservation {
                    pushed: stats.events,
                    consumed: stats.events,
                    ..dp_metrics::Conservation::default()
                },
                signatures: gauges,
                ..dp_metrics::MetricsSnapshot::default()
            }
        } else {
            dp_metrics::MetricsSnapshot::default()
        };
        ProfileResult {
            deps: store,
            exec_tree,
            stats,
            memory,
            workers: 0,
            per_worker_events: Vec::new(),
            metrics,
        }
    }
}

impl<S: AccessStore> dp_types::Tracer for SequentialProfiler<S> {
    #[inline]
    fn event(&mut self, ev: TraceEvent) {
        self.algo.on_event(&ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::{loc::loc, AccessKind, DepType, MemAccess};

    #[test]
    fn profile_simple_stream() {
        let mut p = SequentialProfiler::perfect();
        p.on_event(&TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), 1, 0)));
        p.on_event(&TraceEvent::Access(MemAccess::read(0x8, 2, loc(1, 2), 1, 0)));
        let r = p.finish();
        assert_eq!(r.stats.accesses, 2);
        assert_eq!(r.stats.deps_merged, 2); // INIT + RAW
        assert!(r
            .deps
            .dependences()
            .any(|(d, _)| d.edge.dtype == DepType::Raw && d.sink.loc.line == 2));
        assert_eq!(r.workers, 0);
        assert!(r.memory.total() > 0);
    }

    #[test]
    fn offload_upgrades_default_transport_to_spsc() {
        use dp_types::Tracer;
        let mut p =
            offload_sequential(ProfilerConfig::default().with_workers(2), PerfectSignature::new);
        assert_eq!(p.transport_kind(), "spsc");
        p.event(TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), 1, 0)));
        p.event(TraceEvent::Access(MemAccess::read(0x8, 2, loc(1, 2), 1, 0)));
        let r = p.finish();
        assert_eq!(r.stats.deps_merged, 2);
        // An explicit choice is honored as-is.
        let p = offload_sequential(
            ProfilerConfig::default().with_workers(2).with_transport(TransportKind::Lock),
            PerfectSignature::new,
        );
        assert_eq!(p.transport_kind(), "lock-based");
        p.finish();
    }

    #[test]
    fn serial_checkpoint_restore_resumes_identically() {
        let mut evs = Vec::new();
        for i in 0..60u64 {
            let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
            evs.push(TraceEvent::Access(MemAccess {
                addr: 0x100 + (i % 11) * 8,
                ts: i + 1,
                loc: loc(1, (i % 5) as u32 + 1),
                var: 1,
                thread: 0,
                kind,
            }));
        }
        let mut reference = SequentialProfiler::perfect();
        for ev in &evs {
            reference.on_event(ev);
        }
        let r_ref = reference.finish();
        let cut = 23;
        let mut first = SequentialProfiler::perfect();
        for ev in &evs[..cut] {
            first.on_event(ev);
        }
        let data = first.checkpoint_data(0, cut as u64, Vec::new()).unwrap();
        assert_eq!(data.workers.len(), 1);
        let mut resumed = SequentialProfiler::perfect();
        resumed.restore(&data).unwrap();
        for ev in &evs[cut..] {
            resumed.on_event(ev);
        }
        let r2 = resumed.finish();
        let deps = |r: &ProfileResult| {
            let mut v: Vec<String> =
                r.deps.dependences().map(|(d, val)| format!("{d:?}={val:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(r_ref.stats.accesses, r2.stats.accesses);
        assert_eq!(deps(&r_ref), deps(&r2));
    }

    #[test]
    fn serial_checkpoint_unsupported_store_is_an_error() {
        let p = SequentialProfiler::with_stores(
            dp_sig::ShadowMemory::new(),
            dp_sig::ShadowMemory::new(),
        );
        let err = p.checkpoint_data(0, 0, Vec::new()).expect_err("shadow memory cannot save");
        assert!(matches!(err, CheckpointError::Unsupported(_)), "{err}");
    }

    #[test]
    fn signature_engine_has_fixed_signature_memory() {
        let p1 = SequentialProfiler::with_signature(1 << 12);
        let r1 = p1.finish();
        let mut p2 = SequentialProfiler::with_signature(1 << 12);
        for i in 0..10_000u64 {
            p2.on_event(&TraceEvent::Access(MemAccess::write(i * 8, i + 1, loc(1, 1), 1, 0)));
        }
        let r2 = p2.finish();
        assert_eq!(r1.memory.signatures, r2.memory.signatures);
        // 2 signatures × 4096 slots × 16 B ≈ 128 KiB
        assert!(r2.memory.signatures >= 2 * 4096 * 16);
    }
}
