//! Profiler configuration.

use dp_metrics::ObserverHandle;
use dp_queue::FaultPlan;

/// What the router does when a worker's queue has been continuously full
/// for longer than [`ProfilerConfig::stall_deadline_ms`].
///
/// The queues are bounded (Section IV: "a separate queue for each worker
/// thread"), so a worker that stops consuming — a stall, a livelock, an
/// injected fault — eventually propagates backpressure all the way to the
/// instrumented program. `Block` preserves that strict behaviour; `Drop`
/// trades completeness for forward progress and *accounts for the loss*:
/// every dropped event is counted per worker and surfaced in
/// `ProfileStats::dropped_per_worker`, mirroring how the paper's
/// signatures trade accuracy for memory under Formula 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Spin (with backoff) until the worker drains its queue. Lossless;
    /// a permanently stalled worker hangs the producer. This is the
    /// paper's behaviour and the default.
    #[default]
    Block,
    /// After the queue has been continuously full for the stall
    /// deadline, drop events destined to the stalled worker and count
    /// them. The profile is marked degraded but the run terminates.
    Drop,
}

impl OverflowPolicy {
    /// Short name as used in reports and on the command line.
    pub fn name(self) -> &'static str {
        match self {
            OverflowPolicy::Block => "block",
            OverflowPolicy::Drop => "drop",
        }
    }

    /// Parses a command-line spelling (`block`, `drop`).
    pub fn parse(s: &str) -> Option<OverflowPolicy> {
        match s {
            "block" => Some(OverflowPolicy::Block),
            "drop" => Some(OverflowPolicy::Drop),
            _ => None,
        }
    }
}

/// Which per-worker channel implementation the parallel pipeline routes
/// events through. All three produce bit-identical dependence sets; they
/// differ only in synchronization cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Single-producer single-consumer rings — the fast path for
    /// sequential targets, where only the instrumented program's thread
    /// produces. The profiler built on this is `!Sync`, so the
    /// single-producer contract is compiler-enforced.
    Spsc,
    /// Lock-free MPMC queues (the paper's main configuration; required
    /// when more than one target thread produces).
    #[default]
    Mpmc,
    /// Mutex-protected queues — the lock-based comparator of Figure 5.
    Lock,
}

impl TransportKind {
    /// Short name as used in reports and on the command line.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Spsc => "spsc",
            TransportKind::Mpmc => "lock-free",
            TransportKind::Lock => "lock-based",
        }
    }

    /// Parses a command-line spelling (`spsc`, `mpmc`/`lock-free`,
    /// `lock`/`lock-based`/`lockq`).
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s {
            "spsc" => Some(TransportKind::Spsc),
            "mpmc" | "lock-free" | "lockfree" => Some(TransportKind::Mpmc),
            "lock" | "lock-based" | "lockq" => Some(TransportKind::Lock),
            _ => None,
        }
    }
}

/// Tunables shared by all engines. Defaults follow the paper's evaluation
/// setup where one exists.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Total signature slots, split evenly among workers (the paper uses
    /// 6.25·10⁶ per thread × 16 threads = 10⁸ total; scaled workloads use
    /// proportionally scaled totals).
    pub total_slots: usize,
    /// Number of profiling worker threads (the paper evaluates 8 and 16).
    pub workers: usize,
    /// Events per chunk ("whose size can be configured in the interest of
    /// scalability").
    pub chunk_capacity: usize,
    /// Chunks each worker queue can buffer before the producer backs off.
    pub queue_chunks: usize,
    /// Enable loop-carried classification (requires timestamped slots;
    /// duplicates loop events to all workers in the parallel engine).
    pub track_carried: bool,
    /// Enable hot-address redistribution (Section IV-A).
    pub redistribution: bool,
    /// Redistribution check interval in chunks ("we check whether
    /// redistribution is needed after every 50,000 chunks").
    pub redistribute_every: u64,
    /// How many hottest addresses to keep balanced ("the top ten most
    /// heavily accessed addresses").
    pub top_k: usize,
    /// Per-worker channel implementation for the parallel pipeline.
    pub transport: TransportKind,
    /// What to do when a worker queue stays full past the stall deadline.
    pub overflow: OverflowPolicy,
    /// How long a queue must be *continuously* full before the owner is
    /// presumed stalled (milliseconds). Under [`OverflowPolicy::Drop`]
    /// this bounds the producer's wait; under `Block` it is only
    /// consulted when delivering `Shutdown` at the end of a run.
    pub stall_deadline_ms: u64,
    /// Upper bound on the end-of-run drain (in-flight migrations,
    /// worker joins) in milliseconds. Past it, pending migrations are
    /// cancelled and unresponsive workers are abandoned rather than
    /// hanging `finish()` forever.
    pub drain_deadline_ms: u64,
    /// Deterministic fault-injection script (testing only;
    /// [`FaultPlan::none()`] — the default — injects nothing and the
    /// hooks compile out unless the `fault-inject` feature is on).
    pub fault_plan: FaultPlan,
    /// Observer notified of redistribution rounds, worker failures and
    /// the final metrics snapshot. Defaults to no observer.
    pub observer: ObserverHandle,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            total_slots: 1 << 20,
            workers: 8,
            chunk_capacity: 1024,
            queue_chunks: 32,
            track_carried: true,
            redistribution: true,
            redistribute_every: 50_000,
            top_k: 10,
            transport: TransportKind::default(),
            overflow: OverflowPolicy::default(),
            stall_deadline_ms: 100,
            drain_deadline_ms: 2_000,
            fault_plan: FaultPlan::none(),
            observer: ObserverHandle::none(),
        }
    }
}

impl ProfilerConfig {
    /// Slots per worker (ceiling division so the total is never under).
    pub fn slots_per_worker(&self) -> usize {
        self.total_slots.div_ceil(self.workers.max(1)).max(1)
    }

    /// Builder-style setter for the worker count.
    pub fn with_workers(mut self, w: usize) -> Self {
        self.workers = w.max(1);
        self
    }

    /// Builder-style setter for total slots.
    pub fn with_slots(mut self, s: usize) -> Self {
        self.total_slots = s.max(1);
        self
    }

    /// Builder-style setter for chunk capacity.
    pub fn with_chunk_capacity(mut self, c: usize) -> Self {
        self.chunk_capacity = c.max(1);
        self
    }

    /// Builder-style toggle for redistribution.
    pub fn with_redistribution(mut self, on: bool) -> Self {
        self.redistribution = on;
        self
    }

    /// Builder-style toggle for loop-carried tracking.
    pub fn with_carried(mut self, on: bool) -> Self {
        self.track_carried = on;
        self
    }

    /// Builder-style setter for the transport.
    pub fn with_transport(mut self, t: TransportKind) -> Self {
        self.transport = t;
        self
    }

    /// Builder-style setter for the overflow policy.
    pub fn with_overflow(mut self, p: OverflowPolicy) -> Self {
        self.overflow = p;
        self
    }

    /// Builder-style setter for the stall deadline (milliseconds).
    pub fn with_stall_deadline_ms(mut self, ms: u64) -> Self {
        self.stall_deadline_ms = ms;
        self
    }

    /// Builder-style setter for the drain deadline (milliseconds).
    pub fn with_drain_deadline_ms(mut self, ms: u64) -> Self {
        self.drain_deadline_ms = ms;
        self
    }

    /// Builder-style setter for the fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Builder-style setter for the pipeline observer.
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_slot_split() {
        let cfg = ProfilerConfig::default().with_workers(16).with_slots(100_000_000);
        assert_eq!(cfg.slots_per_worker(), 6_250_000);
    }

    #[test]
    fn builders() {
        let cfg = ProfilerConfig::default()
            .with_workers(0)
            .with_chunk_capacity(0)
            .with_redistribution(false)
            .with_carried(false);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.chunk_capacity, 1);
        assert!(!cfg.redistribution);
        assert!(!cfg.track_carried);
        assert_eq!(cfg.transport, TransportKind::Mpmc);
        let cfg = cfg.with_transport(TransportKind::Spsc);
        assert_eq!(cfg.transport, TransportKind::Spsc);
    }

    #[test]
    fn overflow_names_round_trip() {
        for p in [OverflowPolicy::Block, OverflowPolicy::Drop] {
            assert_eq!(OverflowPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(OverflowPolicy::parse("bogus"), None);
        assert_eq!(ProfilerConfig::default().overflow, OverflowPolicy::Block);
        assert!(ProfilerConfig::default().fault_plan.is_none());
        let cfg = ProfilerConfig::default()
            .with_overflow(OverflowPolicy::Drop)
            .with_stall_deadline_ms(5)
            .with_drain_deadline_ms(50);
        assert_eq!(cfg.overflow, OverflowPolicy::Drop);
        assert_eq!(cfg.stall_deadline_ms, 5);
        assert_eq!(cfg.drain_deadline_ms, 50);
    }

    #[test]
    fn transport_names_round_trip() {
        for k in [TransportKind::Spsc, TransportKind::Mpmc, TransportKind::Lock] {
            assert_eq!(TransportKind::parse(k.name()), Some(k));
        }
        assert_eq!(TransportKind::parse("mpmc"), Some(TransportKind::Mpmc));
        assert_eq!(TransportKind::parse("lockq"), Some(TransportKind::Lock));
        assert_eq!(TransportKind::parse("bogus"), None);
    }
}
