//! Profiler configuration.

/// Which per-worker channel implementation the parallel pipeline routes
/// events through. All three produce bit-identical dependence sets; they
/// differ only in synchronization cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Single-producer single-consumer rings — the fast path for
    /// sequential targets, where only the instrumented program's thread
    /// produces. The profiler built on this is `!Sync`, so the
    /// single-producer contract is compiler-enforced.
    Spsc,
    /// Lock-free MPMC queues (the paper's main configuration; required
    /// when more than one target thread produces).
    #[default]
    Mpmc,
    /// Mutex-protected queues — the lock-based comparator of Figure 5.
    Lock,
}

impl TransportKind {
    /// Short name as used in reports and on the command line.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Spsc => "spsc",
            TransportKind::Mpmc => "lock-free",
            TransportKind::Lock => "lock-based",
        }
    }

    /// Parses a command-line spelling (`spsc`, `mpmc`/`lock-free`,
    /// `lock`/`lock-based`/`lockq`).
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s {
            "spsc" => Some(TransportKind::Spsc),
            "mpmc" | "lock-free" | "lockfree" => Some(TransportKind::Mpmc),
            "lock" | "lock-based" | "lockq" => Some(TransportKind::Lock),
            _ => None,
        }
    }
}

/// Tunables shared by all engines. Defaults follow the paper's evaluation
/// setup where one exists.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Total signature slots, split evenly among workers (the paper uses
    /// 6.25·10⁶ per thread × 16 threads = 10⁸ total; scaled workloads use
    /// proportionally scaled totals).
    pub total_slots: usize,
    /// Number of profiling worker threads (the paper evaluates 8 and 16).
    pub workers: usize,
    /// Events per chunk ("whose size can be configured in the interest of
    /// scalability").
    pub chunk_capacity: usize,
    /// Chunks each worker queue can buffer before the producer backs off.
    pub queue_chunks: usize,
    /// Enable loop-carried classification (requires timestamped slots;
    /// duplicates loop events to all workers in the parallel engine).
    pub track_carried: bool,
    /// Enable hot-address redistribution (Section IV-A).
    pub redistribution: bool,
    /// Redistribution check interval in chunks ("we check whether
    /// redistribution is needed after every 50,000 chunks").
    pub redistribute_every: u64,
    /// How many hottest addresses to keep balanced ("the top ten most
    /// heavily accessed addresses").
    pub top_k: usize,
    /// Per-worker channel implementation for the parallel pipeline.
    pub transport: TransportKind,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            total_slots: 1 << 20,
            workers: 8,
            chunk_capacity: 1024,
            queue_chunks: 32,
            track_carried: true,
            redistribution: true,
            redistribute_every: 50_000,
            top_k: 10,
            transport: TransportKind::default(),
        }
    }
}

impl ProfilerConfig {
    /// Slots per worker (ceiling division so the total is never under).
    pub fn slots_per_worker(&self) -> usize {
        self.total_slots.div_ceil(self.workers.max(1)).max(1)
    }

    /// Builder-style setter for the worker count.
    pub fn with_workers(mut self, w: usize) -> Self {
        self.workers = w.max(1);
        self
    }

    /// Builder-style setter for total slots.
    pub fn with_slots(mut self, s: usize) -> Self {
        self.total_slots = s.max(1);
        self
    }

    /// Builder-style setter for chunk capacity.
    pub fn with_chunk_capacity(mut self, c: usize) -> Self {
        self.chunk_capacity = c.max(1);
        self
    }

    /// Builder-style toggle for redistribution.
    pub fn with_redistribution(mut self, on: bool) -> Self {
        self.redistribution = on;
        self
    }

    /// Builder-style toggle for loop-carried tracking.
    pub fn with_carried(mut self, on: bool) -> Self {
        self.track_carried = on;
        self
    }

    /// Builder-style setter for the transport.
    pub fn with_transport(mut self, t: TransportKind) -> Self {
        self.transport = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_slot_split() {
        let cfg = ProfilerConfig::default().with_workers(16).with_slots(100_000_000);
        assert_eq!(cfg.slots_per_worker(), 6_250_000);
    }

    #[test]
    fn builders() {
        let cfg = ProfilerConfig::default()
            .with_workers(0)
            .with_chunk_capacity(0)
            .with_redistribution(false)
            .with_carried(false);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.chunk_capacity, 1);
        assert!(!cfg.redistribution);
        assert!(!cfg.track_carried);
        assert_eq!(cfg.transport, TransportKind::Mpmc);
        let cfg = cfg.with_transport(TransportKind::Spsc);
        assert_eq!(cfg.transport, TransportKind::Spsc);
    }

    #[test]
    fn transport_names_round_trip() {
        for k in [TransportKind::Spsc, TransportKind::Mpmc, TransportKind::Lock] {
            assert_eq!(TransportKind::parse(k.name()), Some(k));
        }
        assert_eq!(TransportKind::parse("mpmc"), Some(TransportKind::Mpmc));
        assert_eq!(TransportKind::parse("lockq"), Some(TransportKind::Lock));
        assert_eq!(TransportKind::parse("bogus"), None);
    }
}
