//! Profiler configuration.

/// Tunables shared by all engines. Defaults follow the paper's evaluation
/// setup where one exists.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Total signature slots, split evenly among workers (the paper uses
    /// 6.25·10⁶ per thread × 16 threads = 10⁸ total; scaled workloads use
    /// proportionally scaled totals).
    pub total_slots: usize,
    /// Number of profiling worker threads (the paper evaluates 8 and 16).
    pub workers: usize,
    /// Events per chunk ("whose size can be configured in the interest of
    /// scalability").
    pub chunk_capacity: usize,
    /// Chunks each worker queue can buffer before the producer backs off.
    pub queue_chunks: usize,
    /// Enable loop-carried classification (requires timestamped slots;
    /// duplicates loop events to all workers in the parallel engine).
    pub track_carried: bool,
    /// Enable hot-address redistribution (Section IV-A).
    pub redistribution: bool,
    /// Redistribution check interval in chunks ("we check whether
    /// redistribution is needed after every 50,000 chunks").
    pub redistribute_every: u64,
    /// How many hottest addresses to keep balanced ("the top ten most
    /// heavily accessed addresses").
    pub top_k: usize,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            total_slots: 1 << 20,
            workers: 8,
            chunk_capacity: 1024,
            queue_chunks: 32,
            track_carried: true,
            redistribution: true,
            redistribute_every: 50_000,
            top_k: 10,
        }
    }
}

impl ProfilerConfig {
    /// Slots per worker (ceiling division so the total is never under).
    pub fn slots_per_worker(&self) -> usize {
        self.total_slots.div_ceil(self.workers.max(1)).max(1)
    }

    /// Builder-style setter for the worker count.
    pub fn with_workers(mut self, w: usize) -> Self {
        self.workers = w.max(1);
        self
    }

    /// Builder-style setter for total slots.
    pub fn with_slots(mut self, s: usize) -> Self {
        self.total_slots = s.max(1);
        self
    }

    /// Builder-style setter for chunk capacity.
    pub fn with_chunk_capacity(mut self, c: usize) -> Self {
        self.chunk_capacity = c.max(1);
        self
    }

    /// Builder-style toggle for redistribution.
    pub fn with_redistribution(mut self, on: bool) -> Self {
        self.redistribution = on;
        self
    }

    /// Builder-style toggle for loop-carried tracking.
    pub fn with_carried(mut self, on: bool) -> Self {
        self.track_carried = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_slot_split() {
        let cfg = ProfilerConfig::default().with_workers(16).with_slots(100_000_000);
        assert_eq!(cfg.slots_per_worker(), 6_250_000);
    }

    #[test]
    fn builders() {
        let cfg = ProfilerConfig::default()
            .with_workers(0)
            .with_chunk_capacity(0)
            .with_redistribution(false)
            .with_carried(false);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.chunk_capacity, 1);
        assert!(!cfg.redistribution);
        assert!(!cfg.track_carried);
    }
}
