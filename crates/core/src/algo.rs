//! Algorithm 1 — signature-based data-dependence extraction.
//!
//! The pseudocode of the paper, verbatim in structure:
//!
//! ```text
//! for each memory access c:
//!   index = hash(c)
//!   if c is write:
//!     if sig_write[index] empty:        c is initialization (INIT)
//!     else:
//!       if sig_read[index] not empty:   buildWAR()
//!       buildWAW()
//!     sig_write[index] = source line of c
//!   else:
//!     if sig_write[index] not empty:    buildRAW()
//!     sig_read[index] = source line of c
//! ```
//!
//! RAR dependences are deliberately not built ("we ignore read-after-read
//! dependences because in most program analyses they are not required").
//!
//! The state is generic over [`AccessStore`], so the same function is the
//! serial profiler, each parallel worker, the perfect-signature baseline
//! and the shadow-memory/hash-table comparators.

use crate::exectree::{ExecNodeKind, ExecTree};
use crate::loops::{CarrierInfo, LoopTracker};
use crate::store::DepStore;
use dp_metrics::SigGauges;
use dp_sig::{AccessStore, SigEntry};
use dp_types::{
    AccessKind, ByteReader, ByteWriter, DepFlags, DepType, LoopId, MemAccess, SinkKey, SourceLoc,
    ThreadId, Timestamp, TraceEvent, WireError,
};

/// Counters every engine reports (merged into
/// [`ProfileStats`](crate::ProfileStats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlgoCounters {
    /// Total events processed.
    pub events: u64,
    /// Memory accesses processed.
    pub accesses: u64,
    /// Reads among them.
    pub reads: u64,
    /// Writes among them.
    pub writes: u64,
    /// Dependences flagged REVERSED (potential data races).
    pub reversed: u64,
    /// Addresses removed by variable-lifetime analysis.
    pub lifetime_removals: u64,
}

/// Behaviour switches for [`AlgoState`].
#[derive(Debug, Clone, Copy)]
pub struct AlgoOptions {
    /// Enable loop-carried classification (requires a timestamped store).
    pub track_carried: bool,
    /// Enable the Section V-B timestamp-reversal race signal
    /// (multi-threaded targets only).
    pub check_reversal: bool,
    /// Record loop BGN/END/iteration statistics. In the parallel engine
    /// loop events are broadcast to every worker for carried
    /// classification, so only one worker records them to avoid inflated
    /// counts.
    pub record_loops: bool,
    /// Set-based profiling (Section VI-B1): report dependences between
    /// code *sections* of `2^section_shift` lines instead of statements.
    /// The paper names this as a way to trade generality for speed and
    /// balance; 0 = full statement-level detail (the paper's choice).
    pub section_shift: u8,
}

impl Default for AlgoOptions {
    fn default() -> Self {
        AlgoOptions {
            track_carried: true,
            check_reversal: false,
            record_loops: true,
            section_shift: 0,
        }
    }
}

/// Formula 2 in reverse: from a signature's observed occupancy, estimate
/// how many distinct addresses were inserted (`E[occ] = m(1 − (1−1/m)ⁿ)`
/// solved for `n`), then feed that back through
/// [`dp_sig::predicted_fpr`]. Exact stores (`m == 0`) report 0 — they
/// have no false positives by construction.
fn gauge_fpr_pct(m: usize, occupied: usize) -> f64 {
    if m == 0 || occupied == 0 {
        return 0.0;
    }
    if occupied >= m {
        return 100.0;
    }
    let frac = occupied as f64 / m as f64;
    let n = ((1.0 - frac).ln() / (1.0 - 1.0 / m as f64).ln()).ceil() as u64;
    dp_sig::predicted_fpr(m, n) * 100.0
}

#[inline]
fn coarsen(loc: SourceLoc, shift: u8) -> SourceLoc {
    if shift == 0 {
        loc
    } else {
        SourceLoc::new(loc.file, (loc.line >> shift) << shift)
    }
}

/// Dependence-extraction state: one read signature, one write signature,
/// a loop tracker and the local (duplicate-free) dependence map.
pub struct AlgoState<S: AccessStore> {
    sig_read: S,
    sig_write: S,
    /// The local dependence map ("thread-local map" in Figure 2).
    pub store: DepStore,
    /// The local dynamic execution tree (Section VIII representation).
    pub exec_tree: ExecTree,
    loops: LoopTracker,
    counters: AlgoCounters,
    track_carried: bool,
    check_reversal: bool,
    record_loops: bool,
    section_shift: u8,
}

impl<S: AccessStore> AlgoState<S> {
    /// Creates the state from the two signatures.
    pub fn new(sig_read: S, sig_write: S, opts: AlgoOptions) -> Self {
        AlgoState {
            sig_read,
            sig_write,
            store: DepStore::new(),
            exec_tree: ExecTree::new(),
            loops: LoopTracker::new(),
            counters: AlgoCounters::default(),
            track_carried: opts.track_carried && S::HAS_TS,
            check_reversal: opts.check_reversal && S::HAS_TS,
            record_loops: opts.record_loops,
            section_shift: opts.section_shift,
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> AlgoCounters {
        self.counters
    }

    /// Processes one event.
    pub fn on_event(&mut self, ev: &TraceEvent) {
        self.counters.events += 1;
        match *ev {
            TraceEvent::Access(ref a) => self.on_access(a),
            TraceEvent::LoopBegin { loop_id, loc, thread, ts } => {
                self.loops.begin(thread, loop_id, loc, ts);
                if self.record_loops {
                    self.exec_tree.enter(thread, ExecNodeKind::Loop(loop_id));
                }
            }
            TraceEvent::LoopIter { loop_id, thread, ts, .. } => {
                self.loops.iter(thread, loop_id, ts);
            }
            TraceEvent::LoopEnd { loop_id, loc, iters, thread, .. } => {
                if let Some((begin, _seen)) = self.loops.end(thread, loop_id, loc) {
                    // `iters` from the event is authoritative: front-ends
                    // may elide per-iteration events (the MT engine does).
                    if self.record_loops {
                        self.store.record_loop(loop_id, begin, loc, iters);
                    }
                }
                if self.record_loops {
                    self.exec_tree.exit(thread, ExecNodeKind::Loop(loop_id));
                }
            }
            TraceEvent::CallBegin { func, thread, .. } => {
                if self.record_loops {
                    self.exec_tree.enter(thread, ExecNodeKind::Call(func));
                }
            }
            TraceEvent::CallEnd { func, thread, .. } => {
                if self.record_loops {
                    self.exec_tree.exit(thread, ExecNodeKind::Call(func));
                }
            }
            TraceEvent::Dealloc { base, len, .. } => {
                for i in 0..len {
                    self.sig_read.remove(base + i * 8);
                    self.sig_write.remove(base + i * 8);
                }
                self.counters.lifetime_removals += len;
            }
        }
    }

    #[inline]
    fn on_access(&mut self, a: &MemAccess) {
        self.counters.accesses += 1;
        let entry = SigEntry::new(a.loc, a.thread, a.ts);
        match a.kind {
            AccessKind::Write => {
                self.counters.writes += 1;
                match self.sig_write.get(a.addr) {
                    None => {
                        // First write: INIT record (printed as {INIT *}).
                        let loc = coarsen(a.loc, self.section_shift);
                        self.store.add(
                            SinkKey { loc, thread: a.thread },
                            DepType::Init,
                            loc,
                            a.thread,
                            a.var,
                            DepFlags::empty(),
                            None,
                        );
                    }
                    Some(w) => {
                        if let Some(r) = self.sig_read.get(a.addr) {
                            self.build(DepType::War, a, &r);
                        }
                        self.build(DepType::Waw, a, &w);
                    }
                }
                self.sig_write.put(a.addr, entry);
            }
            AccessKind::Read => {
                self.counters.reads += 1;
                if let Some(w) = self.sig_write.get(a.addr) {
                    self.build(DepType::Raw, a, &w);
                }
                self.sig_read.put(a.addr, entry);
            }
        }
    }

    fn build(&mut self, dtype: DepType, sink: &MemAccess, source: &SigEntry) {
        let mut flags = DepFlags::empty();
        let mut carrier: Option<LoopId> = None;
        if self.track_carried {
            match self.loops.classify(sink.thread, source.ts) {
                CarrierInfo::IntraIteration => flags |= DepFlags::INTRA_ITERATION,
                CarrierInfo::Carried(l) => {
                    flags |= DepFlags::LOOP_CARRIED;
                    carrier = Some(l);
                }
                CarrierInfo::FromOutside => {}
            }
        }
        if self.check_reversal && source.ts > sink.ts {
            // The source's timestamp is *later* than the sink's: the
            // access/push pair was not atomic — evidence of a potential
            // data race (Section V-B).
            flags |= DepFlags::REVERSED;
            self.counters.reversed += 1;
        }
        self.store.add(
            SinkKey { loc: coarsen(sink.loc, self.section_shift), thread: sink.thread },
            dtype,
            coarsen(source.loc, self.section_shift),
            source.thread,
            sink.var,
            flags,
            carrier,
        );
    }

    /// Extracts the signature state of `addr` (redistribution: the old
    /// owner's slots migrate to the new owner, Section IV-A).
    pub fn extract(&mut self, addr: u64) -> (Option<SigEntry>, Option<SigEntry>) {
        let r = self.sig_read.get(addr);
        if r.is_some() {
            self.sig_read.remove(addr);
        }
        let w = self.sig_write.get(addr);
        if w.is_some() {
            self.sig_write.remove(addr);
        }
        (r, w)
    }

    /// Injects migrated signature state (target side of redistribution).
    pub fn inject(&mut self, addr: u64, read: Option<SigEntry>, write: Option<SigEntry>) {
        if let Some(r) = read {
            self.sig_read.put(addr, r);
        }
        if let Some(w) = write {
            self.sig_write.put(addr, w);
        }
    }

    /// Bytes held by the two signatures plus trackers.
    pub fn memory_usage(&self) -> usize {
        self.sig_read.memory_usage()
            + self.sig_write.memory_usage()
            + self.loops.memory_usage()
            + self.store.memory_usage()
    }

    /// Consumes the state, returning the local store, execution tree,
    /// counters and signature memory.
    pub fn finish(self) -> (DepStore, ExecTree, AlgoCounters, usize) {
        let sig_mem = self.sig_read.memory_usage() + self.sig_write.memory_usage();
        (self.store, self.exec_tree, self.counters, sig_mem)
    }

    /// Serializes the complete extraction state — both signatures, the
    /// local dependence map, the execution tree, the loop stacks and the
    /// counters — for a crash-safe checkpoint. Returns `false` without
    /// writing anything useful when the access store does not support
    /// checkpointing (see [`AccessStore::save_state`]).
    ///
    /// The behaviour switches ([`AlgoOptions`]) are *not* serialized: a
    /// resumed engine reconstructs the state with the same configuration
    /// (recorded in the checkpoint header at the engine layer) before
    /// calling [`AlgoState::restore_state`].
    pub fn save_state(&self, out: &mut ByteWriter) -> bool {
        let mut sig_r = ByteWriter::new();
        if !self.sig_read.save_state(&mut sig_r) {
            return false;
        }
        let mut sig_w = ByteWriter::new();
        if !self.sig_write.save_state(&mut sig_w) {
            return false;
        }
        out.blob(&sig_r.into_bytes());
        out.blob(&sig_w.into_bytes());
        let mut b = ByteWriter::new();
        self.store.save(&mut b);
        out.blob(&b.into_bytes());
        let mut b = ByteWriter::new();
        self.exec_tree.save(&mut b);
        out.blob(&b.into_bytes());
        let mut b = ByteWriter::new();
        self.loops.save(&mut b);
        out.blob(&b.into_bytes());
        out.u64(self.counters.events);
        out.u64(self.counters.accesses);
        out.u64(self.counters.reads);
        out.u64(self.counters.writes);
        out.u64(self.counters.reversed);
        out.u64(self.counters.lifetime_removals);
        true
    }

    /// Restores state previously produced by [`AlgoState::save_state`] on
    /// an identically-configured state (same store dimensions and
    /// [`AlgoOptions`]).
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut r = ByteReader::new(bytes);
        let sig_r = r.blob()?;
        let sig_w = r.blob()?;
        let store = DepStore::load(r.blob()?)?;
        let exec_tree = ExecTree::load(r.blob()?)?;
        let loops = LoopTracker::load(r.blob()?)?;
        let counters = AlgoCounters {
            events: r.u64()?,
            accesses: r.u64()?,
            reads: r.u64()?,
            writes: r.u64()?,
            reversed: r.u64()?,
            lifetime_removals: r.u64()?,
        };
        if !r.is_done() {
            return Err(WireError::Invalid("trailing bytes after algorithm state"));
        }
        self.sig_read.restore_state(sig_r)?;
        self.sig_write.restore_state(sig_w)?;
        self.store = store;
        self.exec_tree = exec_tree;
        self.loops = loops;
        self.counters = counters;
        Ok(())
    }

    /// Read-side signature occupancy (diagnostics).
    pub fn occupancy(&self) -> (usize, usize) {
        (self.sig_read.occupied(), self.sig_write.occupied())
    }

    /// Observability gauges over both signatures: occupied slots, fixed
    /// slot capacity (0 for exact stores), cumulative evictions and an
    /// occupancy-based false-positive-rate estimate (Formula 2 inverted:
    /// the observed occupancy pins down the effective insert count, which
    /// [`dp_sig::predicted_fpr`] turns back into a rate). Must be read
    /// before [`AlgoState::finish`] consumes the state.
    pub fn sig_gauges(&self) -> SigGauges {
        let est_read = gauge_fpr_pct(self.sig_read.slot_capacity(), self.sig_read.occupied());
        let est_write = gauge_fpr_pct(self.sig_write.slot_capacity(), self.sig_write.occupied());
        SigGauges {
            occupied_slots: (self.sig_read.occupied() + self.sig_write.occupied()) as u64,
            total_slots: (self.sig_read.slot_capacity() + self.sig_write.slot_capacity()) as u64,
            evictions: self.sig_read.evictions() + self.sig_write.evictions(),
            est_fpr_pct: est_read.max(est_write),
        }
    }

    /// The sink location a dependence on `addr` would currently use as its
    /// write source, if any (test hook).
    pub fn last_write(&self, addr: u64) -> Option<SourceLoc> {
        self.sig_write.get(addr).map(|e| e.loc)
    }

    /// Thread of the last write to `addr`, if tracked (test hook).
    pub fn last_write_thread(&self, addr: u64) -> Option<ThreadId> {
        self.sig_write.get(addr).map(|e| e.thread)
    }

    /// Timestamp of the last write to `addr`, if tracked (test hook).
    pub fn last_write_ts(&self, addr: u64) -> Option<Timestamp> {
        self.sig_write.get(addr).map(|e| e.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_sig::{ExtendedSlot, PerfectSignature, Signature};
    use dp_types::loc::loc;

    type Perfect = AlgoState<PerfectSignature>;

    fn perfect() -> Perfect {
        AlgoState::new(PerfectSignature::new(), PerfectSignature::new(), AlgoOptions::default())
    }

    fn acc(kind: AccessKind, addr: u64, ts: u64, line: u32) -> TraceEvent {
        TraceEvent::Access(MemAccess { addr, ts, loc: loc(1, line), var: 1, thread: 0, kind })
    }

    fn deps_of(s: &Perfect) -> Vec<(DepType, u32, u32)> {
        s.store
            .dependences()
            .map(|(d, _)| (d.edge.dtype, d.sink.loc.line, d.edge.source_loc.line))
            .collect()
    }

    #[test]
    fn init_raw_war_waw_sequence() {
        let mut s = perfect();
        s.on_event(&acc(AccessKind::Write, 0x8, 1, 10)); // INIT @10
        s.on_event(&acc(AccessKind::Read, 0x8, 2, 11)); // RAW 11<-10
        s.on_event(&acc(AccessKind::Write, 0x8, 3, 12)); // WAR 12<-11, WAW 12<-10
        s.on_event(&acc(AccessKind::Read, 0x8, 4, 13)); // RAW 13<-12
        let mut d = deps_of(&s);
        d.sort();
        assert_eq!(
            d,
            vec![
                (DepType::Raw, 11, 10),
                (DepType::Raw, 13, 12),
                (DepType::War, 12, 11),
                (DepType::Waw, 12, 10),
                (DepType::Init, 10, 10),
            ]
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect::<Vec<_>>()
        );
        assert_eq!(s.counters().accesses, 4);
    }

    #[test]
    fn rar_not_recorded() {
        let mut s = perfect();
        s.on_event(&acc(AccessKind::Read, 0x8, 1, 10));
        s.on_event(&acc(AccessKind::Read, 0x8, 2, 11));
        assert_eq!(s.store.merged_len(), 0);
    }

    #[test]
    fn reads_of_never_written_address_build_nothing() {
        let mut s = perfect();
        s.on_event(&acc(AccessKind::Read, 0x8, 1, 10));
        s.on_event(&acc(AccessKind::Write, 0x8, 2, 11)); // INIT (no WAR per Algorithm 1)
                                                         // Per the pseudocode the WAR is *not* built when the write slot is
                                                         // empty — the write is classified as initialization.
        let d = deps_of(&s);
        assert_eq!(d, vec![(DepType::Init, 11, 11)]);
    }

    #[test]
    fn loop_carried_reduction_detected() {
        let mut s = perfect();
        // loop over: read acc (line 5), write acc (line 5)
        s.on_event(&acc(AccessKind::Write, 0x10, 1, 2)); // init acc before loop
        s.on_event(&TraceEvent::LoopBegin { loop_id: 7, loc: loc(1, 4), thread: 0, ts: 2 });
        for it in 0..3u64 {
            s.on_event(&TraceEvent::LoopIter { loop_id: 7, iter: it, thread: 0, ts: 3 + it * 10 });
            s.on_event(&acc(AccessKind::Read, 0x10, 4 + it * 10, 5));
            s.on_event(&acc(AccessKind::Write, 0x10, 5 + it * 10, 5));
        }
        s.on_event(&TraceEvent::LoopEnd {
            loop_id: 7,
            loc: loc(1, 6),
            iters: 3,
            thread: 0,
            ts: 40,
        });
        // The RAW 5<-5 must be flagged carried by loop 7 (iterations 1,2
        // read the value written in the previous iteration). Note there is
        // also a RAW 5<-2 from the pre-loop write (not carried).
        let raw = s
            .store
            .dependences()
            .find(|(d, _)| {
                d.edge.dtype == DepType::Raw && d.sink.loc.line == 5 && d.edge.source_loc.line == 5
            })
            .unwrap();
        assert!(raw.0.edge.flags.contains(DepFlags::LOOP_CARRIED));
        assert_eq!(raw.0.edge.carrier, Some(7));
        // First-iteration RAW (source = pre-loop write) is *not* carried —
        // but the merged record may also carry the FromOutside occurrence.
        let rec = s.store.loop_record(7).unwrap();
        assert_eq!(rec.total_iters, 3);
        assert_eq!(rec.instances, 1);
    }

    #[test]
    fn doall_loop_not_carried() {
        let mut s = perfect();
        s.on_event(&TraceEvent::LoopBegin { loop_id: 1, loc: loc(1, 1), thread: 0, ts: 1 });
        for it in 0..4u64 {
            s.on_event(&TraceEvent::LoopIter { loop_id: 1, iter: it, thread: 0, ts: 2 + it * 10 });
            let addr = 0x100 + it * 8; // disjoint per iteration
            s.on_event(&acc(AccessKind::Read, addr, 3 + it * 10, 2));
            s.on_event(&acc(AccessKind::Write, addr, 4 + it * 10, 2));
        }
        s.on_event(&TraceEvent::LoopEnd {
            loop_id: 1,
            loc: loc(1, 3),
            iters: 4,
            thread: 0,
            ts: 99,
        });
        for (d, _) in s.store.dependences() {
            assert!(!d.edge.flags.contains(DepFlags::LOOP_CARRIED), "unexpected carried dep {d:?}");
        }
    }

    #[test]
    fn lifetime_removal_prevents_false_raw() {
        let mut s = perfect();
        s.on_event(&acc(AccessKind::Write, 0x100, 1, 10));
        s.on_event(&TraceEvent::Dealloc { base: 0x100, len: 1, thread: 0, ts: 2 });
        s.on_event(&acc(AccessKind::Read, 0x100, 3, 20)); // fresh allocation
        assert!(
            !deps_of(&s).iter().any(|&(t, _, _)| t == DepType::Raw),
            "RAW across a free/realloc boundary"
        );
        assert_eq!(s.counters().lifetime_removals, 1);
    }

    #[test]
    fn reversal_flagging() {
        let mut s: AlgoState<PerfectSignature> = AlgoState::new(
            PerfectSignature::new(),
            PerfectSignature::new(),
            AlgoOptions {
                track_carried: false,
                check_reversal: true,
                record_loops: true,
                section_shift: 0,
            },
        );
        // Write arrives with ts 10, then a read with *smaller* ts 5 —
        // the events were pushed out of order: potential race.
        s.on_event(&acc(AccessKind::Write, 0x8, 10, 1));
        s.on_event(&acc(AccessKind::Read, 0x8, 5, 2));
        let (d, _) = s.store.dependences().find(|(d, _)| d.edge.dtype == DepType::Raw).unwrap();
        assert!(d.edge.flags.contains(DepFlags::REVERSED));
        assert_eq!(s.counters().reversed, 1);
    }

    #[test]
    fn signature_collisions_yield_false_deps_but_bounded_memory() {
        // 1-slot signature: every address collides; the algorithm still
        // runs and memory stays fixed.
        let sig = || Signature::<ExtendedSlot>::new(1);
        let mut s = AlgoState::new(
            sig(),
            sig(),
            AlgoOptions {
                track_carried: false,
                check_reversal: false,
                record_loops: false,
                section_shift: 0,
            },
        );
        for i in 0..100u64 {
            s.on_event(&acc(AccessKind::Write, 0x1000 + i * 8, i * 2 + 1, 1));
            s.on_event(&acc(AccessKind::Read, 0x1000 + i * 8, i * 2 + 2, 2));
        }
        // Only the very first write is INIT; all later ones collide into
        // occupied slots and produce (false) WAW/WAR records.
        assert!(s.store.merged_len() >= 2);
        assert!(s.memory_usage() < 10_000);
    }

    #[test]
    fn section_granularity_merges_nearby_statements() {
        let mk = |shift| {
            let mut s: AlgoState<PerfectSignature> = AlgoState::new(
                PerfectSignature::new(),
                PerfectSignature::new(),
                AlgoOptions { section_shift: shift, ..AlgoOptions::default() },
            );
            // writes at lines 16..24 and reads at 32..40: statement-level
            // yields many distinct pairs, 4-bit sections collapse them.
            for i in 0..8u64 {
                s.on_event(&acc(AccessKind::Write, 0x100 + i * 8, i + 1, 16 + i as u32));
            }
            for i in 0..8u64 {
                s.on_event(&acc(AccessKind::Read, 0x100 + i * 8, 100 + i, 32 + i as u32));
            }
            s.store.merged_len()
        };
        let fine = mk(0);
        let coarse = mk(4);
        assert!(coarse < fine, "coarse {coarse} fine {fine}");
        assert!(coarse <= 3, "coarse {coarse}"); // one INIT section + ~1 RAW section pair
    }

    #[test]
    fn sig_gauges_cover_both_stores() {
        let mut s = perfect();
        s.on_event(&acc(AccessKind::Write, 0x8, 1, 10));
        s.on_event(&acc(AccessKind::Write, 0x8, 2, 11)); // re-insert: 1 eviction
        s.on_event(&acc(AccessKind::Read, 0x8, 3, 12));
        let g = s.sig_gauges();
        assert_eq!(g.occupied_slots, 2, "one read entry + one write entry");
        assert_eq!(g.total_slots, 0, "exact stores have no fixed capacity");
        assert_eq!(g.evictions, 1);
        assert_eq!(g.est_fpr_pct, 0.0, "exact stores never produce false positives");

        let sig = || Signature::<ExtendedSlot>::new(8);
        let mut s = AlgoState::new(
            sig(),
            sig(),
            AlgoOptions { track_carried: false, ..AlgoOptions::default() },
        );
        for i in 0..4u64 {
            s.on_event(&acc(AccessKind::Write, 0x1000 + i * 8, i + 1, 1));
        }
        let g = s.sig_gauges();
        assert_eq!(g.total_slots, 16, "read + write signatures of 8 slots each");
        assert!(g.occupied_slots >= 1 && g.occupied_slots <= 4);
        assert!(g.est_fpr_pct > 0.0, "a partially full signature has nonzero predicted FPR");
        assert!(g.est_fpr_pct <= 100.0);
    }

    #[test]
    fn save_restore_resumes_identically() {
        // Feed a prefix (including a still-open loop), checkpoint, then
        // feed the identical suffix to the original and the restored
        // state: dependences, loop records and counters must match.
        let mut a = perfect();
        a.on_event(&acc(AccessKind::Write, 0x8, 1, 10));
        a.on_event(&TraceEvent::LoopBegin { loop_id: 7, loc: loc(1, 4), thread: 0, ts: 2 });
        a.on_event(&TraceEvent::LoopIter { loop_id: 7, iter: 0, thread: 0, ts: 3 });
        a.on_event(&acc(AccessKind::Read, 0x8, 4, 5));
        a.on_event(&acc(AccessKind::Write, 0x8, 5, 5));
        let mut out = ByteWriter::new();
        assert!(a.save_state(&mut out));
        let bytes = out.into_bytes();
        let mut b = perfect();
        b.restore_state(&bytes).unwrap();
        let suffix = |s: &mut Perfect| {
            s.on_event(&TraceEvent::LoopIter { loop_id: 7, iter: 1, thread: 0, ts: 13 });
            s.on_event(&acc(AccessKind::Read, 0x8, 14, 5)); // carried RAW
            s.on_event(&acc(AccessKind::Write, 0x8, 15, 5));
            s.on_event(&TraceEvent::LoopEnd {
                loop_id: 7,
                loc: loc(1, 6),
                iters: 2,
                thread: 0,
                ts: 20,
            });
        };
        suffix(&mut a);
        suffix(&mut b);
        assert_eq!(a.counters(), b.counters());
        let deps =
            |s: &Perfect| s.store.dependences().map(|(d, v)| (d, v.clone())).collect::<Vec<_>>();
        assert_eq!(deps(&a), deps(&b));
        assert_eq!(a.store.loop_record(7), b.store.loop_record(7));
        let carried = deps(&b);
        assert!(
            carried
                .iter()
                .any(|(d, _)| d.edge.flags.contains(DepFlags::LOOP_CARRIED)
                    && d.edge.carrier == Some(7)),
            "loop nest survived the checkpoint: {carried:?}"
        );
    }

    #[test]
    fn save_restore_works_for_signature_stores() {
        let sig = || Signature::<ExtendedSlot>::new(64);
        let mk = || {
            AlgoState::new(
                sig(),
                sig(),
                AlgoOptions { check_reversal: true, ..AlgoOptions::default() },
            )
        };
        let mut a = mk();
        for i in 0..40u64 {
            a.on_event(&acc(AccessKind::Write, 0x1000 + i * 8, i * 2 + 1, 1 + i as u32));
            a.on_event(&acc(AccessKind::Read, 0x1000 + i * 8, i * 2 + 2, 50));
        }
        let mut out = ByteWriter::new();
        assert!(a.save_state(&mut out));
        let bytes = out.into_bytes();
        let mut b = mk();
        b.restore_state(&bytes).unwrap();
        assert_eq!(a.occupancy(), b.occupancy());
        assert_eq!(a.counters(), b.counters());
        // Identical state re-serializes to identical bytes.
        let mut again = ByteWriter::new();
        assert!(b.save_state(&mut again));
        assert_eq!(again.into_bytes(), bytes);
        // A differently-sized signature refuses the blob.
        let small = || Signature::<ExtendedSlot>::new(8);
        let mut c = AlgoState::new(small(), small(), AlgoOptions::default());
        assert!(c.restore_state(&bytes).is_err());
    }

    #[test]
    fn extract_inject_roundtrip() {
        let mut a = perfect();
        a.on_event(&acc(AccessKind::Write, 0x8, 1, 10));
        a.on_event(&acc(AccessKind::Read, 0x8, 2, 11));
        let (r, w) = a.extract(0x8);
        assert_eq!(r.unwrap().loc.line, 11);
        assert_eq!(w.unwrap().loc.line, 10);
        assert_eq!(a.last_write(0x8), None);
        let mut b = perfect();
        b.inject(0x8, r, w);
        b.on_event(&acc(AccessKind::Read, 0x8, 3, 12));
        let d = deps_of(&b);
        assert!(d.contains(&(DepType::Raw, 12, 10)), "{d:?}");
    }
}
