//! Session lifecycle: one engine serving one event stream, buildable
//! from a compact wire-encodable spec.
//!
//! Both consumers of a recorded or streamed trace — the CLI's offline
//! `replay` and the network server's per-client sessions — need the same
//! thing: pick an engine (serial in-line or the parallel pipeline),
//! configure it, feed it events, checkpoint it at barriers, and finish
//! it into a [`ProfileResult`]. [`SessionSpec`] is that choice in
//! serializable form (it travels in a `Hello` frame and in the
//! checkpoint CONFIG section), and [`ProfileSession`] is the running
//! engine behind a uniform event/heartbeat/checkpoint surface.

use crate::checkpoint::{CheckpointData, CheckpointError};
use crate::config::{OverflowPolicy, ProfilerConfig, TransportKind};
use crate::parallel::AnyParallelProfiler;
use crate::result::ProfileResult;
use crate::seq::SequentialProfiler;
use crate::DefaultSig;
use dp_types::{ByteReader, ByteWriter, TraceEvent, WireError};

/// Which engine a session runs and how it is sized — everything needed
/// to rebuild an identically-configured engine elsewhere (on a server,
/// or in a resumed process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSpec {
    /// Parallel pipeline (`true`) or serial in-line engine (`false`).
    pub parallel: bool,
    /// Queue transport for the parallel pipeline.
    pub transport: TransportKind,
    /// Full-queue policy for the parallel pipeline.
    pub overflow: OverflowPolicy,
    /// Hot-address redistribution for the parallel pipeline.
    pub redistribution: bool,
    /// Worker count for the parallel pipeline.
    pub workers: usize,
    /// Total signature slots (split across workers when parallel).
    pub slots: usize,
}

impl Default for SessionSpec {
    /// Matches `depprof replay`'s defaults, so a default-spec session
    /// profiles a stream exactly like a flagless offline replay.
    fn default() -> Self {
        SessionSpec {
            parallel: false,
            transport: TransportKind::Spsc,
            overflow: OverflowPolicy::Block,
            redistribution: true,
            workers: 8,
            slots: 1 << 20,
        }
    }
}

impl SessionSpec {
    /// Serializes the spec (for a `Hello` frame or a checkpoint CONFIG
    /// blob).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(self.parallel as u8);
        w.u8(match self.transport {
            TransportKind::Spsc => 0,
            TransportKind::Mpmc => 1,
            TransportKind::Lock => 2,
        });
        w.u8(matches!(self.overflow, OverflowPolicy::Drop) as u8);
        w.u8(self.redistribution as u8);
        w.u32(self.workers as u32);
        w.u64(self.slots as u64);
        w.into_bytes()
    }

    /// Decodes a spec, rejecting unknown codes and trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        let parallel = r.u8()? != 0;
        let transport = match r.u8()? {
            0 => TransportKind::Spsc,
            1 => TransportKind::Mpmc,
            2 => TransportKind::Lock,
            _ => return Err(WireError::Invalid("unknown transport code in session spec")),
        };
        let overflow = match r.u8()? {
            0 => OverflowPolicy::Block,
            1 => OverflowPolicy::Drop,
            _ => return Err(WireError::Invalid("unknown overflow code in session spec")),
        };
        let redistribution = r.u8()? != 0;
        let workers = r.u32()? as usize;
        let slots = r.u64()? as usize;
        if !r.is_done() {
            return Err(WireError::Invalid("trailing bytes after session spec"));
        }
        if slots == 0 || (parallel && workers == 0) {
            return Err(WireError::Invalid("session spec with zero slots or workers"));
        }
        Ok(SessionSpec { parallel, transport, overflow, redistribution, workers, slots })
    }

    /// The [`ProfilerConfig`] this spec describes (parallel engine only).
    pub fn config(&self) -> ProfilerConfig {
        ProfilerConfig::default()
            .with_workers(self.workers)
            .with_slots(self.slots)
            .with_transport(self.transport)
            .with_overflow(self.overflow)
            .with_redistribution(self.redistribution)
    }

    /// Builds a fresh engine for this spec.
    pub fn build(&self) -> ProfileSession {
        if self.parallel {
            let cfg = self.config();
            let slots = cfg.slots_per_worker();
            ProfileSession::Parallel(AnyParallelProfiler::new(cfg, move || {
                dp_sig::Signature::new(slots)
            }))
        } else {
            ProfileSession::Serial(SequentialProfiler::with_signature(self.slots))
        }
    }

    /// Rebuilds an engine from a checkpoint taken by an engine of the
    /// same spec, restoring its full extraction state.
    pub fn resume(&self, data: &CheckpointData) -> Result<ProfileSession, CheckpointError> {
        if self.parallel {
            let cfg = self.config();
            let slots = cfg.slots_per_worker();
            let p = AnyParallelProfiler::resume(cfg, move || dp_sig::Signature::new(slots), data)?;
            Ok(ProfileSession::Parallel(p))
        } else {
            let mut p = SequentialProfiler::with_signature(self.slots);
            p.restore(data)?;
            Ok(ProfileSession::Serial(p))
        }
    }
}

/// A running engine — serial or parallel — behind the uniform surface a
/// stream feeder needs: events in, heartbeat out, checkpointable,
/// finishable.
#[allow(clippy::large_enum_variant)]
pub enum ProfileSession {
    /// The in-line serial profiler.
    Serial(SequentialProfiler<DefaultSig>),
    /// The parallel offload pipeline.
    Parallel(AnyParallelProfiler<DefaultSig>),
}

impl ProfileSession {
    /// Feeds one event.
    #[inline]
    pub fn on_event(&mut self, ev: TraceEvent) {
        match self {
            ProfileSession::Serial(p) => p.on_event(&ev),
            ProfileSession::Parallel(p) => {
                use dp_types::Tracer;
                p.event(ev)
            }
        }
    }

    /// Monotone downstream-progress value. The serial engine consumes
    /// in-line, so the feed counter alone describes its progress.
    pub fn heartbeat(&self) -> u64 {
        match self {
            ProfileSession::Serial(_) => 0,
            ProfileSession::Parallel(p) => p.heartbeat(),
        }
    }

    /// Turns on online analysis: the engine's dependence stores start
    /// tracking movement so [`ProfileSession::collect_deltas`] can feed
    /// the live analysis state. Idempotent; a late enable catches up by
    /// shipping full history on the first collection.
    pub fn enable_online(&mut self) {
        match self {
            ProfileSession::Serial(p) => p.enable_online(),
            ProfileSession::Parallel(p) => p.enable_online(),
        }
    }

    /// True once [`ProfileSession::enable_online`] has run.
    pub fn online_enabled(&self) -> bool {
        match self {
            ProfileSession::Serial(p) => p.online_enabled(),
            ProfileSession::Parallel(p) => p.online_enabled(),
        }
    }

    /// Drains the dependence-map movement since the previous drain (one
    /// delta per store that moved; empty when online analysis is off).
    pub fn collect_deltas(&mut self) -> Vec<crate::store::AnalysisDelta> {
        match self {
            ProfileSession::Serial(p) => {
                let d = p.take_delta();
                if d.is_empty() {
                    Vec::new()
                } else {
                    vec![d]
                }
            }
            ProfileSession::Parallel(p) => p.collect_deltas(),
        }
    }

    /// Quiesces the engine and captures a checkpoint at the current
    /// stream position.
    pub fn checkpoint_data(
        &mut self,
        generation: u64,
        records_read: u64,
        config: Vec<u8>,
    ) -> Result<CheckpointData, CheckpointError> {
        match self {
            ProfileSession::Serial(p) => p.checkpoint_data(generation, records_read, config),
            ProfileSession::Parallel(p) => p.checkpoint_data(generation, records_read, config),
        }
    }

    /// Drains and finishes the engine.
    pub fn finish(self) -> ProfileResult {
        match self {
            ProfileSession::Serial(p) => p.finish(),
            ProfileSession::Parallel(p) => p.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::{loc::loc, MemAccess};

    #[test]
    fn spec_roundtrips_and_rejects_junk() {
        let spec = SessionSpec {
            parallel: true,
            transport: TransportKind::Mpmc,
            overflow: OverflowPolicy::Drop,
            redistribution: false,
            workers: 4,
            slots: 1 << 14,
        };
        let bytes = spec.encode();
        assert_eq!(SessionSpec::decode(&bytes).unwrap(), spec);
        assert_eq!(
            SessionSpec::decode(&SessionSpec::default().encode()).unwrap(),
            SessionSpec::default()
        );
        assert!(SessionSpec::decode(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        let mut long = bytes.clone();
        long.push(0);
        assert!(SessionSpec::decode(&long).is_err(), "trailing");
        let mut bad = bytes.clone();
        bad[1] = 9;
        assert!(SessionSpec::decode(&bad).is_err(), "bad transport code");
    }

    #[test]
    fn serial_and_parallel_sessions_agree() {
        let evs: Vec<TraceEvent> = (0..200u64)
            .map(|i| {
                let a = 0x100 + (i % 7) * 8;
                if i % 3 == 0 {
                    TraceEvent::Access(MemAccess::write(a, i + 1, loc(1, 1), 0, 0))
                } else {
                    TraceEvent::Access(MemAccess::read(a, i + 1, loc(1, 2), 0, 0))
                }
            })
            .collect();
        let deps = |spec: SessionSpec| {
            let mut s = spec.build();
            for ev in &evs {
                s.on_event(*ev);
            }
            let r = s.finish();
            let mut v: Vec<String> = r.deps.dependences().map(|(d, _)| format!("{d:?}")).collect();
            v.sort();
            v
        };
        let serial = deps(SessionSpec::default());
        let parallel = deps(SessionSpec {
            parallel: true,
            workers: 2,
            slots: 1 << 12,
            ..SessionSpec::default()
        });
        assert_eq!(serial, parallel);
        assert!(!serial.is_empty());
    }

    #[test]
    fn checkpointed_session_resumes_identically() {
        let spec = SessionSpec { slots: 1 << 12, ..SessionSpec::default() };
        let evs: Vec<TraceEvent> = (0..100u64)
            .map(|i| {
                TraceEvent::Access(MemAccess::write(0x8 + (i % 5) * 8, i + 1, loc(1, 1), 0, 0))
            })
            .collect();
        let mut full = spec.build();
        for ev in &evs {
            full.on_event(*ev);
        }
        let reference = full.finish();

        let mut first = spec.build();
        for ev in &evs[..40] {
            first.on_event(*ev);
        }
        let data = first.checkpoint_data(1, 40, spec.encode()).unwrap();
        let respec = SessionSpec::decode(&data.config).unwrap();
        assert_eq!(respec, spec);
        let mut resumed = respec.resume(&data).unwrap();
        for ev in &evs[40..] {
            resumed.on_event(*ev);
        }
        let r2 = resumed.finish();
        assert_eq!(reference.stats.accesses, r2.stats.accesses);
        let deps = |r: &ProfileResult| {
            let mut v: Vec<String> =
                r.deps.dependences().map(|(d, val)| format!("{d:?}={val:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(deps(&reference), deps(&r2));
    }
}
