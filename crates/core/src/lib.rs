//! `dp-core` — the data-dependence profiler itself.
//!
//! This crate implements the paper's contribution on top of the substrates:
//!
//! - [`algo`] — Algorithm 1: the signature-based dependence-extraction
//!   step shared by every engine, generic over the
//!   [`AccessStore`](dp_sig::AccessStore) policy (signature, perfect
//!   signature, shadow memory, hash table).
//! - [`seq`] — the serial profiler (Section III): consumes the event
//!   stream in-line.
//! - [`parallel`] — the parallel pipeline for sequential targets
//!   (Section IV, Figure 2): the profiled program's thread routes accesses
//!   into per-worker queues by `addr % W`; workers keep private signatures
//!   and duplicate-free dependence maps; hot-address statistics trigger
//!   redistribution. Generic over the per-worker transport
//!   ([`TransportKind`]): the SPSC fast path for sequential targets,
//!   the lock-free MPMC build ([`dp_queue::MpmcQueue`]) and the
//!   lock-based comparator ([`dp_queue::LockQueue`]) of Figure 5 share
//!   every other line of code.
//! - [`mt`] — the multi-threaded-target engine (Section V): one tracer per
//!   target thread, flush-on-unlock for the access/push atomicity of
//!   Figure 4, and timestamp-reversal detection flagging potential data
//!   races.
//! - [`store`] — the merged dependence store (identical dependences are
//!   counted, not duplicated — the 10⁵× output reduction of Section
//!   III-B).
//! - [`loops`] — runtime control-flow tracking (BGN/END records, iteration
//!   counts) and loop-carried classification.
//! - [`report`] — the textual output format of Figures 1 and 3.

#![warn(missing_docs)]

pub mod algo;
pub mod checkpoint;
pub mod config;
pub mod exectree;
pub mod loops;
pub mod mt;
pub mod parallel;
pub mod report;
pub mod result;
pub mod seq;
pub mod session;
pub mod store;
pub mod watchdog;

pub use algo::{AlgoOptions, AlgoState};
pub use checkpoint::{
    CheckpointData, CheckpointError, CheckpointStats, CheckpointStore, CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
};
pub use config::{OverflowPolicy, ProfilerConfig, TransportKind};
pub use exectree::{ExecNode, ExecNodeKind, ExecTree};
pub use mt::MtProfiler;
pub use parallel::{AnyParallelProfiler, ParallelProfiler, SpscProfiler, WorkerMsg};
pub use result::{FailureCause, MemoryReport, ProfileResult, ProfileStats, WorkerFailure};
pub use watchdog::Watchdog;
// Re-exported so downstream code can script faults without depending on
// dp-queue directly.
pub use dp_queue::{FaultPlan, WorkerFault};
// Re-exported so downstream code can read snapshots and install
// observers without depending on dp-metrics directly.
pub use dp_metrics::{
    CheckpointMetrics, Conservation, MetricsSnapshot, ObserverHandle, PipelineObserver,
    SessionMetrics, SigGauges,
};
pub use seq::{offload_sequential, SequentialProfiler};
pub use session::{ProfileSession, SessionSpec};
pub use store::{AnalysisDelta, DeltaEdge, DeltaLoop, DepStore, EdgeVal, LoopRecord};

/// Convenience alias: the default signature store (extended slots: source
/// location + thread + timestamp).
pub type DefaultSig = dp_sig::Signature<dp_sig::ExtendedSlot>;

/// Convenience alias: compact 4-byte-slot signature (the layout whose
/// memory numbers the paper reports; no thread/timestamp, so loop-carried
/// classification and race detection are unavailable).
pub type CompactSig = dp_sig::Signature<dp_sig::CompactSlot>;
