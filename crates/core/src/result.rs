//! Profiling results: dependences, statistics and memory accounting.

use crate::algo::AlgoCounters;
use crate::exectree::ExecTree;
use crate::store::DepStore;

/// Deterministic memory accounting of the profiler's own data structures —
/// the quantity Figures 7 and 8 report (there via max-RSS; here summed
/// from the structures directly so results are machine-independent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// All signature arrays (read+write, all workers).
    pub signatures: usize,
    /// Worker queues.
    pub queues: usize,
    /// Chunk pool at its high-water mark.
    pub chunks: usize,
    /// Merged dependence storage (global + peak of locals).
    pub dep_store: usize,
    /// Access statistics and redistribution rules (Section IV-A).
    pub stats_maps: usize,
}

impl MemoryReport {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.signatures + self.queues + self.chunks + self.dep_store + self.stats_maps
    }
}

/// Aggregate run statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileStats {
    /// Events processed across all workers.
    pub events: u64,
    /// Memory accesses among them.
    pub accesses: u64,
    /// Reads.
    pub reads: u64,
    /// Writes.
    pub writes: u64,
    /// Dynamic (pre-merge) dependence records.
    pub deps_built: u64,
    /// Distinct (merged) dependences.
    pub deps_merged: u64,
    /// Chunks pushed through the queues.
    pub chunks_pushed: u64,
    /// Redistribution rounds performed.
    pub redistributions: u64,
    /// Addresses currently governed by redistribution rules.
    pub redistributed_addrs: u64,
    /// REVERSED-flagged dependences (potential races, Section V-B).
    pub reversed: u64,
    /// Addresses dropped by variable-lifetime analysis.
    pub lifetime_removals: u64,
}

impl ProfileStats {
    /// Folds a worker's counters in.
    pub fn absorb(&mut self, c: AlgoCounters) {
        self.events += c.events;
        self.accesses += c.accesses;
        self.reads += c.reads;
        self.writes += c.writes;
        self.reversed += c.reversed;
        self.lifetime_removals += c.lifetime_removals;
    }
}

/// The outcome of a profiling run.
#[derive(Debug, Clone, Default)]
pub struct ProfileResult {
    /// Merged global dependence store.
    pub deps: DepStore,
    /// Merged dynamic execution tree (Section VIII representation).
    pub exec_tree: ExecTree,
    /// Run statistics.
    pub stats: ProfileStats,
    /// Memory accounting.
    pub memory: MemoryReport,
    /// Profiling workers used (0 = in-line serial engine).
    pub workers: usize,
    /// Events processed by each worker — the load-balance view behind
    /// Section IV-A (redistribution) and the imbalance discussion of
    /// Section VI-B1. Empty for the in-line serial engine.
    pub per_worker_events: Vec<u64>,
}

impl ProfileResult {
    /// Load imbalance across workers: max/mean of per-worker event
    /// counts (1.0 = perfectly balanced; meaningless for serial runs).
    pub fn load_imbalance(&self) -> f64 {
        if self.per_worker_events.is_empty() {
            return 1.0;
        }
        let max = *self.per_worker_events.iter().max().unwrap() as f64;
        let mean =
            self.per_worker_events.iter().sum::<u64>() as f64 / self.per_worker_events.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// The E9 merge factor: dynamic records per distinct record.
    pub fn merge_factor(&self) -> f64 {
        if self.stats.deps_merged == 0 {
            1.0
        } else {
            self.stats.deps_built as f64 / self.stats.deps_merged as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_total_sums() {
        let m = MemoryReport { signatures: 1, queues: 2, chunks: 3, dep_store: 4, stats_maps: 5 };
        assert_eq!(m.total(), 15);
    }

    #[test]
    fn merge_factor() {
        let mut r = ProfileResult::default();
        assert_eq!(r.merge_factor(), 1.0);
        r.stats.deps_built = 1000;
        r.stats.deps_merged = 10;
        assert_eq!(r.merge_factor(), 100.0);
    }
}
