//! Profiling results: dependences, statistics and memory accounting.

use crate::algo::AlgoCounters;
use crate::exectree::ExecTree;
use crate::store::DepStore;
use dp_metrics::MetricsSnapshot;

/// Deterministic memory accounting of the profiler's own data structures —
/// the quantity Figures 7 and 8 report (there via max-RSS; here summed
/// from the structures directly so results are machine-independent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// All signature arrays (read+write, all workers).
    pub signatures: usize,
    /// Worker queues.
    pub queues: usize,
    /// Chunk pool at its high-water mark.
    pub chunks: usize,
    /// Merged dependence storage (global + peak of locals).
    pub dep_store: usize,
    /// Access statistics and redistribution rules (Section IV-A).
    pub stats_maps: usize,
}

impl MemoryReport {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.signatures + self.queues + self.chunks + self.dep_store + self.stats_maps
    }
}

/// Why a profiling worker was lost mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The worker's thread panicked; the payload (if it was a string) is
    /// preserved for diagnostics.
    Panic(String),
    /// The worker stopped consuming its queue and did not exit within
    /// the drain deadline; it was abandoned by the supervisor.
    Unresponsive,
}

/// Record of a lost worker: which one, out of how many, and why. The
/// worker id pins down exactly which addresses the degraded profile is
/// missing — under Formula 1 (with the 8-byte alignment shifted out)
/// worker `k` of `W` owns every address with `(addr >> 3) % W == k`,
/// except where redistribution rules moved an address elsewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Id of the failed worker.
    pub worker: usize,
    /// Total workers in the run (so the owned residue class is
    /// reconstructible from the record alone).
    pub workers: usize,
    /// What happened.
    pub cause: FailureCause,
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {}/{} (addresses with (addr>>3) % {} == {}) ",
            self.worker, self.workers, self.workers, self.worker
        )?;
        match &self.cause {
            FailureCause::Panic(msg) => write!(f, "panicked: {msg}"),
            FailureCause::Unresponsive => write!(f, "unresponsive, abandoned"),
        }
    }
}

/// Aggregate run statistics.
#[derive(Debug, Clone, Default)]
pub struct ProfileStats {
    /// Events processed across all workers.
    pub events: u64,
    /// Memory accesses among them.
    pub accesses: u64,
    /// Reads.
    pub reads: u64,
    /// Writes.
    pub writes: u64,
    /// Dynamic (pre-merge) dependence records.
    pub deps_built: u64,
    /// Distinct (merged) dependences.
    pub deps_merged: u64,
    /// Chunks pushed through the queues.
    pub chunks_pushed: u64,
    /// Redistribution rounds performed.
    pub redistributions: u64,
    /// Addresses currently governed by redistribution rules.
    pub redistributed_addrs: u64,
    /// REVERSED-flagged dependences (potential races, Section V-B).
    pub reversed: u64,
    /// Addresses dropped by variable-lifetime analysis.
    pub lifetime_removals: u64,
    /// Events the router dropped (dead or stalled workers under
    /// [`OverflowPolicy::Drop`](crate::config::OverflowPolicy)); sum of
    /// `dropped_per_worker`.
    pub dropped_events: u64,
    /// Per-worker breakdown of `dropped_events` (indexed by the worker
    /// the events were destined for). Empty when nothing was dropped.
    pub dropped_per_worker: Vec<u64>,
    /// Events re-routed away from a dead worker to a surviving one.
    pub rerouted_events: u64,
    /// In-flight migrations cancelled because a participant died or the
    /// drain deadline expired.
    pub cancelled_migrations: u64,
    /// `Extracted` replies that matched no pending migration (logged and
    /// ignored instead of killing the router).
    pub spurious_replies: u64,
    /// Workers lost mid-run. Empty on a healthy run.
    pub worker_failures: Vec<WorkerFailure>,
}

impl ProfileStats {
    /// Folds a worker's counters in.
    pub fn absorb(&mut self, c: AlgoCounters) {
        self.events += c.events;
        self.accesses += c.accesses;
        self.reads += c.reads;
        self.writes += c.writes;
        self.reversed += c.reversed;
        self.lifetime_removals += c.lifetime_removals;
    }

    /// True when the profile is incomplete: a worker was lost or events
    /// were dropped. Dependences present are still exact; dependences
    /// involving lost events are missing.
    pub fn degraded(&self) -> bool {
        !self.worker_failures.is_empty() || self.dropped_events > 0
    }
}

/// The outcome of a profiling run.
#[derive(Debug, Clone, Default)]
pub struct ProfileResult {
    /// Merged global dependence store.
    pub deps: DepStore,
    /// Merged dynamic execution tree (Section VIII representation).
    pub exec_tree: ExecTree,
    /// Run statistics.
    pub stats: ProfileStats,
    /// Memory accounting.
    pub memory: MemoryReport,
    /// Profiling workers used (0 = in-line serial engine).
    pub workers: usize,
    /// Events processed by each worker — the load-balance view behind
    /// Section IV-A (redistribution) and the imbalance discussion of
    /// Section VI-B1. Empty for the in-line serial engine.
    pub per_worker_events: Vec<u64>,
    /// Pipeline observability counters (all-zero with `enabled: false`
    /// when the `metrics` feature is off — the struct itself is always
    /// present so `--stats` output has a stable shape).
    pub metrics: MetricsSnapshot,
}

impl ProfileResult {
    /// Load imbalance across workers: max/mean of per-worker event
    /// counts (1.0 = perfectly balanced; meaningless for serial runs).
    pub fn load_imbalance(&self) -> f64 {
        if self.per_worker_events.is_empty() {
            return 1.0;
        }
        let max = *self.per_worker_events.iter().max().unwrap() as f64;
        let mean =
            self.per_worker_events.iter().sum::<u64>() as f64 / self.per_worker_events.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// True when the run lost a worker or dropped events; see
    /// [`ProfileStats::degraded`].
    pub fn degraded(&self) -> bool {
        self.stats.degraded()
    }

    /// The E9 merge factor: dynamic records per distinct record.
    pub fn merge_factor(&self) -> f64 {
        if self.stats.deps_merged == 0 {
            1.0
        } else {
            self.stats.deps_built as f64 / self.stats.deps_merged as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_total_sums() {
        let m = MemoryReport { signatures: 1, queues: 2, chunks: 3, dep_store: 4, stats_maps: 5 };
        assert_eq!(m.total(), 15);
    }

    #[test]
    fn degraded_flags() {
        let mut r = ProfileResult::default();
        assert!(!r.degraded());
        r.stats.dropped_events = 1;
        assert!(r.degraded());
        let mut r = ProfileResult::default();
        r.stats.worker_failures.push(WorkerFailure {
            worker: 2,
            workers: 8,
            cause: FailureCause::Panic("boom".into()),
        });
        assert!(r.degraded());
        let shown = r.stats.worker_failures[0].to_string();
        assert!(shown.contains("worker 2/8"), "{shown}");
        assert!(shown.contains("panicked: boom"), "{shown}");
    }

    #[test]
    fn merge_factor() {
        let mut r = ProfileResult::default();
        assert_eq!(r.merge_factor(), 1.0);
        r.stats.deps_built = 1000;
        r.stats.deps_merged = 10;
        assert_eq!(r.merge_factor(), 100.0);
    }
}
