//! The parallel profiling pipeline for sequential targets (Section IV,
//! Figure 2).
//!
//! The instrumented program's thread (the "producer") routes each memory
//! access to the worker that owns its address:
//!
//! ```text
//! worker ID = memory address % W                       (Formula 1)
//! ```
//!
//! overridden by the redistribution rules of Section IV-A ("Redistribution
//! rules are stored in a map and have higher priority than the modulo
//! function"). Accesses travel in fixed-capacity chunks through one
//! bounded queue per worker; because an address is owned by exactly one
//! worker and chunks preserve program order, each worker sees its
//! addresses' accesses in temporal order, which is what makes the
//! RAW/WAR/WAW distinction sound. Workers run Algorithm 1 against private
//! signatures and store dependences in private duplicate-free maps, merged
//! once at the end.
//!
//! ## Hot-address redistribution (Section IV-A)
//!
//! The router counts accesses per address; every
//! [`ProfilerConfig::redistribute_every`] chunks it checks whether the
//! `top_k` hottest addresses are spread evenly over the workers. If not,
//! it reassigns them round-robin by heat and *migrates the signature
//! state*: the old owner receives an `Extract` message (positioned after
//! all of the address's earlier accesses — queue FIFO guarantees this),
//! replies with the slot contents on a response queue, and the router
//! forwards an `Inject` to the new owner before any buffered or subsequent
//! access of that address reaches it. The address's accesses are buffered
//! at the router while the migration is in flight, so per-address temporal
//! order is preserved across the move.
//!
//! The engine is generic over the per-worker [`Transport`]: the SPSC
//! fast path ([`dp_queue::SpscTransport`] — sound here because a
//! sequential target has exactly one producing thread), the lock-free
//! MPMC build ([`dp_queue::MpmcQueue`] via [`Shared`]) and the
//! lock-based comparator of Figure 5 ([`dp_queue::LockQueue`] via
//! [`Shared`]); everything else is shared, so measured differences are
//! attributable to the transport alone.

use crate::algo::{AlgoCounters, AlgoOptions, AlgoState};
use crate::config::{ProfilerConfig, TransportKind};
use crate::result::{MemoryReport, ProfileResult, ProfileStats};
use crate::store::DepStore;
use dp_queue::{
    Backoff, Chunk, ChunkPool, MpmcQueue, Shared, SpscTransport, Transport, TransportReceiver,
    TransportSender,
};
use dp_sig::{AccessStore, SigEntry};
use dp_types::{Address, FxHashMap, TraceEvent, Tracer};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Messages flowing through a worker's queue.
pub enum WorkerMsg {
    /// A chunk of trace events.
    Events(Chunk),
    /// Redistribution: extract and return the signature state of `addr`.
    Extract {
        /// Address being migrated away from this worker.
        addr: Address,
    },
    /// Redistribution: adopt the signature state of `addr`.
    Inject {
        /// Address being migrated to this worker.
        addr: Address,
        /// Read-signature entry, if any.
        read: Option<SigEntry>,
        /// Write-signature entry, if any.
        write: Option<SigEntry>,
    },
    /// Drain and exit.
    Shutdown,
}

/// Worker→router responses (redistribution only; bounded by `top_k`).
enum RouterMsg {
    Extracted { addr: Address, read: Option<SigEntry>, write: Option<SigEntry> },
}

struct WorkerOutput {
    store: DepStore,
    exec_tree: crate::exectree::ExecTree,
    counters: AlgoCounters,
    sig_mem: usize,
}

struct Inflight {
    target: usize,
    buffered: Vec<TraceEvent>,
}

/// The parallel profiler. Implements [`Tracer`], so the instrumented
/// program pushes events into it directly; call
/// [`ParallelProfiler::finish`] afterwards.
///
/// Generic over the per-worker [`Transport`]. With [`SpscTransport`] the
/// senders are `!Sync`, which makes the whole profiler `!Sync`: the
/// compiler enforces the single-producer contract the SPSC fast path
/// relies on.
pub struct ParallelProfiler<S: AccessStore + 'static, X: Transport<WorkerMsg>> {
    senders: Vec<X::Sender>,
    pool: Arc<ChunkPool>,
    resp: Arc<MpmcQueue<RouterMsg>>,
    handles: Vec<JoinHandle<WorkerOutput>>,
    pending: Vec<Chunk>,
    counts: FxHashMap<Address, u64>,
    rules: FxHashMap<Address, usize>,
    inflight: FxHashMap<Address, Inflight>,
    chunks_pushed: u64,
    redistributions: u64,
    in_rebalance: bool,
    in_poll: bool,
    cfg: ProfilerConfig,
    _store: std::marker::PhantomData<S>,
}

impl<S, X> ParallelProfiler<S, X>
where
    S: AccessStore + 'static,
    X: Transport<WorkerMsg>,
{
    /// Starts `cfg.workers` worker threads, building each worker's two
    /// signatures with `make_store` (called twice per worker).
    pub fn new(cfg: ProfilerConfig, make_store: impl Fn() -> S) -> Self {
        let w = cfg.workers.max(1);
        let pool = ChunkPool::new(w * cfg.queue_chunks * 2, cfg.chunk_capacity);
        let resp = Arc::new(MpmcQueue::new((cfg.top_k * 4).max(64)));
        let mut senders = Vec::with_capacity(w);
        let mut handles = Vec::with_capacity(w);
        for wid in 0..w {
            let (tx, rx) = X::channel(cfg.queue_chunks);
            let algo = AlgoState::new(
                make_store(),
                make_store(),
                AlgoOptions {
                    track_carried: cfg.track_carried,
                    check_reversal: false,
                    // Loop events are broadcast; only worker 0 records
                    // them, so iteration counts stay exact.
                    record_loops: wid == 0,
                    section_shift: 0,
                },
            );
            let poolc = pool.clone();
            let respc = resp.clone();
            handles.push(std::thread::spawn(move || worker_loop(rx, poolc, respc, algo)));
            senders.push(tx);
        }
        let pending = (0..w).map(|_| pool.acquire()).collect();
        ParallelProfiler {
            senders,
            pool,
            resp,
            handles,
            pending,
            counts: FxHashMap::default(),
            rules: FxHashMap::default(),
            inflight: FxHashMap::default(),
            chunks_pushed: 0,
            redistributions: 0,
            in_rebalance: false,
            in_poll: false,
            cfg,
            _store: std::marker::PhantomData,
        }
    }

    #[inline]
    fn owner(&self, addr: Address) -> usize {
        // Formula 1: `worker ID = memory address % W`. The paper's
        // addresses are byte-granular; MiniVM addresses are 8-byte
        // aligned, so the raw modulo would alias (all addresses ≡ 0 mod
        // 8) and send everything to worker 0 — shift the alignment out
        // first to get the even distribution the formula is meant to
        // achieve.
        self.rules.get(&addr).copied().unwrap_or(((addr >> 3) % self.senders.len() as u64) as usize)
    }

    fn push_blocking(&self, wid: usize, mut msg: WorkerMsg) {
        let mut backoff = Backoff::new();
        loop {
            match self.senders[wid].push(msg) {
                Ok(()) => return,
                Err(back) => {
                    msg = back;
                    backoff.snooze();
                }
            }
        }
    }

    #[inline]
    fn append(&mut self, wid: usize, ev: TraceEvent) {
        self.pending[wid].push(ev);
        if self.pending[wid].is_full() {
            self.flush(wid);
        }
    }

    fn flush(&mut self, wid: usize) {
        if self.pending[wid].is_empty() {
            return;
        }
        let chunk = std::mem::replace(&mut self.pending[wid], self.pool.acquire());
        self.push_blocking(wid, WorkerMsg::Events(chunk));
        self.chunks_pushed += 1;
        if !self.inflight.is_empty() {
            self.poll_responses();
        }
        // Never start a redistribution while a migration's buffered
        // events are being drained (`in_poll`): a nested Extract issued
        // between two halves of the buffered stream would capture the
        // signature state mid-replay and orphan the remainder.
        if self.cfg.redistribution
            && !self.in_rebalance
            && !self.in_poll
            && self.chunks_pushed.is_multiple_of(self.cfg.redistribute_every)
        {
            self.maybe_redistribute();
        }
    }

    fn flush_all(&mut self) {
        for wid in 0..self.pending.len() {
            self.flush(wid);
        }
    }

    fn poll_responses(&mut self) {
        // Non-reentrant: appends below can flush, and flushing polls. The
        // outer invocation keeps draining, so skipping the nested call
        // loses nothing.
        if self.in_poll {
            return;
        }
        self.in_poll = true;
        while let Some(RouterMsg::Extracted { addr, read, write }) = self.resp.pop() {
            let inf =
                self.inflight.remove(&addr).expect("extracted response for unknown migration");
            self.push_blocking(inf.target, WorkerMsg::Inject { addr, read, write });
            for ev in inf.buffered {
                self.append(inf.target, ev);
            }
        }
        self.in_poll = false;
    }

    /// Section IV-A: keep the `top_k` hottest addresses evenly spread.
    fn maybe_redistribute(&mut self) {
        self.in_rebalance = true;
        let k = self.cfg.top_k;
        let w = self.senders.len();
        // Select the k hottest addresses (one linear pass).
        let mut top: Vec<(Address, u64)> = Vec::with_capacity(k + 1);
        for (&a, &c) in &self.counts {
            if top.len() < k {
                top.push((a, c));
                top.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
            } else if c > top[k - 1].1 {
                top[k - 1] = (a, c);
                top.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
            }
        }
        // Check balance: how many of the top-k does each worker own?
        let mut load = vec![0usize; w];
        for &(a, _) in &top {
            load[self.owner(a)] += 1;
        }
        let ideal = top.len().div_ceil(w);
        if load.iter().all(|&l| l <= ideal) {
            self.in_rebalance = false;
            return; // already even
        }
        // Reassign round-robin by heat and migrate owners that change.
        let mut moved = false;
        for (rank, &(addr, _)) in top.iter().enumerate() {
            let desired = rank % w;
            if self.owner(addr) != desired && !self.inflight.contains_key(&addr) {
                let old = self.owner(addr);
                // Order: everything routed so far must precede Extract.
                self.flush(old);
                self.rules.insert(addr, desired);
                self.inflight.insert(addr, Inflight { target: desired, buffered: Vec::new() });
                self.push_blocking(old, WorkerMsg::Extract { addr });
                moved = true;
            }
        }
        if moved {
            self.redistributions += 1;
        }
        self.in_rebalance = false;
    }

    /// Completes migrations, drains the pipeline, joins the workers and
    /// merges their results.
    pub fn finish(mut self) -> ProfileResult {
        while !self.inflight.is_empty() {
            self.poll_responses();
            std::thread::yield_now();
        }
        self.flush_all();
        for wid in 0..self.senders.len() {
            self.push_blocking(wid, WorkerMsg::Shutdown);
        }
        let mut stats = ProfileStats::default();
        let mut global = DepStore::new();
        let mut exec_tree = crate::exectree::ExecTree::new();
        let mut sig_mem = 0usize;
        let mut per_worker_events = Vec::with_capacity(self.handles.len());
        for h in self.handles.drain(..) {
            let out = h.join().expect("worker panicked");
            stats.absorb(out.counters);
            sig_mem += out.sig_mem;
            per_worker_events.push(out.counters.accesses);
            global.merge(out.store);
            exec_tree.merge(&out.exec_tree);
        }
        stats.deps_built = global.deps_built();
        stats.deps_merged = global.merged_len();
        stats.chunks_pushed = self.chunks_pushed;
        stats.redistributions = self.redistributions;
        stats.redistributed_addrs = self.rules.len() as u64;
        let entry = std::mem::size_of::<(Address, u64)>() + 1;
        let memory = MemoryReport {
            signatures: sig_mem,
            queues: self.senders.iter().map(|s| s.memory_usage()).sum(),
            chunks: self.pool.memory_usage(),
            dep_store: global.memory_usage(),
            stats_maps: self.counts.capacity() * entry + self.rules.capacity() * entry,
        };
        ProfileResult {
            deps: global,
            exec_tree,
            stats,
            memory,
            workers: self.senders.len(),
            per_worker_events,
        }
    }
}

impl<S, X> Tracer for ParallelProfiler<S, X>
where
    S: AccessStore + 'static,
    X: Transport<WorkerMsg>,
{
    fn event(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Access(a) => {
                // Access statistics, updated on every access (Section
                // IV-A: "updated every time a memory access occurs").
                *self.counts.entry(a.addr).or_insert(0) += 1;
                if let Some(inf) = self.inflight.get_mut(&a.addr) {
                    inf.buffered.push(ev);
                    self.poll_responses();
                } else {
                    let wid = self.owner(a.addr);
                    self.append(wid, ev);
                }
            }
            TraceEvent::LoopBegin { .. }
            | TraceEvent::LoopIter { .. }
            | TraceEvent::LoopEnd { .. } => {
                if self.cfg.track_carried {
                    // Loop context is needed by every worker for carried
                    // classification.
                    for wid in 0..self.pending.len() {
                        self.append(wid, ev);
                    }
                } else {
                    self.append(0, ev);
                }
            }
            TraceEvent::CallBegin { .. } | TraceEvent::CallEnd { .. } => {
                // Structural events feed the execution tree, recorded by
                // worker 0 only.
                self.append(0, ev);
            }
            TraceEvent::Dealloc { .. } => {
                // Every worker forgets the range (removing an address a
                // worker never owned is a harmless no-op).
                for wid in 0..self.pending.len() {
                    self.append(wid, ev);
                }
            }
        }
    }

    fn sync_point(&mut self) {
        self.flush_all();
    }
}

fn worker_loop<S: AccessStore, R: TransportReceiver<WorkerMsg>>(
    q: R,
    pool: Arc<ChunkPool>,
    resp: Arc<MpmcQueue<RouterMsg>>,
    mut algo: AlgoState<S>,
) -> WorkerOutput {
    let mut backoff = Backoff::new();
    loop {
        match q.pop() {
            Some(WorkerMsg::Events(chunk)) => {
                for ev in chunk.events() {
                    algo.on_event(ev);
                }
                pool.release(chunk);
                backoff.reset();
            }
            Some(WorkerMsg::Extract { addr }) => {
                let (read, write) = algo.extract(addr);
                let mut msg = RouterMsg::Extracted { addr, read, write };
                loop {
                    match resp.push(msg) {
                        Ok(()) => break,
                        Err(back) => {
                            msg = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            Some(WorkerMsg::Inject { addr, read, write }) => {
                algo.inject(addr, read, write);
            }
            Some(WorkerMsg::Shutdown) => break,
            None => backoff.snooze(),
        }
    }
    let (store, exec_tree, counters, sig_mem) = algo.finish();
    WorkerOutput { store, exec_tree, counters, sig_mem }
}

/// The lock-free build (the paper's main configuration).
pub type LockFreeProfiler<S> = ParallelProfiler<S, Shared<MpmcQueue<WorkerMsg>>>;
/// The lock-based comparator build (Figure 5).
pub type LockBasedProfiler<S> = ParallelProfiler<S, Shared<dp_queue::LockQueue<WorkerMsg>>>;
/// The SPSC fast-path build for sequential targets (one producing
/// thread; the `!Sync` senders make misuse a compile error).
pub type SpscProfiler<S> = ParallelProfiler<S, SpscTransport>;

/// A parallel profiler whose transport is chosen at runtime from
/// [`ProfilerConfig::transport`] ([`TransportKind`]). All variants share
/// the same engine code and produce bit-identical dependence sets; only
/// the per-worker channel implementation differs.
pub enum AnyParallelProfiler<S: AccessStore + 'static> {
    /// SPSC fast path ([`TransportKind::Spsc`]).
    Spsc(SpscProfiler<S>),
    /// Lock-free MPMC ([`TransportKind::Mpmc`]).
    Mpmc(LockFreeProfiler<S>),
    /// Lock-based comparator ([`TransportKind::Lock`]).
    Lock(LockBasedProfiler<S>),
}

impl<S: AccessStore + 'static> AnyParallelProfiler<S> {
    /// Starts the pipeline over the transport named by `cfg.transport`.
    pub fn new(cfg: ProfilerConfig, make_store: impl Fn() -> S) -> Self {
        match cfg.transport {
            TransportKind::Spsc => Self::Spsc(ParallelProfiler::new(cfg, make_store)),
            TransportKind::Mpmc => Self::Mpmc(ParallelProfiler::new(cfg, make_store)),
            TransportKind::Lock => Self::Lock(ParallelProfiler::new(cfg, make_store)),
        }
    }

    /// Short name of the active transport ("spsc", "lock-free",
    /// "lock-based").
    pub fn transport_kind(&self) -> &'static str {
        match self {
            Self::Spsc(_) => <SpscTransport as Transport<WorkerMsg>>::kind(),
            Self::Mpmc(_) => <Shared<MpmcQueue<WorkerMsg>> as Transport<WorkerMsg>>::kind(),
            Self::Lock(_) => {
                <Shared<dp_queue::LockQueue<WorkerMsg>> as Transport<WorkerMsg>>::kind()
            }
        }
    }

    /// Completes migrations, drains the pipeline, joins the workers and
    /// merges their results.
    pub fn finish(self) -> ProfileResult {
        match self {
            Self::Spsc(p) => p.finish(),
            Self::Mpmc(p) => p.finish(),
            Self::Lock(p) => p.finish(),
        }
    }
}

impl<S: AccessStore + 'static> Tracer for AnyParallelProfiler<S> {
    fn event(&mut self, ev: TraceEvent) {
        match self {
            Self::Spsc(p) => p.event(ev),
            Self::Mpmc(p) => p.event(ev),
            Self::Lock(p) => p.event(ev),
        }
    }

    fn sync_point(&mut self) {
        match self {
            Self::Spsc(p) => p.sync_point(),
            Self::Mpmc(p) => p.sync_point(),
            Self::Lock(p) => p.sync_point(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_sig::PerfectSignature;
    use dp_types::{loc::loc, AccessKind, DepType, MemAccess};

    fn cfg(workers: usize) -> ProfilerConfig {
        ProfilerConfig::default()
            .with_workers(workers)
            .with_chunk_capacity(8)
            .with_redistribution(false)
    }

    fn acc(kind: AccessKind, addr: u64, ts: u64, line: u32) -> TraceEvent {
        TraceEvent::Access(MemAccess { addr, ts, loc: loc(1, line), var: 1, thread: 0, kind })
    }

    #[test]
    fn parallel_matches_serial_semantics() {
        let mut p: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(4), PerfectSignature::new);
        let mut ts = 0;
        let mut next = || {
            ts += 1;
            ts
        };
        for i in 0..64u64 {
            p.event(acc(AccessKind::Write, 0x1000 + i * 8, next(), 10));
        }
        for i in 0..64u64 {
            p.event(acc(AccessKind::Read, 0x1000 + i * 8, next(), 11));
        }
        let r = p.finish();
        assert_eq!(r.stats.accesses, 128);
        assert_eq!(r.workers, 4);
        // One INIT record and one RAW record (all merged).
        assert_eq!(r.stats.deps_merged, 2);
        let raw = r.deps.dependences().find(|(d, _)| d.edge.dtype == DepType::Raw).unwrap();
        assert_eq!(raw.1.count, 64);
        assert_eq!(raw.0.sink.loc.line, 11);
        assert_eq!(raw.0.edge.source_loc.line, 10);
    }

    #[test]
    fn lock_based_build_equivalent() {
        let mut p: LockBasedProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(3), PerfectSignature::new);
        for i in 0..32u64 {
            p.event(acc(AccessKind::Write, i * 8, i * 2 + 1, 1));
            p.event(acc(AccessKind::Read, i * 8, i * 2 + 2, 2));
        }
        let r = p.finish();
        assert_eq!(r.stats.deps_merged, 2);
    }

    #[test]
    fn spsc_build_equivalent() {
        let mut p: SpscProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(3), PerfectSignature::new);
        for i in 0..32u64 {
            p.event(acc(AccessKind::Write, i * 8, i * 2 + 1, 1));
            p.event(acc(AccessKind::Read, i * 8, i * 2 + 2, 2));
        }
        let r = p.finish();
        assert_eq!(r.stats.deps_merged, 2);
        assert_eq!(r.stats.accesses, 64);
    }

    #[test]
    fn spsc_redistribution_migrates_state_correctly() {
        let mut c = cfg(4).with_redistribution(true);
        c.redistribute_every = 2;
        c.top_k = 4;
        let mut p: SpscProfiler<PerfectSignature> = ParallelProfiler::new(c, PerfectSignature::new);
        let addrs = [0x100u64, 0x200, 0x300, 0x400];
        let mut ts = 0u64;
        for round in 0..2000u64 {
            for (k, &a) in addrs.iter().enumerate() {
                ts += 1;
                if round == 0 {
                    p.event(acc(AccessKind::Write, a, ts, 10 + k as u32));
                } else {
                    p.event(acc(AccessKind::Read, a, ts, 20 + k as u32));
                }
            }
        }
        let r = p.finish();
        assert!(r.stats.redistributions > 0, "redistribution never triggered");
        assert_eq!(r.stats.deps_merged, 8, "{:?}", r.stats);
        for (d, v) in r.deps.dependences() {
            if d.edge.dtype == DepType::Raw {
                assert_eq!(d.edge.source_loc.line, d.sink.loc.line - 10);
                assert_eq!(v.count, 1999);
            }
        }
    }

    #[test]
    fn any_profiler_dispatches_all_transports() {
        for kind in [TransportKind::Spsc, TransportKind::Mpmc, TransportKind::Lock] {
            let c = cfg(2).with_transport(kind);
            let mut p: AnyParallelProfiler<PerfectSignature> =
                AnyParallelProfiler::new(c, PerfectSignature::new);
            assert_eq!(p.transport_kind(), kind.name());
            for i in 0..16u64 {
                p.event(acc(AccessKind::Write, i * 8, i * 2 + 1, 1));
                p.event(acc(AccessKind::Read, i * 8, i * 2 + 2, 2));
            }
            let r = p.finish();
            assert_eq!(r.stats.deps_merged, 2, "transport {kind:?}");
        }
    }

    #[test]
    fn redistribution_migrates_state_correctly() {
        let mut c = cfg(4).with_redistribution(true);
        c.redistribute_every = 2; // aggressive for the test
        c.top_k = 4;
        let mut p: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(c, PerfectSignature::new);
        // Hammer four addresses that all map to worker 0 (addr % 4 == 0),
        // forcing redistribution; dependences must stay exact.
        let addrs = [0x100u64, 0x200, 0x300, 0x400];
        let mut ts = 0u64;
        for round in 0..2000u64 {
            for (k, &a) in addrs.iter().enumerate() {
                ts += 1;
                let line = 10 + k as u32;
                if round == 0 {
                    p.event(acc(AccessKind::Write, a, ts, line));
                } else {
                    p.event(acc(AccessKind::Read, a, ts, 20 + k as u32));
                }
            }
        }
        let r = p.finish();
        assert!(r.stats.redistributions > 0, "redistribution never triggered");
        assert!(r.stats.redistributed_addrs > 0);
        // Exactly 4 INIT + 4 RAW records; every RAW sourced at its write
        // line (state migration preserved the signature entries).
        assert_eq!(r.stats.deps_merged, 8, "{:?}", r.stats);
        for (d, v) in r.deps.dependences() {
            if d.edge.dtype == DepType::Raw {
                assert_eq!(d.edge.source_loc.line, d.sink.loc.line - 10);
                assert_eq!(v.count, 1999);
            }
        }
    }

    #[test]
    fn dealloc_broadcast_forgets_everywhere() {
        let mut p: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(4), PerfectSignature::new);
        for i in 0..16u64 {
            p.event(acc(AccessKind::Write, 0x100 + i * 8, i + 1, 1));
        }
        p.event(TraceEvent::Dealloc { base: 0x100, len: 16, thread: 0, ts: 100 });
        for i in 0..16u64 {
            p.event(acc(AccessKind::Read, 0x100 + i * 8, 200 + i, 2));
        }
        let r = p.finish();
        assert!(
            !r.deps.dependences().any(|(d, _)| d.edge.dtype == DepType::Raw),
            "RAW survived a dealloc"
        );
        assert_eq!(r.stats.lifetime_removals, 16 * 4); // broadcast to 4 workers
    }

    #[test]
    fn loop_events_reach_all_workers_for_carried_detection() {
        let mut p: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(2), PerfectSignature::new);
        p.event(TraceEvent::LoopBegin { loop_id: 1, loc: loc(1, 1), thread: 0, ts: 1 });
        // accumulator on addr 0x8 (worker 1): read+write each iteration
        for it in 0..3u64 {
            p.event(TraceEvent::LoopIter { loop_id: 1, iter: it, thread: 0, ts: 10 + it * 10 });
            p.event(acc(AccessKind::Read, 0x8, 11 + it * 10, 5));
            p.event(acc(AccessKind::Write, 0x8, 12 + it * 10, 5));
        }
        p.event(TraceEvent::LoopEnd { loop_id: 1, loc: loc(1, 9), iters: 3, thread: 0, ts: 99 });
        let r = p.finish();
        let raw = r.deps.dependences().find(|(d, _)| d.edge.dtype == DepType::Raw).unwrap();
        assert!(raw.0.edge.flags.contains(dp_types::DepFlags::LOOP_CARRIED));
        assert_eq!(raw.0.edge.carrier, Some(1));
        let rec = r.deps.loop_record(1).unwrap();
        assert_eq!(rec.instances, 1);
        assert_eq!(rec.total_iters, 3);
    }
}
