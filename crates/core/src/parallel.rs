//! The parallel profiling pipeline for sequential targets (Section IV,
//! Figure 2).
//!
//! The instrumented program's thread (the "producer") routes each memory
//! access to the worker that owns its address:
//!
//! ```text
//! worker ID = memory address % W                       (Formula 1)
//! ```
//!
//! overridden by the redistribution rules of Section IV-A ("Redistribution
//! rules are stored in a map and have higher priority than the modulo
//! function"). Accesses travel in fixed-capacity chunks through one
//! bounded queue per worker; because an address is owned by exactly one
//! worker and chunks preserve program order, each worker sees its
//! addresses' accesses in temporal order, which is what makes the
//! RAW/WAR/WAW distinction sound. Workers run Algorithm 1 against private
//! signatures and store dependences in private duplicate-free maps, merged
//! once at the end.
//!
//! ## Hot-address redistribution (Section IV-A)
//!
//! The router counts accesses per address; every
//! [`ProfilerConfig::redistribute_every`] chunks it checks whether the
//! `top_k` hottest addresses are spread evenly over the workers. If not,
//! it reassigns them round-robin by heat and *migrates the signature
//! state*: the old owner receives an `Extract` message (positioned after
//! all of the address's earlier accesses — queue FIFO guarantees this),
//! replies with the slot contents on a response queue, and the router
//! forwards an `Inject` to the new owner before any buffered or subsequent
//! access of that address reaches it. The address's accesses are buffered
//! at the router while the migration is in flight, so per-address temporal
//! order is preserved across the move.
//!
//! ## Failure model
//!
//! Profiling must never take the target down with it. Worker loops run
//! under `catch_unwind`; a panicking worker flags itself dead before its
//! thread exits, and the router fails fast on dead workers instead of
//! spinning on a queue nobody will drain. `finish()` is a supervisor: it
//! salvages every surviving worker's dependence map, bounds all waits by
//! [`ProfilerConfig::drain_deadline_ms`], and reports losses precisely —
//! per-worker dropped-event counts, cancelled migrations and
//! [`WorkerFailure`] records — in [`ProfileStats`], so a degraded profile
//! says exactly *what* is missing (the dead worker's residue class under
//! Formula 1) rather than failing silently. Under
//! [`OverflowPolicy::Drop`] a stalled-but-alive worker is handled the
//! same way: once its queue has been continuously full past the stall
//! deadline, events destined for it are dropped *and counted* instead of
//! blocking the target forever. This mirrors the paper's own philosophy
//! of graceful degradation (signatures trade accuracy for memory,
//! Formula 2) — here the trade is completeness for termination.
//!
//! The engine is generic over the per-worker [`Transport`]: the SPSC
//! fast path ([`dp_queue::SpscTransport`] — sound here because a
//! sequential target has exactly one producing thread), the lock-free
//! MPMC build ([`dp_queue::MpmcQueue`] via [`Shared`]) and the
//! lock-based comparator of Figure 5 ([`dp_queue::LockQueue`] via
//! [`Shared`]); everything else is shared, so measured differences are
//! attributable to the transport alone. Fault-injection tests swap in
//! [`dp_queue::FailingTransport`] through
//! [`ParallelProfiler::with_transport`].

use crate::algo::{AlgoCounters, AlgoOptions, AlgoState};
use crate::checkpoint::{CheckpointData, CheckpointError};
use crate::config::{OverflowPolicy, ProfilerConfig, TransportKind};
use crate::result::{FailureCause, MemoryReport, ProfileResult, ProfileStats, WorkerFailure};
use crate::store::DepStore;
use dp_metrics::{
    ChunkStats, Conservation, Counter, HotAddress, MetricsSnapshot, PhaseTimings, SigGauges,
    Stopwatch, WorkerMetrics,
};
use dp_queue::{
    Backoff, ChannelTap, Chunk, ChunkPool, FaultPlan, MeteredReceiver, MeteredSender, MpmcQueue,
    Shared, SpscTransport, Transport, TransportReceiver, TransportSender,
};
use dp_sig::{AccessStore, SigEntry};
use dp_types::{Address, ByteReader, ByteWriter, FxHashMap, TraceEvent, Tracer, WireError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Messages flowing through a worker's queue.
pub enum WorkerMsg {
    /// A chunk of trace events.
    Events(Chunk),
    /// Redistribution: extract and return the signature state of `addr`.
    Extract {
        /// Address being migrated away from this worker.
        addr: Address,
    },
    /// Redistribution: adopt the signature state of `addr`.
    Inject {
        /// Address being migrated to this worker.
        addr: Address,
        /// Read-signature entry, if any.
        read: Option<SigEntry>,
        /// Write-signature entry, if any.
        write: Option<SigEntry>,
    },
    /// Quiesce barrier: serialize the worker's complete extraction
    /// state and reply on the response queue. Queue FIFO order
    /// guarantees the worker has consumed every event routed before
    /// this message when it replies, so the blob captures a consistent
    /// cut of the run.
    Checkpoint,
    /// Online analysis: start tracking dependence-map movement
    /// ([`DepStore::enable_delta`]) in this worker's store.
    EnableDelta,
    /// Online analysis: drain the worker's dirty set and reply with an
    /// [`AnalysisDelta`] on the response queue. FIFO order makes the
    /// delta cover exactly the events routed before this message.
    DeltaFlush,
    /// Drain and exit.
    Shutdown,
}

/// Worker→router responses (redistribution replies bounded by `top_k`,
/// checkpoint replies bounded by the worker count).
enum RouterMsg {
    Extracted {
        addr: Address,
        read: Option<SigEntry>,
        write: Option<SigEntry>,
    },
    /// Reply to [`WorkerMsg::Checkpoint`]; `state` is `None` when the
    /// worker's access store does not support checkpointing.
    CheckpointState {
        worker: usize,
        state: Option<Vec<u8>>,
    },
    /// Reply to [`WorkerMsg::DeltaFlush`]. A reply that misses its
    /// collect window is parked in `pending_deltas` rather than dropped:
    /// the worker already drained its dirty set, so losing the reply
    /// would lose the movement for good.
    Delta {
        worker: usize,
        delta: crate::store::AnalysisDelta,
    },
}

struct WorkerOutput {
    store: DepStore,
    exec_tree: crate::exectree::ExecTree,
    counters: AlgoCounters,
    sig_mem: usize,
    gauges: SigGauges,
}

/// How a supervised worker thread ended.
enum WorkerExit {
    /// Clean exit (or an abandoned stall that woke up): results salvaged.
    Finished(Box<WorkerOutput>),
    /// The worker panicked; `catch_unwind` contained it and the payload
    /// is preserved for the [`WorkerFailure`] record.
    Panicked { payload: String },
}

/// Router↔worker supervision flags, shared by `Arc`.
struct Supervision {
    /// `dead[w]`: worker `w` panicked. Set by the worker itself on the
    /// way out (before its thread exits), read by the router to fail
    /// fast instead of blocking on a queue nobody will drain.
    dead: Vec<AtomicBool>,
    /// `abandon[w]`: the supervisor gave up on worker `w`. A stalled
    /// worker that is still responsive to this flag (the injected-stall
    /// hook is) exits so its partial results can be salvaged.
    abandon: Vec<AtomicBool>,
}

impl Supervision {
    fn new(workers: usize) -> Self {
        Supervision {
            dead: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            abandon: (0..workers).map(|_| AtomicBool::new(false)).collect(),
        }
    }
}

/// Runtime state of the fault-injection script: the plan plus the shared
/// counter that makes "drop the *n*-th Extracted reply" global across
/// workers. Always present (so [`ProfilerConfig`] needs no feature gate);
/// every hook that consults it compiles to nothing without the
/// `fault-inject` feature.
// Fields are only read by the `fault-inject` hooks; the struct is kept
// unconditionally so call sites don't need feature gates.
#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
struct FaultRt {
    plan: FaultPlan,
    extract_replies: AtomicU64,
}

struct Inflight {
    /// Worker the state is being extracted from.
    source: usize,
    /// Worker the state is migrating to.
    target: usize,
    /// Accesses of the migrating address, buffered until the `Inject`
    /// has been sent so per-address temporal order survives the move.
    buffered: Vec<TraceEvent>,
}

/// The event-conservation ledger, shared by the router and every worker.
///
/// The invariant the counters are built to prove (and the metrics test
/// suite checks across every transport and chaos seed):
///
/// ```text
/// pushed == consumed + dropped + rerouted + in_flight_at_shutdown
/// ```
///
/// where `in_flight[w] = enqueued[w] − consumed[w]`. Rerouted copies are
/// a *terminal* disposition: they are counted once at routing time and
/// marked in their chunk ([`Chunk::mark_rerouted`]), and every downstream
/// tap (enqueue, drop, consume) excludes the marks, keeping the law's
/// columns disjoint. All counters are `dp-metrics` primitives — relaxed
/// atomics with the `metrics` feature, zero-sized no-ops without it.
pub(crate) struct EngineMetrics {
    /// Events appended to a pending chunk, plus migration buffers dropped
    /// before ever reaching a chunk (those count `pushed` and `dropped`
    /// at the same instant).
    pub(crate) pushed: Counter,
    /// Event copies diverted away from a dead owner at routing time.
    pub(crate) rerouted: Counter,
    /// Per worker: events inside successfully enqueued chunks, rerouted
    /// marks excluded.
    pub(crate) enqueued: Vec<Counter>,
    /// Per worker: events dropped at the flush tap or from migration
    /// buffers, rerouted marks excluded.
    pub(crate) dropped: Vec<Counter>,
    /// Per worker: events popped off the queue (counted at pop, before
    /// processing — "consumed" means *removed from the queue*), rerouted
    /// marks excluded.
    pub(crate) consumed: Vec<Counter>,
    /// Per worker: event chunks popped off the queue.
    pub(crate) consumed_chunks: Vec<Counter>,
    /// Per worker: nanoseconds the router spent blocked on the worker's
    /// continuously-full queue.
    pub(crate) stall: Vec<Counter>,
}

impl EngineMetrics {
    pub(crate) fn new(workers: usize) -> Self {
        let col = |_| Counter::new();
        EngineMetrics {
            pushed: Counter::new(),
            rerouted: Counter::new(),
            enqueued: (0..workers).map(col).collect(),
            dropped: (0..workers).map(col).collect(),
            consumed: (0..workers).map(col).collect(),
            consumed_chunks: (0..workers).map(col).collect(),
            stall: (0..workers).map(col).collect(),
        }
    }

    /// Serializes the ledger for a checkpoint. With the `metrics`
    /// feature off the counters are no-ops and the blob records zeros —
    /// the snapshot is all-zero in that build anyway.
    pub(crate) fn save(&self) -> Vec<u8> {
        let mut out = ByteWriter::new();
        out.u64(self.pushed.get());
        out.u64(self.rerouted.get());
        out.u32(self.enqueued.len() as u32);
        for wid in 0..self.enqueued.len() {
            out.u64(self.enqueued[wid].get());
            out.u64(self.dropped[wid].get());
            out.u64(self.consumed[wid].get());
            out.u64(self.consumed_chunks[wid].get());
            out.u64(self.stall[wid].get());
        }
        out.into_bytes()
    }

    /// Restores a checkpointed ledger into this (fresh) engine's zeroed
    /// counters via `add`, preserving the conservation law across the
    /// resume. `&self` suffices: counters are interior-mutable.
    pub(crate) fn restore(&self, bytes: &[u8]) -> Result<(), WireError> {
        let mut r = ByteReader::new(bytes);
        self.pushed.add(r.u64()?);
        self.rerouted.add(r.u64()?);
        let nw = r.u32()? as usize;
        if nw != self.enqueued.len() {
            return Err(WireError::Invalid("ledger worker count differs from checkpoint"));
        }
        for wid in 0..nw {
            self.enqueued[wid].add(r.u64()?);
            self.dropped[wid].add(r.u64()?);
            self.consumed[wid].add(r.u64()?);
            self.consumed_chunks[wid].add(r.u64()?);
            self.stall[wid].add(r.u64()?);
        }
        if !r.is_done() {
            return Err(WireError::Invalid("trailing bytes after ledger state"));
        }
        Ok(())
    }
}

/// Everything a worker thread shares with the router, bundled so the
/// spawn path hands over one value.
struct WorkerCtx {
    pool: Arc<ChunkPool>,
    resp: Arc<MpmcQueue<RouterMsg>>,
    sup: Arc<Supervision>,
    fault: Arc<FaultRt>,
    metrics: Arc<EngineMetrics>,
}

/// The parallel profiler. Implements [`Tracer`], so the instrumented
/// program pushes events into it directly; call
/// [`ParallelProfiler::finish`] afterwards.
///
/// Generic over the per-worker [`Transport`]. With [`SpscTransport`] the
/// senders are `!Sync`, which makes the whole profiler `!Sync`: the
/// compiler enforces the single-producer contract the SPSC fast path
/// relies on.
pub struct ParallelProfiler<S: AccessStore + 'static, X: Transport<WorkerMsg>> {
    senders: Vec<MeteredSender<X::Sender>>,
    pool: Arc<ChunkPool>,
    resp: Arc<MpmcQueue<RouterMsg>>,
    handles: Vec<JoinHandle<WorkerExit>>,
    sup: Arc<Supervision>,
    /// Per-worker channel taps (push/pop/depth counters shared with the
    /// metered endpoints).
    taps: Vec<Arc<ChannelTap>>,
    /// The conservation ledger shared with the workers.
    metrics: Arc<EngineMetrics>,
    /// Started at construction; splits feed from drain in the snapshot.
    timer: Stopwatch,
    pending: Vec<Chunk>,
    counts: FxHashMap<Address, u64>,
    rules: FxHashMap<Address, usize>,
    inflight: FxHashMap<Address, Inflight>,
    chunks_pushed: u64,
    redistributions: u64,
    /// Router-side drop accounting, per destination worker.
    dropped: Vec<u64>,
    /// Continuously-full-since marker per worker queue; `None` while the
    /// last push succeeded. The basis of stall detection.
    full_since: Vec<Option<Instant>>,
    rerouted_events: u64,
    cancelled_migrations: u64,
    spurious_replies: u64,
    in_rebalance: bool,
    in_poll: bool,
    /// Online analysis enabled (workers track dependence-map movement).
    online: bool,
    /// Delta replies that arrived outside a collect window; handed to
    /// the next [`ParallelProfiler::collect_deltas`] caller.
    pending_deltas: Vec<crate::store::AnalysisDelta>,
    cfg: ProfilerConfig,
    _store: std::marker::PhantomData<S>,
}

impl<S, X> ParallelProfiler<S, X>
where
    S: AccessStore + 'static,
    X: Transport<WorkerMsg>,
{
    /// Starts `cfg.workers` worker threads, building each worker's two
    /// signatures with `make_store` (called twice per worker).
    pub fn new(cfg: ProfilerConfig, make_store: impl Fn() -> S) -> Self
    where
        X: Default,
    {
        Self::with_transport(X::default(), cfg, make_store)
    }

    /// Like [`ParallelProfiler::new`], but over an explicit transport
    /// instance — the entry point for fault-injection tests, which pass a
    /// [`dp_queue::FailingTransport`] carrying a seeded chaos plan.
    pub fn with_transport(transport: X, cfg: ProfilerConfig, make_store: impl Fn() -> S) -> Self {
        match Self::spawn(transport, cfg, make_store, None) {
            Ok(p) => p,
            // The error paths all require a checkpoint to restore from.
            Err(_) => unreachable!("spawn without worker states is infallible"),
        }
    }

    /// Rebuilds a profiler from a checkpoint: every worker's signatures,
    /// dependence map and loop stacks are restored *before* its thread
    /// starts, then the router's statistics, rules and conservation
    /// ledger are restored, so feeding the remaining trace records
    /// produces exactly what an uninterrupted run would.
    ///
    /// `cfg` must describe the same engine shape the checkpoint was
    /// written under (worker count, store dimensions, chunking).
    pub fn resume(
        cfg: ProfilerConfig,
        make_store: impl Fn() -> S,
        data: &CheckpointData,
    ) -> Result<Self, CheckpointError>
    where
        X: Default,
    {
        Self::resume_with_transport(X::default(), cfg, make_store, data)
    }

    /// [`ParallelProfiler::resume`] over an explicit transport instance.
    pub fn resume_with_transport(
        transport: X,
        cfg: ProfilerConfig,
        make_store: impl Fn() -> S,
        data: &CheckpointData,
    ) -> Result<Self, CheckpointError> {
        let mut p = Self::spawn(transport, cfg, make_store, Some(&data.workers))?;
        p.restore_router(&data.router)?;
        p.metrics.restore(&data.ledger)?;
        Ok(p)
    }

    /// Shared constructor body. With `worker_states` set, each worker's
    /// extraction state is restored before its thread spawns — errors
    /// surface synchronously and no thread is left running.
    fn spawn(
        transport: X,
        cfg: ProfilerConfig,
        make_store: impl Fn() -> S,
        worker_states: Option<&[Vec<u8>]>,
    ) -> Result<Self, CheckpointError> {
        let w = cfg.workers.max(1);
        if let Some(states) = worker_states {
            if states.len() != w {
                return Err(CheckpointError::Wire(WireError::Invalid(
                    "worker count differs from checkpoint",
                )));
            }
        }
        // Build (and, on resume, restore) every worker's state before
        // spawning any thread: a restore failure must not leave threads
        // behind.
        let mut algos = Vec::with_capacity(w);
        for wid in 0..w {
            let mut algo = AlgoState::new(
                make_store(),
                make_store(),
                AlgoOptions {
                    track_carried: cfg.track_carried,
                    check_reversal: false,
                    // Loop events are broadcast; only worker 0 records
                    // them, so iteration counts stay exact.
                    record_loops: wid == 0,
                    section_shift: 0,
                },
            );
            if let Some(states) = worker_states {
                algo.restore_state(&states[wid])?;
            }
            algos.push(algo);
        }
        let pool = ChunkPool::new(w * cfg.queue_chunks * 2, cfg.chunk_capacity);
        let resp = Arc::new(MpmcQueue::new((cfg.top_k * 4).max(64).max(w)));
        let sup = Arc::new(Supervision::new(w));
        let fault =
            Arc::new(FaultRt { plan: cfg.fault_plan.clone(), extract_replies: AtomicU64::new(0) });
        let metrics = Arc::new(EngineMetrics::new(w));
        let mut senders = Vec::with_capacity(w);
        let mut taps = Vec::with_capacity(w);
        let mut handles = Vec::with_capacity(w);
        for (wid, algo) in algos.into_iter().enumerate() {
            let (tx, rx) = transport.channel(wid, cfg.queue_chunks);
            let tap = ChannelTap::shared();
            let tx = MeteredSender::new(tx, tap.clone());
            let rx = MeteredReceiver::new(rx, tap.clone());
            taps.push(tap);
            let ctx = WorkerCtx {
                pool: pool.clone(),
                resp: resp.clone(),
                sup: sup.clone(),
                fault: fault.clone(),
                metrics: metrics.clone(),
            };
            handles.push(std::thread::spawn(move || worker_loop(wid, rx, algo, ctx)));
            senders.push(tx);
        }
        let pending = (0..w).map(|_| pool.acquire()).collect();
        Ok(ParallelProfiler {
            senders,
            pool,
            resp,
            handles,
            sup,
            taps,
            metrics,
            timer: Stopwatch::start(),
            pending,
            counts: FxHashMap::default(),
            rules: FxHashMap::default(),
            inflight: FxHashMap::default(),
            chunks_pushed: 0,
            redistributions: 0,
            dropped: vec![0; w],
            full_since: vec![None; w],
            rerouted_events: 0,
            cancelled_migrations: 0,
            spurious_replies: 0,
            in_rebalance: false,
            in_poll: false,
            online: false,
            pending_deltas: Vec::new(),
            cfg,
            _store: std::marker::PhantomData,
        })
    }

    #[inline]
    fn owner(&self, addr: Address) -> usize {
        // Formula 1: `worker ID = memory address % W`. The paper's
        // addresses are byte-granular; MiniVM addresses are 8-byte
        // aligned, so the raw modulo would alias (all addresses ≡ 0 mod
        // 8) and send everything to worker 0 — shift the alignment out
        // first to get the even distribution the formula is meant to
        // achieve.
        self.rules.get(&addr).copied().unwrap_or(((addr >> 3) % self.senders.len() as u64) as usize)
    }

    #[inline]
    fn is_dead(&self, wid: usize) -> bool {
        self.sup.dead[wid].load(Ordering::Acquire)
    }

    /// First live worker cyclically after `wid` (exclusive), if any.
    fn next_live(&self, wid: usize) -> Option<usize> {
        let w = self.senders.len();
        (1..w).map(|k| (wid + k) % w).find(|&k| !self.is_dead(k))
    }

    /// [`Self::owner`], diverted away from dead workers: a surviving
    /// worker adopts the dead worker's traffic (it sees only the suffix
    /// after the death, so dependences it finds are exact; dependences
    /// crossing the failure point are lost and the run is degraded).
    /// The second element is true when the event was diverted — the
    /// caller marks the copy rerouted in its chunk so the conservation
    /// ledger's downstream taps can exclude it.
    fn route(&mut self, addr: Address) -> (usize, bool) {
        let wid = self.owner(addr);
        if !self.is_dead(wid) {
            return (wid, false);
        }
        match self.next_live(wid) {
            Some(f) => {
                self.rerouted_events += 1;
                (f, true)
            }
            // Every worker is dead; deliver() will drop and account.
            None => (wid, false),
        }
    }

    /// How long a single delivery may stay blocked on a full queue. The
    /// deadline is measured from when the queue *became* continuously
    /// full (`full_since`), so after one paid deadline subsequent sends
    /// to a still-stalled worker fail immediately.
    fn event_drop_after(&self) -> Option<Duration> {
        match self.cfg.overflow {
            OverflowPolicy::Block => None,
            OverflowPolicy::Drop => Some(Duration::from_millis(self.cfg.stall_deadline_ms)),
        }
    }

    /// Delivers `msg` to `wid`, spinning with backoff while the queue is
    /// full. Gives the message back instead of blocking forever when the
    /// worker is dead (flagged or observed via a closed endpoint), or —
    /// with `drop_after` set — when the queue has been continuously full
    /// for that long.
    fn deliver(
        &mut self,
        wid: usize,
        mut msg: WorkerMsg,
        drop_after: Option<Duration>,
    ) -> Result<(), WorkerMsg> {
        let mut backoff = Backoff::new();
        loop {
            if self.is_dead(wid) {
                return Err(msg);
            }
            match self.senders[wid].push(msg) {
                Ok(()) => {
                    if let Some(since) = self.full_since[wid].take() {
                        // The queue had been continuously full: the wait
                        // just ended, charge it to this worker's stall
                        // account.
                        self.metrics.stall[wid].add(since.elapsed().as_nanos() as u64);
                    }
                    return Ok(());
                }
                Err(back) => {
                    msg = back;
                    if self.senders[wid].is_closed() {
                        self.sup.dead[wid].store(true, Ordering::Release);
                        return Err(msg);
                    }
                    let now = Instant::now();
                    let since = *self.full_since[wid].get_or_insert(now);
                    if let Some(limit) = drop_after {
                        if now.duration_since(since) >= limit {
                            return Err(msg);
                        }
                    }
                    backoff.snooze();
                }
            }
        }
    }

    #[inline]
    fn append(&mut self, wid: usize, ev: TraceEvent) {
        self.append_routed(wid, ev, false);
    }

    /// [`Self::append`] with the routing verdict: a diverted copy is
    /// counted rerouted once, here, and marked in its chunk so the
    /// enqueue/drop/consume taps exclude it downstream.
    #[inline]
    fn append_routed(&mut self, wid: usize, ev: TraceEvent, diverted: bool) {
        self.metrics.pushed.inc();
        self.pending[wid].push(ev);
        if diverted {
            self.metrics.rerouted.inc();
            self.pending[wid].mark_rerouted();
        }
        if self.pending[wid].is_full() {
            self.flush(wid);
        }
    }

    fn flush(&mut self, wid: usize) {
        if self.pending[wid].is_empty() {
            return;
        }
        let chunk = std::mem::replace(&mut self.pending[wid], self.pool.acquire());
        // Rerouted copies were already accounted at routing time.
        let unmarked = (chunk.len() - chunk.rerouted()) as u64;
        match self.deliver(wid, WorkerMsg::Events(chunk), self.event_drop_after()) {
            Ok(()) => {
                self.chunks_pushed += 1;
                self.metrics.enqueued[wid].add(unmarked);
            }
            Err(WorkerMsg::Events(chunk)) => {
                // Dead or stalled worker: account for every lost event so
                // the degraded profile quantifies exactly what is missing.
                self.dropped[wid] += chunk.len() as u64;
                self.metrics.dropped[wid].add(unmarked);
                self.pool.release(chunk);
            }
            Err(_) => unreachable!("deliver returns the message it was given"),
        }
        if !self.inflight.is_empty() {
            self.poll_responses();
        }
        // Never start a redistribution while a migration's buffered
        // events are being drained (`in_poll`): a nested Extract issued
        // between two halves of the buffered stream would capture the
        // signature state mid-replay and orphan the remainder.
        if self.cfg.redistribution
            && !self.in_rebalance
            && !self.in_poll
            && self.chunks_pushed.is_multiple_of(self.cfg.redistribute_every)
        {
            self.maybe_redistribute();
        }
    }

    fn flush_all(&mut self) {
        for wid in 0..self.pending.len() {
            self.flush(wid);
        }
    }

    /// Delivers a migration's buffered accesses to `target` (diverted if
    /// the target died), after the `Inject` — per-address order preserved.
    fn replay_buffered(&mut self, target: usize, buffered: Vec<TraceEvent>) {
        let dest = if self.is_dead(target) { self.next_live(target) } else { Some(target) };
        match dest {
            Some(t) => {
                for ev in buffered {
                    self.append(t, ev);
                }
            }
            // Every worker is dead: the buffer is lost, but accounted.
            // These events never reached a chunk, so the conservation
            // ledger counts them pushed and dropped at the same instant.
            None => {
                self.dropped[target] += buffered.len() as u64;
                self.metrics.pushed.add(buffered.len() as u64);
                self.metrics.dropped[target].add(buffered.len() as u64);
            }
        }
    }

    fn poll_responses(&mut self) {
        // Non-reentrant: appends below can flush, and flushing polls. The
        // outer invocation keeps draining, so skipping the nested call
        // loses nothing.
        if self.in_poll {
            return;
        }
        self.in_poll = true;
        self.resolve_dead_migrations();
        while let Some(msg) = self.resp.pop() {
            let (addr, read, write) = match msg {
                RouterMsg::Extracted { addr, read, write } => (addr, read, write),
                // A delta reply outside `collect_deltas`' window (a
                // worker that answered after the deadline): the worker
                // already drained its dirty set, so park the movement
                // for the next collection instead of losing it.
                RouterMsg::Delta { delta, .. } => {
                    if !delta.is_empty() {
                        self.pending_deltas.push(delta);
                    }
                    continue;
                }
                // A checkpoint reply outside `checkpoint_data`'s collect
                // loop (e.g. from a worker that answered after the
                // deadline): counted and dropped, never fatal.
                RouterMsg::CheckpointState { .. } => {
                    self.spurious_replies += 1;
                    continue;
                }
            };
            // A reply with no pending migration (its migration was
            // cancelled after the source was presumed dead, and the reply
            // arrived anyway) is counted and ignored — it must not kill
            // the router.
            let Some(inf) = self.inflight.remove(&addr) else {
                self.spurious_replies += 1;
                continue;
            };
            let mut target = inf.target;
            if self.is_dead(target) {
                match self.next_live(target) {
                    Some(f) => {
                        // Divert the migration to a surviving worker.
                        self.rules.insert(addr, f);
                        target = f;
                    }
                    None => {
                        self.cancelled_migrations += 1;
                        self.dropped[inf.target] += inf.buffered.len() as u64;
                        // Never chunked: pushed and dropped at once, as in
                        // replay_buffered's all-dead arm.
                        self.metrics.pushed.add(inf.buffered.len() as u64);
                        self.metrics.dropped[inf.target].add(inf.buffered.len() as u64);
                        continue;
                    }
                }
            }
            if self
                .deliver(target, WorkerMsg::Inject { addr, read, write }, self.event_drop_after())
                .is_err()
            {
                // Stalled target: the extracted state is lost; the
                // buffered suffix still goes through normal (accounted)
                // delivery below.
                self.cancelled_migrations += 1;
            }
            self.replay_buffered(target, inf.buffered);
        }
        self.in_poll = false;
    }

    /// Cancels migrations whose source died before replying: the reply
    /// will never come, so the buffered accesses are released to the
    /// target with fresh state instead of being held forever.
    fn resolve_dead_migrations(&mut self) {
        if self.inflight.is_empty() {
            return;
        }
        let stuck: Vec<Address> = self
            .inflight
            .iter()
            .filter(|(_, inf)| self.sup.dead[inf.source].load(Ordering::Acquire))
            .map(|(&a, _)| a)
            .collect();
        for addr in stuck {
            let inf = self.inflight.remove(&addr).expect("collected from the same map");
            self.cancelled_migrations += 1;
            self.replay_buffered(inf.target, inf.buffered);
        }
    }

    /// Section IV-A: keep the `top_k` hottest addresses evenly spread.
    fn maybe_redistribute(&mut self) {
        self.in_rebalance = true;
        let k = self.cfg.top_k;
        let w = self.senders.len();
        // Select the k hottest addresses, ties broken by address so the
        // choice is independent of hash-map iteration order: a resumed
        // run rebuilds `counts` from the checkpoint with a different
        // internal layout and must still pick the same addresses the
        // uninterrupted run does.
        let mut top: Vec<(Address, u64)> = self.counts.iter().map(|(&a, &c)| (a, c)).collect();
        top.sort_unstable_by_key(|&(a, c)| (std::cmp::Reverse(c), a));
        top.truncate(k);
        // Check balance: how many of the top-k does each worker own?
        let mut load = vec![0usize; w];
        for &(a, _) in &top {
            load[self.owner(a)] += 1;
        }
        let ideal = top.len().div_ceil(w);
        if load.iter().all(|&l| l <= ideal) {
            self.in_rebalance = false;
            return; // already even
        }
        // Reassign round-robin by heat and migrate owners that change.
        let mut moved = 0usize;
        for (rank, &(addr, _)) in top.iter().enumerate() {
            let desired = rank % w;
            let old = self.owner(addr);
            // A migration needs both endpoints alive: a dead source has
            // no state to extract, a dead target nothing to inject into.
            if old == desired
                || self.inflight.contains_key(&addr)
                || self.is_dead(old)
                || self.is_dead(desired)
            {
                continue;
            }
            // Order: everything routed so far must precede Extract.
            self.flush(old);
            let prev = self.rules.insert(addr, desired);
            self.inflight
                .insert(addr, Inflight { source: old, target: desired, buffered: Vec::new() });
            match self.deliver(old, WorkerMsg::Extract { addr }, self.event_drop_after()) {
                Ok(()) => moved += 1,
                Err(_) => {
                    // Unreachable source: cancel the migration and restore
                    // the previous routing.
                    self.inflight.remove(&addr);
                    match prev {
                        Some(p) => self.rules.insert(addr, p),
                        None => self.rules.remove(&addr),
                    };
                    self.cancelled_migrations += 1;
                }
            }
        }
        if moved > 0 {
            self.redistributions += 1;
            self.cfg.observer.on_redistribution(moved);
        }
        self.in_rebalance = false;
    }

    /// Quiesces the pipeline at a chunk barrier and captures a complete,
    /// consistent checkpoint: in-flight migrations are completed first
    /// (a checkpoint must not capture signature state mid-move), pending
    /// chunks are flushed, then every worker serializes its extraction
    /// state after consuming everything routed before the barrier (queue
    /// FIFO order guarantees the cut is consistent). The caller supplies
    /// the trace position and an opaque configuration blob, and writes
    /// the result through a
    /// [`CheckpointStore`](crate::checkpoint::CheckpointStore).
    ///
    /// Every wait is bounded by [`ProfilerConfig::drain_deadline_ms`]; a
    /// dead or unresponsive worker yields
    /// [`CheckpointError::WorkerUnavailable`] rather than a checkpoint
    /// that silently lies about the run.
    pub fn checkpoint_data(
        &mut self,
        generation: u64,
        records_read: u64,
        config: Vec<u8>,
    ) -> Result<CheckpointData, CheckpointError> {
        let drain = Duration::from_millis(self.cfg.drain_deadline_ms.max(1));
        let deadline = Instant::now() + drain;
        while !self.inflight.is_empty() && Instant::now() < deadline {
            self.poll_responses();
            if self.inflight.is_empty() {
                break;
            }
            std::thread::yield_now();
        }
        if !self.inflight.is_empty() {
            // A migration source never replied: its signature state is
            // in limbo and no consistent cut exists.
            let wid = self.inflight.values().next().map(|i| i.source).unwrap_or(0);
            return Err(CheckpointError::WorkerUnavailable(wid));
        }
        self.flush_all();
        let w = self.senders.len();
        for wid in 0..w {
            if self.deliver(wid, WorkerMsg::Checkpoint, Some(drain)).is_err() {
                return Err(CheckpointError::WorkerUnavailable(wid));
            }
        }
        let mut states: Vec<Option<Vec<u8>>> = (0..w).map(|_| None).collect();
        let mut replied = vec![false; w];
        let mut got = 0usize;
        let deadline = Instant::now() + drain;
        while got < w {
            match self.resp.pop() {
                Some(RouterMsg::CheckpointState { worker, state }) => {
                    if worker < w && !replied[worker] {
                        replied[worker] = true;
                        states[worker] = state;
                        got += 1;
                    } else {
                        self.spurious_replies += 1;
                    }
                }
                // `inflight` is empty, so any Extracted reply here is by
                // definition spurious (a cancelled migration's late
                // answer).
                Some(RouterMsg::Extracted { .. }) => self.spurious_replies += 1,
                // A late delta reply: park the movement, never drop it.
                Some(RouterMsg::Delta { delta, .. }) => {
                    if !delta.is_empty() {
                        self.pending_deltas.push(delta);
                    }
                }
                None => {
                    if let Some(wid) = (0..w).find(|&wid| !replied[wid] && self.is_dead(wid)) {
                        return Err(CheckpointError::WorkerUnavailable(wid));
                    }
                    if Instant::now() >= deadline {
                        let wid = replied.iter().position(|r| !r).unwrap_or(0);
                        return Err(CheckpointError::WorkerUnavailable(wid));
                    }
                    std::thread::yield_now();
                }
            }
        }
        let mut workers = Vec::with_capacity(w);
        for st in states {
            workers.push(st.ok_or(CheckpointError::Unsupported(
                "the worker access store does not support checkpointing",
            ))?);
        }
        Ok(CheckpointData {
            generation,
            records_read,
            config,
            router: self.save_router(),
            ledger: self.metrics.save(),
            workers,
        })
    }

    /// Serializes the router's statistics and rules, hash maps sorted by
    /// address so identical states produce identical bytes.
    fn save_router(&self) -> Vec<u8> {
        let mut out = ByteWriter::new();
        out.u64(self.chunks_pushed);
        out.u64(self.redistributions);
        out.u64(self.rerouted_events);
        out.u64(self.cancelled_migrations);
        out.u64(self.spurious_replies);
        out.u32(self.dropped.len() as u32);
        for d in &self.dropped {
            out.u64(*d);
        }
        let mut counts: Vec<(Address, u64)> = self.counts.iter().map(|(&a, &c)| (a, c)).collect();
        counts.sort_unstable_by_key(|&(a, _)| a);
        out.u64(counts.len() as u64);
        for (a, c) in counts {
            out.u64(a);
            out.u64(c);
        }
        let mut rules: Vec<(Address, usize)> = self.rules.iter().map(|(&a, &r)| (a, r)).collect();
        rules.sort_unstable_by_key(|&(a, _)| a);
        out.u64(rules.len() as u64);
        for (a, r) in rules {
            out.u64(a);
            out.u32(r as u32);
        }
        out.into_bytes()
    }

    fn restore_router(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut r = ByteReader::new(bytes);
        self.chunks_pushed = r.u64()?;
        self.redistributions = r.u64()?;
        self.rerouted_events = r.u64()?;
        self.cancelled_migrations = r.u64()?;
        self.spurious_replies = r.u64()?;
        let nd = r.u32()? as usize;
        if nd != self.dropped.len() {
            return Err(WireError::Invalid("router drop-vector length differs from checkpoint"));
        }
        for d in self.dropped.iter_mut() {
            *d = r.u64()?;
        }
        let nc = r.u64()?;
        let mut counts = FxHashMap::default();
        for _ in 0..nc {
            let a = r.u64()?;
            counts.insert(a, r.u64()?);
        }
        self.counts = counts;
        let nr = r.u64()?;
        let mut rules = FxHashMap::default();
        for _ in 0..nr {
            let a = r.u64()?;
            let wid = r.u32()? as usize;
            if wid >= self.senders.len() {
                return Err(WireError::Invalid("redistribution rule targets a nonexistent worker"));
            }
            rules.insert(a, wid);
        }
        self.rules = rules;
        if !r.is_done() {
            return Err(WireError::Invalid("trailing bytes after router state"));
        }
        Ok(())
    }

    /// Turns on online analysis: every live worker starts tracking
    /// dependence-map movement ([`DepStore::enable_delta`]). The
    /// worker-side enable seeds its full current state at a zero
    /// baseline, so the first [`ParallelProfiler::collect_deltas`] ships
    /// complete history no matter how late this is called. Idempotent.
    pub fn enable_online(&mut self) {
        if self.online {
            return;
        }
        self.online = true;
        for wid in 0..self.senders.len() {
            if !self.is_dead(wid) {
                // A dead or stalled worker just misses the enable; its
                // dependences surface when its store merges at finish.
                let _ = self.deliver(wid, WorkerMsg::EnableDelta, self.event_drop_after());
            }
        }
    }

    /// True once [`ParallelProfiler::enable_online`] has run.
    pub fn online_enabled(&self) -> bool {
        self.online
    }

    /// Flushes pending chunks and drains every live worker's dirty set
    /// into [`AnalysisDelta`]s (plus any parked late replies). Best
    /// effort under chaos: a worker that stays silent past the drain
    /// deadline is skipped — its movement is parked by `poll_responses`
    /// when the reply finally lands, so nothing is lost, merely late.
    /// With a quiet pipeline (every fed event consumed, as at the final
    /// query of a session) the folded deltas reproduce the workers'
    /// stores exactly.
    pub fn collect_deltas(&mut self) -> Vec<crate::store::AnalysisDelta> {
        let mut out = std::mem::take(&mut self.pending_deltas);
        if !self.online {
            return out;
        }
        let drain = Duration::from_millis(self.cfg.drain_deadline_ms.max(1));
        // Complete in-flight migrations first so buffered accesses reach
        // their worker before the flush barrier.
        let deadline = Instant::now() + drain;
        while !self.inflight.is_empty() && Instant::now() < deadline {
            self.poll_responses();
            if self.inflight.is_empty() {
                break;
            }
            std::thread::yield_now();
        }
        self.flush_all();
        let w = self.senders.len();
        let mut expect = vec![false; w];
        let mut waiting = 0usize;
        for (wid, e) in expect.iter_mut().enumerate() {
            if !self.is_dead(wid) && self.deliver(wid, WorkerMsg::DeltaFlush, Some(drain)).is_ok() {
                *e = true;
                waiting += 1;
            }
        }
        let deadline = Instant::now() + drain;
        while waiting > 0 {
            match self.resp.pop() {
                Some(RouterMsg::Delta { worker, delta }) => {
                    if worker < w && expect[worker] {
                        expect[worker] = false;
                        waiting -= 1;
                    }
                    // Replies from an earlier window count too: deltas
                    // compose in any order (counts add, flags OR,
                    // carriers union).
                    if !delta.is_empty() {
                        out.push(delta);
                    }
                }
                Some(RouterMsg::Extracted { .. }) | Some(RouterMsg::CheckpointState { .. }) => {
                    self.spurious_replies += 1;
                }
                None => {
                    for (wid, e) in expect.iter_mut().enumerate() {
                        if *e && self.sup.dead[wid].load(Ordering::Acquire) {
                            *e = false;
                            waiting -= 1;
                        }
                    }
                    if Instant::now() >= deadline {
                        break; // slow worker: answer goes stale, not lost
                    }
                    std::thread::yield_now();
                }
            }
        }
        out
    }

    /// Monotone progress heartbeat for the run watchdog, piggybacked on
    /// the conservation ledger: events the router has pushed plus
    /// events the workers have consumed, so progress on either side of
    /// the queues moves the value. Constant 0 when the `metrics`
    /// feature is off — callers then track feed-side progress
    /// themselves.
    pub fn heartbeat(&self) -> u64 {
        self.metrics.pushed.get() + self.metrics.consumed.iter().map(Counter::get).sum::<u64>()
    }

    /// Completes migrations, drains the pipeline, joins the workers and
    /// merges their results. Every wait is bounded by
    /// [`ProfilerConfig::drain_deadline_ms`]: a dead or unresponsive
    /// worker degrades the profile (see [`ProfileStats::degraded`])
    /// instead of hanging or aborting the caller.
    pub fn finish(mut self) -> ProfileResult {
        // Feed phase ends here; everything below is the drain.
        let feed_nanos = self.timer.elapsed_nanos();
        let drain_timer = Stopwatch::start();
        let drain = Duration::from_millis(self.cfg.drain_deadline_ms.max(1));
        let deadline = Instant::now() + drain;
        while !self.inflight.is_empty() && Instant::now() < deadline {
            self.poll_responses();
            if self.inflight.is_empty() {
                break;
            }
            std::thread::yield_now();
        }
        // Migrations still pending past the deadline (a dropped reply, a
        // stalled source) are cancelled: the buffered accesses reach the
        // target with fresh state rather than being lost in limbo.
        if !self.inflight.is_empty() {
            let addrs: Vec<Address> = self.inflight.keys().copied().collect();
            for addr in addrs {
                let inf = self.inflight.remove(&addr).expect("keys from the same map");
                self.cancelled_migrations += 1;
                self.replay_buffered(inf.target, inf.buffered);
            }
        }
        self.flush_all();
        let w = self.senders.len();
        let mut shutdown_ok = vec![false; w];
        for (wid, ok) in shutdown_ok.iter_mut().enumerate() {
            // Shutdown delivery is always bounded: nothing but a stalled
            // worker can keep its queue full for the whole drain deadline
            // once the producer has stopped feeding it.
            match self.deliver(wid, WorkerMsg::Shutdown, Some(drain)) {
                Ok(()) => *ok = true,
                Err(_) => self.sup.abandon[wid].store(true, Ordering::Release),
            }
        }
        let mut stats = ProfileStats::default();
        let mut global = DepStore::new();
        let mut exec_tree = crate::exectree::ExecTree::new();
        let mut sig_mem = 0usize;
        let mut per_worker_events = Vec::with_capacity(w);
        let mut failures: Vec<WorkerFailure> = Vec::new();
        let mut gauges = SigGauges::default();
        let grace = Duration::from_millis(self.cfg.drain_deadline_ms.clamp(50, 500));
        let handles = std::mem::take(&mut self.handles);
        for (wid, h) in handles.into_iter().enumerate() {
            let wait = if shutdown_ok[wid] { drain } else { grace };
            let (exit, abandoned) = join_within(h, &self.sup.abandon[wid], wait, grace);
            let healthy = shutdown_ok[wid] && !abandoned;
            match exit {
                Some(WorkerExit::Finished(out)) => {
                    if !healthy {
                        // Partial results salvaged from a worker that had
                        // to be abandoned (e.g. an injected stall).
                        failures.push(WorkerFailure {
                            worker: wid,
                            workers: w,
                            cause: FailureCause::Unresponsive,
                        });
                    }
                    stats.absorb(out.counters);
                    sig_mem += out.sig_mem;
                    per_worker_events.push(out.counters.accesses);
                    gauges.occupied_slots += out.gauges.occupied_slots;
                    gauges.total_slots += out.gauges.total_slots;
                    gauges.evictions += out.gauges.evictions;
                    // The worst worker's predicted FPR bounds the run's.
                    gauges.est_fpr_pct = gauges.est_fpr_pct.max(out.gauges.est_fpr_pct);
                    global.merge(out.store);
                    exec_tree.merge(&out.exec_tree);
                }
                Some(WorkerExit::Panicked { payload }) => {
                    failures.push(WorkerFailure {
                        worker: wid,
                        workers: w,
                        cause: FailureCause::Panic(payload),
                    });
                    per_worker_events.push(0);
                }
                None => {
                    // Never exited within the deadline; the thread is
                    // detached rather than blocking finish() forever.
                    failures.push(WorkerFailure {
                        worker: wid,
                        workers: w,
                        cause: FailureCause::Unresponsive,
                    });
                    per_worker_events.push(0);
                }
            }
        }
        stats.deps_built = global.deps_built();
        stats.deps_merged = global.merged_len();
        stats.chunks_pushed = self.chunks_pushed;
        stats.redistributions = self.redistributions;
        stats.redistributed_addrs = self.rules.len() as u64;
        stats.dropped_events = self.dropped.iter().sum();
        if stats.dropped_events > 0 {
            stats.dropped_per_worker = self.dropped.clone();
        }
        stats.rerouted_events = self.rerouted_events;
        stats.cancelled_migrations = self.cancelled_migrations;
        stats.spurious_replies = self.spurious_replies;
        stats.worker_failures = failures;
        for f in &stats.worker_failures {
            self.cfg.observer.on_worker_failure(f.worker);
        }
        let entry = std::mem::size_of::<(Address, u64)>() + 1;
        let memory = MemoryReport {
            signatures: sig_mem,
            queues: self.senders.iter().map(|s| s.memory_usage()).sum(),
            chunks: self.pool.memory_usage(),
            dep_store: global.memory_usage(),
            stats_maps: self.counts.capacity() * entry + self.rules.capacity() * entry,
        };
        let metrics = self.snapshot(feed_nanos, drain_timer.elapsed_nanos(), gauges);
        self.cfg.observer.on_finish(&metrics);
        ProfileResult {
            deps: global,
            exec_tree,
            stats,
            memory,
            workers: self.senders.len(),
            per_worker_events,
            metrics,
        }
    }

    /// Assembles the final [`MetricsSnapshot`] from the ledger, the
    /// channel taps and the router's hot-address statistics. Returns the
    /// all-zero default when the `metrics` feature is off.
    fn snapshot(
        &self,
        feed_nanos: u64,
        drain_nanos: u64,
        signatures: SigGauges,
    ) -> MetricsSnapshot {
        if !dp_metrics::ENABLED {
            return MetricsSnapshot::default();
        }
        let w = self.senders.len();
        let m = &self.metrics;
        let mut conservation = Conservation {
            pushed: m.pushed.get(),
            rerouted: m.rerouted.get(),
            ..Conservation::default()
        };
        let mut per_worker = Vec::with_capacity(w);
        let mut stall_total = 0u64;
        let mut chunks_consumed = 0u64;
        for wid in 0..w {
            let enqueued = m.enqueued[wid].get();
            // An abandoned-but-running worker may still be consuming while
            // we snapshot; clamping to `enqueued` (read first) keeps the
            // split between consumed and in-flight internally consistent.
            let consumed = m.consumed[wid].get().min(enqueued);
            let dropped = m.dropped[wid].get();
            let in_flight = enqueued - consumed;
            let stall_nanos = m.stall[wid].get();
            let consumed_chunks = m.consumed_chunks[wid].get();
            conservation.consumed += consumed;
            conservation.dropped += dropped;
            conservation.in_flight_at_shutdown += in_flight;
            stall_total += stall_nanos;
            chunks_consumed += consumed_chunks;
            per_worker.push(WorkerMetrics {
                worker: wid,
                enqueued,
                consumed,
                dropped,
                in_flight,
                consumed_chunks,
                stall_nanos,
            });
        }
        let chunks = ChunkStats {
            pushed: self.chunks_pushed,
            consumed: chunks_consumed,
            queue_highwater: self.taps.iter().map(|t| t.high_water.get()).max().unwrap_or(0),
            push_retries: self.taps.iter().map(|t| t.push_fulls.get()).sum(),
            empty_pops: self.taps.iter().map(|t| t.empty_pops.get()).sum(),
        };
        // Top-k hottest addresses from the Section IV-A statistics, count
        // descending with the address as deterministic tie-break.
        let mut hot_addresses: Vec<HotAddress> =
            self.counts.iter().map(|(&addr, &count)| HotAddress { addr, count }).collect();
        hot_addresses.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.addr.cmp(&b.addr)));
        hot_addresses.truncate(self.cfg.top_k);
        MetricsSnapshot {
            enabled: true,
            workers: w,
            // The chaos seed is a run-level fact the CLI stamps on the
            // snapshot; engines report 0.
            chaos_seed: 0,
            conservation,
            chunks,
            stall_nanos: stall_total,
            signatures,
            // Engines only produce checkpoint blobs on demand; the driver
            // that owns the checkpoint store fills these in afterwards.
            checkpoints: Default::default(),
            service: Default::default(),
            hot_addresses,
            per_worker,
            timings: PhaseTimings {
                feed_nanos,
                drain_nanos,
                total_nanos: feed_nanos + drain_nanos,
            },
        }
    }
}

impl<S, X> Tracer for ParallelProfiler<S, X>
where
    S: AccessStore + 'static,
    X: Transport<WorkerMsg>,
{
    fn event(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Access(a) => {
                // Access statistics, updated on every access (Section
                // IV-A: "updated every time a memory access occurs").
                *self.counts.entry(a.addr).or_insert(0) += 1;
                if let Some(inf) = self.inflight.get_mut(&a.addr) {
                    inf.buffered.push(ev);
                    self.poll_responses();
                } else {
                    let (wid, diverted) = self.route(a.addr);
                    self.append_routed(wid, ev, diverted);
                }
            }
            TraceEvent::LoopBegin { .. }
            | TraceEvent::LoopIter { .. }
            | TraceEvent::LoopEnd { .. } => {
                if self.cfg.track_carried {
                    // Loop context is needed by every worker for carried
                    // classification.
                    for wid in 0..self.pending.len() {
                        if !self.is_dead(wid) {
                            self.append(wid, ev);
                        }
                    }
                } else {
                    let wid = if self.is_dead(0) { self.next_live(0).unwrap_or(0) } else { 0 };
                    self.append(wid, ev);
                }
            }
            TraceEvent::CallBegin { .. } | TraceEvent::CallEnd { .. } => {
                // Structural events feed the execution tree, recorded by
                // worker 0 only. (If worker 0 died the tree is part of
                // what the degraded run lost; the divert below just keeps
                // delivery from blocking.)
                let wid = if self.is_dead(0) { self.next_live(0).unwrap_or(0) } else { 0 };
                self.append(wid, ev);
            }
            TraceEvent::Dealloc { .. } => {
                // Every worker forgets the range (removing an address a
                // worker never owned is a harmless no-op).
                for wid in 0..self.pending.len() {
                    if !self.is_dead(wid) {
                        self.append(wid, ev);
                    }
                }
            }
        }
    }

    fn sync_point(&mut self) {
        self.flush_all();
    }
}

/// Waits for a worker thread to end, escalating rather than blocking:
/// poll for `wait`, then raise the abandon flag and poll for `grace`
/// more, then give up and leave the thread detached. Returns the exit
/// (None if the thread never finished) and whether it was abandoned.
fn join_within(
    h: JoinHandle<WorkerExit>,
    abandon: &AtomicBool,
    wait: Duration,
    grace: Duration,
) -> (Option<WorkerExit>, bool) {
    let mut abandoned = abandon.load(Ordering::Acquire);
    let end = Instant::now() + wait;
    while !h.is_finished() && Instant::now() < end {
        std::thread::sleep(Duration::from_millis(1));
    }
    if !h.is_finished() && !abandoned {
        abandon.store(true, Ordering::Release);
        abandoned = true;
        let end = Instant::now() + grace;
        while !h.is_finished() && Instant::now() < end {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    if h.is_finished() {
        let exit = match h.join() {
            Ok(e) => e,
            // A panic that somehow escaped the worker's catch_unwind.
            Err(p) => WorkerExit::Panicked { payload: panic_message(&*p) },
        };
        (Some(exit), abandoned)
    } else {
        (None, abandoned)
    }
}

/// Best-effort stringification of a panic payload.
pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Injected panic/stall hook, called at the top of every worker-loop
/// iteration. Returns true when an (injected) stalled worker has been
/// abandoned and should exit so its partial results can be salvaged.
#[cfg(feature = "fault-inject")]
fn fault_pause_or_panic(
    wid: usize,
    chunks_done: u64,
    fault: &FaultRt,
    abandon: &AtomicBool,
) -> bool {
    if let Some(f) = fault.plan.panic_worker {
        if f.worker == wid && chunks_done >= f.after_chunks {
            panic!("injected fault: worker {wid} panicked after {} chunks", f.after_chunks);
        }
    }
    if let Some(f) = fault.plan.stall_worker {
        if f.worker == wid && chunks_done >= f.after_chunks {
            // Stop consuming; stay alive until the supervisor gives up on
            // us, then exit without draining (a stalled worker's queued
            // events are part of what the degraded run lost).
            while !abandon.load(Ordering::Acquire) {
                std::thread::park_timeout(Duration::from_millis(1));
            }
            return true;
        }
    }
    false
}

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
fn fault_pause_or_panic(_: usize, _: u64, _: &FaultRt, _: &AtomicBool) -> bool {
    false
}

/// Injected reply-loss hook: true when this `Extracted` reply is the one
/// the plan says to swallow.
#[cfg(feature = "fault-inject")]
fn fault_drop_reply(fault: &FaultRt) -> bool {
    match fault.plan.drop_nth_extract_reply {
        Some(n) => fault.extract_replies.fetch_add(1, Ordering::Relaxed) == n,
        None => false,
    }
}

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
fn fault_drop_reply(_: &FaultRt) -> bool {
    false
}

/// Supervised entry point of a worker thread: contains panics (flagging
/// `dead[wid]` before the thread exits so the router fails fast) and
/// reports the exit kind to the supervisor in `finish()`.
fn worker_loop<S: AccessStore, R: TransportReceiver<WorkerMsg>>(
    wid: usize,
    q: R,
    algo: AlgoState<S>,
    ctx: WorkerCtx,
) -> WorkerExit {
    let sup = ctx.sup.clone();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        run_worker(wid, q, algo, &ctx)
    }));
    match out {
        Ok(out) => WorkerExit::Finished(Box::new(out)),
        Err(payload) => {
            sup.dead[wid].store(true, Ordering::Release);
            WorkerExit::Panicked { payload: panic_message(&*payload) }
        }
    }
}

fn run_worker<S: AccessStore, R: TransportReceiver<WorkerMsg>>(
    wid: usize,
    q: R,
    mut algo: AlgoState<S>,
    ctx: &WorkerCtx,
) -> WorkerOutput {
    let mut backoff = Backoff::new();
    let mut chunks_done = 0u64;
    loop {
        if fault_pause_or_panic(wid, chunks_done, &ctx.fault, &ctx.sup.abandon[wid]) {
            break;
        }
        match q.pop() {
            Some(WorkerMsg::Events(chunk)) => {
                // Consumed means *off the queue*: count at pop (the
                // counters live in the shared ledger, so they survive a
                // mid-chunk panic) with rerouted marks excluded.
                ctx.metrics.consumed[wid].add((chunk.len() - chunk.rerouted()) as u64);
                ctx.metrics.consumed_chunks[wid].inc();
                for ev in chunk.events() {
                    algo.on_event(ev);
                }
                ctx.pool.release(chunk);
                chunks_done += 1;
                backoff.reset();
            }
            Some(WorkerMsg::Extract { addr }) => {
                let (read, write) = algo.extract(addr);
                if !fault_drop_reply(&ctx.fault) {
                    let mut msg = RouterMsg::Extracted { addr, read, write };
                    loop {
                        match ctx.resp.push(msg) {
                            Ok(()) => break,
                            Err(back) => {
                                msg = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }
            Some(WorkerMsg::Inject { addr, read, write }) => {
                algo.inject(addr, read, write);
            }
            Some(WorkerMsg::Checkpoint) => {
                let mut out = ByteWriter::new();
                let state = algo.save_state(&mut out).then(|| out.into_bytes());
                let mut msg = RouterMsg::CheckpointState { worker: wid, state };
                loop {
                    match ctx.resp.push(msg) {
                        Ok(()) => break,
                        Err(back) => {
                            msg = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            Some(WorkerMsg::EnableDelta) => {
                algo.store.enable_delta();
            }
            Some(WorkerMsg::DeltaFlush) => {
                let mut msg = RouterMsg::Delta { worker: wid, delta: algo.store.take_delta() };
                loop {
                    match ctx.resp.push(msg) {
                        Ok(()) => break,
                        Err(back) => {
                            msg = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            Some(WorkerMsg::Shutdown) => break,
            None => backoff.snooze(),
        }
    }
    let gauges = algo.sig_gauges();
    let (store, exec_tree, counters, sig_mem) = algo.finish();
    WorkerOutput { store, exec_tree, counters, sig_mem, gauges }
}

/// The lock-free build (the paper's main configuration).
pub type LockFreeProfiler<S> = ParallelProfiler<S, Shared<MpmcQueue<WorkerMsg>>>;
/// The lock-based comparator build (Figure 5).
pub type LockBasedProfiler<S> = ParallelProfiler<S, Shared<dp_queue::LockQueue<WorkerMsg>>>;
/// The SPSC fast-path build for sequential targets (one producing
/// thread; the `!Sync` senders make misuse a compile error).
pub type SpscProfiler<S> = ParallelProfiler<S, SpscTransport>;

/// A parallel profiler whose transport is chosen at runtime from
/// [`ProfilerConfig::transport`] ([`TransportKind`]). All variants share
/// the same engine code and produce bit-identical dependence sets; only
/// the per-worker channel implementation differs.
pub enum AnyParallelProfiler<S: AccessStore + 'static> {
    /// SPSC fast path ([`TransportKind::Spsc`]).
    Spsc(SpscProfiler<S>),
    /// Lock-free MPMC ([`TransportKind::Mpmc`]).
    Mpmc(LockFreeProfiler<S>),
    /// Lock-based comparator ([`TransportKind::Lock`]).
    Lock(LockBasedProfiler<S>),
}

impl<S: AccessStore + 'static> AnyParallelProfiler<S> {
    /// Starts the pipeline over the transport named by `cfg.transport`.
    pub fn new(cfg: ProfilerConfig, make_store: impl Fn() -> S) -> Self {
        match cfg.transport {
            TransportKind::Spsc => Self::Spsc(ParallelProfiler::new(cfg, make_store)),
            TransportKind::Mpmc => Self::Mpmc(ParallelProfiler::new(cfg, make_store)),
            TransportKind::Lock => Self::Lock(ParallelProfiler::new(cfg, make_store)),
        }
    }

    /// Rebuilds the pipeline from a checkpoint over the transport named
    /// by `cfg.transport` (see [`ParallelProfiler::resume`]). The
    /// configuration must match the one the checkpoint was taken under;
    /// a worker-count mismatch is rejected.
    pub fn resume(
        cfg: ProfilerConfig,
        make_store: impl Fn() -> S,
        data: &CheckpointData,
    ) -> Result<Self, CheckpointError> {
        Ok(match cfg.transport {
            TransportKind::Spsc => Self::Spsc(ParallelProfiler::resume(cfg, make_store, data)?),
            TransportKind::Mpmc => Self::Mpmc(ParallelProfiler::resume(cfg, make_store, data)?),
            TransportKind::Lock => Self::Lock(ParallelProfiler::resume(cfg, make_store, data)?),
        })
    }

    /// Quiesces the pipeline and captures a consistent checkpoint (see
    /// [`ParallelProfiler::checkpoint_data`]).
    pub fn checkpoint_data(
        &mut self,
        generation: u64,
        records_read: u64,
        config: Vec<u8>,
    ) -> Result<CheckpointData, CheckpointError> {
        match self {
            Self::Spsc(p) => p.checkpoint_data(generation, records_read, config),
            Self::Mpmc(p) => p.checkpoint_data(generation, records_read, config),
            Self::Lock(p) => p.checkpoint_data(generation, records_read, config),
        }
    }

    /// Turns on online analysis in every live worker (see
    /// [`ParallelProfiler::enable_online`]).
    pub fn enable_online(&mut self) {
        match self {
            Self::Spsc(p) => p.enable_online(),
            Self::Mpmc(p) => p.enable_online(),
            Self::Lock(p) => p.enable_online(),
        }
    }

    /// True once online analysis has been enabled.
    pub fn online_enabled(&self) -> bool {
        match self {
            Self::Spsc(p) => p.online_enabled(),
            Self::Mpmc(p) => p.online_enabled(),
            Self::Lock(p) => p.online_enabled(),
        }
    }

    /// Drains the workers' dependence-map movement (see
    /// [`ParallelProfiler::collect_deltas`]).
    pub fn collect_deltas(&mut self) -> Vec<crate::store::AnalysisDelta> {
        match self {
            Self::Spsc(p) => p.collect_deltas(),
            Self::Mpmc(p) => p.collect_deltas(),
            Self::Lock(p) => p.collect_deltas(),
        }
    }

    /// Monotone progress value for the run watchdog (see
    /// [`ParallelProfiler::heartbeat`]).
    pub fn heartbeat(&self) -> u64 {
        match self {
            Self::Spsc(p) => p.heartbeat(),
            Self::Mpmc(p) => p.heartbeat(),
            Self::Lock(p) => p.heartbeat(),
        }
    }

    /// Short name of the active transport ("spsc", "lock-free",
    /// "lock-based").
    pub fn transport_kind(&self) -> &'static str {
        match self {
            Self::Spsc(_) => <SpscTransport as Transport<WorkerMsg>>::kind(),
            Self::Mpmc(_) => <Shared<MpmcQueue<WorkerMsg>> as Transport<WorkerMsg>>::kind(),
            Self::Lock(_) => {
                <Shared<dp_queue::LockQueue<WorkerMsg>> as Transport<WorkerMsg>>::kind()
            }
        }
    }

    /// Completes migrations, drains the pipeline, joins the workers and
    /// merges their results.
    pub fn finish(self) -> ProfileResult {
        match self {
            Self::Spsc(p) => p.finish(),
            Self::Mpmc(p) => p.finish(),
            Self::Lock(p) => p.finish(),
        }
    }
}

impl<S: AccessStore + 'static> Tracer for AnyParallelProfiler<S> {
    fn event(&mut self, ev: TraceEvent) {
        match self {
            Self::Spsc(p) => p.event(ev),
            Self::Mpmc(p) => p.event(ev),
            Self::Lock(p) => p.event(ev),
        }
    }

    fn sync_point(&mut self) {
        match self {
            Self::Spsc(p) => p.sync_point(),
            Self::Mpmc(p) => p.sync_point(),
            Self::Lock(p) => p.sync_point(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_sig::PerfectSignature;
    use dp_types::{loc::loc, AccessKind, DepType, MemAccess};

    fn cfg(workers: usize) -> ProfilerConfig {
        ProfilerConfig::default()
            .with_workers(workers)
            .with_chunk_capacity(8)
            .with_redistribution(false)
    }

    fn acc(kind: AccessKind, addr: u64, ts: u64, line: u32) -> TraceEvent {
        TraceEvent::Access(MemAccess { addr, ts, loc: loc(1, line), var: 1, thread: 0, kind })
    }

    #[test]
    fn parallel_matches_serial_semantics() {
        let mut p: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(4), PerfectSignature::new);
        let mut ts = 0;
        let mut next = || {
            ts += 1;
            ts
        };
        for i in 0..64u64 {
            p.event(acc(AccessKind::Write, 0x1000 + i * 8, next(), 10));
        }
        for i in 0..64u64 {
            p.event(acc(AccessKind::Read, 0x1000 + i * 8, next(), 11));
        }
        let r = p.finish();
        assert_eq!(r.stats.accesses, 128);
        assert_eq!(r.workers, 4);
        assert!(!r.degraded(), "healthy run must not be degraded: {:?}", r.stats);
        // One INIT record and one RAW record (all merged).
        assert_eq!(r.stats.deps_merged, 2);
        let raw = r.deps.dependences().find(|(d, _)| d.edge.dtype == DepType::Raw).unwrap();
        assert_eq!(raw.1.count, 64);
        assert_eq!(raw.0.sink.loc.line, 11);
        assert_eq!(raw.0.edge.source_loc.line, 10);
    }

    #[test]
    fn online_deltas_reconstruct_final_store() {
        use crate::store::AnalysisDelta;
        use dp_types::{DepFlags, LoopId, SinkKey, SourceLoc};
        use std::collections::{BTreeMap, BTreeSet};
        type Mirror = BTreeMap<(SinkKey, crate::store::EdgeKey), (u64, DepFlags, BTreeSet<LoopId>)>;
        type LoopMirror = BTreeMap<LoopId, (SourceLoc, SourceLoc, u64, u64)>;
        let fold = |edges: &mut Mirror, loops: &mut LoopMirror, deltas: Vec<AnalysisDelta>| {
            for d in deltas {
                for e in d.edges {
                    let v = edges.entry((e.sink, e.key)).or_insert((
                        0,
                        DepFlags::empty(),
                        BTreeSet::new(),
                    ));
                    v.0 += e.count_delta;
                    v.1 |= e.flags;
                    v.2.extend(e.carriers);
                }
                for l in d.loops {
                    let r = loops.entry(l.id).or_insert((l.begin, l.end, 0, 0));
                    r.2 += l.instances_delta;
                    r.3 += l.iters_delta;
                }
            }
        };
        let mut p: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(4), PerfectSignature::new);
        let mut ts = 0u64;
        let mut next = || {
            ts += 1;
            ts
        };
        let mut edges = Mirror::new();
        let mut loops = LoopMirror::new();
        p.event(TraceEvent::LoopBegin { loop_id: 3, loc: loc(1, 5), thread: 0, ts: next() });
        for i in 0..40u64 {
            p.event(TraceEvent::LoopIter { loop_id: 3, iter: i, thread: 0, ts: next() });
            p.event(acc(AccessKind::Write, 0x1000 + (i % 9) * 8, next(), 10));
            p.event(acc(AccessKind::Read, 0x1000 + (i % 9) * 8, next(), 11));
        }
        // Enable mid-run: the first collection must catch up on history.
        p.enable_online();
        fold(&mut edges, &mut loops, p.collect_deltas());
        for i in 0..40u64 {
            p.event(TraceEvent::LoopIter { loop_id: 3, iter: 40 + i, thread: 0, ts: next() });
            p.event(acc(AccessKind::Read, 0x1000 + (i % 9) * 8, next(), 12));
        }
        p.event(TraceEvent::LoopEnd {
            loop_id: 3,
            loc: loc(1, 9),
            iters: 80,
            thread: 0,
            ts: next(),
        });
        fold(&mut edges, &mut loops, p.collect_deltas());
        // Idle pipeline: another collection ships nothing.
        assert!(p.collect_deltas().iter().all(AnalysisDelta::is_empty));
        let r = p.finish();
        assert!(!r.degraded());
        let want_edges: Mirror = r
            .deps
            .sinks()
            .flat_map(|(sink, m)| {
                m.iter().map(|(k, v)| ((*sink, *k), (v.count, v.flags, v.carriers.clone())))
            })
            .collect();
        let want_loops: LoopMirror = r
            .deps
            .loops()
            .map(|(id, rec)| (*id, (rec.begin, rec.end, rec.instances, rec.total_iters)))
            .collect();
        assert_eq!(edges, want_edges, "folded deltas must equal the final merged store");
        assert_eq!(loops, want_loops);
    }

    #[test]
    fn lock_based_build_equivalent() {
        let mut p: LockBasedProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(3), PerfectSignature::new);
        for i in 0..32u64 {
            p.event(acc(AccessKind::Write, i * 8, i * 2 + 1, 1));
            p.event(acc(AccessKind::Read, i * 8, i * 2 + 2, 2));
        }
        let r = p.finish();
        assert_eq!(r.stats.deps_merged, 2);
    }

    #[test]
    fn spsc_build_equivalent() {
        let mut p: SpscProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(3), PerfectSignature::new);
        for i in 0..32u64 {
            p.event(acc(AccessKind::Write, i * 8, i * 2 + 1, 1));
            p.event(acc(AccessKind::Read, i * 8, i * 2 + 2, 2));
        }
        let r = p.finish();
        assert_eq!(r.stats.deps_merged, 2);
        assert_eq!(r.stats.accesses, 64);
    }

    #[test]
    fn spsc_redistribution_migrates_state_correctly() {
        let mut c = cfg(4).with_redistribution(true);
        c.redistribute_every = 2;
        c.top_k = 4;
        let mut p: SpscProfiler<PerfectSignature> = ParallelProfiler::new(c, PerfectSignature::new);
        let addrs = [0x100u64, 0x200, 0x300, 0x400];
        let mut ts = 0u64;
        for round in 0..2000u64 {
            for (k, &a) in addrs.iter().enumerate() {
                ts += 1;
                if round == 0 {
                    p.event(acc(AccessKind::Write, a, ts, 10 + k as u32));
                } else {
                    p.event(acc(AccessKind::Read, a, ts, 20 + k as u32));
                }
            }
        }
        let r = p.finish();
        assert!(r.stats.redistributions > 0, "redistribution never triggered");
        assert_eq!(r.stats.deps_merged, 8, "{:?}", r.stats);
        for (d, v) in r.deps.dependences() {
            if d.edge.dtype == DepType::Raw {
                assert_eq!(d.edge.source_loc.line, d.sink.loc.line - 10);
                assert_eq!(v.count, 1999);
            }
        }
    }

    #[test]
    fn any_profiler_dispatches_all_transports() {
        for kind in [TransportKind::Spsc, TransportKind::Mpmc, TransportKind::Lock] {
            let c = cfg(2).with_transport(kind);
            let mut p: AnyParallelProfiler<PerfectSignature> =
                AnyParallelProfiler::new(c, PerfectSignature::new);
            assert_eq!(p.transport_kind(), kind.name());
            for i in 0..16u64 {
                p.event(acc(AccessKind::Write, i * 8, i * 2 + 1, 1));
                p.event(acc(AccessKind::Read, i * 8, i * 2 + 2, 2));
            }
            let r = p.finish();
            assert_eq!(r.stats.deps_merged, 2, "transport {kind:?}");
        }
    }

    #[test]
    fn redistribution_migrates_state_correctly() {
        let mut c = cfg(4).with_redistribution(true);
        c.redistribute_every = 2; // aggressive for the test
        c.top_k = 4;
        let mut p: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(c, PerfectSignature::new);
        // Hammer four addresses that all map to worker 0 (addr % 4 == 0),
        // forcing redistribution; dependences must stay exact.
        let addrs = [0x100u64, 0x200, 0x300, 0x400];
        let mut ts = 0u64;
        for round in 0..2000u64 {
            for (k, &a) in addrs.iter().enumerate() {
                ts += 1;
                let line = 10 + k as u32;
                if round == 0 {
                    p.event(acc(AccessKind::Write, a, ts, line));
                } else {
                    p.event(acc(AccessKind::Read, a, ts, 20 + k as u32));
                }
            }
        }
        let r = p.finish();
        assert!(r.stats.redistributions > 0, "redistribution never triggered");
        assert!(r.stats.redistributed_addrs > 0);
        // Exactly 4 INIT + 4 RAW records; every RAW sourced at its write
        // line (state migration preserved the signature entries).
        assert_eq!(r.stats.deps_merged, 8, "{:?}", r.stats);
        for (d, v) in r.deps.dependences() {
            if d.edge.dtype == DepType::Raw {
                assert_eq!(d.edge.source_loc.line, d.sink.loc.line - 10);
                assert_eq!(v.count, 1999);
            }
        }
    }

    #[test]
    fn dealloc_broadcast_forgets_everywhere() {
        let mut p: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(4), PerfectSignature::new);
        for i in 0..16u64 {
            p.event(acc(AccessKind::Write, 0x100 + i * 8, i + 1, 1));
        }
        p.event(TraceEvent::Dealloc { base: 0x100, len: 16, thread: 0, ts: 100 });
        for i in 0..16u64 {
            p.event(acc(AccessKind::Read, 0x100 + i * 8, 200 + i, 2));
        }
        let r = p.finish();
        assert!(
            !r.deps.dependences().any(|(d, _)| d.edge.dtype == DepType::Raw),
            "RAW survived a dealloc"
        );
        assert_eq!(r.stats.lifetime_removals, 16 * 4); // broadcast to 4 workers
    }

    #[test]
    fn loop_events_reach_all_workers_for_carried_detection() {
        let mut p: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(2), PerfectSignature::new);
        p.event(TraceEvent::LoopBegin { loop_id: 1, loc: loc(1, 1), thread: 0, ts: 1 });
        // accumulator on addr 0x8 (worker 1): read+write each iteration
        for it in 0..3u64 {
            p.event(TraceEvent::LoopIter { loop_id: 1, iter: it, thread: 0, ts: 10 + it * 10 });
            p.event(acc(AccessKind::Read, 0x8, 11 + it * 10, 5));
            p.event(acc(AccessKind::Write, 0x8, 12 + it * 10, 5));
        }
        p.event(TraceEvent::LoopEnd { loop_id: 1, loc: loc(1, 9), iters: 3, thread: 0, ts: 99 });
        let r = p.finish();
        let raw = r.deps.dependences().find(|(d, _)| d.edge.dtype == DepType::Raw).unwrap();
        assert!(raw.0.edge.flags.contains(dp_types::DepFlags::LOOP_CARRIED));
        assert_eq!(raw.0.edge.carrier, Some(1));
        let rec = r.deps.loop_record(1).unwrap();
        assert_eq!(rec.instances, 1);
        assert_eq!(rec.total_iters, 3);
    }

    /// An injected worker panic must degrade the profile, not abort the
    /// process: the supervisor salvages every surviving worker's
    /// dependences and records which residue class died.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn worker_panic_degrades_instead_of_aborting() {
        let c =
            cfg(4).with_fault_plan(FaultPlan::none().with_panic(2, 0)).with_drain_deadline_ms(500);
        let mut p: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(c, PerfectSignature::new);
        // Worker k owns addresses with (addr >> 3) % 4 == k; give each
        // worker its own address and a W→R pair on distinct lines.
        for k in 0..4u64 {
            let addr = 0x1000 + k * 8;
            p.event(acc(AccessKind::Write, addr, k + 1, 10 + k as u32));
        }
        for k in 0..4u64 {
            let addr = 0x1000 + k * 8;
            p.event(acc(AccessKind::Read, addr, 100 + k, 20 + k as u32));
        }
        let r = p.finish();
        assert!(r.degraded());
        assert_eq!(r.stats.worker_failures.len(), 1);
        let f = &r.stats.worker_failures[0];
        assert_eq!(f.worker, 2);
        assert_eq!(f.workers, 4);
        assert!(matches!(&f.cause, FailureCause::Panic(m) if m.contains("injected fault")));
        // Surviving workers' RAWs (lines 20, 21, 23) are all present.
        for k in [0u32, 1, 3] {
            assert!(
                r.deps
                    .dependences()
                    .any(|(d, _)| d.edge.dtype == DepType::Raw && d.sink.loc.line == 20 + k),
                "surviving worker {k}'s RAW missing"
            );
        }
    }

    /// A chaotic transport (seeded spurious full/empty) is lossless, so
    /// the profile must be bit-identical to a clean run.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn chaotic_transport_profile_is_exact() {
        use dp_queue::FailingTransport;
        let plan = FaultPlan::none().with_seed(42).with_spurious(20, 20);
        let transport = FailingTransport::new(SpscTransport, plan);
        let mut p: ParallelProfiler<PerfectSignature, _> =
            ParallelProfiler::with_transport(transport, cfg(3), PerfectSignature::new);
        for i in 0..64u64 {
            p.event(acc(AccessKind::Write, i * 8, i * 2 + 1, 1));
            p.event(acc(AccessKind::Read, i * 8, i * 2 + 2, 2));
        }
        let r = p.finish();
        assert!(!r.degraded(), "{:?}", r.stats);
        assert_eq!(r.stats.deps_merged, 2);
        assert_eq!(r.stats.accesses, 128);
    }

    /// A small but varied stream: 13 addresses, writes and reads, a loop
    /// with iteration boundaries so carried classification is exercised.
    fn ckpt_stream(n: u64) -> Vec<TraceEvent> {
        let mut evs = Vec::new();
        let mut ts = 0u64;
        evs.push(TraceEvent::LoopBegin { loop_id: 3, loc: loc(1, 1), thread: 0, ts: 0 });
        for i in 0..n {
            ts += 1;
            if i % 9 == 0 {
                evs.push(TraceEvent::LoopIter { loop_id: 3, iter: i / 9, thread: 0, ts });
                ts += 1;
            }
            let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
            evs.push(acc(kind, 0x100 + (i % 13) * 8, ts, (i % 7) as u32 + 1));
        }
        evs.push(TraceEvent::LoopEnd { loop_id: 3, loc: loc(1, 2), iters: n / 9, thread: 0, ts });
        evs
    }

    fn owned_deps(r: &ProfileResult) -> Vec<String> {
        let mut v: Vec<String> =
            r.deps.dependences().map(|(d, val)| format!("{d:?}={val:?}")).collect();
        v.sort();
        v
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted() {
        for kind in [TransportKind::Spsc, TransportKind::Mpmc, TransportKind::Lock] {
            let evs = ckpt_stream(200);
            let cut = 77;
            let c = cfg(3).with_transport(kind);
            let mut reference: AnyParallelProfiler<PerfectSignature> =
                AnyParallelProfiler::new(c.clone(), PerfectSignature::new);
            for ev in &evs {
                reference.event(*ev);
            }
            let r_ref = reference.finish();
            assert!(!r_ref.degraded());
            // Interrupted run: prefix → checkpoint → resume → suffix.
            let mut first: AnyParallelProfiler<PerfectSignature> =
                AnyParallelProfiler::new(c.clone(), PerfectSignature::new);
            for ev in &evs[..cut] {
                first.event(*ev);
            }
            let data = first.checkpoint_data(1, cut as u64, b"cfg".to_vec()).unwrap();
            assert_eq!(data.generation, 1);
            assert_eq!(data.workers.len(), 3);
            drop(first.finish()); // the interrupted engine dies here
            let mut resumed =
                AnyParallelProfiler::resume(c.clone(), PerfectSignature::new, &data).unwrap();
            for ev in &evs[cut..] {
                resumed.event(*ev);
            }
            let r2 = resumed.finish();
            assert!(!r2.degraded(), "{kind:?}: {:?}", r2.stats);
            assert_eq!(r_ref.stats.accesses, r2.stats.accesses, "{kind:?}");
            assert_eq!(r_ref.stats.deps_merged, r2.stats.deps_merged, "{kind:?}");
            assert_eq!(owned_deps(&r_ref), owned_deps(&r2), "{kind:?}");
            assert_eq!(r_ref.deps.loop_record(3), r2.deps.loop_record(3), "{kind:?}");
            // The restored ledger keeps the conservation law across the
            // resume: the resumed snapshot accounts for *all* events.
            if dp_metrics::ENABLED {
                assert_eq!(
                    r_ref.metrics.conservation.pushed, r2.metrics.conservation.pushed,
                    "{kind:?}"
                );
                assert_eq!(
                    r_ref.metrics.conservation.consumed, r2.metrics.conservation.consumed,
                    "{kind:?}"
                );
            }
        }
    }

    #[test]
    fn checkpoint_resume_with_redistribution_is_deterministic() {
        // Hot addresses all map to worker 0, forcing migrations; the
        // resumed run must pick the same redistribution decisions even
        // though its hash maps were rebuilt in a different layout.
        let mut c = cfg(4).with_redistribution(true);
        c.redistribute_every = 2;
        c.top_k = 4;
        let addrs = [0x100u64, 0x200, 0x300, 0x400];
        let mut evs = Vec::new();
        let mut ts = 0u64;
        for round in 0..500u64 {
            for (k, &a) in addrs.iter().enumerate() {
                ts += 1;
                let kind = if round == 0 { AccessKind::Write } else { AccessKind::Read };
                evs.push(acc(kind, a, ts, if round == 0 { 10 } else { 20 } + k as u32));
            }
        }
        let mut reference: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(c.clone(), PerfectSignature::new);
        for ev in &evs {
            reference.event(*ev);
        }
        let r_ref = reference.finish();
        assert!(r_ref.stats.redistributions > 0, "redistribution never triggered");
        let cut = 999;
        let mut first: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(c.clone(), PerfectSignature::new);
        for ev in &evs[..cut] {
            first.event(*ev);
        }
        let data = first.checkpoint_data(1, cut as u64, Vec::new()).unwrap();
        drop(first.finish());
        let mut resumed: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::resume(c, PerfectSignature::new, &data).unwrap();
        for ev in &evs[cut..] {
            resumed.event(*ev);
        }
        let r2 = resumed.finish();
        assert!(!r2.degraded(), "{:?}", r2.stats);
        assert_eq!(owned_deps(&r_ref), owned_deps(&r2));
    }

    #[test]
    fn resume_rejects_mismatched_worker_count() {
        let mut p: SpscProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(3), PerfectSignature::new);
        p.event(acc(AccessKind::Write, 0x8, 1, 1));
        let data = p.checkpoint_data(0, 1, Vec::new()).unwrap();
        drop(p.finish());
        let err = SpscProfiler::<PerfectSignature>::resume(cfg(2), PerfectSignature::new, &data)
            .err()
            .expect("worker-count mismatch must be rejected");
        assert!(matches!(err, CheckpointError::Wire(_)), "{err}");
    }

    #[test]
    fn heartbeat_advances_with_traffic() {
        let mut p: SpscProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg(2), PerfectSignature::new);
        let before = p.heartbeat();
        for i in 0..64u64 {
            p.event(acc(AccessKind::Write, i * 8, i + 1, 1));
        }
        p.flush_all();
        if dp_metrics::ENABLED {
            assert!(p.heartbeat() > before, "heartbeat must move with traffic");
        }
        p.finish();
    }
}
