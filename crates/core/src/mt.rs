//! The multi-threaded-target engine (Section V).
//!
//! Differences from the sequential-target pipeline:
//!
//! - **Multiple producers.** Every target thread owns a
//!   [`MtThreadTracer`] with private per-worker chunk buffers; the worker
//!   queues are therefore MPMC ("the different implementation of lock-free
//!   queues" whose extra memory Section VI-B2 mentions).
//! - **Access/push atomicity (Figure 4).** The interpreter calls
//!   [`Tracer::sync_point`] before releasing any target lock; the tracer
//!   flushes its pending chunks there, so events of lock-protected
//!   accesses reach the owner worker in lock order and per-address
//!   temporal order is preserved for correctly synchronized programs.
//! - **Timestamp-reversal detection (Section V-B).** Workers verify that
//!   the dependence source's timestamp precedes the sink's. A reversal
//!   proves the access/push pair was not atomic — i.e. the accesses were
//!   not mutually exclusive — and the dependence is flagged `REVERSED` as
//!   a potential data race.
//! - Dependence records carry thread ids on both endpoints (Figure 3).
//! - Loop-carried classification is disabled (cross-thread iteration
//!   context is not well defined); loop records still accumulate via
//!   `LoopBegin`/`LoopEnd`, routed by `loop_id` so each loop is tracked by
//!   exactly one worker.
//!
//! The failure model matches the sequential pipeline (see
//! [`parallel`](crate::parallel)): workers run under `catch_unwind` and
//! flag themselves dead, producers fail fast on dead workers (dropping and
//! counting instead of spinning forever), and `finish()` salvages every
//! surviving worker's results within the drain deadline. Unlike the
//! sequential router, dead-worker traffic is *not* diverted to survivors:
//! with many producers there is no single point that could preserve
//! per-address order across the switch, so dropping-and-accounting is the
//! honest choice.

use crate::algo::{AlgoOptions, AlgoState};
use crate::config::{OverflowPolicy, ProfilerConfig};
use crate::parallel::{panic_message, EngineMetrics, WorkerMsg};
use crate::result::{FailureCause, MemoryReport, ProfileResult, ProfileStats, WorkerFailure};
use crate::store::DepStore;
use dp_metrics::{
    ChunkStats, Conservation, MetricsSnapshot, ObserverHandle, PhaseTimings, SigGauges, Stopwatch,
    WorkerMetrics,
};
use dp_queue::{Backoff, ChannelTap, Chunk, ChunkPool, MpmcQueue};
use dp_sig::AccessStore;
use dp_types::{ThreadId, TraceEvent, Tracer, TracerFactory};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type WorkerResult =
    (DepStore, crate::exectree::ExecTree, crate::algo::AlgoCounters, usize, SigGauges);

/// How a supervised MT worker thread ended.
enum MtExit {
    Finished(Box<WorkerResult>),
    Panicked { payload: String },
}

struct MtShared {
    queues: Vec<MpmcQueue<WorkerMsg>>,
    pool: Arc<ChunkPool>,
    chunks_pushed: AtomicU64,
    /// `dead[w]`: worker `w` panicked (set by the worker itself).
    dead: Vec<AtomicBool>,
    /// `stalled[w]`: a producer timed out delivering to `w` under
    /// [`OverflowPolicy::Drop`]; later producers fail fast until a push
    /// succeeds again.
    stalled: Vec<AtomicBool>,
    /// Events dropped per destination worker (dead or stalled).
    dropped: Vec<AtomicU64>,
    overflow: OverflowPolicy,
    stall_deadline_ms: u64,
    /// Conservation ledger (same law as the sequential pipeline, with
    /// `rerouted` pinned to zero — MT never diverts dead-worker traffic).
    metrics: EngineMetrics,
    /// Per-queue traffic taps. MT queues are raw [`MpmcQueue`]s shared by
    /// many producers, so the taps are fed inline here instead of through
    /// the `MeteredSender`/`MeteredReceiver` decorators.
    taps: Vec<ChannelTap>,
    /// Checkpoint reply slots: worker `w` deposits `Some(state)` when it
    /// handles [`WorkerMsg::Checkpoint`]. The inner option is `None`
    /// when the worker's access store does not support checkpointing.
    ckpt_replies: Mutex<Vec<Option<Option<Vec<u8>>>>>,
}

impl MtShared {
    fn drop_after(&self) -> Option<Duration> {
        match self.overflow {
            OverflowPolicy::Block => None,
            OverflowPolicy::Drop => Some(Duration::from_millis(self.stall_deadline_ms)),
        }
    }

    /// Delivers `msg` to `wid`, spinning with backoff while the queue is
    /// full; gives the message back when the worker is dead, or — with
    /// `drop_after` set — full past the deadline (the worker is then
    /// marked stalled so other producers fail fast).
    fn deliver(
        &self,
        wid: usize,
        mut msg: WorkerMsg,
        drop_after: Option<Duration>,
    ) -> Result<(), WorkerMsg> {
        let mut backoff = Backoff::new();
        let mut deadline: Option<Instant> = None;
        let mut waited_since: Option<Instant> = None;
        loop {
            if self.dead[wid].load(Ordering::Acquire) {
                return Err(msg);
            }
            match self.queues[wid].push(msg) {
                Ok(()) => {
                    self.stalled[wid].store(false, Ordering::Relaxed);
                    let tap = &self.taps[wid];
                    let n = tap.pushes.inc();
                    tap.high_water.record(n.saturating_sub(tap.pops.get()));
                    if let Some(since) = waited_since {
                        self.metrics.stall[wid].add(since.elapsed().as_nanos() as u64);
                    }
                    return Ok(());
                }
                Err(back) => {
                    msg = back;
                    self.taps[wid].push_fulls.inc();
                    waited_since.get_or_insert_with(Instant::now);
                    if let Some(limit) = drop_after {
                        if self.stalled[wid].load(Ordering::Acquire) {
                            return Err(msg);
                        }
                        let d = *deadline.get_or_insert_with(|| Instant::now() + limit);
                        if Instant::now() >= d {
                            self.stalled[wid].store(true, Ordering::Release);
                            return Err(msg);
                        }
                    }
                    backoff.snooze();
                }
            }
        }
    }

    /// Drop accounting for an undeliverable message.
    fn account_drop(&self, wid: usize, msg: WorkerMsg) {
        if let WorkerMsg::Events(chunk) = msg {
            self.dropped[wid].fetch_add(chunk.len() as u64, Ordering::Relaxed);
            self.metrics.dropped[wid].add(chunk.len() as u64);
            self.pool.release(chunk);
        }
    }
}

/// Per-target-thread tracer: buffers events per worker, flushing full
/// chunks eagerly and partial chunks at every sync point (lock release,
/// barrier, thread exit).
pub struct MtThreadTracer {
    shared: Arc<MtShared>,
    pending: Vec<Chunk>,
}

impl MtThreadTracer {
    fn append(&mut self, wid: usize, ev: TraceEvent) {
        self.shared.metrics.pushed.inc();
        self.pending[wid].push(ev);
        if self.pending[wid].is_full() {
            self.flush(wid);
        }
    }

    fn flush(&mut self, wid: usize) {
        if self.pending[wid].is_empty() {
            return;
        }
        let chunk = std::mem::replace(&mut self.pending[wid], self.shared.pool.acquire());
        let len = chunk.len() as u64;
        let drop_after = self.shared.drop_after();
        match self.shared.deliver(wid, WorkerMsg::Events(chunk), drop_after) {
            Ok(()) => {
                self.shared.chunks_pushed.fetch_add(1, Ordering::Relaxed);
                self.shared.metrics.enqueued[wid].add(len);
            }
            Err(msg) => self.shared.account_drop(wid, msg),
        }
    }
}

impl Tracer for MtThreadTracer {
    fn event(&mut self, ev: TraceEvent) {
        let w = self.pending.len() as u64;
        match ev {
            // Formula 1 with the 8-byte alignment shifted out (see
            // `ParallelProfiler::owner`).
            TraceEvent::Access(a) => self.append(((a.addr >> 3) % w) as usize, ev),
            // Structural events (loop records + execution tree) all go to
            // worker 0 so per-thread nesting stays coherent.
            TraceEvent::LoopBegin { .. }
            | TraceEvent::LoopEnd { .. }
            | TraceEvent::CallBegin { .. }
            | TraceEvent::CallEnd { .. } => {
                let _ = w;
                self.append(0, ev);
            }
            // Iteration boundaries are only needed for carried
            // classification, which is off for multi-threaded targets.
            TraceEvent::LoopIter { .. } => {}
            TraceEvent::Dealloc { .. } => {
                for wid in 0..self.pending.len() {
                    self.append(wid, ev);
                }
            }
        }
    }

    fn sync_point(&mut self) {
        // Push everything buffered *while still inside the lock region* —
        // the atomicity requirement of Figure 4.
        for wid in 0..self.pending.len() {
            self.flush(wid);
        }
    }
}

/// The profiler for multi-threaded targets. Use as the
/// [`TracerFactory`] of `Interp::run_mt`, then call [`MtProfiler::finish`].
pub struct MtProfiler {
    shared: Arc<MtShared>,
    handles: Mutex<Vec<JoinHandle<MtExit>>>,
    drain_deadline_ms: u64,
    observer: ObserverHandle,
    timer: Stopwatch,
}

impl MtProfiler {
    /// Starts `cfg.workers` profiling workers using extended-slot
    /// signatures sized from `cfg.total_slots`.
    pub fn new(cfg: ProfilerConfig) -> Self {
        Self::with_store_factory(cfg.clone(), move || {
            dp_sig::Signature::<dp_sig::ExtendedSlot>::new(cfg.slots_per_worker())
        })
    }

    /// Starts workers over custom stores (e.g.
    /// [`PerfectSignature`](dp_sig::PerfectSignature) for accuracy runs).
    pub fn with_store_factory<S: AccessStore + 'static>(
        cfg: ProfilerConfig,
        make_store: impl Fn() -> S,
    ) -> Self {
        let w = cfg.workers.max(1);
        let pool = ChunkPool::new(w * cfg.queue_chunks * 4, cfg.chunk_capacity);
        let shared = Arc::new(MtShared {
            queues: (0..w).map(|_| MpmcQueue::new(cfg.queue_chunks)).collect(),
            pool,
            chunks_pushed: AtomicU64::new(0),
            dead: (0..w).map(|_| AtomicBool::new(false)).collect(),
            stalled: (0..w).map(|_| AtomicBool::new(false)).collect(),
            dropped: (0..w).map(|_| AtomicU64::new(0)).collect(),
            overflow: cfg.overflow,
            stall_deadline_ms: cfg.stall_deadline_ms,
            metrics: EngineMetrics::new(w),
            taps: (0..w).map(|_| ChannelTap::default()).collect(),
            ckpt_replies: Mutex::new((0..w).map(|_| None).collect()),
        });
        let mut handles = Vec::with_capacity(w);
        for wid in 0..w {
            let algo = AlgoState::new(
                make_store(),
                make_store(),
                AlgoOptions {
                    track_carried: false,
                    check_reversal: true,
                    // Structural events are routed to worker 0 only.
                    record_loops: wid == 0,
                    section_shift: 0,
                },
            );
            let sh = shared.clone();
            let plan = cfg.fault_plan.clone();
            handles.push(std::thread::spawn(move || mt_worker(sh, wid, algo, plan)));
        }
        MtProfiler {
            shared,
            handles: Mutex::new(handles),
            drain_deadline_ms: cfg.drain_deadline_ms,
            observer: cfg.observer,
            timer: Stopwatch::start(),
        }
    }

    /// Monotone progress value for a run watchdog: events pushed by the
    /// target threads plus events consumed by the workers. Constant 0
    /// when the `metrics` feature is off.
    pub fn heartbeat(&self) -> u64 {
        let m = &self.shared.metrics;
        m.pushed.get() + m.consumed.iter().map(dp_metrics::Counter::get).sum::<u64>()
    }

    /// Captures a checkpoint of every worker's extraction state plus the
    /// conservation ledger.
    ///
    /// Call only at a global sync point of the target program: every
    /// target thread must have passed [`Tracer::sync_point`] (flushing
    /// its chunk buffers) with no new events produced since, so the
    /// queue contents ahead of the barrier fully determine worker
    /// state. The MT engine supports *writing* checkpoints (an
    /// emergency snapshot a later sequential replay can inspect);
    /// resuming an MT run is not supported — there is no single trace
    /// position to seek multiple free-running target threads to.
    pub fn checkpoint_data(
        &self,
        generation: u64,
        records_read: u64,
        config: Vec<u8>,
    ) -> Result<crate::checkpoint::CheckpointData, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::{CheckpointData, CheckpointError};
        let w = self.shared.queues.len();
        let drain = Duration::from_millis(self.drain_deadline_ms.max(1));
        {
            let mut slots = self.shared.ckpt_replies.lock();
            slots.clear();
            slots.resize(w, None);
        }
        for wid in 0..w {
            if self.shared.deliver(wid, WorkerMsg::Checkpoint, Some(drain)).is_err() {
                return Err(CheckpointError::WorkerUnavailable(wid));
            }
        }
        let deadline = Instant::now() + drain;
        let mut workers = Vec::with_capacity(w);
        for wid in 0..w {
            loop {
                if let Some(reply) = self.shared.ckpt_replies.lock()[wid].take() {
                    match reply {
                        Some(bytes) => workers.push(bytes),
                        None => {
                            return Err(CheckpointError::Unsupported(
                                "the worker access store does not support checkpointing",
                            ))
                        }
                    }
                    break;
                }
                if self.shared.dead[wid].load(Ordering::Acquire) || Instant::now() >= deadline {
                    return Err(CheckpointError::WorkerUnavailable(wid));
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        Ok(CheckpointData {
            generation,
            records_read,
            config,
            // The MT router is distributed across target threads: no
            // central statistics to capture.
            router: Vec::new(),
            ledger: self.shared.metrics.save(),
            workers,
        })
    }

    /// Drains the pipeline, joins the workers and merges their results —
    /// salvaging survivors and bounding every wait by the drain deadline
    /// when a worker was lost. Call only after the target program has
    /// fully finished (all target threads joined).
    pub fn finish(self) -> ProfileResult {
        let feed_nanos = self.timer.elapsed_nanos();
        let drain_timer = Stopwatch::start();
        let w = self.shared.queues.len();
        let drain = Duration::from_millis(self.drain_deadline_ms.max(1));
        let shutdown_ok: Vec<bool> = (0..w)
            .map(|wid| self.shared.deliver(wid, WorkerMsg::Shutdown, Some(drain)).is_ok())
            .collect();
        let mut stats = ProfileStats::default();
        let mut global = DepStore::new();
        let mut exec_tree = crate::exectree::ExecTree::new();
        let mut sig_mem = 0usize;
        let mut per_worker_events = Vec::new();
        let mut failures: Vec<WorkerFailure> = Vec::new();
        let mut gauges = SigGauges::default();
        let grace = Duration::from_millis(self.drain_deadline_ms.clamp(50, 500));
        for (wid, h) in self.handles.into_inner().into_iter().enumerate() {
            let wait = if shutdown_ok[wid] { drain } else { grace };
            let end = Instant::now() + wait;
            while !h.is_finished() && Instant::now() < end {
                std::thread::sleep(Duration::from_millis(1));
            }
            if !h.is_finished() {
                // Unresponsive past the deadline: detach instead of
                // hanging finish() forever.
                failures.push(WorkerFailure {
                    worker: wid,
                    workers: w,
                    cause: FailureCause::Unresponsive,
                });
                per_worker_events.push(0);
                continue;
            }
            let exit = match h.join() {
                Ok(e) => e,
                Err(p) => MtExit::Panicked { payload: panic_message(&*p) },
            };
            match exit {
                MtExit::Finished(res) => {
                    let (store, tree, counters, mem, g) = *res;
                    if !shutdown_ok[wid] {
                        failures.push(WorkerFailure {
                            worker: wid,
                            workers: w,
                            cause: FailureCause::Unresponsive,
                        });
                    }
                    gauges.occupied_slots += g.occupied_slots;
                    gauges.total_slots += g.total_slots;
                    gauges.evictions += g.evictions;
                    gauges.est_fpr_pct = gauges.est_fpr_pct.max(g.est_fpr_pct);
                    stats.absorb(counters);
                    sig_mem += mem;
                    per_worker_events.push(counters.accesses);
                    global.merge(store);
                    exec_tree.merge(&tree);
                }
                MtExit::Panicked { payload } => {
                    failures.push(WorkerFailure {
                        worker: wid,
                        workers: w,
                        cause: FailureCause::Panic(payload),
                    });
                    per_worker_events.push(0);
                }
            }
        }
        stats.deps_built = global.deps_built();
        stats.deps_merged = global.merged_len();
        stats.chunks_pushed = self.shared.chunks_pushed.load(Ordering::Relaxed);
        let dropped: Vec<u64> =
            self.shared.dropped.iter().map(|d| d.load(Ordering::Relaxed)).collect();
        stats.dropped_events = dropped.iter().sum();
        if stats.dropped_events > 0 {
            stats.dropped_per_worker = dropped;
        }
        stats.worker_failures = failures;
        for f in &stats.worker_failures {
            self.observer.on_worker_failure(f.worker);
        }
        let memory = MemoryReport {
            signatures: sig_mem,
            queues: self.shared.queues.iter().map(|q| q.memory_usage()).sum(),
            chunks: self.shared.pool.memory_usage(),
            dep_store: global.memory_usage(),
            stats_maps: 0,
        };
        let workers = self.shared.queues.len();
        let metrics = if dp_metrics::ENABLED {
            let m = &self.shared.metrics;
            let mut conservation = Conservation { pushed: m.pushed.get(), ..Default::default() };
            let mut per_worker = Vec::with_capacity(w);
            let mut stall_total = 0u64;
            let mut chunks_consumed = 0u64;
            for wid in 0..w {
                // Read `enqueued` first and clamp `consumed` to it: a
                // worker abandoned as unresponsive may still be draining
                // its queue concurrently with this snapshot, and the clamp
                // keeps the consumed/in-flight split internally consistent
                // (the producer-side counters are exact by construction).
                let enqueued = m.enqueued[wid].get();
                let consumed = m.consumed[wid].get().min(enqueued);
                let in_flight = enqueued - consumed;
                let dropped = m.dropped[wid].get();
                let stall = m.stall[wid].get();
                conservation.consumed += consumed;
                conservation.dropped += dropped;
                conservation.in_flight_at_shutdown += in_flight;
                stall_total += stall;
                chunks_consumed += m.consumed_chunks[wid].get();
                per_worker.push(WorkerMetrics {
                    worker: wid,
                    enqueued,
                    consumed,
                    dropped,
                    in_flight,
                    consumed_chunks: m.consumed_chunks[wid].get(),
                    stall_nanos: stall,
                });
            }
            let drain_nanos = drain_timer.elapsed_nanos();
            MetricsSnapshot {
                enabled: true,
                workers: w,
                // The chaos seed is a run-level fact the CLI stamps on
                // the snapshot; engines report 0.
                chaos_seed: 0,
                conservation,
                chunks: ChunkStats {
                    pushed: self.shared.chunks_pushed.load(Ordering::Relaxed),
                    consumed: chunks_consumed,
                    queue_highwater: self
                        .shared
                        .taps
                        .iter()
                        .map(|t| t.high_water.get())
                        .max()
                        .unwrap_or(0),
                    push_retries: self.shared.taps.iter().map(|t| t.push_fulls.get()).sum(),
                    empty_pops: self.shared.taps.iter().map(|t| t.empty_pops.get()).sum(),
                },
                stall_nanos: stall_total,
                signatures: gauges,
                // Checkpoint accounting is owned by the driver that owns
                // the checkpoint store, not by the engine.
                checkpoints: Default::default(),
                service: Default::default(),
                // The MT router is distributed across target threads, so
                // there is no central hot-address table to report.
                hot_addresses: Vec::new(),
                per_worker,
                timings: PhaseTimings {
                    feed_nanos,
                    drain_nanos,
                    total_nanos: feed_nanos + drain_nanos,
                },
            }
        } else {
            MetricsSnapshot::default()
        };
        self.observer.on_finish(&metrics);
        ProfileResult {
            deps: global,
            exec_tree,
            stats,
            memory,
            workers,
            per_worker_events,
            metrics,
        }
    }
}

impl TracerFactory for MtProfiler {
    type Tracer = MtThreadTracer;

    fn tracer(&self, _tid: ThreadId) -> MtThreadTracer {
        let w = self.shared.queues.len();
        MtThreadTracer {
            shared: self.shared.clone(),
            pending: (0..w).map(|_| self.shared.pool.acquire()).collect(),
        }
    }

    fn join(&self, _tid: ThreadId, mut tracer: MtThreadTracer) {
        tracer.sync_point();
    }
}

/// Injected panic hook for the MT engine (panic-only: stalls and reply
/// drops are sequential-pipeline concepts).
#[cfg(feature = "fault-inject")]
fn mt_fault_panic(wid: usize, chunks_done: u64, plan: &dp_queue::FaultPlan) {
    if let Some(f) = plan.panic_worker {
        if f.worker == wid && chunks_done >= f.after_chunks {
            panic!("injected fault: mt worker {wid} panicked after {} chunks", f.after_chunks);
        }
    }
}

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
fn mt_fault_panic(_: usize, _: u64, _: &dp_queue::FaultPlan) {}

fn mt_worker<S: AccessStore>(
    shared: Arc<MtShared>,
    wid: usize,
    algo: AlgoState<S>,
    plan: dp_queue::FaultPlan,
) -> MtExit {
    let sh = shared.clone();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        run_mt_worker(sh, wid, algo, plan)
    }));
    match out {
        Ok(res) => MtExit::Finished(Box::new(res)),
        Err(payload) => {
            // Flag death before the thread exits so producers fail fast.
            shared.dead[wid].store(true, Ordering::Release);
            MtExit::Panicked { payload: panic_message(&*payload) }
        }
    }
}

fn run_mt_worker<S: AccessStore>(
    shared: Arc<MtShared>,
    wid: usize,
    mut algo: AlgoState<S>,
    plan: dp_queue::FaultPlan,
) -> WorkerResult {
    let mut backoff = Backoff::new();
    let mut chunks_done = 0u64;
    loop {
        mt_fault_panic(wid, chunks_done, &plan);
        let msg = shared.queues[wid].pop();
        if msg.is_some() {
            shared.taps[wid].pops.inc();
        } else {
            shared.taps[wid].empty_pops.inc();
        }
        match msg {
            Some(WorkerMsg::Events(chunk)) => {
                // Consumed means *off the queue*: counted before
                // processing, so events lost to a mid-chunk panic are
                // still accounted as consumed rather than in-flight.
                shared.metrics.consumed[wid].add(chunk.len() as u64);
                shared.metrics.consumed_chunks[wid].inc();
                for ev in chunk.events() {
                    algo.on_event(ev);
                }
                shared.pool.release(chunk);
                chunks_done += 1;
                backoff.reset();
            }
            Some(WorkerMsg::Inject { addr, read, write }) => algo.inject(addr, read, write),
            Some(WorkerMsg::Extract { .. })
            | Some(WorkerMsg::EnableDelta)
            | Some(WorkerMsg::DeltaFlush) => { /* not used in MT mode */ }
            Some(WorkerMsg::Checkpoint) => {
                // Queue FIFO order guarantees everything flushed before
                // the barrier is already folded into `algo`.
                let mut out = dp_types::wire::ByteWriter::new();
                let state = algo.save_state(&mut out).then(|| out.into_bytes());
                shared.ckpt_replies.lock()[wid] = Some(state);
            }
            Some(WorkerMsg::Shutdown) => break,
            None => backoff.snooze(),
        }
    }
    let gauges = algo.sig_gauges();
    let (store, tree, counters, mem) = algo.finish();
    (store, tree, counters, mem, gauges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::{loc::loc, AccessKind, DepFlags, DepType, MemAccess};

    fn cfg(workers: usize) -> ProfilerConfig {
        ProfilerConfig::default().with_workers(workers).with_chunk_capacity(4)
    }

    fn acc(kind: AccessKind, addr: u64, ts: u64, line: u32, thread: u16) -> TraceEvent {
        TraceEvent::Access(MemAccess { addr, ts, loc: loc(4, line), var: 1, thread, kind })
    }

    #[test]
    fn cross_thread_raw_carries_thread_ids() {
        let prof = MtProfiler::new(cfg(2));
        // Producer thread 1 writes, consumer thread 2 reads, with a sync
        // point (lock release) between them so order is guaranteed.
        let mut t1 = prof.tracer(1);
        t1.event(acc(AccessKind::Write, 0x80, 1, 58, 1));
        t1.sync_point();
        let mut t2 = prof.tracer(2);
        t2.event(acc(AccessKind::Read, 0x80, 2, 64, 2));
        t2.sync_point();
        prof.join(1, t1);
        prof.join(2, t2);
        let r = prof.finish();
        assert!(!r.degraded(), "healthy MT run must not be degraded: {:?}", r.stats);
        let raw = r.deps.dependences().find(|(d, _)| d.edge.dtype == DepType::Raw).unwrap().0;
        assert_eq!(raw.sink.thread, 2);
        assert_eq!(raw.edge.source_thread, 1);
        assert!(!raw.edge.flags.contains(DepFlags::REVERSED));
    }

    #[test]
    fn reversed_timestamps_flag_race() {
        let prof = MtProfiler::new(cfg(1));
        // The write (ts 10) is pushed *after* the read (ts 12) reached the
        // worker... simulate by delivering the newer-ts write first.
        let mut t1 = prof.tracer(1);
        t1.event(acc(AccessKind::Write, 0x40, 12, 5, 1));
        t1.sync_point();
        let mut t2 = prof.tracer(2);
        t2.event(acc(AccessKind::Read, 0x40, 10, 6, 2));
        t2.sync_point();
        prof.join(1, t1);
        prof.join(2, t2);
        let r = prof.finish();
        assert_eq!(r.stats.reversed, 1);
        let raw = r.deps.dependences().find(|(d, _)| d.edge.dtype == DepType::Raw).unwrap().0;
        assert!(raw.edge.flags.contains(DepFlags::REVERSED));
    }

    #[test]
    fn loop_records_from_mt_threads() {
        let prof = MtProfiler::new(cfg(2));
        let mut t1 = prof.tracer(1);
        t1.event(TraceEvent::LoopBegin { loop_id: 3, loc: loc(1, 10), thread: 1, ts: 1 });
        t1.event(TraceEvent::LoopEnd { loop_id: 3, loc: loc(1, 20), iters: 7, thread: 1, ts: 9 });
        prof.join(1, t1);
        let r = prof.finish();
        let rec = r.deps.loop_record(3).unwrap();
        assert_eq!(rec.total_iters, 7);
        assert_eq!(rec.instances, 1);
    }

    /// At a global sync point the MT engine can snapshot every worker's
    /// extraction state plus a conserved ledger.
    #[test]
    fn mt_checkpoint_captures_all_workers() {
        let prof = MtProfiler::new(cfg(2).with_drain_deadline_ms(2000));
        let mut t1 = prof.tracer(1);
        t1.event(acc(AccessKind::Write, 0x80, 1, 5, 1));
        t1.event(acc(AccessKind::Write, 0x88, 2, 6, 1));
        t1.sync_point();
        let data = prof.checkpoint_data(0, 2, b"mt".to_vec()).unwrap();
        assert_eq!(data.workers.len(), 2);
        assert!(data.workers.iter().all(|w| !w.is_empty()));
        assert!(data.router.is_empty(), "MT has no central router state");
        if dp_metrics::ENABLED {
            assert!(!data.ledger.is_empty());
        }
        // The engine keeps running after the snapshot.
        t1.event(acc(AccessKind::Read, 0x80, 3, 7, 1));
        prof.join(1, t1);
        let r = prof.finish();
        assert!(!r.degraded(), "{:?}", r.stats);
        assert!(r.deps.dependences().any(|(d, _)| d.edge.dtype == DepType::Raw));
    }

    /// A panicking MT worker degrades the run; survivors are salvaged.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn mt_worker_panic_degrades_instead_of_aborting() {
        use dp_queue::FaultPlan;
        let c =
            cfg(2).with_fault_plan(FaultPlan::none().with_panic(1, 0)).with_drain_deadline_ms(500);
        let prof = MtProfiler::new(c);
        let mut t1 = prof.tracer(1);
        // Worker 0 owns (addr >> 3) % 2 == 0; worker 1 the odd class.
        t1.event(acc(AccessKind::Write, 0x80, 1, 5, 1)); // worker 0
        t1.event(acc(AccessKind::Read, 0x80, 2, 6, 1)); // worker 0
        t1.event(acc(AccessKind::Write, 0x88, 3, 7, 1)); // worker 1 (dying)
        prof.join(1, t1);
        let r = prof.finish();
        assert!(r.degraded());
        assert_eq!(r.stats.worker_failures.len(), 1);
        assert_eq!(r.stats.worker_failures[0].worker, 1);
        assert!(matches!(r.stats.worker_failures[0].cause, FailureCause::Panic(_)));
        // The surviving worker's RAW is present.
        assert!(r.deps.dependences().any(|(d, _)| d.edge.dtype == DepType::Raw));
    }
}
