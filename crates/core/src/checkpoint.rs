//! Crash-safe checkpoint files: the `DPCK` container and the
//! two-generation on-disk store.
//!
//! A checkpoint freezes a profiling run at a chunk barrier: the input
//! trace position, every worker's serialized extraction state
//! ([`AlgoState::save_state`](crate::AlgoState::save_state)), the
//! router's hot-address statistics and redistribution rules, and the
//! event-conservation ledger. `depprof --resume` rebuilds the engine
//! from the latest valid generation and replays the remaining trace
//! records, producing the same result an uninterrupted run would.
//!
//! ## File format (`DPCK` version 1)
//!
//! ```text
//! magic "DPCK" | version u8 | section*
//! section := tag u8 | len u32 | payload[len] | checksum u8
//! ```
//!
//! The per-section checksum is the same XOR fold the trace format v2
//! uses for its records ([`dp_types::xor_fold`] over tag + payload), so
//! a torn or bit-flipped file is detected on load. Sections: META (tag
//! 1: generation, trace position, worker count), CONFIG (2: an opaque
//! engine/CLI configuration blob), ROUTER (3), LEDGER (4), WORKER (5,
//! one per worker in index order).
//!
//! ## Durability: two generations, atomic renames
//!
//! Generation `g` is written to `checkpoint-{g % 2}.dpck` via
//! [`dp_types::atomic_write`] (temp file + fsync + rename). A kill at
//! *any* instant therefore leaves at least one complete previous
//! generation on disk: the rename either happened (new generation
//! valid) or it didn't (old generation untouched). [`CheckpointStore::
//! load_latest`] validates both slots and picks the highest valid
//! generation, silently falling back past a torn or corrupt newer one —
//! loss is bounded by one checkpoint interval.

use dp_types::{atomic_write, read_section, write_section, ByteReader, ByteWriter, WireError};
use std::fmt;
use std::path::{Path, PathBuf};

/// File magic of a checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"DPCK";
/// Current container version.
pub const CHECKPOINT_VERSION: u8 = 1;

const TAG_META: u8 = 1;
const TAG_CONFIG: u8 = 2;
const TAG_ROUTER: u8 = 3;
const TAG_LEDGER: u8 = 4;
const TAG_WORKER: u8 = 5;

/// Everything a checkpoint persists, in engine-independent form. The
/// `config`, `router` and `ledger` blobs are opaque here: the engine
/// that wrote them interprets them on resume.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointData {
    /// Monotonic checkpoint number within the run (1-based).
    pub generation: u64,
    /// Input-trace position at the barrier
    /// (`TraceReader::records_read`): resume seeks here.
    pub records_read: u64,
    /// Opaque engine/CLI configuration blob (engine kind, worker count,
    /// slots, trace path, ... — whatever the writer needs to rebuild an
    /// identically-configured engine).
    pub config: Vec<u8>,
    /// Opaque router/coordinator state (hot-address counts,
    /// redistribution rules, chunk counters).
    pub router: Vec<u8>,
    /// Opaque conservation-ledger state (the PR 3 metrics counters).
    pub ledger: Vec<u8>,
    /// Per-worker extraction-state blobs, in worker-index order.
    pub workers: Vec<Vec<u8>>,
}

impl CheckpointData {
    /// Serializes into the `DPCK` container.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = ByteWriter::new();
        out.bytes(&CHECKPOINT_MAGIC);
        out.u8(CHECKPOINT_VERSION);
        let mut meta = ByteWriter::new();
        meta.u64(self.generation);
        meta.u64(self.records_read);
        meta.u32(self.workers.len() as u32);
        write_section(&mut out, TAG_META, &meta.into_bytes());
        write_section(&mut out, TAG_CONFIG, &self.config);
        write_section(&mut out, TAG_ROUTER, &self.router);
        write_section(&mut out, TAG_LEDGER, &self.ledger);
        for (i, w) in self.workers.iter().enumerate() {
            let mut p = ByteWriter::new();
            p.u32(i as u32);
            p.bytes(w);
            write_section(&mut out, TAG_WORKER, &p.into_bytes());
        }
        out.into_bytes()
    }

    /// Parses and validates a `DPCK` container (magic, version, every
    /// section checksum, worker-section ordering, META consistency).
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        if r.take(4)? != CHECKPOINT_MAGIC {
            return Err(WireError::Invalid("not a checkpoint file (bad magic)"));
        }
        if r.u8()? != CHECKPOINT_VERSION {
            return Err(WireError::Invalid("unsupported checkpoint version"));
        }
        let mut meta: Option<(u64, u64, u32)> = None;
        let mut data = CheckpointData::default();
        while !r.is_done() {
            // Section framing (and thus the corruption model) is shared
            // with the DPSV network protocol via `wire::read_section`.
            let (tag, payload) = read_section(&mut r)?;
            match tag {
                TAG_META => {
                    let mut m = ByteReader::new(payload);
                    meta = Some((m.u64()?, m.u64()?, m.u32()?));
                    if !m.is_done() {
                        return Err(WireError::Invalid("oversized checkpoint META section"));
                    }
                }
                TAG_CONFIG => data.config = payload.to_vec(),
                TAG_ROUTER => data.router = payload.to_vec(),
                TAG_LEDGER => data.ledger = payload.to_vec(),
                TAG_WORKER => {
                    let mut p = ByteReader::new(payload);
                    let idx = p.u32()? as usize;
                    if idx != data.workers.len() {
                        return Err(WireError::Invalid("worker sections out of order"));
                    }
                    data.workers.push(payload[4..].to_vec());
                }
                _ => return Err(WireError::Invalid("unknown checkpoint section tag")),
            }
        }
        let Some((generation, records_read, nworkers)) = meta else {
            return Err(WireError::Invalid("checkpoint without META section"));
        };
        if nworkers as usize != data.workers.len() {
            return Err(WireError::Invalid("worker-section count disagrees with META"));
        }
        data.generation = generation;
        data.records_read = records_read;
        Ok(data)
    }
}

/// Per-checkpoint accounting, surfaced through `MetricsSnapshot` and
/// `--stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Generation number written.
    pub generation: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Wall time of encode + durable write.
    pub write_nanos: u64,
}

/// What went wrong writing or loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed container or component blob.
    Wire(WireError),
    /// Neither generation slot holds a valid checkpoint.
    NoCheckpoint(PathBuf),
    /// A worker needed for the checkpoint is dead or never replied.
    WorkerUnavailable(usize),
    /// The engine or store configuration cannot be checkpointed.
    Unsupported(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Wire(e) => write!(f, "checkpoint format error: {e}"),
            CheckpointError::NoCheckpoint(dir) => {
                write!(f, "no valid checkpoint found in {}", dir.display())
            }
            CheckpointError::WorkerUnavailable(w) => {
                write!(f, "worker {w} is unavailable; cannot quiesce for a checkpoint")
            }
            CheckpointError::Unsupported(why) => write!(f, "checkpointing unsupported: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Wire(e)
    }
}

/// The two-generation on-disk checkpoint store.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// Opens an existing checkpoint directory without creating it.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        CheckpointStore { dir: dir.into() }
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The slot file generation `g` lands in: generations alternate
    /// between two files, so the write of generation `g` never touches
    /// the file holding `g − 1`.
    pub fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("checkpoint-{}.dpck", generation % 2))
    }

    /// Durably writes one checkpoint generation: encode, temp file,
    /// fsync, atomic rename over the generation's slot. A kill at any
    /// point leaves the other slot's prior generation intact.
    pub fn write(&self, data: &CheckpointData) -> std::io::Result<CheckpointStats> {
        let t = std::time::Instant::now();
        let bytes = data.encode();
        atomic_write(&self.generation_path(data.generation), &bytes)?;
        Ok(CheckpointStats {
            generation: data.generation,
            bytes: bytes.len() as u64,
            write_nanos: t.elapsed().as_nanos() as u64,
        })
    }

    /// Loads the newest valid checkpoint, falling back to the other
    /// generation slot when the newer one is torn, truncated or
    /// corrupt. Errors with [`CheckpointError::NoCheckpoint`] when
    /// neither slot decodes.
    pub fn load_latest(&self) -> Result<CheckpointData, CheckpointError> {
        let mut best: Option<CheckpointData> = None;
        for parity in 0..2u64 {
            let path = self.dir.join(format!("checkpoint-{parity}.dpck"));
            let Ok(bytes) = std::fs::read(&path) else { continue };
            let Ok(data) = CheckpointData::decode(&bytes) else { continue };
            if best.as_ref().is_none_or(|b| data.generation > b.generation) {
                best = Some(data);
            }
        }
        best.ok_or_else(|| CheckpointError::NoCheckpoint(self.dir.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(generation: u64) -> CheckpointData {
        CheckpointData {
            generation,
            records_read: 12_345 * generation,
            config: vec![1, 2, 3],
            router: vec![4; 100],
            ledger: vec![5; 40],
            workers: vec![vec![10, 11], vec![], vec![12; 300]],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dpck-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn encode_decode_roundtrips() {
        let data = sample(7);
        let bytes = data.encode();
        assert_eq!(CheckpointData::decode(&bytes).unwrap(), data);
        // Deterministic encoding.
        assert_eq!(sample(7).encode(), bytes);
    }

    #[test]
    fn decode_detects_corruption_everywhere() {
        let bytes = sample(1).encode();
        assert!(CheckpointData::decode(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x40;
            assert!(CheckpointData::decode(&b).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn store_alternates_generations_and_loads_latest() {
        let dir = tmpdir("alt");
        let store = CheckpointStore::create(&dir).unwrap();
        let s1 = store.write(&sample(1)).unwrap();
        assert_eq!(s1.generation, 1);
        assert!(s1.bytes > 0);
        assert_eq!(store.load_latest().unwrap().generation, 1);
        store.write(&sample(2)).unwrap();
        assert_eq!(store.load_latest().unwrap().generation, 2);
        assert_ne!(store.generation_path(1), store.generation_path(2));
        assert_eq!(store.generation_path(1), store.generation_path(3));
        // Generation 3 overwrites generation 1's slot only.
        store.write(&sample(3)).unwrap();
        assert_eq!(store.load_latest().unwrap().generation, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_newer_generation_falls_back_to_previous() {
        let dir = tmpdir("torn");
        let store = CheckpointStore::create(&dir).unwrap();
        store.write(&sample(1)).unwrap();
        store.write(&sample(2)).unwrap();
        // Tear generation 2: truncate its file mid-section.
        let p2 = store.generation_path(2);
        let bytes = std::fs::read(&p2).unwrap();
        std::fs::write(&p2, &bytes[..bytes.len() / 2]).unwrap();
        let got = store.load_latest().unwrap();
        assert_eq!(got.generation, 1, "fallback to the intact prior generation");
        // Corrupt generation 1 too: now nothing is loadable.
        let p1 = store.generation_path(1);
        let mut b1 = std::fs::read(&p1).unwrap();
        let mid = b1.len() / 2;
        b1[mid] ^= 0xFF;
        std::fs::write(&p1, &b1).unwrap();
        assert!(matches!(store.load_latest(), Err(CheckpointError::NoCheckpoint(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_reports_no_checkpoint() {
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::open(&dir);
        assert!(matches!(store.load_latest(), Err(CheckpointError::NoCheckpoint(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
