//! MiniVM semantics tests that span builder + interpreter, including the
//! statement forms the workload library exercises only indirectly.

use dp_trace::builder::{c, div, emax, emin, eq, imod, lt, lv, rnd, shl, shr, ProgramBuilder};
use dp_trace::tracer::{CollectTracer, NullTracer};
use dp_trace::Interp;
use dp_types::TraceEvent;
use proptest::prelude::*;

#[test]
fn call_statement_executes_callee() {
    let mut b = ProgramBuilder::new("call");
    let a = b.array("a", 4);
    let tmp = b.local();
    let callee = b.func(|f| {
        // callee reads the local the caller set and stores it
        f.store(a, c(0), lv(2)); // first user local is id 2
    });
    let p = b.main(|f| {
        f.set_local(tmp, c(41) + c(1));
        f.call(callee);
    });
    assert_eq!(tmp, 2);
    let vm = Interp::new(&p);
    vm.run_seq(&mut NullTracer);
    assert_eq!(vm.array_value(a, 0), 42);
}

#[test]
fn nested_calls_share_locals_and_trace() {
    let mut b = ProgramBuilder::new("nest");
    let a = b.array("a", 2);
    let inner = b.func(|f| {
        let v = f.ld(a, c(0)) + c(1);
        f.store(a, c(0), v);
    });
    let outer = b.func(|f| {
        f.call(inner);
        f.call(inner);
    });
    let p = b.main(|f| {
        f.store(a, c(0), c(10));
        f.call(outer);
    });
    let vm = Interp::new(&p);
    let mut t = CollectTracer::new();
    vm.run_seq(&mut t);
    assert_eq!(vm.array_value(a, 0), 12);
    // 1 init write + 2 × (read + write)
    assert_eq!(t.events.iter().filter(|e| e.as_access().is_some()).count(), 5);
}

#[test]
fn if_branches_both_reachable() {
    let mut b = ProgramBuilder::new("branch");
    let a = b.array("a", 8);
    let p = b.main(|f| {
        f.for_loop("l", false, c(0), c(8), |f, i| {
            f.if_(
                lt(imod(i.clone(), c(2)), c(1)),
                |f| f.store(a, i.clone(), c(100)),
                |f| f.store(a, i.clone(), c(200)),
            );
        });
    });
    let vm = Interp::new(&p);
    vm.run_seq(&mut NullTracer);
    for i in 0..8 {
        assert_eq!(vm.array_value(a, i), if i % 2 == 0 { 100 } else { 200 });
    }
}

#[test]
fn operator_semantics() {
    let mut b = ProgramBuilder::new("ops");
    let s: Vec<_> = (0..8).map(|i| b.scalar(&format!("s{i}"))).collect();
    let p = b.main(|f| {
        f.store_scalar(s[0], div(c(17), c(5)));
        f.store_scalar(s[1], div(c(17), c(0))); // defined: 0
        f.store_scalar(s[2], imod(c(-3), c(0))); // defined: 0
        f.store_scalar(s[3], shl(c(1), c(4)));
        f.store_scalar(s[4], shr(c(-1), c(60))); // logical shift
        f.store_scalar(s[5], emin(c(3), c(-7)) + emax(c(3), c(-7)));
        f.store_scalar(s[6], eq(c(2), c(2)) + lt(c(1), c(2)));
        f.store_scalar(s[7], rnd(c(1))); // bound 1 -> always 0
    });
    let vm = Interp::new(&p);
    vm.run_seq(&mut NullTracer);
    assert_eq!(vm.scalar_value(s[0]), 3);
    assert_eq!(vm.scalar_value(s[1]), 0);
    assert_eq!(vm.scalar_value(s[2]), 0);
    assert_eq!(vm.scalar_value(s[3]), 16);
    assert_eq!(vm.scalar_value(s[4]), 15);
    assert_eq!(vm.scalar_value(s[5]), 3 - 7);
    assert_eq!(vm.scalar_value(s[6]), 2);
    assert_eq!(vm.scalar_value(s[7]), 0);
}

#[test]
fn out_of_range_indices_wrap_not_panic() {
    let mut b = ProgramBuilder::new("wrap");
    let a = b.array("a", 4);
    let p = b.main(|f| {
        f.store(a, c(7), c(1)); // 7 % 4 == 3
        f.store(a, c(-1), c(2)); // (-1 as u64) % 4 == 3
    });
    let vm = Interp::new(&p);
    vm.run_seq(&mut NullTracer);
    assert_eq!(vm.array_value(a, 3), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The event stream is invariant across runs (determinism) and every
    /// access address belongs to a declared allocation.
    #[test]
    fn event_stream_deterministic_and_in_bounds(
        len in 2u64..40,
        iters in 1i64..30,
        seed_mod in 0i64..5,
    ) {
        let mut b = ProgramBuilder::new("prop");
        let a = b.array("a", len);
        let s = b.scalar("s");
        let li = len as i64;
        let p = b.main(|f| {
            f.for_loop("l", false, c(0), c(iters), |f, i| {
                let idx = imod(i.clone() * c(7 + seed_mod) + rnd(c(li)), c(li));
                let v = f.ld(a, idx.clone()) + f.lds(s);
                f.store(a, idx, v);
                f.store_scalar(s, i);
            });
        });
        let run = || {
            let vm = Interp::new(&p);
            let mut t = CollectTracer::new();
            vm.run_seq(&mut t);
            t.events
        };
        let e1 = run();
        let e2 = run();
        prop_assert_eq!(&e1, &e2, "nondeterministic event stream");
        let base = p.arrays[0].base;
        let scalar_addr = p.scalars[0].addr;
        for ev in &e1 {
            if let TraceEvent::Access(acc) = ev {
                let in_array = acc.addr >= base && acc.addr < base + len * 8;
                prop_assert!(
                    in_array || acc.addr == scalar_addr,
                    "stray address {:#x}",
                    acc.addr
                );
            }
        }
    }

    /// Loop events are balanced and iteration counts match headers.
    #[test]
    fn loop_events_balanced(iters in 0i64..25) {
        let mut b = ProgramBuilder::new("loops");
        let a = b.array("a", 4);
        let p = b.main(|f| {
            f.for_loop("outer", false, c(0), c(iters), |f, i| {
                f.store(a, imod(i, c(4)), c(1));
            });
        });
        let vm = Interp::new(&p);
        let mut t = CollectTracer::new();
        vm.run_seq(&mut t);
        let begins = t.events.iter().filter(|e| matches!(e, TraceEvent::LoopBegin { .. })).count();
        let ends: Vec<u64> = t
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::LoopEnd { iters, .. } => Some(*iters),
                _ => None,
            })
            .collect();
        let iter_evs =
            t.events.iter().filter(|e| matches!(e, TraceEvent::LoopIter { .. })).count();
        prop_assert_eq!(begins, 1);
        prop_assert_eq!(ends.len(), 1);
        prop_assert_eq!(ends[0], iters.max(0) as u64);
        prop_assert_eq!(iter_evs as u64, ends[0]);
    }
}
