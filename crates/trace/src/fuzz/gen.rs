//! The seeded MiniVM program generator.
//!
//! [`generate`] maps `(seed, FuzzConfig)` to a [`Program`],
//! deterministically. The grammar deliberately covers the constructs the
//! paper motivates a *dynamic* profiler with — patterns static analysis
//! cannot resolve — and the ones hand-written workloads under-exercise:
//!
//! - loop nests of configurable depth with constant trip counts (so every
//!   generated program terminates by construction),
//! - array indirection `A[B[i]]` and `Rand`-driven data-dependent indices
//!   (the interpreter wraps indices modulo the array length, so *any*
//!   index expression is memory-safe),
//! - reductions `s += ...` / `A[i] += ...` (read-modify-write pairs that
//!   produce RAW+WAR+WAW at one location),
//! - conditional accesses under loop-variant predicates,
//! - lock regions (always emitted as a flat `Lock; accesses; Unlock`
//!   triple — never nested, so generated MT programs cannot deadlock),
//! - helper-function calls, array lifetime events (`Free`), and fork-join
//!   `Spawn` sections with top-level barriers for MT targets.
//!
//! A worst-case *event budget* bounds the dynamic access count: each
//! statement is charged `loads × enclosing-trip-product` when generated,
//! and generation stops adding work once the budget is spent. That keeps
//! every seed cheap enough to drive the full differential oracle.

use super::rng::FuzzRng;
use crate::ir::{ArrayDecl, BinOp, Expr, FuncId, LoopInfo, Program, ScalarDecl, Stmt};
use dp_types::{Interner, LoopId, SourceLoc};

/// Shape knobs for the generator. All bounds are inclusive maxima.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Deepest allowed loop nesting.
    pub max_loop_depth: u32,
    /// Most statements per block (function body, loop body, branch arm).
    pub max_block_stmts: u32,
    /// Most global arrays (at least 1 is always declared).
    pub max_arrays: u32,
    /// Most global scalars (at least 1 is always declared).
    pub max_scalars: u32,
    /// Smallest array length.
    pub min_array_len: u64,
    /// Largest array length.
    pub max_array_len: u64,
    /// Largest loop trip count.
    pub max_trip: i64,
    /// Worst-case traced-access budget for one program.
    pub event_budget: u64,
    /// Allow fork-join `Spawn` programs (multi-threaded targets).
    pub mt: bool,
    /// Most target threads a `Spawn` forks.
    pub max_threads: u32,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            max_loop_depth: 3,
            max_block_stmts: 5,
            max_arrays: 4,
            max_scalars: 3,
            min_array_len: 4,
            max_array_len: 48,
            max_trip: 6,
            event_budget: 20_000,
            mt: false,
            max_threads: 4,
        }
    }
}

impl FuzzConfig {
    /// A smaller shape for `--quick` runs: shallower nests, fewer events.
    pub fn quick() -> Self {
        FuzzConfig {
            max_loop_depth: 2,
            max_block_stmts: 4,
            max_array_len: 24,
            max_trip: 4,
            event_budget: 4_000,
            ..FuzzConfig::default()
        }
    }
}

/// True when the program forks target threads (its profile is
/// schedule-dependent, so the oracle holds it to weaker invariants).
pub fn is_mt(prog: &Program) -> bool {
    fn scan(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Spawn { .. } => true,
            Stmt::For { body, .. } => scan(body),
            Stmt::If { then_, else_, .. } => scan(then_) || scan(else_),
            _ => false,
        })
    }
    prog.funcs.iter().any(|f| scan(f))
}

/// Generates the program for `seed` under `cfg`. Deterministic: the same
/// inputs always produce the same program, statement for statement.
pub fn generate(seed: u64, cfg: &FuzzConfig) -> Program {
    let mut g = Gen::new(seed, cfg);
    g.program()
}

// Mirrors ProgramBuilder's address layout so generated programs look like
// hand-built ones to every downstream consumer.
const FILE: u8 = 1;
const BASE_ADDR: u64 = 0x0010_0000;
const ARRAY_GAP: u64 = 256;
// Locals 0 and 1 are the reserved tid/nthreads registers.
const FIRST_FREE_LOCAL: u32 = 2;

struct Gen<'a> {
    rng: FuzzRng,
    cfg: &'a FuzzConfig,
    seed: u64,
    interner: Interner,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<ScalarDecl>,
    /// Arrays the random blocks may touch (excludes the freed lifetime
    /// array, which must never be accessed after its `Free`).
    usable_arrays: Vec<u32>,
    nmutexes: u32,
    next_line: u32,
    next_addr: u64,
    next_local: u32,
    loops: Vec<LoopInfo>,
    /// Remaining worst-case traced accesses.
    budget: i64,
}

/// What a block is allowed to reference while being generated.
#[derive(Clone)]
struct Scope {
    /// Induction variables of enclosing loops, innermost last.
    loop_vars: Vec<u32>,
    /// Inside a spawned worker (tid/nthreads are meaningful).
    in_worker: bool,
    /// Helper functions callable from here, with per-call access cost.
    callees: Vec<(FuncId, u64)>,
    /// Product of enclosing trip counts.
    mult: u64,
}

impl<'a> Gen<'a> {
    fn new(seed: u64, cfg: &'a FuzzConfig) -> Self {
        Gen {
            rng: FuzzRng::new(seed),
            cfg,
            seed,
            interner: Interner::default(),
            arrays: Vec::new(),
            scalars: Vec::new(),
            usable_arrays: Vec::new(),
            nmutexes: 0,
            next_line: 1,
            next_addr: BASE_ADDR,
            next_local: FIRST_FREE_LOCAL,
            loops: Vec::new(),
            budget: cfg.event_budget as i64,
        }
    }

    fn line(&mut self) -> SourceLoc {
        let l = self.next_line;
        self.next_line += 1;
        SourceLoc::new(FILE, l)
    }

    fn local(&mut self) -> u32 {
        let l = self.next_local;
        self.next_local += 1;
        l
    }

    fn declare_array(&mut self, name: &str, len: u64) -> u32 {
        let id = self.arrays.len() as u32;
        let var = self.interner.intern(name);
        self.arrays.push(ArrayDecl { name: var, len, base: self.next_addr });
        self.next_addr += len * 8 + ARRAY_GAP;
        id
    }

    fn declare_scalar(&mut self, name: &str) -> u32 {
        let id = self.scalars.len() as u32;
        let var = self.interner.intern(name);
        self.scalars.push(ScalarDecl { name: var, addr: self.next_addr });
        self.next_addr += 8 + 8;
        id
    }

    fn program(&mut self) -> Program {
        // Declarations first, like a real translation unit.
        let narrays = 1 + self.rng.below(self.cfg.max_arrays as u64) as u32;
        for i in 0..narrays {
            let len =
                self.rng.range(self.cfg.min_array_len as i64, self.cfg.max_array_len as i64) as u64;
            let id = self.declare_array(&format!("a{i}"), len);
            self.usable_arrays.push(id);
        }
        let nscalars = 1 + self.rng.below(self.cfg.max_scalars as u64) as u32;
        for i in 0..nscalars {
            self.declare_scalar(&format!("s{i}"));
        }
        // A freed array appears in roughly a quarter of programs: written
        // once in a prologue, then deallocated — the lifetime event path.
        let lifetime = if self.rng.chance(1, 4) {
            let len = self.rng.range(self.cfg.min_array_len as i64, 16) as u64;
            Some((self.declare_array("tmp", len), len))
        } else {
            None
        };
        self.nmutexes = self.rng.below(3) as u32;

        let mt = self.cfg.mt && self.rng.chance(1, 2);
        if mt && self.nmutexes == 0 {
            self.nmutexes = 1;
        }

        let mut funcs: Vec<Vec<Stmt>> = Vec::new();
        let mut func_names: Vec<String> = Vec::new();

        // Helper functions, callable from every later block.
        let mut callees: Vec<(FuncId, u64)> = Vec::new();
        let nhelpers = self.rng.below(3);
        for h in 0..nhelpers {
            let scope = Scope { loop_vars: vec![], in_worker: false, callees: vec![], mult: 1 };
            let before = self.budget;
            let body = self.block(&scope, 0, 2);
            let cost = (before - self.budget).max(1) as u64;
            callees.push((funcs.len() as FuncId, cost));
            funcs.push(body);
            func_names.push(format!("h{h}"));
        }

        let worker = if mt {
            let id = funcs.len() as FuncId;
            funcs.push(self.worker_body(&callees));
            func_names.push("worker".into());
            Some(id)
        } else {
            None
        };

        // Main.
        let mut main = Vec::new();
        if let Some((arr, len)) = lifetime {
            self.init_loop(&mut main, arr, len, "init_tmp");
            let l = self.line();
            main.push(Stmt::Free(arr, l));
            self.budget -= len as i64 + 1;
        }
        // Seed one array with an init loop so RAW chains have roots.
        let seed_arr = self.usable_arrays[0];
        let seed_len = self.arrays[seed_arr as usize].len;
        self.init_loop(&mut main, seed_arr, seed_len, "init");
        self.budget -= seed_len as i64;

        let scope =
            Scope { loop_vars: vec![], in_worker: false, callees: callees.clone(), mult: 1 };
        if let Some(w) = worker {
            let pre = self.block(&scope, 0, 2);
            main.extend(pre);
            let n = 2 + self.rng.below(self.cfg.max_threads.saturating_sub(1) as u64) as u32;
            self.rng_take_line();
            main.push(Stmt::Spawn { nthreads: n, func: w });
            let post = self.block(&scope, 0, 2);
            main.extend(post);
        } else {
            let body = self.block(&scope, 0, self.cfg.max_block_stmts);
            main.extend(body);
        }
        let entry = funcs.len() as FuncId;
        funcs.push(main);
        func_names.push("main".into());

        Program {
            name: format!("fuzz-{:016x}", self.seed),
            funcs,
            func_names,
            entry,
            arrays: std::mem::take(&mut self.arrays),
            scalars: std::mem::take(&mut self.scalars),
            loops: std::mem::take(&mut self.loops),
            nlocals: self.next_local,
            nmutexes: self.nmutexes,
            interner: std::mem::take(&mut self.interner),
            seed: self.seed,
        }
    }

    fn rng_take_line(&mut self) {
        // Statements without a traced location still consume a source
        // line, exactly like ProgramBuilder.
        self.next_line += 1;
    }

    /// `for i in 0..len { arr[i] = f(i) }` — the canonical Init producer.
    fn init_loop(&mut self, out: &mut Vec<Stmt>, arr: u32, len: u64, name: &str) {
        let begin = self.line();
        let var = self.local();
        let loop_id = self.loops.len() as LoopId;
        self.loops.push(LoopInfo { id: loop_id, name: name.into(), begin, end: begin, omp: true });
        let body_line = self.line();
        let mul = self.rng.range(1, 5);
        let body = vec![Stmt::StoreArr(
            arr,
            Expr::Local(var),
            Expr::Bin(BinOp::Mul, Box::new(Expr::Local(var)), Box::new(Expr::Const(mul))),
            body_line,
        )];
        let end = self.line();
        self.loops[loop_id as usize].end = end;
        out.push(Stmt::For {
            loop_id,
            var,
            from: Expr::Const(0),
            to: Expr::Const(len as i64),
            body,
        });
    }

    /// A random block of up to `max_stmts` statements.
    fn block(&mut self, scope: &Scope, depth: u32, max_stmts: u32) -> Vec<Stmt> {
        let mut out = Vec::new();
        let n = 1 + self.rng.below(max_stmts.max(1) as u64) as u32;
        for _ in 0..n {
            if self.budget <= 0 {
                break;
            }
            self.statement(&mut out, scope, depth);
        }
        out
    }

    fn statement(&mut self, out: &mut Vec<Stmt>, scope: &Scope, depth: u32) {
        // Weighted kind choice; structure-introducing kinds fall back to
        // plain accesses when depth or budget forbids them.
        let roll = self.rng.below(100);
        match roll {
            0..=24 => self.store_arr(out, scope),
            25..=39 => self.reduction(out, scope),
            40..=51 => self.store_scalar(out, scope),
            52..=59 => self.set_local(out, scope),
            60..=77 => {
                if depth < self.cfg.max_loop_depth && self.budget > scope.mult as i64 * 4 {
                    self.for_loop(out, scope, depth);
                } else {
                    self.store_arr(out, scope);
                }
            }
            78..=87 => {
                if depth < self.cfg.max_loop_depth {
                    self.conditional(out, scope, depth);
                } else {
                    self.store_scalar(out, scope);
                }
            }
            88..=93 => {
                if self.nmutexes > 0 {
                    self.lock_region(out, scope);
                } else {
                    self.reduction(out, scope);
                }
            }
            _ => {
                if scope.callees.is_empty() {
                    self.store_arr(out, scope);
                } else {
                    let i = self.rng.below(scope.callees.len() as u64) as usize;
                    let (f, cost) = scope.callees[i];
                    self.rng_take_line();
                    out.push(Stmt::Call(f));
                    self.budget -= (cost * scope.mult) as i64;
                }
            }
        }
    }

    fn store_arr(&mut self, out: &mut Vec<Stmt>, scope: &Scope) {
        let l = self.line();
        let arr = *self.rng.pick(&self.usable_arrays.clone());
        let idx = self.index(scope, l);
        let val = self.value(scope, l, 1);
        self.charge(scope, 1 + count_loads(&idx) + count_loads(&val));
        out.push(Stmt::StoreArr(arr, idx, val, l));
    }

    fn store_scalar(&mut self, out: &mut Vec<Stmt>, scope: &Scope) {
        let l = self.line();
        let s = self.rng.below(self.scalars.len() as u64) as u32;
        let val = self.value(scope, l, 1);
        self.charge(scope, 1 + count_loads(&val));
        out.push(Stmt::StoreScalar(s, val, l));
    }

    /// `s += e` or `A[i] += e`: a load and a store at the same location.
    fn reduction(&mut self, out: &mut Vec<Stmt>, scope: &Scope) {
        let l = self.line();
        let op = *self.rng.pick(&[BinOp::Add, BinOp::Xor, BinOp::Min, BinOp::Max]);
        if self.rng.chance(1, 2) {
            let s = self.rng.below(self.scalars.len() as u64) as u32;
            let rhs = self.value(scope, l, 1);
            self.charge(scope, 2 + count_loads(&rhs));
            let val = Expr::Bin(op, Box::new(Expr::LoadScalar(s, l)), Box::new(rhs));
            out.push(Stmt::StoreScalar(s, val, l));
        } else {
            let arr = *self.rng.pick(&self.usable_arrays.clone());
            let idx = self.index(scope, l);
            let rhs = self.value(scope, l, 1);
            self.charge(scope, 2 + count_loads(&idx) * 2 + count_loads(&rhs));
            let cur = Expr::LoadArr(arr, Box::new(idx.clone()), l);
            let val = Expr::Bin(op, Box::new(cur), Box::new(rhs));
            out.push(Stmt::StoreArr(arr, idx, val, l));
        }
    }

    fn set_local(&mut self, out: &mut Vec<Stmt>, scope: &Scope) {
        let l = self.line();
        let lv = self.local();
        let val = self.value(scope, l, 2);
        self.charge(scope, count_loads(&val));
        out.push(Stmt::SetLocal(lv, val));
    }

    fn for_loop(&mut self, out: &mut Vec<Stmt>, scope: &Scope, depth: u32) {
        let begin = self.line();
        let var = self.local();
        let from = self.rng.range(0, 2);
        let trips = self.rng.range(1, self.cfg.max_trip) as u64;
        let loop_id = self.loops.len() as LoopId;
        let omp = self.rng.chance(1, 2);
        self.loops.push(LoopInfo {
            id: loop_id,
            name: format!("L{loop_id}"),
            begin,
            end: begin,
            omp,
        });
        let mut inner = scope.clone();
        inner.loop_vars.push(var);
        inner.mult = scope.mult.saturating_mul(trips);
        let body = self.block(&inner, depth + 1, self.cfg.max_block_stmts);
        let end = self.line();
        self.loops[loop_id as usize].end = end;
        out.push(Stmt::For {
            loop_id,
            var,
            from: Expr::Const(from),
            to: Expr::Const(from + trips as i64),
            body,
        });
    }

    fn conditional(&mut self, out: &mut Vec<Stmt>, scope: &Scope, depth: u32) {
        let l = self.line();
        let cond = match self.rng.below(3) {
            0 if !scope.loop_vars.is_empty() => {
                // Loop-variant parity: `(i & 1) == 0`.
                let v = *self.rng.pick(&scope.loop_vars);
                Expr::Bin(
                    BinOp::Eq,
                    Box::new(Expr::Bin(
                        BinOp::And,
                        Box::new(Expr::Local(v)),
                        Box::new(Expr::Const(1)),
                    )),
                    Box::new(Expr::Const(0)),
                )
            }
            1 => {
                // Data-dependent: a traced scalar load in the condition.
                let s = self.rng.below(self.scalars.len() as u64) as u32;
                self.charge(scope, 1);
                Expr::Bin(
                    BinOp::Lt,
                    Box::new(Expr::LoadScalar(s, l)),
                    Box::new(Expr::Const(self.rng.range(0, 64))),
                )
            }
            _ => Expr::Bin(
                BinOp::Lt,
                Box::new(self.simple_int(scope)),
                Box::new(Expr::Const(self.rng.range(1, 8))),
            ),
        };
        let then_ = self.block(scope, depth + 1, 2);
        let else_ = if self.rng.chance(1, 2) { self.block(scope, depth + 1, 2) } else { vec![] };
        out.push(Stmt::If { cond, then_, else_ });
    }

    /// Flat `Lock; one or two accesses; Unlock` — never nested.
    fn lock_region(&mut self, out: &mut Vec<Stmt>, scope: &Scope) {
        let m = self.rng.below(self.nmutexes as u64) as u32;
        self.rng_take_line();
        out.push(Stmt::Lock(m));
        let n = 1 + self.rng.below(2);
        for _ in 0..n {
            if self.rng.chance(2, 3) {
                self.reduction(out, scope);
            } else {
                self.store_arr(out, scope);
            }
        }
        self.rng_take_line();
        out.push(Stmt::Unlock(m));
    }

    /// Worker body for a `Spawn`: barrier-separated top-level segments.
    /// Barriers appear *only* here — every thread runs the same body, so
    /// top-level barriers are always reached by all threads and cannot
    /// deadlock.
    fn worker_body(&mut self, callees: &[(FuncId, u64)]) -> Vec<Stmt> {
        let threads = self.cfg.max_threads.max(2) as u64;
        let scope =
            Scope { loop_vars: vec![], in_worker: true, callees: callees.to_vec(), mult: threads };
        let mut body = Vec::new();
        let segments = 1 + self.rng.below(3);
        for seg in 0..segments {
            if seg > 0 && self.rng.chance(2, 3) {
                self.rng_take_line();
                body.push(Stmt::Barrier);
            }
            let b = self.block(&scope, 0, self.cfg.max_block_stmts);
            body.extend(b);
        }
        body
    }

    /// An array index expression. Anything goes — the interpreter wraps
    /// indices modulo the array length.
    fn index(&mut self, scope: &Scope, l: SourceLoc) -> Expr {
        let has_var = !scope.loop_vars.is_empty();
        match self.rng.below(10) {
            0..=2 if has_var => Expr::Local(*self.rng.pick(&scope.loop_vars)),
            3 if has_var => {
                let v = *self.rng.pick(&scope.loop_vars);
                Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Local(v)),
                    Box::new(Expr::Const(self.rng.range(1, 7))),
                )
            }
            4 if has_var => {
                let v = *self.rng.pick(&scope.loop_vars);
                Expr::Bin(
                    BinOp::Mul,
                    Box::new(Expr::Local(v)),
                    Box::new(Expr::Const(self.rng.range(2, 5))),
                )
            }
            5 => {
                // Indirection: `A[B[j]]` — the flagship dynamic index.
                let b = *self.rng.pick(&self.usable_arrays.clone());
                let inner = self.simple_int(scope);
                self.charge(scope, 1);
                Expr::LoadArr(b, Box::new(inner), l)
            }
            6 => {
                // Data-dependent random index (per-thread LCG).
                Expr::Rand(Box::new(Expr::Const(self.rng.range(2, self.cfg.max_array_len as i64))))
            }
            7 if scope.in_worker => {
                // Thread-partitioned: `tid * k + j`.
                let k = self.rng.range(1, 8);
                let base =
                    Expr::Bin(BinOp::Mul, Box::new(Expr::Local(0)), Box::new(Expr::Const(k)));
                match scope.loop_vars.last() {
                    Some(&v) => Expr::Bin(BinOp::Add, Box::new(base), Box::new(Expr::Local(v))),
                    None => base,
                }
            }
            _ => Expr::Const(self.rng.range(0, self.cfg.max_array_len as i64 - 1)),
        }
    }

    /// A small untraced integer expression (loop var or constant).
    fn simple_int(&mut self, scope: &Scope) -> Expr {
        if !scope.loop_vars.is_empty() && self.rng.chance(2, 3) {
            Expr::Local(*self.rng.pick(&scope.loop_vars))
        } else {
            Expr::Const(self.rng.range(0, 15))
        }
    }

    /// A value expression; may contain traced loads up to `depth` deep.
    fn value(&mut self, scope: &Scope, l: SourceLoc, depth: u32) -> Expr {
        match self.rng.below(8) {
            0 | 1 => Expr::Const(self.rng.range(-8, 63)),
            2 if !scope.loop_vars.is_empty() => Expr::Local(*self.rng.pick(&scope.loop_vars)),
            3 => {
                let s = self.rng.below(self.scalars.len() as u64) as u32;
                Expr::LoadScalar(s, l)
            }
            4 | 5 => {
                let arr = *self.rng.pick(&self.usable_arrays.clone());
                let idx = self.index(scope, l);
                Expr::LoadArr(arr, Box::new(idx), l)
            }
            6 if depth > 0 => {
                let op = *self.rng.pick(&[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Mod,
                    BinOp::And,
                    BinOp::Xor,
                    BinOp::Shr,
                    BinOp::Shl,
                    BinOp::Min,
                    BinOp::Max,
                ]);
                let a = self.value(scope, l, depth - 1);
                let b = self.value(scope, l, depth - 1);
                Expr::Bin(op, Box::new(a), Box::new(b))
            }
            _ => {
                if scope.in_worker && self.rng.chance(1, 3) {
                    Expr::Local(0) // tid
                } else {
                    Expr::Const(self.rng.range(0, 31))
                }
            }
        }
    }

    fn charge(&mut self, scope: &Scope, accesses: u64) {
        self.budget -= (accesses.max(1) * scope.mult) as i64;
    }
}

/// Traced loads inside an expression (for budget accounting).
fn count_loads(e: &Expr) -> u64 {
    match e {
        Expr::Const(_) | Expr::Local(_) => 0,
        Expr::LoadScalar(..) => 1,
        Expr::LoadArr(_, idx, _) => 1 + count_loads(idx),
        Expr::Bin(_, a, b) => count_loads(a) + count_loads(b),
        Expr::Rand(b) => count_loads(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::tracer::CollectTracer;

    fn run_count(prog: &Program) -> usize {
        let mut t = CollectTracer::default();
        Interp::new(prog).run_seq(&mut t);
        t.events.len()
    }

    #[test]
    fn same_seed_same_program() {
        let cfg = FuzzConfig::default();
        for seed in 0..20 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(format!("{:?}", a.funcs), format!("{:?}", b.funcs), "seed {seed}");
            assert_eq!(a.nlocals, b.nlocals);
            assert_eq!(a.arrays.len(), b.arrays.len());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FuzzConfig::default();
        let a = generate(1, &cfg);
        let b = generate(2, &cfg);
        assert_ne!(format!("{:?}", a.funcs), format!("{:?}", b.funcs));
    }

    #[test]
    fn sequential_programs_terminate_within_budget() {
        let cfg = FuzzConfig::default();
        for seed in 0..50 {
            let prog = generate(seed, &cfg);
            assert!(!is_mt(&prog), "cfg.mt=false must never spawn (seed {seed})");
            let n = run_count(&prog);
            assert!(n > 0, "seed {seed} produced an empty trace");
            // Loop/call events ride on top of the access budget; 4x is a
            // generous ceiling that still catches runaway loops.
            assert!(
                n < 4 * cfg.event_budget as usize + 1000,
                "seed {seed}: {n} events blows the budget"
            );
        }
    }

    #[test]
    fn mt_flag_generates_spawning_programs() {
        let cfg = FuzzConfig { mt: true, ..FuzzConfig::default() };
        let spawned = (0..40).filter(|&s| is_mt(&generate(s, &cfg))).count();
        assert!(spawned > 5, "only {spawned}/40 seeds spawned threads");
    }

    #[test]
    fn grammar_reaches_every_construct() {
        // Across a modest seed range the generator must exercise loops,
        // indirection, reductions, conditionals and lock regions.
        let cfg = FuzzConfig::default();
        let (mut fors, mut ifs, mut locks, mut indirect, mut frees) = (0, 0, 0, 0, 0);
        fn walk(stmts: &[Stmt], f: &mut dyn FnMut(&Stmt)) {
            for s in stmts {
                f(s);
                match s {
                    Stmt::For { body, .. } => walk(body, f),
                    Stmt::If { then_, else_, .. } => {
                        walk(then_, f);
                        walk(else_, f);
                    }
                    _ => {}
                }
            }
        }
        fn expr_has_indirection(e: &Expr) -> bool {
            match e {
                Expr::LoadArr(_, idx, _) => {
                    matches!(**idx, Expr::LoadArr(..)) || expr_has_indirection(idx)
                }
                Expr::Bin(_, a, b) => expr_has_indirection(a) || expr_has_indirection(b),
                Expr::Rand(b) => expr_has_indirection(b),
                _ => false,
            }
        }
        for seed in 0..60 {
            let prog = generate(seed, &cfg);
            for func in &prog.funcs {
                walk(func, &mut |s| match s {
                    Stmt::For { .. } => fors += 1,
                    Stmt::If { .. } => ifs += 1,
                    Stmt::Lock(_) => locks += 1,
                    Stmt::Free(..) => frees += 1,
                    Stmt::StoreArr(_, idx, val, _)
                        if expr_has_indirection(idx)
                            || expr_has_indirection(val)
                            || matches!(idx, Expr::LoadArr(..)) =>
                    {
                        indirect += 1;
                    }
                    _ => {}
                });
            }
        }
        assert!(fors > 50, "loops: {fors}");
        assert!(ifs > 10, "conditionals: {ifs}");
        assert!(locks > 5, "lock regions: {locks}");
        assert!(indirect > 5, "indirection stores: {indirect}");
        assert!(frees > 3, "lifetime frees: {frees}");
    }

    #[test]
    fn mt_programs_run_to_completion() {
        let cfg = FuzzConfig { mt: true, ..FuzzConfig::quick() };
        for seed in 0..12 {
            let prog = generate(seed, &cfg);
            if is_mt(&prog) {
                let fac = crate::tracer::CollectFactory::default();
                Interp::new(&prog).run_mt(&fac);
                assert!(!fac.events.lock().is_empty(), "seed {seed}: empty MT trace");
            } else {
                let mut t = CollectTracer::default();
                Interp::new(&prog).run_seq(&mut t);
            }
        }
    }
}
