//! Predicate-driven program shrinking.
//!
//! [`minimize`] takes a program on which some predicate holds (for the
//! fuzzer: "the differential oracle diverges") and greedily applies
//! semantics-shrinking edits — remove a statement, unwrap a loop, keep
//! only one branch of an `If`, halve a trip count, drop unreachable
//! functions — re-checking the predicate after each candidate edit and
//! keeping only edits that preserve it. The result is a local minimum:
//! no single remaining edit keeps the predicate, which in practice is a
//! handful of statements pinpointing the divergence.
//!
//! Lock safety: a `Lock` is only ever removed *together with* its
//! matching `Unlock` in the same block, and `Unlock` is never a removal
//! candidate on its own, so every intermediate candidate keeps
//! lock/unlock pairing intact (the interpreter's raw-mutex unlock is
//! only sound on a held lock).

use crate::ir::{Expr, FuncId, Program, Stmt};

/// One interior descent into a nested block.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    /// Enter the body of the `For` at this index.
    For(usize),
    /// Enter the then-arm of the `If` at this index.
    Then(usize),
    /// Enter the else-arm of the `If` at this index.
    Else(usize),
}

/// Address of one statement: function, interior descents, final index.
#[derive(Debug, Clone)]
struct Path {
    func: usize,
    steps: Vec<Step>,
    idx: usize,
}

/// A candidate shrinking edit.
#[derive(Debug, Clone)]
enum Edit {
    /// Delete the statement (plus its `Unlock` partner for a `Lock`).
    Remove(Path),
    /// Replace a `For` with its body (runs once, induction var reads 0).
    UnwrapLoop(Path),
    /// Replace an `If` with its then-branch.
    TakeThen(Path),
    /// Replace an `If` with its else-branch.
    TakeElse(Path),
    /// Halve a constant trip count.
    HalveTrips(Path),
    /// Empty the body of a function unreachable from `entry`.
    DropUnreachable(FuncId),
}

/// Counts `Stmt` nodes across all functions — the "instruction count" a
/// minimized repro is measured by.
pub fn stmt_count(prog: &Program) -> usize {
    fn count(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| {
                1 + match s {
                    Stmt::For { body, .. } => count(body),
                    Stmt::If { then_, else_, .. } => count(then_) + count(else_),
                    _ => 0,
                }
            })
            .sum()
    }
    prog.funcs.iter().map(|f| count(f)).sum()
}

/// Shrinks `prog` while `fails` keeps returning `true`. `fails(prog)`
/// itself must be `true` on entry (debug-asserted); the returned program
/// also satisfies it. `max_checks` bounds predicate evaluations so a
/// pathologically slow predicate cannot wedge the fuzz loop.
pub fn minimize(
    prog: &Program,
    max_checks: usize,
    fails: &mut dyn FnMut(&Program) -> bool,
) -> Program {
    debug_assert!(fails(prog), "minimize called on a passing program");
    let mut best = prog.clone();
    let mut checks = 0usize;
    loop {
        let mut improved = false;
        for edit in candidates(&best) {
            if checks >= max_checks {
                return best;
            }
            let Some(candidate) = apply(&best, &edit) else { continue };
            checks += 1;
            if fails(&candidate) {
                best = candidate;
                improved = true;
                break; // re-enumerate against the smaller program
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Enumerates edits biggest-win-first: drop unreachable functions, then
/// statement removals and structure rewrites in statement order.
fn candidates(prog: &Program) -> Vec<Edit> {
    let mut out = Vec::new();
    for f in unreachable_funcs(prog) {
        out.push(Edit::DropUnreachable(f));
    }
    for (fi, body) in prog.funcs.iter().enumerate() {
        collect(body, fi, &[], &mut out);
    }
    out
}

fn collect(stmts: &[Stmt], func: usize, prefix: &[Step], out: &mut Vec<Edit>) {
    for (i, s) in stmts.iter().enumerate() {
        let path = Path { func, steps: prefix.to_vec(), idx: i };
        if !matches!(s, Stmt::Unlock(_)) {
            out.push(Edit::Remove(path.clone()));
        }
        match s {
            Stmt::For { body, from, to, .. } => {
                out.push(Edit::UnwrapLoop(path.clone()));
                if let (Expr::Const(f), Expr::Const(t)) = (from, to) {
                    if t - f > 1 {
                        out.push(Edit::HalveTrips(path.clone()));
                    }
                }
                let mut inner = prefix.to_vec();
                inner.push(Step::For(i));
                collect(body, func, &inner, out);
            }
            Stmt::If { then_, else_, .. } => {
                out.push(Edit::TakeThen(path.clone()));
                if !else_.is_empty() {
                    out.push(Edit::TakeElse(path.clone()));
                }
                let mut t = prefix.to_vec();
                t.push(Step::Then(i));
                collect(then_, func, &t, out);
                let mut e = prefix.to_vec();
                e.push(Step::Else(i));
                collect(else_, func, &e, out);
            }
            _ => {}
        }
    }
}

/// Functions not reachable from `entry` via `Call`/`Spawn` and with a
/// non-empty body (so the edit is not a no-op).
fn unreachable_funcs(prog: &Program) -> Vec<FuncId> {
    let mut reach = vec![false; prog.funcs.len()];
    let mut stack = vec![prog.entry as usize];
    fn scan(stmts: &[Stmt], stack: &mut Vec<usize>) {
        for s in stmts {
            match s {
                Stmt::Call(f) => stack.push(*f as usize),
                Stmt::Spawn { func, .. } => stack.push(*func as usize),
                Stmt::For { body, .. } => scan(body, stack),
                Stmt::If { then_, else_, .. } => {
                    scan(then_, stack);
                    scan(else_, stack);
                }
                _ => {}
            }
        }
    }
    while let Some(f) = stack.pop() {
        if f >= reach.len() || reach[f] {
            continue;
        }
        reach[f] = true;
        scan(&prog.funcs[f], &mut stack);
    }
    (0..prog.funcs.len())
        .filter(|&f| !reach[f] && !prog.funcs[f].is_empty())
        .map(|f| f as FuncId)
        .collect()
}

/// Applies `edit` to a clone of `prog`; `None` when the edit does not
/// apply (defensive — paths are re-enumerated after every accepted
/// edit, so stale paths should not occur).
fn apply(prog: &Program, edit: &Edit) -> Option<Program> {
    let mut out = prog.clone();
    match edit {
        Edit::DropUnreachable(f) => {
            out.funcs.get_mut(*f as usize)?.clear();
        }
        Edit::Remove(path) => {
            let (block, idx) = locate(&mut out, path)?;
            if idx >= block.len() {
                return None;
            }
            let removed = block.remove(idx);
            if let Stmt::Lock(m) = removed {
                // Take the matching Unlock in the same block with it.
                if let Some(j) =
                    block[idx..].iter().position(|s| matches!(s, Stmt::Unlock(m2) if *m2 == m))
                {
                    block.remove(idx + j);
                }
            }
        }
        Edit::UnwrapLoop(path) => {
            let (block, idx) = locate(&mut out, path)?;
            let Some(Stmt::For { body, .. }) = block.get(idx).cloned() else { return None };
            block.splice(idx..=idx, body);
        }
        Edit::TakeThen(path) => {
            let (block, idx) = locate(&mut out, path)?;
            let Some(Stmt::If { then_, .. }) = block.get(idx).cloned() else { return None };
            block.splice(idx..=idx, then_);
        }
        Edit::TakeElse(path) => {
            let (block, idx) = locate(&mut out, path)?;
            let Some(Stmt::If { else_, .. }) = block.get(idx).cloned() else { return None };
            block.splice(idx..=idx, else_);
        }
        Edit::HalveTrips(path) => {
            let (block, idx) = locate(&mut out, path)?;
            let Some(Stmt::For { from, to, .. }) = block.get_mut(idx) else { return None };
            let (Expr::Const(f), Expr::Const(t)) = (&*from, &*to) else { return None };
            let (f, trips) = (*f, *t - *f);
            if trips <= 1 {
                return None;
            }
            *to = Expr::Const(f + (trips / 2).max(1));
        }
    }
    Some(out)
}

/// Resolves a path to (containing block, statement index).
fn locate<'p>(prog: &'p mut Program, path: &Path) -> Option<(&'p mut Vec<Stmt>, usize)> {
    let mut block: &'p mut Vec<Stmt> = prog.funcs.get_mut(path.func)?;
    for step in &path.steps {
        let next = match *step {
            Step::For(i) => match block.get_mut(i)? {
                Stmt::For { body, .. } => body,
                _ => return None,
            },
            Step::Then(i) => match block.get_mut(i)? {
                Stmt::If { then_, .. } => then_,
                _ => return None,
            },
            Step::Else(i) => match block.get_mut(i)? {
                Stmt::If { else_, .. } => else_,
                _ => return None,
            },
        };
        block = next;
    }
    Some((block, path.idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::gen::{generate, FuzzConfig};

    #[test]
    fn always_true_predicate_minimizes_to_nothing() {
        let prog = generate(17, &FuzzConfig::default());
        let min = minimize(&prog, 100_000, &mut |_| true);
        assert_eq!(stmt_count(&min), 0, "got:\n{}", crate::fuzz::text::print_program(&min));
    }

    #[test]
    fn predicate_preserving_minimum_is_small_and_still_fails() {
        // Predicate: program still stores to array 0 somewhere. The
        // minimum should be a single store statement.
        fn has_store0(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::StoreArr(0, ..) => true,
                Stmt::For { body, .. } => has_store0(body),
                Stmt::If { then_, else_, .. } => has_store0(then_) || has_store0(else_),
                _ => false,
            })
        }
        for seed in 0..10 {
            let prog = generate(seed, &FuzzConfig::default());
            let mut pred = |p: &Program| p.funcs.iter().any(|f| has_store0(f));
            if !pred(&prog) {
                continue;
            }
            let min = minimize(&prog, 100_000, &mut pred);
            assert!(pred(&min));
            assert!(
                stmt_count(&min) <= 2,
                "seed {seed}: {} stmts:\n{}",
                stmt_count(&min),
                crate::fuzz::text::print_program(&min)
            );
        }
    }

    #[test]
    fn lock_pairs_stay_balanced_through_shrinking() {
        fn balance_ok(stmts: &[Stmt]) -> bool {
            fn walk(stmts: &[Stmt], depth: &mut i64) -> bool {
                for s in stmts {
                    match s {
                        Stmt::Lock(_) => *depth += 1,
                        Stmt::Unlock(_) => {
                            *depth -= 1;
                            if *depth < 0 {
                                return false;
                            }
                        }
                        // Guards with side effects: `walk` updates `depth`
                        // whether or not the arm is taken, which is the
                        // point — a passing subtree still moves the count.
                        Stmt::For { body, .. } if !walk(body, depth) => return false,
                        Stmt::If { then_, else_, .. }
                            if !walk(then_, depth) || !walk(else_, depth) =>
                        {
                            return false;
                        }
                        _ => {}
                    }
                }
                true
            }
            let mut d = 0;
            walk(stmts, &mut d) && d == 0
        }
        for seed in 0..20 {
            let prog = generate(seed, &FuzzConfig::default());
            // Shrink under a predicate that checks balance on every
            // candidate — any unbalanced intermediate would fail here.
            let min = minimize(&prog, 20_000, &mut |p| {
                for f in &p.funcs {
                    assert!(balance_ok(f), "unbalanced locks during shrink (seed {seed})");
                }
                true
            });
            let _ = min;
        }
    }

    #[test]
    fn minimized_programs_still_roundtrip() {
        let prog = generate(23, &FuzzConfig::default());
        let min = minimize(&prog, 5_000, &mut |p| stmt_count(p) > 3);
        let text = crate::fuzz::text::print_program(&min);
        let back = crate::fuzz::text::parse_program(&text).unwrap();
        assert_eq!(format!("{:?}", min.funcs), format!("{:?}", back.funcs));
    }
}
