//! Self-contained seeded randomness for the fuzzer.
//!
//! Same construction as the fault-injection harness in `dp-queue`: a
//! SplitMix-style seed scramble (so nearby seeds produce unrelated
//! streams) feeding an xorshift64* generator. No external crates, fully
//! deterministic, and forkable so independent generation decisions get
//! independent streams.

/// A seeded xorshift64* stream.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a stream from `seed`. Any seed is valid (including 0 —
    /// the scramble guarantees a non-zero internal state).
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: scramble(seed) }
    }

    /// Derives an independent child stream. `salt` distinguishes
    /// multiple forks taken at the same point.
    pub fn fork(&mut self, salt: u64) -> FuzzRng {
        let mixed = self.next_u64() ^ scramble(salt);
        FuzzRng { state: mixed | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform value in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks a uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// A Zipf-flavoured rank in `[0, n)`: log-uniform, so rank 0 is
    /// drawn vastly more often than rank `n-1`. This is the "heavy head,
    /// long tail" reuse distribution the web-scale stress family wants;
    /// exact Zipf normalization is irrelevant for that purpose.
    pub fn zipf(&mut self, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let rank = (n as f64).powf(u) - 1.0;
        (rank as u64).min(n - 1)
    }
}

/// SplitMix64-style scramble; output is always odd (never zero), which
/// xorshift requires.
fn scramble(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = FuzzRng::new(42);
        let mut r2 = FuzzRng::new(42);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut r1 = FuzzRng::new(1);
        let mut r2 = FuzzRng::new(2);
        let same = (0..64).filter(|_| r1.next_u64() == r2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = FuzzRng::new(7);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut r = FuzzRng::new(9);
        let n = 1000u64;
        let mut head = 0u64;
        for _ in 0..10_000 {
            if r.zipf(n) < n / 10 {
                head += 1;
            }
        }
        // Log-uniform puts far more than 10% of the mass in the first
        // decile of ranks.
        assert!(head > 5_000, "head draws: {head}");
    }

    #[test]
    fn forks_are_independent() {
        let mut r = FuzzRng::new(11);
        let mut a = r.fork(1);
        let mut b = r.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
