//! The corpus text format: print a [`Program`] as an s-expression, parse
//! it back, bit-for-bit.
//!
//! Failing fuzz programs are committed to the corpus as *programs*, not
//! as `(seed, generator-version)` pairs: a seed replays a bug only while
//! the generator that produced it stays frozen, whereas a serialized
//! program keeps reproducing forever. The format therefore round-trips
//! every field that influences profiling: source locations (dependences
//! are keyed on them), array base addresses, scalar addresses, the loop
//! table, the interner (in id order, so `VarId`s survive), `entry`,
//! `nlocals`, `nmutexes` and the `Rand` seed.
//!
//! The grammar is a flat s-expression surface — one token kind per IR
//! node — so the parser is a page of recursive descent with typed errors
//! and full range validation (a stale corpus file can fail to parse, but
//! it can never crash the interpreter with an out-of-range id).

use crate::ir::{ArrayDecl, BinOp, Expr, LoopInfo, Program, ScalarDecl, Stmt};
use dp_types::{Interner, SourceLoc};
use std::fmt::Write as _;

/// Serializes `prog` into the corpus text form.
pub fn print_program(prog: &Program) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("(program\n");
    let _ = writeln!(s, "  (name {})", quote(&prog.name));
    let _ = writeln!(s, "  (seed {})", prog.seed);
    let _ = writeln!(s, "  (entry {})", prog.entry);
    let _ = writeln!(s, "  (nlocals {})", prog.nlocals);
    let _ = writeln!(s, "  (nmutexes {})", prog.nmutexes);
    s.push_str("  (names");
    for id in 0..prog.interner.len() {
        let _ = write!(s, " {}", quote(prog.interner.resolve(id as u32)));
    }
    s.push_str(")\n");
    for a in &prog.arrays {
        let _ = writeln!(s, "  (array {} {} {})", a.name, a.len, a.base);
    }
    for sc in &prog.scalars {
        let _ = writeln!(s, "  (scalar {} {})", sc.name, sc.addr);
    }
    for l in &prog.loops {
        let _ = writeln!(
            s,
            "  (loopinfo {} {} {} {} {})",
            l.id,
            quote(&l.name),
            loc_atom(l.begin),
            loc_atom(l.end),
            u8::from(l.omp)
        );
    }
    for (i, body) in prog.funcs.iter().enumerate() {
        let _ = writeln!(s, "  (func {}", quote(&prog.func_names[i]));
        for st in body {
            print_stmt(&mut s, st, 2);
        }
        s.push_str("  )\n");
    }
    s.push_str(")\n");
    s
}

fn indent(s: &mut String, depth: usize) {
    for _ in 0..depth {
        s.push_str("  ");
    }
}

fn print_stmt(s: &mut String, st: &Stmt, depth: usize) {
    indent(s, depth);
    match st {
        Stmt::StoreScalar(id, val, l) => {
            let _ = write!(s, "(ss {} {} ", id, loc_atom(*l));
            print_expr(s, val);
            s.push_str(")\n");
        }
        Stmt::StoreArr(id, idx, val, l) => {
            let _ = write!(s, "(sa {} {} ", id, loc_atom(*l));
            print_expr(s, idx);
            s.push(' ');
            print_expr(s, val);
            s.push_str(")\n");
        }
        Stmt::SetLocal(lv, val) => {
            let _ = write!(s, "(sl {} ", lv);
            print_expr(s, val);
            s.push_str(")\n");
        }
        Stmt::For { loop_id, var, from, to, body } => {
            let _ = write!(s, "(for {} {} ", loop_id, var);
            print_expr(s, from);
            s.push(' ');
            print_expr(s, to);
            s.push('\n');
            for st in body {
                print_stmt(s, st, depth + 1);
            }
            indent(s, depth);
            s.push_str(")\n");
        }
        Stmt::If { cond, then_, else_ } => {
            s.push_str("(if ");
            print_expr(s, cond);
            s.push('\n');
            indent(s, depth + 1);
            s.push_str("(then\n");
            for st in then_ {
                print_stmt(s, st, depth + 2);
            }
            indent(s, depth + 1);
            s.push_str(")\n");
            indent(s, depth + 1);
            s.push_str("(else\n");
            for st in else_ {
                print_stmt(s, st, depth + 2);
            }
            indent(s, depth + 1);
            s.push_str(")\n");
            indent(s, depth);
            s.push_str(")\n");
        }
        Stmt::Call(f) => {
            let _ = writeln!(s, "(call {f})");
        }
        Stmt::Lock(m) => {
            let _ = writeln!(s, "(lock {m})");
        }
        Stmt::Unlock(m) => {
            let _ = writeln!(s, "(unlock {m})");
        }
        Stmt::Barrier => s.push_str("(barrier)\n"),
        Stmt::Spawn { nthreads, func } => {
            let _ = writeln!(s, "(spawn {nthreads} {func})");
        }
        Stmt::Free(a, l) => {
            let _ = writeln!(s, "(free {} {})", a, loc_atom(*l));
        }
    }
}

fn print_expr(s: &mut String, e: &Expr) {
    match e {
        Expr::Const(v) => {
            let _ = write!(s, "{v}");
        }
        Expr::Local(l) => {
            let _ = write!(s, "(l {l})");
        }
        Expr::LoadScalar(id, l) => {
            let _ = write!(s, "(lds {} {})", id, loc_atom(*l));
        }
        Expr::LoadArr(id, idx, l) => {
            let _ = write!(s, "(lda {} {} ", id, loc_atom(*l));
            print_expr(s, idx);
            s.push(')');
        }
        Expr::Bin(op, a, b) => {
            let _ = write!(s, "(b {} ", op_name(*op));
            print_expr(s, a);
            s.push(' ');
            print_expr(s, b);
            s.push(')');
        }
        Expr::Rand(bound) => {
            s.push_str("(rand ");
            print_expr(s, bound);
            s.push(')');
        }
    }
}

fn loc_atom(l: SourceLoc) -> String {
    format!("{}:{}", l.file, l.line)
}

fn op_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Mod => "mod",
        BinOp::And => "and",
        BinOp::Xor => "xor",
        BinOp::Shr => "shr",
        BinOp::Shl => "shl",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::Lt => "lt",
        BinOp::Eq => "eq",
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Parsing.

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Open,
    Close,
    Atom(String),
    Str(String),
}

fn tokenize(src: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '(' => {
                chars.next();
                toks.push(Tok::Open);
            }
            ')' => {
                chars.next();
                toks.push(Tok::Close);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(e @ ('"' | '\\')) => s.push(e),
                            other => return Err(format!("bad escape {other:?}")),
                        },
                        Some(ch) => s.push(ch),
                        None => return Err("unterminated string".into()),
                    }
                }
                toks.push(Tok::Str(s));
            }
            ';' => {
                // Line comment.
                for ch in chars.by_ref() {
                    if ch == '\n' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut a = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || ch == '(' || ch == ')' || ch == ';' {
                        break;
                    }
                    a.push(ch);
                    chars.next();
                }
                toks.push(Tok::Atom(a));
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, String> {
        let t = self.toks.get(self.pos).cloned().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_open(&mut self) -> Result<(), String> {
        match self.next()? {
            Tok::Open => Ok(()),
            t => Err(format!("expected '(', got {t:?}")),
        }
    }

    fn expect_close(&mut self) -> Result<(), String> {
        match self.next()? {
            Tok::Close => Ok(()),
            t => Err(format!("expected ')', got {t:?}")),
        }
    }

    fn atom(&mut self) -> Result<String, String> {
        match self.next()? {
            Tok::Atom(a) => Ok(a),
            t => Err(format!("expected atom, got {t:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        match self.next()? {
            Tok::Str(s) => Ok(s),
            t => Err(format!("expected string, got {t:?}")),
        }
    }

    fn head(&mut self) -> Result<String, String> {
        self.expect_open()?;
        self.atom()
    }

    fn num<T: std::str::FromStr>(&mut self) -> Result<T, String> {
        let a = self.atom()?;
        a.parse().map_err(|_| format!("bad number {a:?}"))
    }

    fn loc(&mut self) -> Result<SourceLoc, String> {
        let a = self.atom()?;
        let (f, l) = a.split_once(':').ok_or_else(|| format!("bad loc {a:?}"))?;
        let file: u8 = f.parse().map_err(|_| format!("bad loc file {a:?}"))?;
        let line: u32 = l.parse().map_err(|_| format!("bad loc line {a:?}"))?;
        if line > dp_types::loc::MAX_LINE {
            return Err(format!("loc line {line} out of packed range"));
        }
        Ok(SourceLoc::new(file, line))
    }

    fn expr(&mut self) -> Result<Expr, String> {
        match self.peek() {
            Some(Tok::Atom(_)) => {
                let v: i64 = self.num()?;
                Ok(Expr::Const(v))
            }
            Some(Tok::Open) => {
                let head = self.head()?;
                let e = match head.as_str() {
                    "l" => Expr::Local(self.num()?),
                    "lds" => {
                        let id = self.num()?;
                        let l = self.loc()?;
                        Expr::LoadScalar(id, l)
                    }
                    "lda" => {
                        let id = self.num()?;
                        let l = self.loc()?;
                        let idx = self.expr()?;
                        Expr::LoadArr(id, Box::new(idx), l)
                    }
                    "b" => {
                        let op = parse_op(&self.atom()?)?;
                        let a = self.expr()?;
                        let b = self.expr()?;
                        Expr::Bin(op, Box::new(a), Box::new(b))
                    }
                    "rand" => Expr::Rand(Box::new(self.expr()?)),
                    other => return Err(format!("unknown expr head {other:?}")),
                };
                self.expect_close()?;
                Ok(e)
            }
            t => Err(format!("expected expression, got {t:?}")),
        }
    }

    fn stmt_list(&mut self) -> Result<Vec<Stmt>, String> {
        let mut out = Vec::new();
        while matches!(self.peek(), Some(Tok::Open)) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, String> {
        let head = self.head()?;
        let st = match head.as_str() {
            "ss" => {
                let id = self.num()?;
                let l = self.loc()?;
                let val = self.expr()?;
                Stmt::StoreScalar(id, val, l)
            }
            "sa" => {
                let id = self.num()?;
                let l = self.loc()?;
                let idx = self.expr()?;
                let val = self.expr()?;
                Stmt::StoreArr(id, idx, val, l)
            }
            "sl" => {
                let lv = self.num()?;
                let val = self.expr()?;
                Stmt::SetLocal(lv, val)
            }
            "for" => {
                let loop_id = self.num()?;
                let var = self.num()?;
                let from = self.expr()?;
                let to = self.expr()?;
                let body = self.stmt_list()?;
                Stmt::For { loop_id, var, from, to, body }
            }
            "if" => {
                let cond = self.expr()?;
                if self.head()? != "then" {
                    return Err("if: expected (then ...)".into());
                }
                let then_ = self.stmt_list()?;
                self.expect_close()?;
                if self.head()? != "else" {
                    return Err("if: expected (else ...)".into());
                }
                let else_ = self.stmt_list()?;
                self.expect_close()?;
                Stmt::If { cond, then_, else_ }
            }
            "call" => Stmt::Call(self.num()?),
            "lock" => Stmt::Lock(self.num()?),
            "unlock" => Stmt::Unlock(self.num()?),
            "barrier" => Stmt::Barrier,
            "spawn" => {
                let n = self.num()?;
                let f = self.num()?;
                Stmt::Spawn { nthreads: n, func: f }
            }
            "free" => {
                let a = self.num()?;
                let l = self.loc()?;
                Stmt::Free(a, l)
            }
            other => return Err(format!("unknown statement head {other:?}")),
        };
        self.expect_close()?;
        Ok(st)
    }
}

fn parse_op(name: &str) -> Result<BinOp, String> {
    Ok(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "mod" => BinOp::Mod,
        "and" => BinOp::And,
        "xor" => BinOp::Xor,
        "shr" => BinOp::Shr,
        "shl" => BinOp::Shl,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        "lt" => BinOp::Lt,
        "eq" => BinOp::Eq,
        other => return Err(format!("unknown operator {other:?}")),
    })
}

/// Parses the corpus text form back into a [`Program`], validating every
/// id against the declared ranges.
pub fn parse_program(src: &str) -> Result<Program, String> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    if p.head()? != "program" {
        return Err("expected (program ...)".into());
    }

    let mut name = String::new();
    let mut seed = 0u64;
    let mut entry = 0u32;
    let mut nlocals = 0u32;
    let mut nmutexes = 0u32;
    let mut interner = Interner::default();
    let mut names_seen = false;
    let mut arrays: Vec<ArrayDecl> = Vec::new();
    let mut scalars: Vec<ScalarDecl> = Vec::new();
    let mut loops: Vec<LoopInfo> = Vec::new();
    let mut funcs: Vec<Vec<Stmt>> = Vec::new();
    let mut func_names: Vec<String> = Vec::new();

    while matches!(p.peek(), Some(Tok::Open)) {
        let head = p.head()?;
        match head.as_str() {
            "name" => {
                name = p.string()?;
                p.expect_close()?;
            }
            "seed" => {
                seed = p.num()?;
                p.expect_close()?;
            }
            "entry" => {
                entry = p.num()?;
                p.expect_close()?;
            }
            "nlocals" => {
                nlocals = p.num()?;
                p.expect_close()?;
            }
            "nmutexes" => {
                nmutexes = p.num()?;
                p.expect_close()?;
            }
            "names" => {
                while matches!(p.peek(), Some(Tok::Str(_))) {
                    let n = p.string()?;
                    interner.intern(&n);
                }
                names_seen = true;
                p.expect_close()?;
            }
            "array" => {
                let name_id: u32 = p.num()?;
                let len: u64 = p.num()?;
                let base: u64 = p.num()?;
                arrays.push(ArrayDecl { name: name_id, len, base });
                p.expect_close()?;
            }
            "scalar" => {
                let name_id: u32 = p.num()?;
                let addr: u64 = p.num()?;
                scalars.push(ScalarDecl { name: name_id, addr });
                p.expect_close()?;
            }
            "loopinfo" => {
                let id = p.num()?;
                let lname = p.string()?;
                let begin = p.loc()?;
                let end = p.loc()?;
                let omp: u8 = p.num()?;
                loops.push(LoopInfo { id, name: lname, begin, end, omp: omp != 0 });
                p.expect_close()?;
            }
            "func" => {
                let fname = p.string()?;
                let body = p.stmt_list()?;
                p.expect_close()?;
                func_names.push(fname);
                funcs.push(body);
            }
            other => return Err(format!("unknown program section {other:?}")),
        }
    }
    p.expect_close()?;
    if p.pos != p.toks.len() {
        return Err("trailing tokens after (program ...)".into());
    }

    if !names_seen {
        return Err("missing (names ...) section".into());
    }
    if funcs.is_empty() {
        return Err("program has no functions".into());
    }

    let prog = Program {
        name,
        funcs,
        func_names,
        entry,
        arrays,
        scalars,
        loops,
        nlocals,
        nmutexes,
        interner,
        seed,
    };
    validate(&prog)?;
    Ok(prog)
}

/// Every id the statements reference must be declared; violations are
/// parse errors, never interpreter panics.
fn validate(prog: &Program) -> Result<(), String> {
    if prog.entry as usize >= prog.funcs.len() {
        return Err(format!("entry {} out of range ({} funcs)", prog.entry, prog.funcs.len()));
    }
    for a in &prog.arrays {
        if a.len == 0 {
            return Err("zero-length array".into());
        }
        if a.name as usize >= prog.interner.len() {
            return Err(format!("array name id {} not interned", a.name));
        }
    }
    for s in &prog.scalars {
        if s.name as usize >= prog.interner.len() {
            return Err(format!("scalar name id {} not interned", s.name));
        }
    }
    for (i, body) in prog.funcs.iter().enumerate() {
        validate_block(prog, body).map_err(|e| format!("func {i}: {e}"))?;
    }
    Ok(())
}

fn validate_block(prog: &Program, stmts: &[Stmt]) -> Result<(), String> {
    for st in stmts {
        match st {
            Stmt::StoreScalar(id, val, _) => {
                check_scalar(prog, *id)?;
                validate_expr(prog, val)?;
            }
            Stmt::StoreArr(id, idx, val, _) => {
                check_array(prog, *id)?;
                validate_expr(prog, idx)?;
                validate_expr(prog, val)?;
            }
            Stmt::SetLocal(lv, val) => {
                check_local(prog, *lv)?;
                validate_expr(prog, val)?;
            }
            Stmt::For { loop_id, var, from, to, body } => {
                if *loop_id as usize >= prog.loops.len() {
                    return Err(format!("loop id {loop_id} out of range"));
                }
                check_local(prog, *var)?;
                validate_expr(prog, from)?;
                validate_expr(prog, to)?;
                validate_block(prog, body)?;
            }
            Stmt::If { cond, then_, else_ } => {
                validate_expr(prog, cond)?;
                validate_block(prog, then_)?;
                validate_block(prog, else_)?;
            }
            Stmt::Call(f) => {
                if *f as usize >= prog.funcs.len() {
                    return Err(format!("call target {f} out of range"));
                }
            }
            Stmt::Lock(m) | Stmt::Unlock(m) => {
                if *m >= prog.nmutexes {
                    return Err(format!("mutex {m} out of range ({})", prog.nmutexes));
                }
            }
            Stmt::Barrier => {}
            Stmt::Spawn { nthreads, func } => {
                if *nthreads == 0 || *nthreads > 64 {
                    return Err(format!("spawn of {nthreads} threads"));
                }
                if *func as usize >= prog.funcs.len() {
                    return Err(format!("spawn target {func} out of range"));
                }
            }
            Stmt::Free(a, _) => check_array(prog, *a)?,
        }
    }
    Ok(())
}

fn validate_expr(prog: &Program, e: &Expr) -> Result<(), String> {
    match e {
        Expr::Const(_) => Ok(()),
        Expr::Local(l) => check_local(prog, *l),
        Expr::LoadScalar(id, _) => check_scalar(prog, *id),
        Expr::LoadArr(id, idx, _) => {
            check_array(prog, *id)?;
            validate_expr(prog, idx)
        }
        Expr::Bin(_, a, b) => {
            validate_expr(prog, a)?;
            validate_expr(prog, b)
        }
        Expr::Rand(b) => validate_expr(prog, b),
    }
}

fn check_array(prog: &Program, id: u32) -> Result<(), String> {
    if id as usize >= prog.arrays.len() {
        return Err(format!("array id {id} out of range ({})", prog.arrays.len()));
    }
    Ok(())
}

fn check_scalar(prog: &Program, id: u32) -> Result<(), String> {
    if id as usize >= prog.scalars.len() {
        return Err(format!("scalar id {id} out of range ({})", prog.scalars.len()));
    }
    Ok(())
}

fn check_local(prog: &Program, id: u32) -> Result<(), String> {
    if id >= prog.nlocals {
        return Err(format!("local {id} out of range ({})", prog.nlocals));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::gen::{generate, FuzzConfig};
    use crate::interp::Interp;
    use crate::tracer::CollectTracer;

    #[test]
    fn roundtrip_preserves_programs_and_traces() {
        let cfg = FuzzConfig { mt: true, ..FuzzConfig::default() };
        for seed in 0..30 {
            let prog = generate(seed, &cfg);
            let text = print_program(&prog);
            let back = parse_program(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(format!("{:?}", prog.funcs), format!("{:?}", back.funcs), "seed {seed}");
            assert_eq!(prog.name, back.name);
            assert_eq!(prog.seed, back.seed);
            assert_eq!(prog.entry, back.entry);
            assert_eq!(prog.nlocals, back.nlocals);
            assert_eq!(prog.nmutexes, back.nmutexes);
            assert_eq!(format!("{:?}", prog.arrays), format!("{:?}", back.arrays));
            assert_eq!(format!("{:?}", prog.scalars), format!("{:?}", back.scalars));
            assert_eq!(format!("{:?}", prog.loops), format!("{:?}", back.loops));
            assert_eq!(prog.interner.len(), back.interner.len());
            for id in 0..prog.interner.len() as u32 {
                assert_eq!(prog.interner.resolve(id), back.interner.resolve(id));
            }
            // Same trace, event for event (sequential programs only).
            if !crate::fuzz::gen::is_mt(&prog) {
                let mut t1 = CollectTracer::default();
                Interp::new(&prog).run_seq(&mut t1);
                let mut t2 = CollectTracer::default();
                Interp::new(&back).run_seq(&mut t2);
                assert_eq!(format!("{:?}", t1.events), format!("{:?}", t2.events), "seed {seed}");
            }
        }
    }

    #[test]
    fn out_of_range_ids_are_parse_errors() {
        let prog = generate(3, &FuzzConfig::default());
        let text = print_program(&prog);
        // Corrupt an array reference to one past the end.
        let bogus = text.replace("(sa 0 ", &format!("(sa {} ", prog.arrays.len()));
        if bogus != text {
            assert!(parse_program(&bogus).is_err());
        }
        // Entry out of range.
        let bogus = text.replace("(entry ", "(entry 9");
        assert!(parse_program(&bogus).is_err());
    }

    #[test]
    fn junk_never_panics() {
        for src in [
            "",
            "(",
            ")",
            "(program",
            "(program)",
            "(program (name \"x\") (names) (func \"m\" (zz)))",
            "(program (names \"a\") (func \"m\" (ss 0 1:1 5)))", // scalar 0 undeclared
            "(program (name \"x\") (names) (func \"m\" (for 0 2 0 3)))", // loop 0 undeclared
            "(program (seed notanumber))",
            "(program (name \"unterminated))",
        ] {
            let _ = parse_program(src);
        }
    }

    #[test]
    fn comments_and_whitespace_are_tolerated() {
        let prog = generate(5, &FuzzConfig::default());
        let text = print_program(&prog);
        let commented = format!("; corpus repro\n; seed 5\n{text}\n; trailing\n");
        let back = parse_program(&commented).unwrap();
        assert_eq!(format!("{:?}", prog.funcs), format!("{:?}", back.funcs));
    }
}
