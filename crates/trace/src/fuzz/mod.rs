//! Seeded MiniVM program fuzzing: generator, corpus format, minimizer.
//!
//! The differential oracle (the `dp-fuzz` crate) needs three things from
//! the trace layer, and they live here so any crate that can build a
//! [`Program`](crate::Program) can also generate, persist and shrink one:
//!
//! - [`gen`] — a *seeded, reproducible* random program generator. The same
//!   `(seed, FuzzConfig)` pair always yields the same program, so a failure
//!   reported by CI is reproducible from the seed in the log alone.
//!   Generated programs exercise the constructs hand-written workloads
//!   under-cover: deep loop nests, indirection `A[B[i]]`, reductions,
//!   conditional accesses, lock regions and fork-join thread sections.
//! - [`text`] — a printable/parsable corpus format. Failing programs are
//!   committed as *programs*, not as seeds, so a corpus repro keeps
//!   reproducing the original bug even after the generator itself evolves.
//! - [`minimize`] — a predicate-driven shrinker that reduces a failing
//!   program to a minimal statement count while the predicate (usually
//!   "the differential oracle still diverges") keeps holding.
//!
//! The generator's own randomness is a self-contained xorshift64* stream
//! ([`rng`]) — no external RNG crates, mirroring the fault-injection
//! harness in `dp-queue`.

pub mod gen;
pub mod minimize;
pub mod rng;
pub mod text;

pub use gen::{generate, is_mt, FuzzConfig};
pub use minimize::{minimize, stmt_count};
pub use rng::FuzzRng;
pub use text::{parse_program, print_program};
