//! Ergonomic construction of MiniVM programs.
//!
//! The builder plays the role of the compiler front-end: it assigns one
//! source line per statement (file 1, lines increasing in program order),
//! lays out globals in a flat simulated address space, interns variable
//! names, registers loop metadata (including the OpenMP ground truth used
//! by Table II), and stamps every traced load/store expression with its
//! statement's location — the information the paper's LLVM pass extracts
//! from debug metadata.

use crate::ir::{
    ArrayDecl, ArrayId, BinOp, Expr, FuncId, LocalId, LoopInfo, Program, ScalarDecl, ScalarId, Stmt,
};
use dp_types::{Address, Interner, LoopId, MutexId, SourceLoc};

/// Reserved local register: thread id inside a spawned function.
pub const LOCAL_TID: LocalId = 0;
/// Reserved local register: thread count inside a spawned function.
pub const LOCAL_NTHREADS: LocalId = 1;

const FILE: u8 = 1;
const ARRAY_GAP: u64 = 256; // bytes between array allocations

/// Builds a [`Program`].
pub struct ProgramBuilder {
    name: String,
    interner: Interner,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<ScalarDecl>,
    loops: Vec<LoopInfo>,
    funcs: Vec<Vec<Stmt>>,
    func_names: Vec<String>,
    nlocals: u32,
    nmutexes: u32,
    next_line: u32,
    next_addr: Address,
    seed: u64,
}

impl ProgramBuilder {
    /// Starts a program called `name`. The value-RNG seed is derived from
    /// the name, so workloads are fully deterministic.
    pub fn new(name: &str) -> Self {
        let seed = name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1_0000_01b3));
        ProgramBuilder {
            name: name.to_owned(),
            interner: Interner::new(),
            arrays: Vec::new(),
            scalars: Vec::new(),
            loops: Vec::new(),
            funcs: Vec::new(),
            func_names: Vec::new(),
            nlocals: 2, // LOCAL_TID, LOCAL_NTHREADS
            nmutexes: 0,
            next_line: 1,
            next_addr: 0x0010_0000,
            seed,
        }
    }

    /// Declares a global array of `len` 8-byte elements.
    pub fn array(&mut self, name: &str, len: u64) -> ArrayId {
        assert!(len > 0, "zero-length array {name}");
        let id = self.arrays.len() as ArrayId;
        let base = self.next_addr;
        self.next_addr += len * 8 + ARRAY_GAP;
        self.arrays.push(ArrayDecl { name: self.interner.intern(name), len, base });
        id
    }

    /// Declares an array that *reuses* the address range of `other`
    /// (models a fresh allocation landing on freed memory — the scenario
    /// variable-lifetime analysis exists for). `other` must be freed
    /// before this array is used.
    pub fn array_reusing(&mut self, name: &str, other: ArrayId) -> ArrayId {
        let old = &self.arrays[other as usize];
        let decl = ArrayDecl { name: self.interner.intern(name), len: old.len, base: old.base };
        let id = self.arrays.len() as ArrayId;
        self.arrays.push(decl);
        id
    }

    /// Declares a global scalar.
    pub fn scalar(&mut self, name: &str) -> ScalarId {
        let id = self.scalars.len() as ScalarId;
        let addr = self.next_addr;
        self.next_addr += 8;
        self.scalars.push(ScalarDecl { name: self.interner.intern(name), addr });
        id
    }

    /// Declares an explicit lock.
    pub fn mutex(&mut self) -> MutexId {
        let id = self.nmutexes;
        self.nmutexes += 1;
        id
    }

    /// Allocates a fresh local register.
    pub fn local(&mut self) -> LocalId {
        let id = self.nlocals;
        self.nlocals += 1;
        id
    }

    /// Defines a function; returns its id for [`FuncBuilder::call`] /
    /// [`FuncBuilder::spawn`].
    pub fn func(&mut self, build: impl FnOnce(&mut FuncBuilder<'_>)) -> FuncId {
        let name = format!("fn{}", self.funcs.len());
        self.named_func(&name, build)
    }

    /// Defines a function with an explicit name (shown in the call-tree
    /// representation).
    pub fn named_func(&mut self, name: &str, build: impl FnOnce(&mut FuncBuilder<'_>)) -> FuncId {
        let mut fb = FuncBuilder { pb: self, stmts: Vec::new() };
        build(&mut fb);
        let stmts = fb.stmts;
        let id = self.funcs.len() as FuncId;
        self.funcs.push(stmts);
        self.func_names.push(name.to_owned());
        id
    }

    /// Defines `main` and finishes the program. `main` must be the last
    /// function defined.
    pub fn main(mut self, build: impl FnOnce(&mut FuncBuilder<'_>)) -> Program {
        let entry = self.named_func("main", build);
        Program {
            name: self.name,
            funcs: self.funcs,
            func_names: self.func_names,
            entry,
            arrays: self.arrays,
            scalars: self.scalars,
            loops: self.loops,
            nlocals: self.nlocals,
            nmutexes: self.nmutexes,
            interner: self.interner,
            seed: self.seed,
        }
    }

    fn take_line(&mut self) -> u32 {
        let l = self.next_line;
        self.next_line += 1;
        l
    }
}

/// Statement-level builder for one function body (and, recursively, for
/// loop and branch bodies).
pub struct FuncBuilder<'b> {
    pb: &'b mut ProgramBuilder,
    stmts: Vec<Stmt>,
}

impl FuncBuilder<'_> {
    fn line(&mut self) -> SourceLoc {
        SourceLoc::new(FILE, self.pb.take_line())
    }

    /// `arr[idx] = val` (both expressions may contain traced loads; they
    /// are stamped with this statement's line).
    pub fn store(&mut self, arr: ArrayId, idx: Expr, val: Expr) {
        let l = self.line();
        self.stmts.push(Stmt::StoreArr(arr, stamp(idx, l), stamp(val, l), l));
    }

    /// `scalar = val`.
    pub fn store_scalar(&mut self, s: ScalarId, val: Expr) {
        let l = self.line();
        self.stmts.push(Stmt::StoreScalar(s, stamp(val, l), l));
    }

    /// `local = val` (untraced destination; loads inside `val` are traced).
    pub fn set_local(&mut self, lv: LocalId, val: Expr) {
        let l = self.line();
        self.stmts.push(Stmt::SetLocal(lv, stamp(val, l)));
    }

    /// A counted loop. `omp` records the ground-truth OpenMP annotation.
    /// The body closure receives the induction variable as an expression.
    pub fn for_loop(
        &mut self,
        name: &str,
        omp: bool,
        from: Expr,
        to: Expr,
        body: impl FnOnce(&mut FuncBuilder<'_>, Expr),
    ) -> LoopId {
        let begin = self.line();
        let var = self.pb.local();
        let loop_id = self.pb.loops.len() as LoopId;
        self.pb.loops.push(LoopInfo {
            id: loop_id,
            name: name.to_owned(),
            begin,
            end: begin, // patched below
            omp,
        });
        let saved = std::mem::take(&mut self.stmts);
        body(self, Expr::Local(var));
        let body_stmts = std::mem::replace(&mut self.stmts, saved);
        let end = self.line();
        self.pb.loops[loop_id as usize].end = end;
        self.stmts.push(Stmt::For {
            loop_id,
            var,
            from: stamp(from, begin),
            to: stamp(to, begin),
            body: body_stmts,
        });
        loop_id
    }

    /// Conditional. Loads in `cond` are stamped with the `if` line.
    pub fn if_(
        &mut self,
        cond: Expr,
        then_: impl FnOnce(&mut FuncBuilder<'_>),
        else_: impl FnOnce(&mut FuncBuilder<'_>),
    ) {
        let l = self.line();
        let saved = std::mem::take(&mut self.stmts);
        then_(self);
        let t = std::mem::take(&mut self.stmts);
        else_(self);
        let e = std::mem::replace(&mut self.stmts, saved);
        self.stmts.push(Stmt::If { cond: stamp(cond, l), then_: t, else_: e });
    }

    /// Calls a previously defined function.
    pub fn call(&mut self, f: FuncId) {
        self.pb.take_line();
        self.stmts.push(Stmt::Call(f));
    }

    /// Acquires an explicit lock.
    pub fn lock(&mut self, m: MutexId) {
        self.pb.take_line();
        self.stmts.push(Stmt::Lock(m));
    }

    /// Releases an explicit lock.
    pub fn unlock(&mut self, m: MutexId) {
        self.pb.take_line();
        self.stmts.push(Stmt::Unlock(m));
    }

    /// Barrier across the threads of the enclosing spawn.
    pub fn barrier(&mut self) {
        self.pb.take_line();
        self.stmts.push(Stmt::Barrier);
    }

    /// Fork-join parallel section (only valid in `main`).
    pub fn spawn(&mut self, nthreads: u32, func: FuncId) {
        self.pb.take_line();
        self.stmts.push(Stmt::Spawn { nthreads, func });
    }

    /// Frees an array (emits the lifetime event).
    pub fn free(&mut self, arr: ArrayId) {
        let l = self.line();
        self.stmts.push(Stmt::Free(arr, l));
    }

    /// Traced array load, for use inside expressions.
    pub fn ld(&self, arr: ArrayId, idx: Expr) -> Expr {
        Expr::LoadArr(arr, Box::new(idx), SourceLoc::new(FILE, 0))
    }

    /// Traced scalar load, for use inside expressions.
    pub fn lds(&self, s: ScalarId) -> Expr {
        Expr::LoadScalar(s, SourceLoc::new(FILE, 0))
    }

    /// Fresh local register (for temporaries).
    pub fn local(&mut self) -> LocalId {
        self.pb.local()
    }
}

/// Recursively stamps every traced load in `e` with location `l`.
fn stamp(e: Expr, l: SourceLoc) -> Expr {
    match e {
        Expr::LoadScalar(s, _) => Expr::LoadScalar(s, l),
        Expr::LoadArr(a, idx, _) => Expr::LoadArr(a, Box::new(stamp(*idx, l)), l),
        Expr::Bin(op, a, b) => Expr::Bin(op, Box::new(stamp(*a, l)), Box::new(stamp(*b, l))),
        Expr::Rand(b) => Expr::Rand(Box::new(stamp(*b, l))),
        other => other,
    }
}

/// Integer literal expression.
pub fn c(v: i64) -> Expr {
    Expr::Const(v)
}

/// Local-register read (use with ids from [`ProgramBuilder::local`] or the
/// reserved [`LOCAL_TID`]/[`LOCAL_NTHREADS`]).
pub fn lv(l: LocalId) -> Expr {
    Expr::Local(l)
}

/// The thread-id expression inside a spawned function.
pub fn tid() -> Expr {
    Expr::Local(LOCAL_TID)
}

/// The thread-count expression inside a spawned function.
pub fn nthreads() -> Expr {
    Expr::Local(LOCAL_NTHREADS)
}

/// Deterministic pseudo-random value in `[0, bound)`.
pub fn rnd(bound: Expr) -> Expr {
    Expr::Rand(Box::new(bound))
}

macro_rules! binop_fn {
    ($(#[$m:meta])* $name:ident, $op:ident) => {
        $(#[$m])*
        pub fn $name(a: Expr, b: Expr) -> Expr {
            Expr::Bin(BinOp::$op, Box::new(a), Box::new(b))
        }
    };
}

binop_fn!(
    /// Integer division (0 when dividing by zero).
    div, Div);
binop_fn!(
    /// Remainder (0 when dividing by zero).
    imod, Mod);
binop_fn!(
    /// Bitwise and.
    band, And);
binop_fn!(
    /// Bitwise xor.
    bxor, Xor);
binop_fn!(
    /// Logical shift right.
    shr, Shr);
binop_fn!(
    /// Shift left.
    shl, Shl);
binop_fn!(
    /// Minimum.
    emin, Min);
binop_fn!(
    /// Maximum.
    emax, Max);
binop_fn!(
    /// 1 if `a < b` else 0.
    lt, Lt);
binop_fn!(
    /// 1 if `a == b` else 0.
    eq, Eq);

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_sequential_and_loops_bracket_bodies() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 16);
        let p = b.main(|f| {
            f.store(a, c(0), c(1)); // line 1
            f.for_loop("l", true, c(0), c(4), |f, i| {
                // loop header line 2
                f.store(a, i.clone(), i); // line 3
            }); // end line 4
            f.store(a, c(1), c(2)); // line 5
        });
        assert_eq!(p.loops.len(), 1);
        assert_eq!(p.loops[0].begin.line, 2);
        assert_eq!(p.loops[0].end.line, 4);
        assert!(p.loops[0].omp);
        match &p.funcs[p.entry as usize][2] {
            Stmt::StoreArr(_, _, _, l) => assert_eq!(l.line, 5),
            s => panic!("unexpected stmt {s:?}"),
        }
    }

    #[test]
    fn loads_get_stamped_with_statement_line() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        let s = b.scalar("s");
        let p = b.main(|f| {
            let e = f.ld(a, f.lds(s));
            f.store_scalar(s, e); // line 1
        });
        match &p.funcs[p.entry as usize][0] {
            Stmt::StoreScalar(_, Expr::LoadArr(_, idx, l), sl) => {
                assert_eq!(l.line, 1);
                assert_eq!(sl.line, 1);
                match &**idx {
                    Expr::LoadScalar(_, il) => assert_eq!(il.line, 1),
                    e => panic!("{e:?}"),
                }
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn address_layout_disjoint() {
        let mut b = ProgramBuilder::new("t");
        let a1 = b.array("a1", 100);
        let a2 = b.array("a2", 50);
        let s = b.scalar("s");
        let p = b.main(|_| {});
        let a1d = &p.arrays[a1 as usize];
        let a2d = &p.arrays[a2 as usize];
        assert!(a1d.base + a1d.len * 8 <= a2d.base);
        assert!(a2d.base + a2d.len * 8 <= p.scalars[s as usize].addr);
        assert_eq!(p.address_footprint(), 151);
    }

    #[test]
    fn array_reusing_shares_base() {
        let mut b = ProgramBuilder::new("t");
        let a1 = b.array("a1", 10);
        let a2 = b.array_reusing("a2", a1);
        let p = b.main(|_| {});
        assert_eq!(p.arrays[a1 as usize].base, p.arrays[a2 as usize].base);
    }

    #[test]
    fn seed_depends_on_name() {
        let p1 = ProgramBuilder::new("a").main(|_| {});
        let p2 = ProgramBuilder::new("b").main(|_| {});
        assert_ne!(p1.seed, p2.seed);
    }
}
