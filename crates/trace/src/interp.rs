//! Sequential and multi-threaded MiniVM interpreters.
//!
//! Every executed load/store produces one [`TraceEvent::Access`] with a
//! globally increasing timestamp; loop headers/iterations/exits produce the
//! control-flow events; `free` produces lifetime events. Running with a
//! [`NullTracer`](crate::NullTracer) measures native (uninstrumented)
//! execution — the denominator of all slowdown figures.
//!
//! # Lock regions and the access/push atomicity (Figure 4)
//!
//! For multi-threaded targets the paper requires the memory access and its
//! `push` to be atomic: both must sit inside the same lock region,
//! otherwise a worker can observe accesses to one address out of temporal
//! order. The interpreter realizes this by calling
//! [`Tracer::sync_point`] immediately *before* releasing a target lock
//! (and at barriers and thread exit): a profiling tracer flushes its
//! pending chunks there, so events of properly locked accesses reach the
//! worker queues in lock order. Accesses *not* protected by locks get no
//! such flush — their events may arrive reversed, which is precisely the
//! timestamp-reversal signal the profiler reports as a potential data race
//! (Section V-B).
//!
//! VM memory is `AtomicI64` with relaxed ordering, so deliberately racy
//! target programs are well-defined for the host while still exhibiting
//! races at the target level.

use crate::ir::{ArrayId, BinOp, Expr, FuncId, Program, Stmt};
use crate::tracer::{Tracer, TracerFactory};
use dp_types::{MemAccess, ThreadId, TraceEvent};
use parking_lot::lock_api::RawMutex as _;
use parking_lot::RawMutex;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// An instantiated MiniVM: program plus memory, locks and the global
/// timestamp counter. Reusable across runs via [`Interp::reset`].
pub struct Interp<'p> {
    prog: &'p Program,
    arrays: Vec<Vec<AtomicI64>>,
    scalars: Vec<AtomicI64>,
    ts: AtomicU64,
    mutexes: Vec<RawMutex>,
}

struct Ctx<'t, T: Tracer> {
    tid: ThreadId,
    locals: Vec<i64>,
    rng: u64,
    tracer: &'t mut T,
    barrier: Option<Arc<Barrier>>,
}

impl<'p> Interp<'p> {
    /// Instantiates the program: allocates its arrays and scalars
    /// (zero-initialized).
    pub fn new(prog: &'p Program) -> Self {
        Interp {
            prog,
            arrays: prog
                .arrays
                .iter()
                .map(|a| (0..a.len).map(|_| AtomicI64::new(0)).collect())
                .collect(),
            scalars: prog.scalars.iter().map(|_| AtomicI64::new(0)).collect(),
            ts: AtomicU64::new(1),
            mutexes: (0..prog.nmutexes).map(|_| RawMutex::INIT).collect(),
        }
    }

    /// The program being interpreted.
    pub fn program(&self) -> &'p Program {
        self.prog
    }

    /// Zeroes memory and restarts the timestamp counter, so the same
    /// instance can host repeated measurement runs.
    pub fn reset(&mut self) {
        for a in &self.arrays {
            for c in a {
                c.store(0, Ordering::Relaxed);
            }
        }
        for s in &self.scalars {
            s.store(0, Ordering::Relaxed);
        }
        self.ts.store(1, Ordering::Relaxed);
    }

    /// Runs a program that must not contain `spawn`, delivering all events
    /// to `tracer` as target thread 0.
    ///
    /// # Panics
    /// On `spawn` statements — use [`Interp::run_mt`] for parallel targets.
    pub fn run_seq<T: Tracer>(&self, tracer: &mut T) {
        let mut ctx = Ctx {
            tid: 0,
            locals: vec![0i64; self.prog.nlocals as usize],
            rng: self.prog.seed | 1,
            tracer,
            barrier: None,
        };
        self.exec::<T, NoSpawn>(&mut ctx, &self.prog.funcs[self.prog.entry as usize], None);
        ctx.tracer.sync_point();
    }

    /// Runs a (possibly multi-threaded) program. The main function executes
    /// on the calling thread as target thread 0 with `factory.tracer(0)`;
    /// each `spawn(n, f)` forks target threads `1..=n`, each with its own
    /// tracer.
    pub fn run_mt<F: TracerFactory>(&self, factory: &F) {
        let mut tracer = factory.tracer(0);
        {
            let mut ctx = Ctx {
                tid: 0,
                locals: vec![0i64; self.prog.nlocals as usize],
                rng: self.prog.seed | 1,
                tracer: &mut tracer,
                barrier: None,
            };
            self.exec::<_, F>(&mut ctx, &self.prog.funcs[self.prog.entry as usize], Some(factory));
            ctx.tracer.sync_point();
        }
        factory.join(0, tracer);
    }

    #[inline]
    fn next_ts(&self) -> u64 {
        self.ts.fetch_add(1, Ordering::Relaxed)
    }

    fn exec<T: Tracer, F: TracerFactory>(
        &self,
        ctx: &mut Ctx<'_, T>,
        stmts: &[Stmt],
        factory: Option<&F>,
    ) {
        for stmt in stmts {
            match stmt {
                Stmt::StoreScalar(s, e, l) => {
                    let v = self.eval(ctx, e);
                    self.scalars[*s as usize].store(v, Ordering::Relaxed);
                    if ctx.tracer.enabled() {
                        let d = &self.prog.scalars[*s as usize];
                        let ev = MemAccess::write(d.addr, self.next_ts(), *l, d.name, ctx.tid);
                        ctx.tracer.event(TraceEvent::Access(ev));
                    }
                }
                Stmt::StoreArr(a, idx, val, l) => {
                    let arr = &self.arrays[*a as usize];
                    let i = (self.eval(ctx, idx) as u64 % arr.len() as u64) as usize;
                    let v = self.eval(ctx, val);
                    arr[i].store(v, Ordering::Relaxed);
                    if ctx.tracer.enabled() {
                        let d = &self.prog.arrays[*a as usize];
                        let ev = MemAccess::write(
                            d.base + i as u64 * 8,
                            self.next_ts(),
                            *l,
                            d.name,
                            ctx.tid,
                        );
                        ctx.tracer.event(TraceEvent::Access(ev));
                    }
                }
                Stmt::SetLocal(lv, e) => {
                    ctx.locals[*lv as usize] = self.eval(ctx, e);
                }
                Stmt::For { loop_id, var, from, to, body } => {
                    let lo = self.eval(ctx, from);
                    let hi = self.eval(ctx, to);
                    let info = &self.prog.loops[*loop_id as usize];
                    if ctx.tracer.enabled() {
                        ctx.tracer.event(TraceEvent::LoopBegin {
                            loop_id: *loop_id,
                            loc: info.begin,
                            thread: ctx.tid,
                            ts: self.next_ts(),
                        });
                    }
                    let mut iters = 0u64;
                    let mut i = lo;
                    while i < hi {
                        if ctx.tracer.enabled() {
                            ctx.tracer.event(TraceEvent::LoopIter {
                                loop_id: *loop_id,
                                iter: iters,
                                thread: ctx.tid,
                                ts: self.next_ts(),
                            });
                        }
                        ctx.locals[*var as usize] = i;
                        self.exec::<T, F>(ctx, body, factory);
                        iters += 1;
                        i += 1;
                    }
                    if ctx.tracer.enabled() {
                        ctx.tracer.event(TraceEvent::LoopEnd {
                            loop_id: *loop_id,
                            loc: info.end,
                            iters,
                            thread: ctx.tid,
                            ts: self.next_ts(),
                        });
                    }
                }
                Stmt::If { cond, then_, else_ } => {
                    if self.eval(ctx, cond) != 0 {
                        self.exec::<T, F>(ctx, then_, factory);
                    } else {
                        self.exec::<T, F>(ctx, else_, factory);
                    }
                }
                Stmt::Call(f) => {
                    if ctx.tracer.enabled() {
                        ctx.tracer.event(TraceEvent::CallBegin {
                            func: *f,
                            thread: ctx.tid,
                            ts: self.next_ts(),
                        });
                    }
                    self.exec::<T, F>(ctx, &self.prog.funcs[*f as usize], factory);
                    if ctx.tracer.enabled() {
                        ctx.tracer.event(TraceEvent::CallEnd {
                            func: *f,
                            thread: ctx.tid,
                            ts: self.next_ts(),
                        });
                    }
                }
                Stmt::Lock(m) => {
                    self.mutexes[*m as usize].lock();
                }
                Stmt::Unlock(m) => {
                    // Flush pending events while still holding the lock —
                    // this is the access/push atomicity of Figure 4.
                    ctx.tracer.sync_point();
                    unsafe { self.mutexes[*m as usize].unlock() };
                }
                Stmt::Barrier => {
                    ctx.tracer.sync_point();
                    if let Some(b) = &ctx.barrier {
                        b.wait();
                    }
                }
                Stmt::Spawn { nthreads, func } => {
                    let factory =
                        factory.expect("spawn encountered in a sequential run; use Interp::run_mt");
                    // Thread creation is a synchronization edge: everything
                    // the parent did happens-before the children start, so
                    // the parent's pending events must reach the workers
                    // first (same argument as the lock-region flush).
                    ctx.tracer.sync_point();
                    self.spawn_threads(*nthreads, *func, factory);
                    // Join is the mirror edge: children flushed at exit,
                    // nothing needed here beyond ordering of our own
                    // subsequent pushes, which FIFO provides.
                }
                Stmt::Free(a, l) => {
                    if ctx.tracer.enabled() {
                        let d = &self.prog.arrays[*a as usize];
                        ctx.tracer.event(TraceEvent::Dealloc {
                            base: d.base,
                            len: d.len,
                            thread: ctx.tid,
                            ts: self.next_ts(),
                        });
                        let _ = l;
                    }
                }
            }
        }
    }

    fn spawn_threads<F: TracerFactory>(&self, n: u32, func: FuncId, factory: &F) {
        let barrier = Arc::new(Barrier::new(n as usize));
        std::thread::scope(|scope| {
            for t in 1..=n {
                let barrier = barrier.clone();
                scope.spawn(move || {
                    let tid = t as ThreadId;
                    let mut tracer = factory.tracer(tid);
                    {
                        let mut locals = vec![0i64; self.prog.nlocals as usize];
                        locals[0] = (t - 1) as i64; // LOCAL_TID: 0-based rank
                        locals[1] = n as i64; // LOCAL_NTHREADS
                        let mut ctx = Ctx {
                            tid,
                            locals,
                            rng: (self.prog.seed ^ (t as u64).wrapping_mul(0x9e37_79b9)) | 1,
                            tracer: &mut tracer,
                            barrier: Some(barrier),
                        };
                        if ctx.tracer.enabled() {
                            ctx.tracer.event(TraceEvent::CallBegin {
                                func,
                                thread: tid,
                                ts: self.next_ts(),
                            });
                        }
                        self.exec::<_, F>(&mut ctx, &self.prog.funcs[func as usize], Some(factory));
                        if ctx.tracer.enabled() {
                            ctx.tracer.event(TraceEvent::CallEnd {
                                func,
                                thread: tid,
                                ts: self.next_ts(),
                            });
                        }
                        ctx.tracer.sync_point();
                    }
                    factory.join(tid, tracer);
                });
            }
        });
    }

    fn eval<T: Tracer>(&self, ctx: &mut Ctx<'_, T>, e: &Expr) -> i64 {
        match e {
            Expr::Const(v) => *v,
            Expr::Local(l) => ctx.locals[*l as usize],
            Expr::LoadScalar(s, l) => {
                let v = self.scalars[*s as usize].load(Ordering::Relaxed);
                if ctx.tracer.enabled() {
                    let d = &self.prog.scalars[*s as usize];
                    let ev = MemAccess::read(d.addr, self.next_ts(), *l, d.name, ctx.tid);
                    ctx.tracer.event(TraceEvent::Access(ev));
                }
                v
            }
            Expr::LoadArr(a, idx, l) => {
                let arr = &self.arrays[*a as usize];
                let i = (self.eval(ctx, idx) as u64 % arr.len() as u64) as usize;
                let v = arr[i].load(Ordering::Relaxed);
                if ctx.tracer.enabled() {
                    let d = &self.prog.arrays[*a as usize];
                    let ev =
                        MemAccess::read(d.base + i as u64 * 8, self.next_ts(), *l, d.name, ctx.tid);
                    ctx.tracer.event(TraceEvent::Access(ev));
                }
                v
            }
            Expr::Bin(op, a, b) => {
                let x = self.eval(ctx, a);
                let y = self.eval(ctx, b);
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_div(y)
                        }
                    }
                    BinOp::Mod => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                    BinOp::And => x & y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shr => ((x as u64) >> (y as u64 & 63)) as i64,
                    BinOp::Shl => ((x as u64) << (y as u64 & 63)) as i64,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    BinOp::Lt => (x < y) as i64,
                    BinOp::Eq => (x == y) as i64,
                }
            }
            Expr::Rand(bound) => {
                let b = self.eval(ctx, bound).max(1) as u64;
                ctx.rng =
                    ctx.rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((ctx.rng >> 33) % b) as i64
            }
        }
    }

    /// Final value of a scalar (test/diagnostic hook).
    pub fn scalar_value(&self, s: crate::ir::ScalarId) -> i64 {
        self.scalars[s as usize].load(Ordering::Relaxed)
    }

    /// Final value of an array element (test/diagnostic hook).
    pub fn array_value(&self, a: ArrayId, idx: usize) -> i64 {
        self.arrays[a as usize][idx].load(Ordering::Relaxed)
    }

    /// Bytes of simulated target memory (feeds the memory accounting as
    /// the workload's own footprint).
    pub fn memory_usage(&self) -> usize {
        self.arrays.iter().map(|a| a.len() * 8).sum::<usize>() + self.scalars.len() * 8
    }
}

/// Placeholder factory for sequential runs; its tracers are never created.
enum NoSpawn {}

impl TracerFactory for NoSpawn {
    type Tracer = crate::tracer::NullTracer;
    fn tracer(&self, _tid: ThreadId) -> Self::Tracer {
        unreachable!()
    }
    fn join(&self, _tid: ThreadId, _tracer: Self::Tracer) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{c, ProgramBuilder};
    use crate::tracer::{CollectTracer, NullTracer};
    use dp_types::AccessKind;

    #[test]
    fn arithmetic_and_memory() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        let s = b.scalar("s");
        let p = b.main(|f| {
            f.store(a, c(3), c(40) + c(2));
            let e = f.ld(a, c(3)) * c(2);
            f.store_scalar(s, e);
        });
        let vm = Interp::new(&p);
        vm.run_seq(&mut NullTracer);
        assert_eq!(vm.array_value(a, 3), 42);
        assert_eq!(vm.scalar_value(s), 84);
    }

    #[test]
    fn event_stream_contents() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        let p = b.main(|f| {
            f.for_loop("l", false, c(0), c(3), |f, i| {
                let prev = f.ld(a, i.clone());
                f.store(a, i, prev + c(1));
            });
        });
        let vm = Interp::new(&p);
        let mut t = CollectTracer::new();
        vm.run_seq(&mut t);
        // Per iteration: LoopIter + 1 read + 1 write; plus LoopBegin/End.
        let accesses: Vec<_> = t.events.iter().filter_map(|e| e.as_access()).collect();
        assert_eq!(accesses.len(), 6);
        assert_eq!(accesses[0].kind, AccessKind::Read);
        assert_eq!(accesses[1].kind, AccessKind::Write);
        assert_eq!(accesses[0].addr, accesses[1].addr);
        let iters: Vec<_> =
            t.events.iter().filter(|e| matches!(e, TraceEvent::LoopIter { .. })).collect();
        assert_eq!(iters.len(), 3);
        assert!(matches!(t.events.first(), Some(TraceEvent::LoopBegin { .. })));
        assert!(matches!(t.events.last(), Some(TraceEvent::LoopEnd { iters: 3, .. })));
    }

    #[test]
    fn timestamps_strictly_increase_sequentially() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 16);
        let p = b.main(|f| {
            f.for_loop("l", false, c(0), c(16), |f, i| {
                f.store(a, i.clone(), i);
            });
        });
        let vm = Interp::new(&p);
        let mut t = CollectTracer::new();
        vm.run_seq(&mut t);
        let ts: Vec<_> = t.events.iter().map(|e| e.ts()).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn null_tracer_runs_without_timestamps() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        let p = b.main(|f| f.store(a, c(0), c(1)));
        let vm = Interp::new(&p);
        vm.run_seq(&mut NullTracer);
        // Timestamp counter untouched (still at initial 1).
        assert_eq!(vm.ts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reset_allows_rerun() {
        let mut b = ProgramBuilder::new("t");
        let s = b.scalar("s");
        let p = b.main(|f| {
            let e = f.lds(s) + c(1);
            f.store_scalar(s, e);
        });
        let mut vm = Interp::new(&p);
        vm.run_seq(&mut NullTracer);
        vm.run_seq(&mut NullTracer);
        assert_eq!(vm.scalar_value(s), 2);
        vm.reset();
        vm.run_seq(&mut NullTracer);
        assert_eq!(vm.scalar_value(s), 1);
    }

    #[test]
    fn deterministic_rand() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 64);
        let p = b.main(|f| {
            f.for_loop("l", false, c(0), c(10), |f, i| {
                f.store(a, crate::builder::rnd(c(64)), i);
            });
        });
        let vm1 = Interp::new(&p);
        let mut t1 = CollectTracer::new();
        vm1.run_seq(&mut t1);
        let vm2 = Interp::new(&p);
        let mut t2 = CollectTracer::new();
        vm2.run_seq(&mut t2);
        let a1: Vec<_> = t1.events.iter().filter_map(|e| e.as_access()).map(|a| a.addr).collect();
        let a2: Vec<_> = t2.events.iter().filter_map(|e| e.as_access()).map(|a| a.addr).collect();
        assert_eq!(a1, a2);
    }

    #[test]
    fn mt_run_produces_per_thread_events() {
        use parking_lot::Mutex;
        #[derive(Default)]
        struct F {
            all: Mutex<Vec<TraceEvent>>,
        }
        impl TracerFactory for F {
            type Tracer = CollectTracer;
            fn tracer(&self, _tid: ThreadId) -> CollectTracer {
                CollectTracer::new()
            }
            fn join(&self, _tid: ThreadId, t: CollectTracer) {
                self.all.lock().extend(t.events);
            }
        }

        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 64);
        let worker = b.func(|f| {
            // each thread writes its own 16-element stripe
            let base = crate::builder::tid() * c(16);
            f.for_loop("w", true, c(0), c(16), |f, i| {
                f.store(a, base.clone() + i.clone(), i);
            });
        });
        let p = b.main(|f| {
            f.spawn(4, worker);
        });
        let vm = Interp::new(&p);
        let fac = F::default();
        vm.run_mt(&fac);
        let all = fac.all.into_inner();
        let accesses: Vec<_> = all.iter().filter_map(|e| e.as_access()).collect();
        assert_eq!(accesses.len(), 64);
        let mut tids: Vec<_> = accesses.iter().map(|a| a.thread).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids, vec![1, 2, 3, 4]);
        // disjoint stripes: every address written exactly once
        let mut addrs: Vec<_> = accesses.iter().map(|a| a.addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 64);
    }

    #[test]
    #[should_panic(expected = "sequential run")]
    fn spawn_in_seq_run_panics() {
        let mut b = ProgramBuilder::new("t");
        let w = b.func(|_| {});
        let p = b.main(|f| f.spawn(2, w));
        let vm = Interp::new(&p);
        vm.run_seq(&mut NullTracer);
    }

    #[test]
    fn free_emits_dealloc() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        let p = b.main(|f| {
            f.store(a, c(0), c(1));
            f.free(a);
        });
        let vm = Interp::new(&p);
        let mut t = CollectTracer::new();
        vm.run_seq(&mut t);
        assert!(t.events.iter().any(|e| matches!(e, TraceEvent::Dealloc { len: 8, .. })));
    }
}
