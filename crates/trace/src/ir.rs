//! The MiniVM program representation.
//!
//! Programs operate on 64-bit integer values in three storage classes:
//!
//! - **locals** — per-thread registers (loop counters, temporaries, the
//!   thread id). Like LLVM virtual registers, locals are *not* memory and
//!   are never instrumented.
//! - **scalars** — global variables with addresses; every access is traced.
//! - **arrays** — global arrays with contiguous 8-byte-element address
//!   ranges; every element access is traced, and indices are arbitrary
//!   expressions (including loads — `A[B[i]]` — the dynamically calculated
//!   indices static analysis cannot resolve, per the paper's motivation).
//!
//! Loops carry static metadata including the OpenMP ground-truth
//! annotation used by the Table II experiment.

use dp_types::{Address, Interner, LoopId, MutexId, SourceLoc, VarId};

/// Index of a global array.
pub type ArrayId = u32;
/// Index of a global scalar.
pub type ScalarId = u32;
/// Index of a per-thread local register.
pub type LocalId = u32;
/// Index of a function.
pub type FuncId = u32;

/// Binary operators (integer semantics; `Div`/`Mod` by zero yield 0 so
/// workloads never fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (0 on division by zero).
    Div,
    /// Remainder (0 on division by zero).
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise xor.
    Xor,
    /// Logical shift right (of the low 6 bits of the rhs).
    Shr,
    /// Shift left (of the low 6 bits of the rhs).
    Shl,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// 1 if lhs < rhs else 0.
    Lt,
    /// 1 if lhs == rhs else 0.
    Eq,
}

/// An expression. Loads are instrumented; everything else is register
/// arithmetic.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Read of a per-thread local register (not instrumented).
    Local(LocalId),
    /// Traced load of a global scalar. The location is stamped by the
    /// builder with the enclosing statement's line.
    LoadScalar(ScalarId, SourceLoc),
    /// Traced load of an array element.
    LoadArr(ArrayId, Box<Expr>, SourceLoc),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Deterministic pseudo-random value in `[0, bound)` (per-thread LCG;
    /// used by workloads that need data-dependent access patterns).
    Rand(Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Traced store to a global scalar.
    StoreScalar(ScalarId, Expr, SourceLoc),
    /// Traced store to an array element: `arr[idx] = val`.
    StoreArr(ArrayId, Expr, Expr, SourceLoc),
    /// Untraced write to a local register.
    SetLocal(LocalId, Expr),
    /// Counted loop: `for var in from..to { body }`, with static loop
    /// metadata in [`Program::loops`].
    For {
        /// Static loop id (indexes [`Program::loops`]).
        loop_id: LoopId,
        /// Local register holding the induction variable.
        var: LocalId,
        /// Inclusive lower bound.
        from: Expr,
        /// Exclusive upper bound.
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Two-armed conditional (`cond != 0`).
    If {
        /// Condition.
        cond: Expr,
        /// Taken when `cond != 0`.
        then_: Vec<Stmt>,
        /// Taken when `cond == 0`.
        else_: Vec<Stmt>,
    },
    /// Call a function (no arguments; communication is through globals and
    /// the locals the caller set).
    Call(FuncId),
    /// Acquire an explicit target-program lock (Section V-A: the profiler
    /// supports languages with explicit locking primitives).
    Lock(MutexId),
    /// Release an explicit lock.
    Unlock(MutexId),
    /// Synchronize all threads of the enclosing `spawn`.
    Barrier,
    /// Fork-join parallel section: run `func` on `nthreads` threads.
    /// Inside `func`, local 0 holds the thread id and local 1 the thread
    /// count. Only valid in the main function, not nested.
    Spawn {
        /// Number of target threads to fork.
        nthreads: u32,
        /// Function each thread executes.
        func: FuncId,
    },
    /// Deallocate an array: emits the `Dealloc` event that drives the
    /// variable-lifetime analysis (Section III-B). The array must not be
    /// accessed afterwards (debug-asserted by the interpreter).
    Free(ArrayId, SourceLoc),
}

/// Static description of one loop.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop id (== its index in [`Program::loops`]).
    pub id: LoopId,
    /// Human-readable name (for Table II rows).
    pub name: String,
    /// Source line of the loop header (the `BGN loop` line).
    pub begin: SourceLoc,
    /// Source line of the loop exit (the `END loop` line).
    pub end: SourceLoc,
    /// Ground truth: is this loop annotated parallel in the (conceptual)
    /// OpenMP version of the benchmark? Drives the `# OMP` column of
    /// Table II.
    pub omp: bool,
}

impl LoopInfo {
    /// True if `l` lies within the loop's body lines (inclusive).
    pub fn contains_line(&self, l: SourceLoc) -> bool {
        l.file == self.begin.file && l.line >= self.begin.line && l.line <= self.end.line
    }
}

/// Static description of one global array.
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Interned name.
    pub name: VarId,
    /// Element count (8-byte elements).
    pub len: u64,
    /// Base address in the simulated flat address space.
    pub base: Address,
}

/// Static description of one global scalar.
#[derive(Debug, Clone)]
pub struct ScalarDecl {
    /// Interned name.
    pub name: VarId,
    /// Address in the simulated flat address space.
    pub addr: Address,
}

/// A complete MiniVM program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name (reports, Table rows).
    pub name: String,
    /// Function bodies; `funcs[entry]` is `main`.
    pub funcs: Vec<Vec<Stmt>>,
    /// Human-readable function names, parallel to `funcs`.
    pub func_names: Vec<String>,
    /// Entry function.
    pub entry: FuncId,
    /// Global arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Global scalars.
    pub scalars: Vec<ScalarDecl>,
    /// Static loop table.
    pub loops: Vec<LoopInfo>,
    /// Per-thread register file size.
    pub nlocals: u32,
    /// Number of explicit locks.
    pub nmutexes: u32,
    /// Interned variable names.
    pub interner: Interner,
    /// Deterministic seed for the per-thread value RNGs.
    pub seed: u64,
}

impl Program {
    /// Total number of distinct addresses the program can touch (array
    /// elements plus scalars) — the `n` of Formula 2.
    pub fn address_footprint(&self) -> u64 {
        self.arrays.iter().map(|a| a.len).sum::<u64>() + self.scalars.len() as u64
    }

    /// The address of `arr[idx]`.
    #[inline]
    pub fn elem_addr(&self, arr: ArrayId, idx: u64) -> Address {
        let a = &self.arrays[arr as usize];
        debug_assert!(idx < a.len);
        a.base + idx * 8
    }

    /// Loops annotated parallel in the OpenMP ground truth.
    pub fn omp_loops(&self) -> impl Iterator<Item = &LoopInfo> {
        self.loops.iter().filter(|l| l.omp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;

    #[test]
    fn loop_contains_line() {
        let li =
            LoopInfo { id: 0, name: "l".into(), begin: loc(1, 10), end: loc(1, 20), omp: false };
        assert!(li.contains_line(loc(1, 10)));
        assert!(li.contains_line(loc(1, 15)));
        assert!(li.contains_line(loc(1, 20)));
        assert!(!li.contains_line(loc(1, 21)));
        assert!(!li.contains_line(loc(2, 15)));
    }
}
