//! Tracers: where instrumentation events go.
//!
//! The [`Tracer`]/[`TracerFactory`] traits live in `dp-types` (shared
//! vocabulary); this module re-exports them and provides the two
//! front-end-side implementations: [`NullTracer`] (uninstrumented
//! baseline) and [`CollectTracer`] (buffering, for tests and for feeding
//! one recorded stream to several engines).

pub use dp_types::{Tracer, TracerFactory};

use dp_types::TraceEvent;

/// Discards everything; `enabled() == false`. Running the interpreter with
/// this tracer measures native (uninstrumented) execution time.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn event(&mut self, _ev: TraceEvent) {}
}

/// Buffers every event in order — handy for tests and for feeding the same
/// stream to several engines (accuracy comparisons).
#[derive(Debug, Default)]
pub struct CollectTracer {
    /// The collected events.
    pub events: Vec<TraceEvent>,
}

impl CollectTracer {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Tracer for CollectTracer {
    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// Factory of [`NullTracer`]s: the uninstrumented baseline for
/// multi-threaded runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullFactory;

impl TracerFactory for NullFactory {
    type Tracer = NullTracer;

    fn tracer(&self, _tid: dp_types::ThreadId) -> NullTracer {
        NullTracer
    }

    fn join(&self, _tid: dp_types::ThreadId, _tracer: NullTracer) {}
}

/// Factory that collects every thread's events into one shared vector
/// (test helper; ordering across threads is arrival order).
#[derive(Debug, Default)]
pub struct CollectFactory {
    /// All events from all joined threads.
    pub events: parking_lot::Mutex<Vec<TraceEvent>>,
}

impl TracerFactory for CollectFactory {
    type Tracer = CollectTracer;

    fn tracer(&self, _tid: dp_types::ThreadId) -> CollectTracer {
        CollectTracer::new()
    }

    fn join(&self, _tid: dp_types::ThreadId, tracer: CollectTracer) {
        self.events.lock().extend(tracer.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::{loc::loc, MemAccess};

    #[test]
    fn null_is_disabled() {
        assert!(!NullTracer.enabled());
    }

    #[test]
    fn collect_keeps_order() {
        let mut c = CollectTracer::new();
        for i in 0..5u64 {
            c.event(TraceEvent::Access(MemAccess::read(i, i, loc(1, 1), 0, 0)));
        }
        assert_eq!(c.events.len(), 5);
        assert_eq!(c.events[3].ts(), 3);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = CollectTracer::new();
        {
            let r: &mut CollectTracer = &mut c;
            assert!(r.enabled());
            r.event(TraceEvent::Access(MemAccess::write(1, 1, loc(1, 2), 0, 0)));
            r.sync_point();
        }
        assert_eq!(c.events.len(), 1);
    }
}
