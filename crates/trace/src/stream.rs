//! Bridging a recorded event stream onto the DPSV wire: batches
//! consecutive accesses into `Chunk` frames and passes control-flow
//! events through in order.
//!
//! This is what lets `depprof push` replay any recorded `.dptr` file
//! over the network: the trace reader yields [`TraceEvent`]s one at a
//! time, and the chunker turns them into the protocol's frame stream —
//! access-dense regions become large `Chunk` frames (amortizing the
//! 6-byte frame overhead over hundreds of accesses), while loop, call
//! and dealloc events flush the pending chunk first so the server feeds
//! its engine in exactly the recorded order.

use dp_types::protocol::Frame;
use dp_types::{MemAccess, TraceEvent};

/// Batches [`TraceEvent`]s into DPSV frames, preserving event order.
#[derive(Debug)]
pub struct FrameChunker {
    pending: Vec<MemAccess>,
    capacity: usize,
}

impl FrameChunker {
    /// A chunker emitting `Chunk` frames of at most `chunk_events`
    /// accesses (minimum 1).
    pub fn new(chunk_events: usize) -> Self {
        let capacity = chunk_events.max(1);
        FrameChunker { pending: Vec::with_capacity(capacity), capacity }
    }

    /// Accepts one event. Returns the frames that became ready: zero or
    /// one `Chunk` flush, followed by the event's own frame when it is
    /// not an access.
    pub fn push(&mut self, ev: TraceEvent) -> Vec<Frame> {
        match ev {
            TraceEvent::Access(a) => {
                self.pending.push(a);
                if self.pending.len() >= self.capacity {
                    vec![self.take_chunk().expect("pending chunk is non-empty")]
                } else {
                    Vec::new()
                }
            }
            other => {
                let mut out = Vec::with_capacity(2);
                if let Some(chunk) = self.take_chunk() {
                    out.push(chunk);
                }
                out.push(Frame::LoopEvent(other));
                out
            }
        }
    }

    /// Flushes any buffered accesses (call at end of stream, or before a
    /// `Sync`/`Finish`).
    pub fn flush(&mut self) -> Option<Frame> {
        self.take_chunk()
    }

    /// Accesses currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    fn take_chunk(&mut self) -> Option<Frame> {
        if self.pending.is_empty() {
            None
        } else {
            Some(Frame::Chunk(std::mem::take(&mut self.pending)))
        }
    }
}

/// Unpacks one incoming frame back into the events it carries (the
/// server-side inverse of [`FrameChunker`]). Non-event frames yield an
/// empty vector.
pub fn frame_events(frame: Frame) -> Vec<TraceEvent> {
    match frame {
        Frame::Chunk(accesses) => accesses.into_iter().map(TraceEvent::Access).collect(),
        Frame::LoopEvent(ev) => vec![ev],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;

    fn acc(i: u64) -> TraceEvent {
        TraceEvent::Access(MemAccess::read(0x100 + i * 8, i + 1, loc(1, 1), 0, 0))
    }

    #[test]
    fn chunker_preserves_order_and_batches() {
        let evs: Vec<TraceEvent> = vec![
            acc(0),
            acc(1),
            TraceEvent::LoopBegin { loop_id: 1, loc: loc(1, 5), thread: 0, ts: 10 },
            acc(2),
            acc(3),
            acc(4),
            TraceEvent::LoopEnd { loop_id: 1, loc: loc(1, 9), iters: 1, thread: 0, ts: 20 },
            acc(5),
        ];
        let mut chunker = FrameChunker::new(2);
        let mut frames = Vec::new();
        for ev in evs.clone() {
            frames.extend(chunker.push(ev));
        }
        frames.extend(chunker.flush());
        // Chunks never exceed the capacity, and a control event always
        // flushes the pending chunk ahead of itself.
        for f in &frames {
            if let Frame::Chunk(c) = f {
                assert!(!c.is_empty() && c.len() <= 2);
            }
        }
        let roundtrip: Vec<TraceEvent> = frames.into_iter().flat_map(frame_events).collect();
        assert_eq!(roundtrip, evs, "order preserved exactly");
    }

    #[test]
    fn flush_on_empty_is_none() {
        let mut chunker = FrameChunker::new(8);
        assert!(chunker.flush().is_none());
        assert_eq!(chunker.pending(), 0);
        chunker.push(acc(0));
        assert_eq!(chunker.pending(), 1);
        assert!(chunker.flush().is_some());
        assert!(chunker.flush().is_none());
    }
}
