//! Bridging a recorded event stream onto the DPSV wire: batches
//! consecutive accesses into `Chunk` frames and passes control-flow
//! events through in order.
//!
//! This is what lets `depprof push` replay any recorded `.dptr` file
//! over the network: the trace reader yields [`TraceEvent`]s one at a
//! time, and the chunker turns them into the protocol's frame stream —
//! access-dense regions become large `Chunk` frames (amortizing the
//! 6-byte frame overhead over hundreds of accesses), while loop, call
//! and dealloc events flush the pending chunk first so the server feeds
//! its engine in exactly the recorded order.
//!
//! Every emitted frame is *positional*: `Chunk` frames carry the
//! absolute stream index of their first access and `LoopEvent` frames
//! their own index, counted from the chunker's base. A resuming client
//! constructs the chunker [`with_base`](FrameChunker::with_base) at the
//! server's `resume_from` watermark and the positions line up exactly.

use dp_types::protocol::Frame;
use dp_types::{MemAccess, TraceEvent};

/// Batches [`TraceEvent`]s into DPSV frames, preserving event order.
#[derive(Debug)]
pub struct FrameChunker {
    pending: Vec<MemAccess>,
    capacity: usize,
    /// Absolute index of the next event pushed.
    pos: u64,
    /// Absolute index of `pending[0]` (valid while `pending` is non-empty).
    chunk_base: u64,
}

impl FrameChunker {
    /// A chunker emitting `Chunk` frames of at most `chunk_events`
    /// accesses (minimum 1), positions counted from 0.
    pub fn new(chunk_events: usize) -> Self {
        Self::with_base(chunk_events, 0)
    }

    /// A chunker whose first event has absolute stream index `base` —
    /// what a resumed push uses so its frames carry the positions the
    /// server expects after `HelloAck.resume_from`.
    pub fn with_base(chunk_events: usize, base: u64) -> Self {
        let capacity = chunk_events.max(1);
        FrameChunker {
            pending: Vec::with_capacity(capacity),
            capacity,
            pos: base,
            chunk_base: base,
        }
    }

    /// Absolute index the next pushed event will occupy.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Accepts one event. Returns the frames that became ready: zero or
    /// one `Chunk` flush, followed by the event's own frame when it is
    /// not an access.
    pub fn push(&mut self, ev: TraceEvent) -> Vec<Frame> {
        match ev {
            TraceEvent::Access(a) => {
                if self.pending.is_empty() {
                    self.chunk_base = self.pos;
                }
                self.pending.push(a);
                self.pos += 1;
                if self.pending.len() >= self.capacity {
                    vec![self.take_chunk().expect("pending chunk is non-empty")]
                } else {
                    Vec::new()
                }
            }
            other => {
                let mut out = Vec::with_capacity(2);
                if let Some(chunk) = self.take_chunk() {
                    out.push(chunk);
                }
                out.push(Frame::LoopEvent { seq: self.pos, ev: other });
                self.pos += 1;
                out
            }
        }
    }

    /// Flushes any buffered accesses (call at end of stream, or before a
    /// `Sync`/`Finish`).
    pub fn flush(&mut self) -> Option<Frame> {
        self.take_chunk()
    }

    /// Accesses currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    fn take_chunk(&mut self) -> Option<Frame> {
        if self.pending.is_empty() {
            None
        } else {
            Some(Frame::Chunk {
                base: self.chunk_base,
                accesses: std::mem::take(&mut self.pending),
            })
        }
    }
}

/// Unpacks one incoming frame back into the events it carries (the
/// server-side inverse of [`FrameChunker`]), dropping the positions.
/// Non-event frames yield an empty vector.
pub fn frame_events(frame: Frame) -> Vec<TraceEvent> {
    match frame {
        Frame::Chunk { accesses, .. } => accesses.into_iter().map(TraceEvent::Access).collect(),
        Frame::LoopEvent { ev, .. } => vec![ev],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;

    fn acc(i: u64) -> TraceEvent {
        TraceEvent::Access(MemAccess::read(0x100 + i * 8, i + 1, loc(1, 1), 0, 0))
    }

    #[test]
    fn chunker_preserves_order_and_batches() {
        let evs: Vec<TraceEvent> = vec![
            acc(0),
            acc(1),
            TraceEvent::LoopBegin { loop_id: 1, loc: loc(1, 5), thread: 0, ts: 10 },
            acc(2),
            acc(3),
            acc(4),
            TraceEvent::LoopEnd { loop_id: 1, loc: loc(1, 9), iters: 1, thread: 0, ts: 20 },
            acc(5),
        ];
        let mut chunker = FrameChunker::new(2);
        let mut frames = Vec::new();
        for ev in evs.clone() {
            frames.extend(chunker.push(ev));
        }
        frames.extend(chunker.flush());
        // Chunks never exceed the capacity, and a control event always
        // flushes the pending chunk ahead of itself.
        for f in &frames {
            if let Frame::Chunk { accesses, .. } = f {
                assert!(!accesses.is_empty() && accesses.len() <= 2);
            }
        }
        let roundtrip: Vec<TraceEvent> = frames.into_iter().flat_map(frame_events).collect();
        assert_eq!(roundtrip, evs, "order preserved exactly");
        assert_eq!(chunker.position(), evs.len() as u64);
    }

    #[test]
    fn frames_carry_contiguous_positions() {
        let evs: Vec<TraceEvent> = vec![
            acc(0),
            TraceEvent::LoopBegin { loop_id: 1, loc: loc(1, 5), thread: 0, ts: 10 },
            acc(1),
            acc(2),
            acc(3),
        ];
        for base in [0u64, 17] {
            let mut chunker = FrameChunker::with_base(2, base);
            let mut frames = Vec::new();
            for ev in evs.clone() {
                frames.extend(chunker.push(ev));
            }
            frames.extend(chunker.flush());
            // Walk the frames: every frame's position must equal the
            // running event count — no gaps, no overlap.
            let mut next = base;
            for f in frames {
                match f {
                    Frame::Chunk { base: b, accesses } => {
                        assert_eq!(b, next, "chunk base");
                        next += accesses.len() as u64;
                    }
                    Frame::LoopEvent { seq, .. } => {
                        assert_eq!(seq, next, "loop event seq");
                        next += 1;
                    }
                    other => panic!("unexpected frame {other:?}"),
                }
            }
            assert_eq!(next, base + evs.len() as u64);
        }
    }

    #[test]
    fn flush_on_empty_is_none() {
        let mut chunker = FrameChunker::new(8);
        assert!(chunker.flush().is_none());
        assert_eq!(chunker.pending(), 0);
        chunker.push(acc(0));
        assert_eq!(chunker.pending(), 1);
        assert!(chunker.flush().is_some());
        assert!(chunker.flush().is_none());
    }
}
