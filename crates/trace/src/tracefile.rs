//! Binary trace recording and replay.
//!
//! The paper's toolchain separates instrumentation from analysis: the
//! instrumented run can write its event stream to disk and analyses run
//! offline (and repeatedly — e.g. one recording feeding the accuracy
//! comparison of Table I at several signature sizes without re-executing
//! the program). [`TraceWriter`] is a [`Tracer`] that streams events to
//! any `Write` sink in a compact fixed-width binary format;
//! [`TraceReader`] replays them as an iterator.
//!
//! Format (little-endian): magic `DPTR`, a version byte, a variable-name
//! table (so replayed reports resolve names without the original
//! program), then one record per event: a tag byte, the fixed-width
//! fields of that variant, and a checksum byte (XOR of tag and fields).
//! Accesses — the overwhelming majority — encode in 28 bytes.
//!
//! The reader fails typed, not loose: [`TraceFileError`] distinguishes a
//! file that isn't a trace, an unsupported version, a corrupted record
//! (checksum mismatch, with its byte offset), an unknown tag, and — the
//! case that matters for crashed recordings — a *torn final record*
//! (EOF mid-record) from a clean EOF at a record boundary.

use crate::tracer::Tracer;
use dp_types::{AccessKind, Interner, MemAccess, SourceLoc, TraceEvent};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Read, Write};

const MAGIC: &[u8; 4] = b"DPTR";
const VERSION: u8 = 2;

const TAG_READ: u8 = 0;
const TAG_WRITE: u8 = 1;
const TAG_LOOP_BEGIN: u8 = 2;
const TAG_LOOP_ITER: u8 = 3;
const TAG_LOOP_END: u8 = 4;
const TAG_CALL_BEGIN: u8 = 5;
const TAG_CALL_END: u8 = 6;
const TAG_DEALLOC: u8 = 7;

/// Payload size (fields only, excluding tag and checksum) of each record
/// kind; `None` for tags the format does not define.
fn payload_len(tag: u8) -> Option<usize> {
    Some(match tag {
        TAG_READ | TAG_WRITE => 8 + 8 + 4 + 4 + 2,
        TAG_LOOP_BEGIN => 4 + 4 + 2 + 8,
        TAG_LOOP_ITER => 4 + 8 + 2 + 8,
        TAG_LOOP_END => 4 + 4 + 8 + 2 + 8,
        TAG_CALL_BEGIN | TAG_CALL_END => 4 + 2 + 8,
        TAG_DEALLOC => 8 + 8 + 2 + 8,
        _ => return None,
    })
}

const MAX_PAYLOAD: usize = 26;

// The per-record checksum is the same XOR fold the checkpoint container
// uses (one shared definition in `dp_types::wire`), so a trace record
// and a checkpoint section corrupt and verify identically.
use dp_types::wire::xor_fold;

/// Why a trace file could not be read.
///
/// Replay is an offline workflow on files that may have been produced by
/// a run that crashed mid-recording, copied over a flaky link, or handed
/// in by mistake; each of those deserves a distinct, reportable error
/// rather than a generic `InvalidData`.
#[derive(Debug)]
pub enum TraceFileError {
    /// The underlying reader failed (not an EOF classified below).
    Io(io::Error),
    /// The file does not start with the `DPTR` magic (or is shorter than
    /// a header) — it is not a depprof trace at all.
    NotATrace,
    /// The file is a depprof trace of a format version this build does
    /// not understand.
    UnsupportedVersion(u8),
    /// The variable-name table in the header is malformed.
    BadNameTable(&'static str),
    /// A record starts with a tag byte the format does not define; the
    /// offset is where the record starts.
    UnknownTag {
        /// The undefined tag byte.
        tag: u8,
        /// Byte offset of the record.
        offset: u64,
    },
    /// A record's checksum byte does not match its contents — the file
    /// was corrupted in place; the offset is where the record starts.
    Checksum {
        /// Byte offset of the record.
        offset: u64,
        /// Records that replayed cleanly before the corrupt one — the
        /// salvageable prefix a caller can keep.
        records_read: u64,
    },
    /// The file ends in the middle of a record — the recording was cut
    /// off (crash, full disk, truncated copy). Everything before the
    /// offset replayed cleanly.
    TornRecord {
        /// Byte offset of the incomplete final record.
        offset: u64,
        /// Records that replayed cleanly before the tear — the
        /// salvageable prefix a caller can keep.
        records_read: u64,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceFileError::NotATrace => write!(f, "not a depprof trace (bad magic)"),
            TraceFileError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v} (this build reads version {VERSION})")
            }
            TraceFileError::BadNameTable(why) => write!(f, "bad variable-name table: {why}"),
            TraceFileError::UnknownTag { tag, offset } => {
                write!(f, "unknown event tag {tag} at byte {offset}")
            }
            TraceFileError::Checksum { offset, records_read } => {
                write!(
                    f,
                    "checksum mismatch in record at byte {offset} (corrupted trace; \
                     {records_read} records read cleanly before it)"
                )
            }
            TraceFileError::TornRecord { offset, records_read } => {
                write!(
                    f,
                    "trace ends mid-record at byte {offset} (truncated recording; \
                     {records_read} records read cleanly before it)"
                )
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Streams trace events to a byte sink.
pub struct TraceWriter<W: Write> {
    out: BufWriter<W>,
    rec: Vec<u8>,
    events: u64,
    error: Option<io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer with no variable-name table (names resolve to
    /// ids on replay).
    pub fn new(sink: W) -> io::Result<Self> {
        Self::with_names(sink, &Interner::new())
    }

    /// Creates a writer, embedding the interner's variable names so
    /// replayed reports are fully resolved.
    pub fn with_names(sink: W, interner: &Interner) -> io::Result<Self> {
        let mut out = BufWriter::new(sink);
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION])?;
        let n = interner.len() as u32;
        out.write_all(&n.to_le_bytes())?;
        for id in 0..n {
            let name = interner.resolve(id).as_bytes();
            out.write_all(&(name.len() as u32).to_le_bytes())?;
            out.write_all(name)?;
        }
        Ok(TraceWriter { out, rec: Vec::with_capacity(1 + MAX_PAYLOAD), events: 0, error: None })
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the sink; surfaces any deferred I/O error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        self.out.into_inner().map_err(|e| e.into_error())
    }

    fn emit(&mut self, ev: &TraceEvent) -> io::Result<()> {
        // Records are staged in a scratch buffer so the trailing checksum
        // byte covers exactly the bytes written.
        let r = &mut self.rec;
        r.clear();
        match *ev {
            TraceEvent::Access(a) => {
                r.push(if a.kind.is_write() { TAG_WRITE } else { TAG_READ });
                r.extend_from_slice(&a.addr.to_le_bytes());
                r.extend_from_slice(&a.ts.to_le_bytes());
                r.extend_from_slice(&a.loc.pack().to_le_bytes());
                r.extend_from_slice(&a.var.to_le_bytes());
                r.extend_from_slice(&a.thread.to_le_bytes());
            }
            TraceEvent::LoopBegin { loop_id, loc, thread, ts } => {
                r.push(TAG_LOOP_BEGIN);
                r.extend_from_slice(&loop_id.to_le_bytes());
                r.extend_from_slice(&loc.pack().to_le_bytes());
                r.extend_from_slice(&thread.to_le_bytes());
                r.extend_from_slice(&ts.to_le_bytes());
            }
            TraceEvent::LoopIter { loop_id, iter, thread, ts } => {
                r.push(TAG_LOOP_ITER);
                r.extend_from_slice(&loop_id.to_le_bytes());
                r.extend_from_slice(&iter.to_le_bytes());
                r.extend_from_slice(&thread.to_le_bytes());
                r.extend_from_slice(&ts.to_le_bytes());
            }
            TraceEvent::LoopEnd { loop_id, loc, iters, thread, ts } => {
                r.push(TAG_LOOP_END);
                r.extend_from_slice(&loop_id.to_le_bytes());
                r.extend_from_slice(&loc.pack().to_le_bytes());
                r.extend_from_slice(&iters.to_le_bytes());
                r.extend_from_slice(&thread.to_le_bytes());
                r.extend_from_slice(&ts.to_le_bytes());
            }
            TraceEvent::CallBegin { func, thread, ts } => {
                r.push(TAG_CALL_BEGIN);
                r.extend_from_slice(&func.to_le_bytes());
                r.extend_from_slice(&thread.to_le_bytes());
                r.extend_from_slice(&ts.to_le_bytes());
            }
            TraceEvent::CallEnd { func, thread, ts } => {
                r.push(TAG_CALL_END);
                r.extend_from_slice(&func.to_le_bytes());
                r.extend_from_slice(&thread.to_le_bytes());
                r.extend_from_slice(&ts.to_le_bytes());
            }
            TraceEvent::Dealloc { base, len, thread, ts } => {
                r.push(TAG_DEALLOC);
                r.extend_from_slice(&base.to_le_bytes());
                r.extend_from_slice(&len.to_le_bytes());
                r.extend_from_slice(&thread.to_le_bytes());
                r.extend_from_slice(&ts.to_le_bytes());
            }
        }
        let ck = xor_fold(r[0], &r[1..]);
        r.push(ck);
        self.out.write_all(r)?;
        self.events += 1;
        Ok(())
    }
}

impl<W: Write> Tracer for TraceWriter<W> {
    fn event(&mut self, ev: TraceEvent) {
        if self.error.is_none() {
            if let Err(e) = self.emit(&ev) {
                self.error = Some(e);
            }
        }
    }
}

/// Replays a recorded trace as an iterator of events.
pub struct TraceReader<R: Read> {
    input: BufReader<R>,
    interner: Interner,
    /// Bytes consumed so far — the offset reported in record errors.
    offset: u64,
    /// Records decoded successfully so far — reported in record errors
    /// so callers know how much of a damaged trace is salvageable.
    records: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating the header and loading the name table.
    pub fn new(source: R) -> Result<Self, TraceFileError> {
        let mut input = BufReader::new(source);
        let mut hdr = [0u8; 5];
        match input.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(TraceFileError::NotATrace)
            }
            Err(e) => return Err(e.into()),
        }
        if &hdr[..4] != MAGIC {
            return Err(TraceFileError::NotATrace);
        }
        if hdr[4] != VERSION {
            return Err(TraceFileError::UnsupportedVersion(hdr[4]));
        }
        let mut offset = 5u64;
        let mut cnt = [0u8; 4];
        input.read_exact(&mut cnt).map_err(Self::name_table_eof)?;
        offset += 4;
        let n = u32::from_le_bytes(cnt);
        let mut interner = Interner::new();
        for id in 0..n {
            let mut len = [0u8; 4];
            input.read_exact(&mut len).map_err(Self::name_table_eof)?;
            let len = u32::from_le_bytes(len) as usize;
            if len > 1 << 20 {
                return Err(TraceFileError::BadNameTable("name longer than 1 MiB"));
            }
            let mut buf = vec![0u8; len];
            input.read_exact(&mut buf).map_err(Self::name_table_eof)?;
            offset += 4 + len as u64;
            let name = String::from_utf8(buf)
                .map_err(|_| TraceFileError::BadNameTable("name is not valid UTF-8"))?;
            let got = interner.intern(&name);
            if got != id && id != 0 {
                // id 0 is the pre-interned "*"; other collisions mean the
                // table was malformed but interning is still usable.
                continue;
            }
        }
        Ok(TraceReader { input, interner, offset, records: 0, done: false })
    }

    fn name_table_eof(e: io::Error) -> TraceFileError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceFileError::BadNameTable("truncated name table")
        } else {
            TraceFileError::Io(e)
        }
    }

    /// The variable names recorded in the trace.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Records decoded successfully so far (the salvageable prefix when
    /// iteration stopped on a [`TraceFileError::TornRecord`] or
    /// [`TraceFileError::Checksum`]).
    pub fn records_read(&self) -> u64 {
        self.records
    }

    fn read_event(&mut self) -> Result<Option<TraceEvent>, TraceFileError> {
        let rec_off = self.offset;
        let mut tag = [0u8; 1];
        match self.input.read_exact(&mut tag) {
            // EOF at a record boundary is the one legitimate way for a
            // trace to end.
            Ok(()) => self.offset += 1,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let tag = tag[0];
        let len = payload_len(tag).ok_or(TraceFileError::UnknownTag { tag, offset: rec_off })?;
        let mut buf = [0u8; MAX_PAYLOAD + 1];
        let body = &mut buf[..len + 1]; // payload + checksum byte
        match self.input.read_exact(body) {
            Ok(()) => self.offset += body.len() as u64,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(TraceFileError::TornRecord {
                    offset: rec_off,
                    records_read: self.records,
                })
            }
            Err(e) => return Err(e.into()),
        }
        let (body, ck) = (&buf[..len], buf[len]);
        if xor_fold(tag, body) != ck {
            return Err(TraceFileError::Checksum { offset: rec_off, records_read: self.records });
        }
        let mut pos = 0usize;
        macro_rules! get {
            ($ty:ty) => {{
                const N: usize = std::mem::size_of::<$ty>();
                let v = <$ty>::from_le_bytes(body[pos..pos + N].try_into().unwrap());
                pos += N;
                v
            }};
        }
        let ev = match tag {
            t @ (TAG_READ | TAG_WRITE) => {
                let addr = get!(u64);
                let ts = get!(u64);
                let loc = SourceLoc::unpack(get!(u32));
                let var = get!(u32);
                let thread = get!(u16);
                TraceEvent::Access(MemAccess {
                    addr,
                    ts,
                    loc,
                    var,
                    thread,
                    kind: if t == TAG_WRITE { AccessKind::Write } else { AccessKind::Read },
                })
            }
            TAG_LOOP_BEGIN => TraceEvent::LoopBegin {
                loop_id: get!(u32),
                loc: SourceLoc::unpack(get!(u32)),
                thread: get!(u16),
                ts: get!(u64),
            },
            TAG_LOOP_ITER => TraceEvent::LoopIter {
                loop_id: get!(u32),
                iter: get!(u64),
                thread: get!(u16),
                ts: get!(u64),
            },
            TAG_LOOP_END => TraceEvent::LoopEnd {
                loop_id: get!(u32),
                loc: SourceLoc::unpack(get!(u32)),
                iters: get!(u64),
                thread: get!(u16),
                ts: get!(u64),
            },
            TAG_CALL_BEGIN => {
                TraceEvent::CallBegin { func: get!(u32), thread: get!(u16), ts: get!(u64) }
            }
            TAG_CALL_END => {
                TraceEvent::CallEnd { func: get!(u32), thread: get!(u16), ts: get!(u64) }
            }
            TAG_DEALLOC => TraceEvent::Dealloc {
                base: get!(u64),
                len: get!(u64),
                thread: get!(u16),
                ts: get!(u64),
            },
            _ => unreachable!("payload_len admitted the tag"),
        };
        debug_assert_eq!(pos, len);
        Ok(Some(ev))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceEvent, TraceFileError>;

    fn next(&mut self) -> Option<Result<TraceEvent, TraceFileError>> {
        if self.done {
            return None;
        }
        match self.read_event() {
            Ok(Some(ev)) => {
                self.records += 1;
                Some(Ok(ev))
            }
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{c, ProgramBuilder};
    use crate::interp::Interp;
    use crate::tracer::CollectTracer;
    use dp_types::loc::loc;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::LoopBegin { loop_id: 3, loc: loc(1, 10), thread: 0, ts: 1 },
            TraceEvent::LoopIter { loop_id: 3, iter: 0, thread: 0, ts: 2 },
            TraceEvent::Access(MemAccess::write(0xdead_beef, 3, loc(2, 60), 7, 1)),
            TraceEvent::Access(MemAccess::read(0xdead_beef, 4, loc(2, 61), 7, 2)),
            TraceEvent::CallBegin { func: 9, thread: 1, ts: 5 },
            TraceEvent::CallEnd { func: 9, thread: 1, ts: 6 },
            TraceEvent::Dealloc { base: 0x100, len: 64, thread: 0, ts: 7 },
            TraceEvent::LoopEnd { loop_id: 3, loc: loc(1, 20), iters: 1, thread: 0, ts: 8 },
        ]
    }

    fn record(events: &[TraceEvent]) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        for ev in events {
            w.event(*ev);
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_every_variant() {
        let bytes = record(&sample_events());
        let back: Vec<TraceEvent> =
            TraceReader::new(&bytes[..]).unwrap().map(Result::unwrap).collect();
        assert_eq!(back, sample_events());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(TraceReader::new(&b"NOPE\x02rest"[..]), Err(TraceFileError::NotATrace)));
        assert!(matches!(TraceReader::new(&b"DP"[..]), Err(TraceFileError::NotATrace)));
        assert!(matches!(
            TraceReader::new(&b"DPTR\x01"[..]),
            Err(TraceFileError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn name_table_roundtrips() {
        let mut names = Interner::new();
        let a = names.intern("alpha");
        let b = names.intern("beta");
        let mut w = TraceWriter::with_names(Vec::new(), &names).unwrap();
        w.event(TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), a, 0)));
        let bytes = w.finish().unwrap();
        let r = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(r.interner().resolve(a), "alpha");
        assert_eq!(r.interner().resolve(b), "beta");
        let evs: Vec<_> = r.map(Result::unwrap).collect();
        assert_eq!(evs.len(), 1);
    }

    #[test]
    fn truncated_name_table_is_typed() {
        let full = record(&[]);
        // Cut inside the header's name-table count.
        assert!(matches!(
            TraceReader::new(&full[..7]),
            Err(TraceFileError::BadNameTable("truncated name table"))
        ));
    }

    #[test]
    fn torn_final_record_is_distinguished_from_clean_eof() {
        let bytes = record(&sample_events()[2..3]);
        // Whole file: one event, clean end.
        let items: Vec<_> = TraceReader::new(&bytes[..]).unwrap().collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_ok());
        // Any cut inside the record is a torn record, never a clean EOF.
        let header = bytes.len() - (1 + 26 + 1);
        for cut in header + 1..bytes.len() {
            let items: Vec<_> = TraceReader::new(&bytes[..cut]).unwrap().collect();
            assert_eq!(items.len(), 1, "cut at {cut}");
            assert!(
                matches!(
                    items[0],
                    Err(TraceFileError::TornRecord { offset, records_read: 0 })
                        if offset == header as u64
                ),
                "cut at {cut}: {:?}",
                items[0]
            );
        }
        // Cut exactly at the record boundary: zero events, no error.
        let items: Vec<_> = TraceReader::new(&bytes[..header]).unwrap().collect();
        assert!(items.is_empty());
    }

    #[test]
    fn corrupted_record_fails_checksum_with_offset() {
        let evs = sample_events();
        let clean = record(&evs);
        // Locate the first record by recording nothing.
        let header = record(&[]).len();
        // Flip one payload bit in the *second* record (the first — a
        // LoopBegin — is tag + 18-byte payload + checksum = 20 bytes).
        let second = header + 20;
        let mut bad = clean.clone();
        bad[second + 3] ^= 0x40;
        let items: Vec<_> = TraceReader::new(&bad[..]).unwrap().collect();
        assert!(items[0].is_ok(), "first record untouched");
        assert!(
            matches!(
                items[1],
                Err(TraceFileError::Checksum { offset, records_read: 1 })
                    if offset == second as u64
            ),
            "{:?}",
            items[1]
        );
        assert_eq!(items.len(), 2, "iteration stops at the corrupt record");

        // A flipped tag lands outside the defined tag range: UnknownTag.
        let mut bad = clean;
        bad[header] = 0x77;
        let items: Vec<_> = TraceReader::new(&bad[..]).unwrap().collect();
        assert!(
            matches!(
                items[0],
                Err(TraceFileError::UnknownTag { tag: 0x77, offset }) if offset == header as u64
            ),
            "{:?}",
            items[0]
        );
    }

    #[test]
    fn error_messages_name_the_failure() {
        let torn = TraceFileError::TornRecord { offset: 9, records_read: 4 };
        assert!(torn.to_string().contains("truncated"));
        assert!(torn.to_string().contains("4 records"), "{torn}");
        let bad = TraceFileError::Checksum { offset: 9, records_read: 2 };
        assert!(bad.to_string().contains("corrupted"));
        assert!(bad.to_string().contains("2 records"), "{bad}");
        assert!(TraceFileError::UnsupportedVersion(1).to_string().contains("version 1"));
        assert!(TraceFileError::NotATrace.to_string().contains("not a depprof trace"));
    }

    /// Regression: record errors carry the count of records decoded
    /// before the failure, and it matches both what the iterator yielded
    /// and the reader's own counter — so a caller salvaging the prefix
    /// of a damaged trace knows exactly how much it kept.
    #[test]
    fn damaged_trace_errors_report_salvageable_prefix() {
        let evs = sample_events();
        let clean = record(&evs);
        // Torn mid-final-record: all 7 earlier records read cleanly.
        let cut = &clean[..clean.len() - 3];
        let mut r = TraceReader::new(cut).unwrap();
        let mut ok = 0u64;
        let mut torn_records = None;
        for item in &mut r {
            match item {
                Ok(_) => ok += 1,
                Err(TraceFileError::TornRecord { records_read, .. }) => {
                    torn_records = Some(records_read)
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(ok, evs.len() as u64 - 1);
        assert_eq!(torn_records, Some(ok), "error must carry the salvageable prefix");
        assert_eq!(r.records_read(), ok);

        // Corrupted third record: two records salvage.
        let header = record(&[]).len();
        let mut bad = clean.clone();
        // LoopBegin (20 B) + LoopIter (24 B) precede the first access.
        let third = header + 20 + 24;
        bad[third + 2] ^= 0x10;
        let items: Vec<_> = TraceReader::new(&bad[..]).unwrap().collect();
        assert_eq!(items.len(), 3);
        assert!(matches!(
            items[2],
            Err(TraceFileError::Checksum { records_read: 2, offset }) if offset == third as u64
        ));
    }

    #[test]
    fn record_program_then_replay_matches_live() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 32);
        let p = b.main(|f| {
            f.for_loop("l", false, c(0), c(32), |f, i| {
                let v = f.ld(a, i.clone()) + c(1);
                f.store(a, i, v);
            });
        });
        // live
        let vm = Interp::new(&p);
        let mut live = CollectTracer::new();
        vm.run_seq(&mut live);
        // recorded
        let vm = Interp::new(&p);
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        vm.run_seq(&mut w);
        assert_eq!(w.events() as usize, live.events.len());
        let bytes = w.finish().unwrap();
        let replayed: Vec<TraceEvent> =
            TraceReader::new(&bytes[..]).unwrap().map(Result::unwrap).collect();
        assert_eq!(replayed, live.events);
        // ~28 bytes per access event on this workload
        assert!(bytes.len() < live.events.len() * 33);
    }
}
