//! Binary trace recording and replay.
//!
//! The paper's toolchain separates instrumentation from analysis: the
//! instrumented run can write its event stream to disk and analyses run
//! offline (and repeatedly — e.g. one recording feeding the accuracy
//! comparison of Table I at several signature sizes without re-executing
//! the program). [`TraceWriter`] is a [`Tracer`] that streams events to
//! any `Write` sink in a compact fixed-width binary format;
//! [`TraceReader`] replays them as an iterator.
//!
//! Format (little-endian): magic `DPTR`, a version byte, a variable-name
//! table (so replayed reports resolve names without the original
//! program), then one tag byte per event followed by the fields of that
//! variant. Accesses — the overwhelming majority — encode in 27 bytes.

use crate::tracer::Tracer;
use dp_types::{AccessKind, Interner, MemAccess, SourceLoc, TraceEvent};
use std::io::{self, BufReader, BufWriter, Read, Write};

const MAGIC: &[u8; 4] = b"DPTR";
const VERSION: u8 = 1;

const TAG_READ: u8 = 0;
const TAG_WRITE: u8 = 1;
const TAG_LOOP_BEGIN: u8 = 2;
const TAG_LOOP_ITER: u8 = 3;
const TAG_LOOP_END: u8 = 4;
const TAG_CALL_BEGIN: u8 = 5;
const TAG_CALL_END: u8 = 6;
const TAG_DEALLOC: u8 = 7;

/// Streams trace events to a byte sink.
pub struct TraceWriter<W: Write> {
    out: BufWriter<W>,
    events: u64,
    error: Option<io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer with no variable-name table (names resolve to
    /// ids on replay).
    pub fn new(sink: W) -> io::Result<Self> {
        Self::with_names(sink, &Interner::new())
    }

    /// Creates a writer, embedding the interner's variable names so
    /// replayed reports are fully resolved.
    pub fn with_names(sink: W, interner: &Interner) -> io::Result<Self> {
        let mut out = BufWriter::new(sink);
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION])?;
        let n = interner.len() as u32;
        out.write_all(&n.to_le_bytes())?;
        for id in 0..n {
            let name = interner.resolve(id).as_bytes();
            out.write_all(&(name.len() as u32).to_le_bytes())?;
            out.write_all(name)?;
        }
        Ok(TraceWriter { out, events: 0, error: None })
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the sink; surfaces any deferred I/O error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        self.out.into_inner().map_err(|e| e.into_error())
    }

    fn emit(&mut self, ev: &TraceEvent) -> io::Result<()> {
        let o = &mut self.out;
        match *ev {
            TraceEvent::Access(a) => {
                o.write_all(&[if a.kind.is_write() { TAG_WRITE } else { TAG_READ }])?;
                o.write_all(&a.addr.to_le_bytes())?;
                o.write_all(&a.ts.to_le_bytes())?;
                o.write_all(&a.loc.pack().to_le_bytes())?;
                o.write_all(&a.var.to_le_bytes())?;
                o.write_all(&a.thread.to_le_bytes())?;
            }
            TraceEvent::LoopBegin { loop_id, loc, thread, ts } => {
                o.write_all(&[TAG_LOOP_BEGIN])?;
                o.write_all(&loop_id.to_le_bytes())?;
                o.write_all(&loc.pack().to_le_bytes())?;
                o.write_all(&thread.to_le_bytes())?;
                o.write_all(&ts.to_le_bytes())?;
            }
            TraceEvent::LoopIter { loop_id, iter, thread, ts } => {
                o.write_all(&[TAG_LOOP_ITER])?;
                o.write_all(&loop_id.to_le_bytes())?;
                o.write_all(&iter.to_le_bytes())?;
                o.write_all(&thread.to_le_bytes())?;
                o.write_all(&ts.to_le_bytes())?;
            }
            TraceEvent::LoopEnd { loop_id, loc, iters, thread, ts } => {
                o.write_all(&[TAG_LOOP_END])?;
                o.write_all(&loop_id.to_le_bytes())?;
                o.write_all(&loc.pack().to_le_bytes())?;
                o.write_all(&iters.to_le_bytes())?;
                o.write_all(&thread.to_le_bytes())?;
                o.write_all(&ts.to_le_bytes())?;
            }
            TraceEvent::CallBegin { func, thread, ts } => {
                o.write_all(&[TAG_CALL_BEGIN])?;
                o.write_all(&func.to_le_bytes())?;
                o.write_all(&thread.to_le_bytes())?;
                o.write_all(&ts.to_le_bytes())?;
            }
            TraceEvent::CallEnd { func, thread, ts } => {
                o.write_all(&[TAG_CALL_END])?;
                o.write_all(&func.to_le_bytes())?;
                o.write_all(&thread.to_le_bytes())?;
                o.write_all(&ts.to_le_bytes())?;
            }
            TraceEvent::Dealloc { base, len, thread, ts } => {
                o.write_all(&[TAG_DEALLOC])?;
                o.write_all(&base.to_le_bytes())?;
                o.write_all(&len.to_le_bytes())?;
                o.write_all(&thread.to_le_bytes())?;
                o.write_all(&ts.to_le_bytes())?;
            }
        }
        self.events += 1;
        Ok(())
    }
}

impl<W: Write> Tracer for TraceWriter<W> {
    fn event(&mut self, ev: TraceEvent) {
        if self.error.is_none() {
            if let Err(e) = self.emit(&ev) {
                self.error = Some(e);
            }
        }
    }
}

/// Replays a recorded trace as an iterator of events.
pub struct TraceReader<R: Read> {
    input: BufReader<R>,
    interner: Interner,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating the header and loading the name table.
    pub fn new(source: R) -> io::Result<Self> {
        let mut input = BufReader::new(source);
        let mut hdr = [0u8; 5];
        input.read_exact(&mut hdr)?;
        if &hdr[..4] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a depprof trace"));
        }
        if hdr[4] != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {}", hdr[4]),
            ));
        }
        let mut cnt = [0u8; 4];
        input.read_exact(&mut cnt)?;
        let n = u32::from_le_bytes(cnt);
        let mut interner = Interner::new();
        for id in 0..n {
            let mut len = [0u8; 4];
            input.read_exact(&mut len)?;
            let len = u32::from_le_bytes(len) as usize;
            if len > 1 << 20 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "name too long"));
            }
            let mut buf = vec![0u8; len];
            input.read_exact(&mut buf)?;
            let name = String::from_utf8(buf)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad name utf8"))?;
            let got = interner.intern(&name);
            if got != id && id != 0 {
                // id 0 is the pre-interned "*"; other collisions mean the
                // table was malformed but interning is still usable.
                continue;
            }
        }
        Ok(TraceReader { input, interner, done: false })
    }

    /// The variable names recorded in the trace.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    fn read_event(&mut self) -> io::Result<Option<TraceEvent>> {
        let mut tag = [0u8; 1];
        match self.input.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        macro_rules! get {
            ($ty:ty) => {{
                let mut b = [0u8; std::mem::size_of::<$ty>()];
                self.input.read_exact(&mut b)?;
                <$ty>::from_le_bytes(b)
            }};
        }
        let ev = match tag[0] {
            t @ (TAG_READ | TAG_WRITE) => {
                let addr = get!(u64);
                let ts = get!(u64);
                let loc = SourceLoc::unpack(get!(u32));
                let var = get!(u32);
                let thread = get!(u16);
                TraceEvent::Access(MemAccess {
                    addr,
                    ts,
                    loc,
                    var,
                    thread,
                    kind: if t == TAG_WRITE { AccessKind::Write } else { AccessKind::Read },
                })
            }
            TAG_LOOP_BEGIN => TraceEvent::LoopBegin {
                loop_id: get!(u32),
                loc: SourceLoc::unpack(get!(u32)),
                thread: get!(u16),
                ts: get!(u64),
            },
            TAG_LOOP_ITER => TraceEvent::LoopIter {
                loop_id: get!(u32),
                iter: get!(u64),
                thread: get!(u16),
                ts: get!(u64),
            },
            TAG_LOOP_END => TraceEvent::LoopEnd {
                loop_id: get!(u32),
                loc: SourceLoc::unpack(get!(u32)),
                iters: get!(u64),
                thread: get!(u16),
                ts: get!(u64),
            },
            TAG_CALL_BEGIN => {
                TraceEvent::CallBegin { func: get!(u32), thread: get!(u16), ts: get!(u64) }
            }
            TAG_CALL_END => {
                TraceEvent::CallEnd { func: get!(u32), thread: get!(u16), ts: get!(u64) }
            }
            TAG_DEALLOC => TraceEvent::Dealloc {
                base: get!(u64),
                len: get!(u64),
                thread: get!(u16),
                ts: get!(u64),
            },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown event tag {other}"),
                ))
            }
        };
        Ok(Some(ev))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<TraceEvent>;

    fn next(&mut self) -> Option<io::Result<TraceEvent>> {
        if self.done {
            return None;
        }
        match self.read_event() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{c, ProgramBuilder};
    use crate::interp::Interp;
    use crate::tracer::CollectTracer;
    use dp_types::loc::loc;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::LoopBegin { loop_id: 3, loc: loc(1, 10), thread: 0, ts: 1 },
            TraceEvent::LoopIter { loop_id: 3, iter: 0, thread: 0, ts: 2 },
            TraceEvent::Access(MemAccess::write(0xdead_beef, 3, loc(2, 60), 7, 1)),
            TraceEvent::Access(MemAccess::read(0xdead_beef, 4, loc(2, 61), 7, 2)),
            TraceEvent::CallBegin { func: 9, thread: 1, ts: 5 },
            TraceEvent::CallEnd { func: 9, thread: 1, ts: 6 },
            TraceEvent::Dealloc { base: 0x100, len: 64, thread: 0, ts: 7 },
            TraceEvent::LoopEnd { loop_id: 3, loc: loc(1, 20), iters: 1, thread: 0, ts: 8 },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        for ev in sample_events() {
            w.event(ev);
        }
        assert_eq!(w.events(), 8);
        let bytes = w.finish().unwrap();
        let back: Vec<TraceEvent> =
            TraceReader::new(&bytes[..]).unwrap().map(Result::unwrap).collect();
        assert_eq!(back, sample_events());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(TraceReader::new(&b"NOPE\x01rest"[..]).is_err());
        assert!(TraceReader::new(&b"DPTR\x63"[..]).is_err());
    }

    #[test]
    fn name_table_roundtrips() {
        let mut names = Interner::new();
        let a = names.intern("alpha");
        let b = names.intern("beta");
        let mut w = TraceWriter::with_names(Vec::new(), &names).unwrap();
        w.event(TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), a, 0)));
        let bytes = w.finish().unwrap();
        let r = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(r.interner().resolve(a), "alpha");
        assert_eq!(r.interner().resolve(b), "beta");
        let evs: Vec<_> = r.map(Result::unwrap).collect();
        assert_eq!(evs.len(), 1);
    }

    #[test]
    fn truncated_file_yields_error() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.event(sample_events()[2]);
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 3);
        let items: Vec<_> = TraceReader::new(&bytes[..]).unwrap().collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_err());
    }

    #[test]
    fn record_program_then_replay_matches_live() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 32);
        let p = b.main(|f| {
            f.for_loop("l", false, c(0), c(32), |f, i| {
                let v = f.ld(a, i.clone()) + c(1);
                f.store(a, i, v);
            });
        });
        // live
        let vm = Interp::new(&p);
        let mut live = CollectTracer::new();
        vm.run_seq(&mut live);
        // recorded
        let vm = Interp::new(&p);
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        vm.run_seq(&mut w);
        let bytes = w.finish().unwrap();
        let replayed: Vec<TraceEvent> =
            TraceReader::new(&bytes[..]).unwrap().map(Result::unwrap).collect();
        assert_eq!(replayed, live.events);
        // ~26 bytes per access event on this workload
        assert!(bytes.len() < live.events.len() * 32);
    }
}
