//! Direct instrumentation of native Rust kernels.
//!
//! The MiniVM IR is the substrate for the paper's benchmarks, but the
//! profiler itself only consumes [`TraceEvent`]s — so any Rust code can be
//! profiled by routing its memory accesses through [`TracedVec`] /
//! [`TracedCell`]. Source locations are captured automatically via
//! `#[track_caller]`, which plays the role of the LLVM pass reading debug
//! metadata: dependences reported by the profiler point at real lines of
//! your `.rs` file.
//!
//! This is the API the `quickstart` example uses.

use crate::tracer::Tracer;
use dp_types::{Address, Interner, MemAccess, SourceLoc, ThreadId, TraceEvent, VarId};
use std::cell::{Cell, RefCell};
use std::panic::Location;

/// Single-threaded instrumentation context: owns the tracer, the timestamp
/// counter, a simulated address allocator and the variable-name interner.
pub struct TracerHandle<T: Tracer> {
    tracer: RefCell<T>,
    ts: Cell<u64>,
    next_addr: Cell<Address>,
    interner: RefCell<Interner>,
    files: RefCell<Vec<&'static str>>,
    next_loop: Cell<u32>,
}

impl<T: Tracer> TracerHandle<T> {
    /// Wraps a tracer (typically a profiling engine).
    pub fn new(tracer: T) -> Self {
        TracerHandle {
            tracer: RefCell::new(tracer),
            ts: Cell::new(1),
            next_addr: Cell::new(0x0100_0000),
            interner: RefCell::new(Interner::new()),
            files: RefCell::new(Vec::new()),
            next_loop: Cell::new(0),
        }
    }

    /// Finishes instrumentation, returning the tracer and the interner
    /// needed to resolve variable names in reports.
    pub fn finish(self) -> (T, Interner) {
        let mut t = self.tracer.into_inner();
        t.sync_point();
        (t, self.interner.into_inner())
    }

    fn next_ts(&self) -> u64 {
        let t = self.ts.get();
        self.ts.set(t + 1);
        t
    }

    fn alloc(&self, words: u64) -> Address {
        let a = self.next_addr.get();
        self.next_addr.set(a + words * 8 + 64);
        a
    }

    fn intern(&self, name: &str) -> VarId {
        self.interner.borrow_mut().intern(name)
    }

    fn file_id(&self, name: &'static str) -> u8 {
        let mut files = self.files.borrow_mut();
        if let Some(i) = files.iter().position(|&f| f == name) {
            (i + 1) as u8
        } else {
            files.push(name);
            files.len() as u8
        }
    }

    fn loc_of(&self, caller: &'static Location<'static>) -> SourceLoc {
        SourceLoc::new(self.file_id(caller.file()), caller.line())
    }

    fn emit(&self, ev: TraceEvent) {
        self.tracer.borrow_mut().event(ev);
    }

    /// Announces entry into a loop; pair with [`TracerHandle::loop_iter`] /
    /// [`TracerHandle::loop_end`]. Returns the loop id.
    #[track_caller]
    pub fn loop_begin(&self) -> u32 {
        let id = self.next_loop.get();
        self.next_loop.set(id + 1);
        let loc = self.loc_of(Location::caller());
        self.emit(TraceEvent::LoopBegin { loop_id: id, loc, thread: 0, ts: self.next_ts() });
        id
    }

    /// Announces the start of iteration `iter` of loop `id`.
    pub fn loop_iter(&self, id: u32, iter: u64) {
        self.emit(TraceEvent::LoopIter { loop_id: id, iter, thread: 0, ts: self.next_ts() });
    }

    /// Announces loop exit after `iters` iterations.
    #[track_caller]
    pub fn loop_end(&self, id: u32, iters: u64) {
        let loc = self.loc_of(Location::caller());
        self.emit(TraceEvent::LoopEnd { loop_id: id, loc, iters, thread: 0, ts: self.next_ts() });
    }

    const THREAD: ThreadId = 0;
}

/// An instrumented `Vec<i64>`: every `get`/`set` emits a traced access at
/// the caller's source line.
pub struct TracedVec<'h, T: Tracer> {
    handle: &'h TracerHandle<T>,
    data: Vec<i64>,
    base: Address,
    var: VarId,
}

impl<'h, T: Tracer> TracedVec<'h, T> {
    /// Allocates an instrumented vector of `len` zeros named `name`.
    pub fn new(handle: &'h TracerHandle<T>, name: &str, len: usize) -> Self {
        TracedVec {
            handle,
            data: vec![0; len],
            base: handle.alloc(len as u64),
            var: handle.intern(name),
        }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Traced read of element `i`.
    #[track_caller]
    pub fn get(&self, i: usize) -> i64 {
        let loc = self.handle.loc_of(Location::caller());
        self.handle.emit(TraceEvent::Access(MemAccess::read(
            self.base + i as u64 * 8,
            self.handle.next_ts(),
            loc,
            self.var,
            TracerHandle::<T>::THREAD,
        )));
        self.data[i]
    }

    /// Traced write of element `i`.
    #[track_caller]
    pub fn set(&mut self, i: usize, v: i64) {
        let loc = self.handle.loc_of(Location::caller());
        self.data[i] = v;
        self.handle.emit(TraceEvent::Access(MemAccess::write(
            self.base + i as u64 * 8,
            self.handle.next_ts(),
            loc,
            self.var,
            TracerHandle::<T>::THREAD,
        )));
    }

    /// Frees the vector, emitting the lifetime event that lets the
    /// profiler forget these addresses (Section III-B).
    pub fn free(self) {
        self.handle.emit(TraceEvent::Dealloc {
            base: self.base,
            len: self.data.len() as u64,
            thread: TracerHandle::<T>::THREAD,
            ts: self.handle.next_ts(),
        });
    }
}

/// An instrumented scalar variable.
pub struct TracedCell<'h, T: Tracer> {
    handle: &'h TracerHandle<T>,
    value: i64,
    addr: Address,
    var: VarId,
}

impl<'h, T: Tracer> TracedCell<'h, T> {
    /// Allocates an instrumented scalar named `name`.
    pub fn new(handle: &'h TracerHandle<T>, name: &str, value: i64) -> Self {
        TracedCell { handle, value, addr: handle.alloc(1), var: handle.intern(name) }
    }

    /// Traced read.
    #[track_caller]
    pub fn get(&self) -> i64 {
        let loc = self.handle.loc_of(Location::caller());
        self.handle.emit(TraceEvent::Access(MemAccess::read(
            self.addr,
            self.handle.next_ts(),
            loc,
            self.var,
            TracerHandle::<T>::THREAD,
        )));
        self.value
    }

    /// Traced write.
    #[track_caller]
    pub fn set(&mut self, v: i64) {
        let loc = self.handle.loc_of(Location::caller());
        self.value = v;
        self.handle.emit(TraceEvent::Access(MemAccess::write(
            self.addr,
            self.handle.next_ts(),
            loc,
            self.var,
            TracerHandle::<T>::THREAD,
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::CollectTracer;
    use dp_types::AccessKind;

    #[test]
    fn accesses_carry_caller_lines_and_names() {
        let h = TracerHandle::new(CollectTracer::new());
        let mut v = TracedVec::new(&h, "data", 4);
        v.set(0, 7);
        let line_of_set = line!() - 1;
        assert_eq!(v.get(0), 7);
        let (t, interner) = h.finish();
        let a: Vec<_> = t.events.iter().filter_map(|e| e.as_access()).collect();
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].kind, AccessKind::Write);
        assert_eq!(a[0].loc.line, line_of_set);
        assert_eq!(a[1].kind, AccessKind::Read);
        assert_eq!(a[0].addr, a[1].addr);
        assert_eq!(interner.resolve(a[0].var), "data");
    }

    #[test]
    fn distinct_allocations_distinct_addresses() {
        let h = TracerHandle::new(CollectTracer::new());
        let mut v1 = TracedVec::new(&h, "a", 10);
        let mut v2 = TracedVec::new(&h, "b", 10);
        let mut c = TracedCell::new(&h, "s", 0);
        v1.set(9, 1);
        v2.set(0, 2);
        c.set(3);
        let (t, _) = h.finish();
        let addrs: Vec<_> = t.events.iter().filter_map(|e| e.as_access()).map(|a| a.addr).collect();
        assert_eq!(addrs.len(), 3);
        assert!(addrs[0] < addrs[1] && addrs[1] < addrs[2]);
    }

    #[test]
    fn loop_events_and_free() {
        let h = TracerHandle::new(CollectTracer::new());
        let v = TracedVec::new(&h, "x", 2);
        let l = h.loop_begin();
        for i in 0..2u64 {
            h.loop_iter(l, i);
            let _ = v.get(i as usize);
        }
        h.loop_end(l, 2);
        v.free();
        let (t, _) = h.finish();
        assert!(matches!(t.events[0], TraceEvent::LoopBegin { loop_id: 0, .. }));
        assert!(t.events.iter().any(|e| matches!(e, TraceEvent::Dealloc { len: 2, .. })));
        assert!(matches!(t.events[t.events.len() - 2], TraceEvent::LoopEnd { iters: 2, .. }));
    }

    #[test]
    fn timestamps_increase() {
        let h = TracerHandle::new(CollectTracer::new());
        let mut v = TracedVec::new(&h, "x", 8);
        for i in 0..8 {
            v.set(i, i as i64);
        }
        let (t, _) = h.finish();
        let ts: Vec<_> = t.events.iter().map(|e| e.ts()).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }
}
