//! MiniVM — the instrumentation substrate of the reproduction.
//!
//! The paper's profiler is an LLVM pass plus a C++ runtime: Clang
//! instruments every load/store of the target program, and each executed
//! access calls `push_read`/`push_write` (Figure 4). Offline and without
//! LLVM, this crate replaces that front-end with a miniature imperative
//! program representation and an interpreter that calls a [`Tracer`] for
//! every executed memory access, loop-boundary and deallocation — the same
//! event vocabulary the LLVM pass produces, with real (flat-address-space)
//! addresses, dynamically computed indices, explicit lock regions, and
//! fork-join threading.
//!
//! - [`ir`] — the program representation (expressions, statements, loops
//!   with OpenMP ground-truth annotations, locks, spawn/join).
//! - [`builder`] — an ergonomic way to write MiniVM programs.
//! - [`tracer`] — the [`Tracer`]/[`TracerFactory`] abstraction the
//!   profiling engines implement; plus null/collecting tracers.
//! - [`interp`] — sequential and multi-threaded interpreters.
//! - [`traced`] — a direct instrumentation API ([`TracedVec`],
//!   [`TracedCell`]) for profiling native Rust kernels without the IR.
//! - [`tracefile`] — binary trace recording and offline replay
//!   ([`TraceWriter`]/[`TraceReader`]), so one instrumented run can feed
//!   many analyses.
//! - [`workloads`] — the miniature NAS / Starbench / SPLASH programs used
//!   by every experiment (see DESIGN.md for the fidelity argument).

#![warn(missing_docs)]

pub mod builder;
pub mod fuzz;
pub mod interp;
pub mod ir;
pub mod stream;
pub mod traced;
pub mod tracefile;
pub mod tracer;
pub mod workloads;

pub use builder::ProgramBuilder;
pub use interp::Interp;
pub use ir::{ArrayId, Expr, FuncId, LocalId, Program, ScalarId, Stmt};
pub use stream::{frame_events, FrameChunker};
pub use traced::{TracedCell, TracedVec, TracerHandle};
pub use tracefile::{TraceFileError, TraceReader, TraceWriter};
pub use tracer::{CollectFactory, CollectTracer, NullFactory, NullTracer, Tracer, TracerFactory};
pub use workloads::{Workload, WorkloadMeta};
