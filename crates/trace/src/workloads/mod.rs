//! The miniature workload library.
//!
//! Every experiment of the paper runs on NAS, Starbench or SPLASH-2x
//! programs. These are C/pthread codes we cannot ship or compile offline,
//! so each is rebuilt as a MiniVM program with the same *dependence
//! structure* — the property all the experiments actually measure:
//!
//! - **NAS minis** ([`nas`]): per-program OpenMP-annotated loop counts
//!   matching Table II, with the non-DiscoPoP-identifiable loops realized
//!   as reductions/histograms (loop-carried RAW that OpenMP parallelizes
//!   via `reduction`/`atomic` clauses but a dependence test must reject).
//! - **Starbench minis** ([`starbench`]): per-program distinct-address and
//!   access counts proportional to Table I (scaled ~10⁻², accesses ~10⁻³),
//!   in both sequential and pthread-style parallel versions.
//! - **SPLASH water-spatial** ([`splash`]): the neighbour-exchange kernel
//!   whose producer/consumer communication matrix Figure 9 shows.
//! - **Synthetic programs** ([`synth`]): uniform/skewed address streams
//!   for Formula 2 validation and racy/locked pairs for the data-race
//!   experiment.

pub mod nas;
pub mod patterns;
pub mod splash;
pub mod starbench;
pub mod synth;

use crate::ir::Program;

/// Which suite a workload belongss to (report grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// NAS Parallel Benchmarks minis.
    Nas,
    /// Starbench minis.
    Starbench,
    /// SPLASH-2x minis.
    Splash,
    /// Synthetic stress programs.
    Synthetic,
}

/// Metadata accompanying a workload program.
#[derive(Debug, Clone)]
pub struct WorkloadMeta {
    /// Program name as it appears in the paper's tables.
    pub name: String,
    /// Suite.
    pub suite: Suite,
    /// True if the program contains `spawn` (use `run_mt`).
    pub parallel: bool,
    /// Target threads when parallel (the paper's pthread runs use 4).
    pub nthreads: u32,
}

/// A ready-to-run workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The MiniVM program.
    pub program: Program,
    /// Metadata.
    pub meta: WorkloadMeta,
}

/// Global size multiplier for workloads. `Scale(1.0)` is the default mini
/// size (hundreds of thousands of accesses per program); the Table I
/// experiment uses larger scales, smoke tests smaller ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Default for Scale {
    fn default() -> Self {
        Scale(1.0)
    }
}

impl Scale {
    /// Scales a baseline element/iteration count, clamped to ≥ 4.
    pub fn n(self, base: u64) -> i64 {
        ((base as f64 * self.0).round() as i64).max(4)
    }
}

/// All sequential NAS minis (Figure 5, Figure 7, Table II).
pub fn nas_suite(scale: Scale) -> Vec<Workload> {
    vec![
        nas::bt(scale),
        nas::sp(scale),
        nas::lu(scale),
        nas::is(scale),
        nas::ep(scale),
        nas::cg(scale),
        nas::mg(scale),
        nas::ft(scale),
    ]
}

/// All sequential Starbench minis (Table I, Figures 5/7).
pub fn starbench_suite(scale: Scale) -> Vec<Workload> {
    starbench::all(scale, None)
}

/// All pthread-style parallel Starbench minis with `nthreads` target
/// threads (Figures 6/8; the paper uses 4).
pub fn starbench_parallel_suite(scale: Scale, nthreads: u32) -> Vec<Workload> {
    starbench::all(scale, Some(nthreads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::tracer::{CollectTracer, NullTracer};

    #[test]
    fn scale_clamps() {
        assert_eq!(Scale(0.0).n(1000), 4);
        assert_eq!(Scale(2.0).n(10), 20);
        assert_eq!(Scale::default().n(7), 7);
    }

    /// Every workload must run to completion under both tracers and
    /// produce a non-trivial event stream.
    #[test]
    fn all_sequential_workloads_run() {
        let scale = Scale(0.05);
        for w in nas_suite(scale).into_iter().chain(starbench_suite(scale)) {
            assert!(!w.meta.parallel);
            let vm = Interp::new(&w.program);
            vm.run_seq(&mut NullTracer);
            let vm = Interp::new(&w.program);
            let mut t = CollectTracer::new();
            vm.run_seq(&mut t);
            let naccess = t.events.iter().filter(|e| e.as_access().is_some()).count();
            assert!(naccess > 100, "{}: only {naccess} accesses", w.meta.name);
        }
    }

    #[test]
    fn nas_omp_counts_match_table2() {
        // Table II, column "# OMP".
        let expected = [
            ("BT", 30),
            ("SP", 34),
            ("LU", 33),
            ("IS", 11),
            ("EP", 1),
            ("CG", 16),
            ("MG", 14),
            ("FT", 8),
        ];
        let suite = nas_suite(Scale(0.05));
        assert_eq!(suite.len(), expected.len());
        let mut total = 0;
        for (w, (name, omp)) in suite.iter().zip(expected) {
            assert_eq!(w.meta.name, name);
            let got = w.program.omp_loops().count();
            assert_eq!(got, omp, "{name}: {got} OMP loops, expected {omp}");
            total += got;
        }
        assert_eq!(total, 147, "paper: 147 annotated loops overall");
    }

    #[test]
    fn starbench_has_11_programs_with_paper_names() {
        let names: Vec<_> =
            starbench_suite(Scale(0.05)).iter().map(|w| w.meta.name.clone()).collect();
        assert_eq!(
            names,
            [
                "c-ray",
                "kmeans",
                "md5",
                "ray-rot",
                "rgbyuv",
                "rotate",
                "rot-cc",
                "streamcluster",
                "tinyjpeg",
                "bodytrack",
                "h264dec"
            ]
        );
    }

    #[test]
    fn parallel_starbench_runs() {
        use dp_types::{ThreadId, TraceEvent};
        use parking_lot::Mutex;
        #[derive(Default)]
        struct F {
            all: Mutex<Vec<TraceEvent>>,
        }
        impl crate::tracer::TracerFactory for F {
            type Tracer = CollectTracer;
            fn tracer(&self, _tid: ThreadId) -> CollectTracer {
                CollectTracer::new()
            }
            fn join(&self, _tid: ThreadId, t: CollectTracer) {
                self.all.lock().extend(t.events);
            }
        }
        for w in starbench_parallel_suite(Scale(0.02), 4) {
            assert!(w.meta.parallel);
            assert_eq!(w.meta.nthreads, 4);
            let vm = Interp::new(&w.program);
            let f = F::default();
            vm.run_mt(&f);
            let all = f.all.into_inner();
            let mut tids: Vec<_> =
                all.iter().filter_map(|e| e.as_access()).map(|a| a.thread).collect();
            tids.sort_unstable();
            tids.dedup();
            assert!(tids.iter().any(|&t| t >= 1), "{}: no worker-thread accesses", w.meta.name);
        }
    }
}
