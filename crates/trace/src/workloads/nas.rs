//! Miniature NAS Parallel Benchmarks.
//!
//! Each mini reproduces the property Table II measures: the number of
//! loops annotated parallel in the OpenMP version (`# OMP`) and, among
//! them, how many a *dependence test* can identify as parallelizable. The
//! non-identifiable annotated loops are reductions and histogram updates —
//! OpenMP handles them with `reduction`/`atomic` clauses, but they carry a
//! genuine loop-carried RAW dependence, so a dependence-based test must
//! reject them. Expected identification counts (Table II):
//!
//! | program | # OMP | # identifiable |
//! |---|---|---|
//! | BT | 30 | 30 |
//! | SP | 34 | 34 |
//! | LU | 33 | 33 |
//! | IS | 11 | 8 |
//! | EP | 1 | 1 |
//! | CG | 16 | 9 |
//! | MG | 14 | 14 |
//! | FT | 8 | 7 |

use super::patterns as pat;
use super::{Scale, Suite, Workload, WorkloadMeta};
use crate::builder::{c, rnd, ProgramBuilder};
use crate::ir::{ArrayId, FuncId};

fn meta(name: &str) -> WorkloadMeta {
    WorkloadMeta { name: name.to_owned(), suite: Suite::Nas, parallel: false, nthreads: 0 }
}

/// Emits `count` DOALL loops cycling over `arrs` as destinations/sources,
/// numbering them from `k0` (so split phases keep globally distinct loop
/// names and array rotation).
fn doall_phases(
    f: &mut crate::builder::FuncBuilder<'_>,
    prefix: &str,
    k0: usize,
    count: usize,
    arrs: &[ArrayId],
    n: i64,
) {
    for k in k0..k0 + count {
        let dst = arrs[k % arrs.len()];
        let src = arrs[(k + 1) % arrs.len()];
        match k % 3 {
            0 => {
                pat::stencil(f, &format!("{prefix}_stencil{k}"), true, dst, src, n);
            }
            1 => {
                pat::elementwise(f, &format!("{prefix}_elem{k}"), true, dst, n);
            }
            _ => {
                pat::stencil(f, &format!("{prefix}_flux{k}"), true, dst, src, n);
            }
        }
    }
}

/// Defines one named phase function per `(name, loop_count)` entry, each
/// holding a slice of the program's DOALL loops — the `compute_rhs` /
/// `x_solve` / `y_solve` / `z_solve` structure of the real NAS solvers.
/// Returns the function ids to `call` from the time-step loop.
fn phase_functions(
    b: &mut ProgramBuilder,
    prefix: &str,
    phases: &[(&str, usize)],
    arrs: &[ArrayId],
    n: i64,
) -> Vec<FuncId> {
    let mut k0 = 0usize;
    let mut ids = Vec::with_capacity(phases.len());
    for (name, count) in phases {
        let arrs = arrs.to_vec();
        let (start, cnt) = (k0, *count);
        let pfx = prefix.to_owned();
        ids.push(b.named_func(name, move |f| {
            doall_phases(f, &pfx, start, cnt, &arrs, n);
        }));
        k0 += count;
    }
    ids
}

/// BT — block tridiagonal solver: 30 OMP loops, all DOALL, organized in
/// the real solver's phase functions (`compute_rhs`, `x_solve`,
/// `y_solve`, `z_solve`, `add`) called from the time-step loop.
pub fn bt(scale: Scale) -> Workload {
    let n = scale.n(1000);
    let mut b = ProgramBuilder::new("BT");
    let arrs: Vec<_> =
        ["u", "v", "w", "rhs", "forcing"].iter().map(|s| b.array(s, n as u64)).collect();
    let phases = phase_functions(
        &mut b,
        "bt",
        &[("compute_rhs", 7), ("x_solve", 6), ("y_solve", 6), ("z_solve", 5)],
        &arrs,
        n,
    );
    let arrs2 = arrs.clone();
    let program = b.main(move |f| {
        for (k, &a) in arrs2.iter().enumerate() {
            pat::init(f, &format!("init{k}"), true, a, n); // 5 OMP
        }
        f.for_loop("timestep", false, c(0), c(2), |f, _| {
            for &p in &phases {
                f.call(p); // 24 OMP loops across the four phases...
            }
        });
        // ...plus the final solution update. 5 + 24 + 1 = 30 OMP.
        pat::elementwise(f, "bt_add", true, arrs2[0], n);
    });
    Workload { program, meta: meta("BT") }
}

/// SP — scalar pentadiagonal solver: 34 OMP loops, all DOALL, with the
/// real code's `txinvr`/`x_solve`/`y_solve`/`z_solve`/`tzetar` phases.
pub fn sp(scale: Scale) -> Workload {
    let n = scale.n(1100);
    let mut b = ProgramBuilder::new("SP");
    let arrs: Vec<_> =
        ["u", "us", "vs", "speed", "rhs"].iter().map(|s| b.array(s, n as u64)).collect();
    let phases = phase_functions(
        &mut b,
        "sp",
        &[("txinvr", 5), ("x_solve", 6), ("y_solve", 6), ("z_solve", 6), ("tzetar", 6)],
        &arrs,
        n,
    );
    let arrs2 = arrs.clone();
    let program = b.main(move |f| {
        for (k, &a) in arrs2.iter().enumerate() {
            pat::init(f, &format!("init{k}"), true, a, n); // 5 OMP
        }
        f.for_loop("timestep", false, c(0), c(2), |f, _| {
            for &p in &phases {
                f.call(p); // 29 OMP loops across five phases
            }
        });
    });
    Workload { program, meta: meta("SP") }
}

/// LU — lower-upper Gauss-Seidel: 33 OMP loops (DOALL) organized in the
/// real code's `rhs`/`jacld`/`jacu`/`l2norm` phases, plus the two
/// sequential SSOR wavefront sweeps (`blts`/`buts`, not annotated).
pub fn lu(scale: Scale) -> Workload {
    let n = scale.n(900);
    let mut b = ProgramBuilder::new("LU");
    let arrs: Vec<_> = ["u", "rsd", "frct", "flux"].iter().map(|s| b.array(s, n as u64)).collect();
    let phases = phase_functions(
        &mut b,
        "lu",
        &[("rhs", 8), ("jacld", 7), ("jacu", 7), ("l2norm", 7)],
        &arrs,
        n,
    );
    let a0 = arrs[0];
    let a1 = arrs[1];
    let sweeps = b.named_func("ssor_sweeps", move |f| {
        pat::recurrence(f, "blts_sweep", a1, n); // sequential
        pat::recurrence(f, "buts_sweep", a0, n); // sequential
    });
    let arrs2 = arrs.clone();
    let program = b.main(move |f| {
        for (k, &a) in arrs2.iter().enumerate() {
            pat::init(f, &format!("init{k}"), true, a, n); // 4 OMP
        }
        f.for_loop("ssor_iter", false, c(0), c(2), |f, _| {
            for &p in &phases {
                f.call(p); // 29 OMP loops across four phases
            }
            f.call(sweeps);
        });
    });
    Workload { program, meta: meta("LU") }
}

/// IS — integer sort: 11 OMP loops; the 3 key-counting (histogram) loops
/// carry data-dependent RAW and are not identifiable. The rank prefix-scan
/// is sequential in the base version.
pub fn is(scale: Scale) -> Workload {
    let n = scale.n(4000);
    let m = (n / 8).max(4);
    let mut b = ProgramBuilder::new("IS");
    let keys = b.array("key_array", n as u64);
    let keys2 = b.array("key_buff1", n as u64);
    let sorted = b.array("key_buff2", n as u64);
    let hist = b.array("bucket_size", m as u64);
    let hist2 = b.array("bucket_ptrs", m as u64);
    let hist3 = b.array("rank_hist", m as u64);
    let perm = b.array("perm", n as u64);
    let rank = b.array("rank", m as u64);
    let program = b.main(|f| {
        // 8 identifiable OMP loops:
        f.for_loop("gen_keys", true, c(0), c(n), |f, i| {
            f.store(keys, i, rnd(c(m)));
        });
        pat::fill_perm(f, "fill_perm", perm, n, 7);
        pat::elementwise(f, "shift_keys", true, keys, n);
        pat::gather(f, "load_buff", true, keys2, keys, perm, n);
        pat::scatter_perm(f, "scatter_buff", true, sorted, keys2, perm, n);
        pat::stencil(f, "smooth1", true, keys2, keys, n);
        pat::elementwise(f, "mask", true, sorted, n);
        pat::init(f, "clear_rank", true, rank, m);
        // 3 OMP histogram loops (parallelized with atomics; carried RAW):
        pat::histogram(f, "count_keys", true, hist, keys, m, n);
        pat::histogram(f, "count_buff", true, hist2, keys2, m, n);
        pat::histogram(f, "count_sorted", true, hist3, sorted, m, n);
        // sequential prefix scan of bucket sizes:
        pat::recurrence(f, "prefix_scan", rank, m);
    });
    Workload { program, meta: meta("IS") }
}

/// EP — embarrassingly parallel: one OMP loop of independent experiments,
/// plus an unannotated sequential tally.
pub fn ep(scale: Scale) -> Workload {
    let n = scale.n(20_000);
    let bins = 16i64;
    let mut b = ProgramBuilder::new("EP");
    let results = b.array("results", n as u64);
    let tally = b.array("q_tally", bins as u64);
    let sum = b.scalar("sx");
    let program = b.main(|f| {
        // The single annotated loop: each iteration writes only its own slot.
        f.for_loop("experiments", true, c(0), c(n), |f, i| {
            let x = rnd(c(1 << 20));
            let y = rnd(c(1 << 20));
            f.store(results, i, x + y);
        });
        // Unannotated: histogram + reduction over the results.
        pat::histogram(f, "tally", false, tally, results, bins, n);
        pat::reduction(f, "final_sum", false, sum, tally, bins);
    });
    Workload { program, meta: meta("EP") }
}

/// CG — conjugate gradient: 16 OMP loops, of which the 7 dot-product
/// reductions are not identifiable by a dependence test.
pub fn cg(scale: Scale) -> Workload {
    let n = scale.n(1500);
    let mut b = ProgramBuilder::new("CG");
    let x = b.array("x", n as u64);
    let z = b.array("z", n as u64);
    let p = b.array("p", n as u64);
    let q = b.array("q", n as u64);
    let r = b.array("r", n as u64);
    let colidx = b.array("colidx", n as u64);
    let rho = b.scalar("rho");
    let alpha = b.scalar("alpha");
    let beta = b.scalar("beta");
    let d = b.scalar("d");
    let rnorm = b.scalar("rnorm");
    let zeta1 = b.scalar("zeta1");
    let zeta2 = b.scalar("zeta2");
    let program = b.main(|f| {
        // 4 identifiable init loops.
        pat::init(f, "init_x", true, x, n);
        pat::init(f, "init_r", true, r, n);
        pat::init(f, "init_p", true, p, n);
        pat::fill_perm(f, "init_colidx", colidx, n, 11);
        f.for_loop("cg_iter", false, c(0), c(3), |f, _| {
            // 3 identifiable sparse-matvec gathers (indirect indices).
            pat::gather(f, "spmv_q", true, q, p, colidx, n);
            pat::gather(f, "spmv_z", true, z, x, colidx, n);
            pat::gather(f, "spmv_r", true, r, z, colidx, n);
            // 2 identifiable axpy updates.
            pat::elementwise(f, "axpy_x", true, x, n);
            pat::elementwise(f, "axpy_r", true, r, n);
            // 7 OMP reduction loops (dot products / norms): carried RAW.
            pat::reduction(f, "dot_rho", true, rho, r, n);
            pat::reduction(f, "dot_d", true, d, q, n);
            pat::reduction(f, "dot_alpha", true, alpha, p, n);
            pat::reduction(f, "dot_beta", true, beta, z, n);
            pat::reduction(f, "norm_r", true, rnorm, r, n);
            pat::reduction(f, "zeta_num", true, zeta1, x, n);
            pat::reduction(f, "zeta_den", true, zeta2, z, n);
        });
    });
    Workload { program, meta: meta("CG") }
}

/// MG — multigrid: 14 OMP loops, all DOALL stencils across grid levels.
pub fn mg(scale: Scale) -> Workload {
    let n = scale.n(1600);
    let mut b = ProgramBuilder::new("MG");
    let fine = b.array("u_fine", n as u64);
    let mid = b.array("u_mid", (n / 2).max(4) as u64);
    let coarse = b.array("u_coarse", (n / 4).max(4) as u64);
    let resid = b.array("resid", n as u64);
    let resid_mid = b.array("resid_mid", (n / 2).max(4) as u64);
    let nm = (n / 2).max(4);
    let nc = (n / 4).max(4);
    let program = b.main(|f| {
        pat::init(f, "init_fine", true, fine, n); // 1
        pat::init(f, "init_resid", true, resid, n); // 2
        f.for_loop("vcycle", false, c(0), c(2), |f, _| {
            pat::stencil(f, "resid_fine", true, resid, fine, n); // 3
            pat::stencil(f, "restrict_mid", true, mid, resid, nm); // 4
            pat::stencil(f, "smooth_mid", true, resid_mid, mid, nm); // 5
            pat::stencil(f, "restrict_coarse", true, coarse, resid_mid, nc); // 6
            pat::elementwise(f, "solve_coarse", true, coarse, nc); // 7
            pat::stencil(f, "prolong_mid", true, mid, coarse, nc); // 8
            pat::elementwise(f, "correct_mid", true, mid, nm); // 9
            pat::stencil(f, "smooth_mid2", true, resid_mid, mid, nm); // 10
            pat::stencil(f, "prolong_fine", true, fine, mid, nm); // 11
            pat::elementwise(f, "correct_fine", true, fine, n); // 12
            pat::stencil(f, "smooth_fine", true, resid, fine, n); // 13
            pat::elementwise(f, "apply_fine", true, fine, n); // 14
        });
    });
    Workload { program, meta: meta("MG") }
}

/// FT — 3-D FFT: 8 OMP loops; the checksum reduction is not identifiable.
pub fn ft(scale: Scale) -> Workload {
    let n = scale.n(2000);
    let mut b = ProgramBuilder::new("FT");
    let re = b.array("u_re", n as u64);
    let im = b.array("u_im", n as u64);
    let scratch = b.array("scratch", n as u64);
    let twiddle = b.array("twiddle", n as u64);
    let perm = b.array("bitrev", n as u64);
    let checksum = b.scalar("chk");
    let program = b.main(|f| {
        pat::init(f, "init_re", true, re, n); // 1
        pat::init(f, "init_im", true, im, n); // 2
        pat::init(f, "init_twiddle", true, twiddle, n); // 3
        pat::fill_perm(f, "bitrev_perm", perm, n, 13); // 4
        f.for_loop("fft_stage", false, c(0), c(2), |f, _| {
            pat::scatter_perm(f, "reorder", true, scratch, re, perm, n); // 5
            pat::stencil(f, "butterfly_re", true, re, scratch, n); // 6
            pat::gather(f, "twiddle_mul", true, im, twiddle, perm, n); // 7
        });
        pat::reduction(f, "checksum", true, checksum, re, n); // 8 (OMP reduction)
    });
    Workload { program, meta: meta("FT") }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::tracer::CollectTracer;

    #[test]
    fn cg_reduction_loops_have_multiple_iterations() {
        // Carried RAW on an accumulator requires ≥ 2 iterations; make sure
        // scaling never collapses the reduction loops.
        let w = cg(Scale(0.01));
        let vm = Interp::new(&w.program);
        let mut t = CollectTracer::new();
        vm.run_seq(&mut t);
        for l in w.program.loops.iter().filter(|l| l.name.starts_with("dot")) {
            let iters: Vec<u64> = t
                .events
                .iter()
                .filter_map(|e| match e {
                    dp_types::TraceEvent::LoopEnd { loop_id, iters, .. } if *loop_id == l.id => {
                        Some(*iters)
                    }
                    _ => None,
                })
                .collect();
            assert!(iters.iter().all(|&i| i >= 2), "{}: {iters:?}", l.name);
        }
    }

    #[test]
    fn ep_single_omp_loop() {
        let w = ep(Scale(0.01));
        assert_eq!(w.program.omp_loops().count(), 1);
        assert_eq!(w.program.loops.iter().filter(|l| !l.omp).count(), 2);
    }

    #[test]
    fn is_histograms_are_omp_annotated() {
        let w = is(Scale(0.02));
        let hist_loops: Vec<_> =
            w.program.loops.iter().filter(|l| l.name.starts_with("count_")).collect();
        assert_eq!(hist_loops.len(), 3);
        assert!(hist_loops.iter().all(|l| l.omp));
    }
}
