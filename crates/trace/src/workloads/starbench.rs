//! Miniature Starbench suite.
//!
//! Eleven programs matching the rows of Table I. Address footprints are
//! scaled ~10⁻² and access counts ~10⁻³ from the paper's columns, keeping
//! the per-program *ratios* (which program stresses the signature hardest)
//! intact; the Table I experiment scales signature sizes by the same 10⁻²,
//! so the load factor n/m — the accuracy driver per Formula 2 — matches
//! the paper's setup.
//!
//! Every program exists in a sequential and a pthread-style parallel
//! variant (`par = Some(nthreads)`, paper uses 4): workers cover disjoint
//! stripes of the main loops, share read-only inputs, and update global
//! accumulators inside explicit lock regions — the pattern Section V
//! requires for multi-threaded targets.

use super::patterns as pat;
use super::{Scale, Suite, Workload, WorkloadMeta};
use crate::builder::{c, imod, rnd, tid, FuncBuilder, ProgramBuilder};
use crate::ir::{ArrayId, Expr, FuncId, ScalarId};
use dp_types::MutexId;

fn meta(name: &str, par: Option<u32>) -> WorkloadMeta {
    WorkloadMeta {
        name: name.to_owned(),
        suite: Suite::Starbench,
        parallel: par.is_some(),
        nthreads: par.unwrap_or(0),
    }
}

/// Builds all 11 programs in paper order.
pub fn all(scale: Scale, par: Option<u32>) -> Vec<Workload> {
    vec![
        c_ray(scale, par),
        kmeans(scale, par),
        md5(scale, par),
        ray_rot(scale, par),
        rgbyuv(scale, par),
        rotate(scale, par),
        rot_cc(scale, par),
        streamcluster(scale, par),
        tinyjpeg(scale, par),
        bodytrack(scale, par),
        h264dec(scale, par),
    ]
}

/// Per-thread stripe `[tid*chunk, tid*chunk + chunk)` of `0..n`.
fn stripe(n: i64, t: u32) -> (Expr, Expr) {
    let chunk = n / t as i64;
    let lo = tid() * c(chunk);
    (lo.clone(), lo + c(chunk))
}

/// Wraps `body` either directly in `main` (sequential) or in a spawned
/// worker covering a stripe, with a locked update of `progress` at the end
/// of each worker (the explicit lock region of Figure 4).
struct Driver<B> {
    par: Option<u32>,
    worker: Option<FuncId>,
    n: i64,
    body: B,
}

fn driver<B: Fn(&mut FuncBuilder<'_>, Expr, Expr) + Copy>(
    b: &mut ProgramBuilder,
    par: Option<u32>,
    n: i64,
    progress: ScalarId,
    m: MutexId,
    body: B,
) -> Driver<B> {
    let worker = par.map(|t| {
        b.named_func("worker_thread", move |f| {
            let (lo, hi) = stripe(n, t);
            body(f, lo, hi);
            f.lock(m);
            let v = f.lds(progress) + c(1);
            f.store_scalar(progress, v);
            f.unlock(m);
        })
    });
    Driver { par, worker, n, body }
}

impl<B: Fn(&mut FuncBuilder<'_>, Expr, Expr)> Driver<B> {
    /// Emits the driving statements into `main`.
    fn emit(self, f: &mut FuncBuilder<'_>) {
        match (self.par, self.worker) {
            (Some(t), Some(w)) => f.spawn(t, w),
            _ => (self.body)(f, c(0), c(self.n)),
        }
    }
}

/// c-ray — ray tracer: read-only scene, per-pixel shading with
/// data-dependent scene reads. ~11 k addresses, ~1.9 M accesses.
pub fn c_ray(scale: Scale, par: Option<u32>) -> Workload {
    let npix = scale.n(10_000);
    let nscene = scale.n(1000);
    let mut b = ProgramBuilder::new("c-ray");
    let scene = b.array("scene", nscene as u64);
    let img = b.array("image", npix as u64);
    let progress = b.scalar("progress");
    let m = b.mutex();
    let body = move |f: &mut FuncBuilder<'_>, lo: Expr, hi: Expr| {
        f.for_loop("render", true, lo, hi, |f, i| {
            f.for_loop("objects", false, c(0), c(8), |f, j| {
                let sidx = imod(i.clone() * c(7) + j * c(131), c(nscene));
                let v = f.ld(scene, sidx) + f.ld(img, i.clone());
                f.store(img, i.clone(), v);
            });
        });
    };
    let run = driver(&mut b, par, npix, progress, m, body);
    let program = b.main(|f| {
        pat::init(f, "init_scene", true, scene, nscene);
        pat::banded(f, "shade_stage", true, img, npix, 8);
        f.for_loop("frames", false, c(0), c(10), |f, _| {
            // re-shade each frame
            pat::elementwise(f, "fade", true, img, npix);
        });
        run.emit(f);
    });
    Workload { program, meta: meta("c-ray", par) }
}

/// kmeans — assignment (argmin over centroids) plus accumulation;
/// parallel variant privatizes per-thread partial sums.
pub fn kmeans(scale: Scale, par: Option<u32>) -> Workload {
    let npoints = scale.n(6000);
    let k = 16i64;
    let mut b = ProgramBuilder::new("kmeans");
    let points = b.array("points", npoints as u64);
    let assign = b.array("membership", npoints as u64);
    let cents = b.array("clusters", k as u64);
    let sums = b.array("partial_sums", (k * par.map(|t| t as i64).unwrap_or(1)) as u64);
    let progress = b.scalar("delta");
    let m = b.mutex();
    let body = move |f: &mut FuncBuilder<'_>, lo: Expr, hi: Expr| {
        f.for_loop("assign", true, lo, hi, |f, i| {
            let pv = f.ld(points, i.clone());
            f.for_loop("argmin", false, c(0), c(k), |f, j| {
                let d = f.ld(cents, j.clone()) - pv.clone();
                let best = f.ld(assign, i.clone());
                f.store(assign, i.clone(), crate::builder::emin(best, d));
            });
            // accumulate into the (thread-private in parallel mode) sums
            let slot = imod(pv.clone(), c(k)) + tid() * c(k);
            let s = f.ld(sums, slot.clone()) + pv;
            f.store(sums, slot, s);
        });
    };
    let run = driver(&mut b, par, npoints, progress, m, body);
    let program = b.main(|f| {
        pat::init(f, "init_points", true, points, npoints);
        pat::banded(f, "normalize", true, points, npoints, 8);
        pat::init(f, "init_clusters", true, cents, k);
        f.for_loop("iterate", false, c(0), c(8), |f, _| {
            pat::elementwise(f, "recenter", true, cents, k);
        });
        run.emit(f);
        // host reduces the partial sums (cross-thread RAW in parallel mode)
        pat::reduction(f, "reduce_sums", false, progress, sums, k);
    });
    Workload { program, meta: meta("kmeans", par) }
}

/// md5 — tight RAW chains through four state scalars over message blocks.
pub fn md5(scale: Scale, par: Option<u32>) -> Workload {
    let nmsg = scale.n(2500);
    let mut b = ProgramBuilder::new("md5");
    let msg = b.array("message", nmsg as u64);
    let sine = b.array("sine_table", 64);
    let digest = b.array("digest", 4 * par.map(|t| t as i64).unwrap_or(1) as u64);
    let progress = b.scalar("done_blocks");
    let m = b.mutex();
    let body = move |f: &mut FuncBuilder<'_>, lo: Expr, hi: Expr| {
        // each "iteration" hashes one 16-word block
        f.for_loop("blocks", true, lo, hi, |f, blk| {
            f.for_loop("rounds", false, c(0), c(16), |f, r| {
                let w = f.ld(msg, imod(blk.clone() * c(16) + r.clone(), c(nmsg)));
                let t = f.ld(sine, imod(r, c(64)));
                let slot = tid() * c(4); // state word a (per-thread lane)
                let a = f.ld(digest, slot.clone());
                f.store(digest, slot, a + w * t);
            });
        });
    };
    let nblocks = (nmsg / 16).max(4) * 6; // six passes over the message
    let run = driver(&mut b, par, nblocks, progress, m, body);
    let program = b.main(|f| {
        pat::init(f, "init_msg", true, msg, nmsg);
        pat::banded(f, "pad_block", true, msg, nmsg, 6);
        pat::init(f, "init_sine", true, sine, 64);
        run.emit(f);
    });
    Workload { program, meta: meta("md5", par) }
}

/// ray-rot — c-ray followed by a rotation (gather with computed indices).
pub fn ray_rot(scale: Scale, par: Option<u32>) -> Workload {
    let npix = scale.n(3500);
    let nscene = scale.n(500);
    let mut b = ProgramBuilder::new("ray-rot");
    let scene = b.array("scene", nscene as u64);
    let img = b.array("image", npix as u64);
    let rot = b.array("rotated", npix as u64);
    let progress = b.scalar("progress");
    let m = b.mutex();
    let body = move |f: &mut FuncBuilder<'_>, lo: Expr, hi: Expr| {
        f.for_loop("shade", true, lo.clone(), hi.clone(), |f, i| {
            f.for_loop("bounce", false, c(0), c(6), |f, j| {
                let sidx = imod(i.clone() * c(13) + j * c(37), c(nscene));
                let v = f.ld(scene, sidx) + f.ld(img, i.clone());
                f.store(img, i.clone(), v);
            });
        });
        f.for_loop("rotate", true, lo, hi, |f, i| {
            let srcidx = imod(i.clone() * c(31) + c(5), c(npix));
            let v = f.ld(img, srcidx);
            f.store(rot, i, v);
        });
    };
    let run = driver(&mut b, par, npix, progress, m, body);
    let program = b.main(|f| {
        pat::init(f, "init_scene", true, scene, nscene);
        pat::banded(f, "filter_stage", true, rot, npix, 8);
        f.for_loop("frames", false, c(0), c(14), |f, _| {
            pat::elementwise(f, "tonemap", true, img, npix);
        });
        run.emit(f);
    });
    Workload { program, meta: meta("ray-rot", par) }
}

/// rgbyuv — colour-space conversion: 6 planes, pure streaming DOALL.
/// Large address footprint, few accesses per address (hardest signature
/// case, like the paper's high-FPR rows).
pub fn rgbyuv(scale: Scale, par: Option<u32>) -> Workload {
    let npix = scale.n(10_500);
    let mut b = ProgramBuilder::new("rgbyuv");
    let planes: Vec<ArrayId> =
        ["r", "g", "b", "y", "u", "v"].iter().map(|s| b.array(s, npix as u64)).collect();
    let (r, g, bl, y, u, v) = (planes[0], planes[1], planes[2], planes[3], planes[4], planes[5]);
    let progress = b.scalar("frames_done");
    let m = b.mutex();
    let body = move |f: &mut FuncBuilder<'_>, lo: Expr, hi: Expr| {
        f.for_loop("convert", true, lo, hi, |f, i| {
            let rr = f.ld(r, i.clone());
            let gg = f.ld(g, i.clone());
            let bb = f.ld(bl, i.clone());
            f.store(y, i.clone(), rr.clone() * c(66) + gg.clone() * c(129) + bb.clone() * c(25));
            f.store(u, i.clone(), rr.clone() - gg.clone());
            f.store(v, i, bb - gg);
        });
    };
    let run = driver(&mut b, par, npix, progress, m, body);
    let program = b.main(|f| {
        pat::init(f, "init_r", true, r, npix);
        pat::init(f, "init_g", true, g, npix);
        pat::init(f, "init_b", true, bl, npix);
        pat::banded(f, "gamma_r", true, r, npix, 16);
        pat::banded(f, "gamma_g", true, g, npix, 16);
        f.for_loop("frames", false, c(0), c(3), |f, _| {
            pat::elementwise(f, "brighten", true, r, npix);
        });
        run.emit(f);
    });
    Workload { program, meta: meta("rgbyuv", par) }
}

/// rotate — image rotation: gather through a computed index map.
pub fn rotate(scale: Scale, par: Option<u32>) -> Workload {
    let npix = scale.n(15_500);
    let mut b = ProgramBuilder::new("rotate");
    let src = b.array("src_img", npix as u64);
    let dst = b.array("dst_img", npix as u64);
    let progress = b.scalar("frames_done");
    let m = b.mutex();
    let body = move |f: &mut FuncBuilder<'_>, lo: Expr, hi: Expr| {
        f.for_loop("rotate", true, lo, hi, |f, i| {
            let j = imod(i.clone() * c(101) + c(17), c(npix));
            let vv = f.ld(src, j);
            f.store(dst, i, vv);
        });
    };
    let run = driver(&mut b, par, npix, progress, m, body);
    let program = b.main(|f| {
        pat::init(f, "init_src", true, src, npix);
        pat::banded(f, "sharpen", true, src, npix, 12);
        f.for_loop("frames", false, c(0), c(11), |f, _| {
            pat::elementwise(f, "pan", true, src, npix);
        });
        run.emit(f);
    });
    Workload { program, meta: meta("rotate", par) }
}

/// rot-cc — rotate then colour-convert (two dependent stages).
pub fn rot_cc(scale: Scale, par: Option<u32>) -> Workload {
    let npix = scale.n(15_750);
    let mut b = ProgramBuilder::new("rot-cc");
    let src = b.array("src_img", npix as u64);
    let mid = b.array("rotated", npix as u64);
    let luma = b.array("luma", npix as u64);
    let chroma = b.array("chroma", npix as u64);
    let progress = b.scalar("frames_done");
    let m = b.mutex();
    let body = move |f: &mut FuncBuilder<'_>, lo: Expr, hi: Expr| {
        f.for_loop("rot_stage", true, lo.clone(), hi.clone(), |f, i| {
            let j = imod(i.clone() * c(89) + c(3), c(npix));
            let vv = f.ld(src, j);
            f.store(mid, i, vv);
        });
        f.for_loop("cc_stage", true, lo, hi, |f, i| {
            let vv = f.ld(mid, i.clone());
            f.store(luma, i.clone(), vv.clone() * c(77));
            f.store(chroma, i, vv * c(-21));
        });
    };
    let run = driver(&mut b, par, npix, progress, m, body);
    let program = b.main(|f| {
        pat::init(f, "init_src", true, src, npix);
        pat::banded(f, "cc_luma", true, luma, npix, 8);
        pat::banded(f, "cc_chroma", true, chroma, npix, 8);
        f.for_loop("frames", false, c(0), c(4), |f, _| {
            pat::elementwise(f, "pan", true, src, npix);
        });
        run.emit(f);
    });
    Workload { program, meta: meta("rot-cc", par) }
}

/// streamcluster — tiny address set (~86), heavy reuse: repeated distance
/// evaluations against a small working set.
pub fn streamcluster(scale: Scale, par: Option<u32>) -> Workload {
    let npts = scale.n(64);
    let ncent = scale.n(16);
    let mut b = ProgramBuilder::new("streamcluster");
    let pts = b.array("points", npts as u64);
    let cent = b.array("centers", ncent as u64);
    let cost = b.scalar("total_cost");
    let m = b.mutex();
    let body = move |f: &mut FuncBuilder<'_>, lo: Expr, hi: Expr| {
        f.for_loop("gain_pass", false, c(0), c(12), |f, _| {
            f.for_loop("points", true, lo.clone(), hi.clone(), |f, i| {
                let p = f.ld(pts, i.clone());
                f.for_loop("centers", false, c(0), c(ncent), |f, j| {
                    let d = f.ld(cent, j) - p.clone();
                    f.store(pts, i.clone(), crate::builder::emax(p.clone(), d));
                });
            });
        });
    };
    let run = driver(&mut b, par, npts, cost, m, body);
    let program = b.main(|f| {
        pat::init(f, "init_points", true, pts, npts);
        pat::init(f, "init_centers", true, cent, ncent);
        run.emit(f);
    });
    Workload { program, meta: meta("streamcluster", par) }
}

/// tinyjpeg — few hundred addresses (tables), tens of thousands of
/// accesses: table-driven block decoding.
pub fn tinyjpeg(scale: Scale, par: Option<u32>) -> Workload {
    let ntab = scale.n(360);
    let nblocks = scale.n(1440);
    let mut b = ProgramBuilder::new("tinyjpeg");
    let huff = b.array("huff_table", ntab as u64);
    let quant = b.array("quant_table", 64);
    let out = b.scalar("pixel_sink");
    let m = b.mutex();
    let body = move |f: &mut FuncBuilder<'_>, lo: Expr, hi: Expr| {
        f.for_loop("blocks", true, lo, hi, |f, blk| {
            f.for_loop("coeffs", false, c(0), c(8), |f, k| {
                let code = f.ld(huff, imod(blk.clone() * c(19) + k.clone() * c(7), c(ntab)));
                let q = f.ld(quant, imod(k, c(64)));
                let acc = f.lds(out) + code * q;
                f.store_scalar(out, acc);
            });
        });
    };
    let run = driver(&mut b, par, nblocks, out, m, body);
    let program = b.main(|f| {
        pat::init(f, "init_huff", true, huff, ntab);
        pat::banded(f, "build_codes", true, huff, ntab, 12);
        pat::init(f, "init_quant", true, quant, 64);
        run.emit(f);
    });
    Workload { program, meta: meta("tinyjpeg", par) }
}

/// bodytrack — particle filter: the largest access count of the suite.
pub fn bodytrack(scale: Scale, par: Option<u32>) -> Workload {
    let nparticles = scale.n(40_000);
    let nweights = scale.n(4000);
    let mut b = ProgramBuilder::new("bodytrack");
    let particles = b.array("particles", nparticles as u64);
    let weights = b.array("weights", nweights as u64);
    let progress = b.scalar("frames_done");
    let m = b.mutex();
    let body = move |f: &mut FuncBuilder<'_>, lo: Expr, hi: Expr| {
        f.for_loop("frame", false, c(0), c(20), |f, _| {
            f.for_loop("particles", true, lo.clone(), hi.clone(), |f, i| {
                let p = f.ld(particles, i.clone());
                let w = f.ld(weights, imod(p.clone(), c(nweights)));
                f.store(particles, i.clone(), p + w + rnd(c(16)));
            });
        });
    };
    let run = driver(&mut b, par, nparticles, progress, m, body);
    let program = b.main(|f| {
        pat::init(f, "init_particles", true, particles, nparticles);
        pat::init(f, "init_weights", true, weights, nweights);
        pat::banded(f, "observe", true, weights, nweights, 24);
        run.emit(f);
    });
    Workload { program, meta: meta("bodytrack", par) }
}

/// h264dec — macroblock decoding: many distinct statements and loops →
/// by far the most distinct dependences (paper: 31 138).
pub fn h264dec(scale: Scale, par: Option<u32>) -> Workload {
    let npix = scale.n(8000);
    let nref = scale.n(700);
    let mb = 64i64;
    let nmb = (npix / mb).max(1);
    let mut b = ProgramBuilder::new("h264dec");
    let frame = b.array("frame", npix as u64);
    let refs = b.array("ref_frame", nref as u64);
    let residual = b.array("residual", npix as u64);
    let progress = b.scalar("mbs_done");
    let m = b.mutex();
    let body = move |f: &mut FuncBuilder<'_>, lo: Expr, hi: Expr| {
        f.for_loop("macroblocks", true, lo, hi, |f, blk| {
            let base = blk.clone() * c(mb);
            // intra prediction: read left neighbour pixel (carried across
            // pixels of one MB, but MBs are independent here)
            f.for_loop("intra_pred", false, c(1), c(mb), |f, px| {
                let idx = imod(base.clone() + px.clone(), c(npix));
                let left = f.ld(frame, imod(base.clone() + px.clone() - c(1), c(npix)));
                f.store(frame, idx, left);
            });
            // motion compensation: gather from the reference frame
            f.for_loop("mocomp", false, c(0), c(mb), |f, px| {
                let idx = imod(base.clone() + px.clone(), c(npix));
                let mv = imod(blk.clone() * c(3) + px, c(nref));
                let r = f.ld(refs, mv);
                let d = f.ld(residual, idx.clone());
                f.store(frame, idx, r + d);
            });
            // deblocking: smooth within the MB
            f.for_loop("deblock", false, c(0), c(mb) - c(1), |f, px| {
                let idx = imod(base.clone() + px.clone(), c(npix));
                let nxt = f.ld(frame, imod(base.clone() + px + c(1), c(npix)));
                let cur = f.ld(frame, idx.clone());
                f.store(frame, idx, cur + nxt);
            });
        });
    };
    let run = driver(&mut b, par, nmb, progress, m, body);
    let program = b.main(|f| {
        pat::init(f, "init_ref", true, refs, nref);
        pat::init(f, "init_residual", true, residual, npix);
        pat::banded(f, "entropy", true, residual, npix, 48);
        pat::banded(f, "idct", true, frame, npix, 48);
        f.for_loop("frames", false, c(0), c(3), |f, _| {
            pat::elementwise(f, "reconstruct", true, residual, npix);
        });
        run.emit(f);
    });
    Workload { program, meta: meta("h264dec", par) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::tracer::CollectTracer;
    use dp_types::FxHashSet;

    /// Address/access footprints must preserve the paper's per-program
    /// ordering for the key extremes.
    #[test]
    fn footprint_ordering_matches_table1() {
        let s = Scale(1.0);
        let addrs = |w: &Workload| w.program.address_footprint();
        let rg = rgbyuv(s, None);
        let sc = streamcluster(s, None);
        let tj = tinyjpeg(s, None);
        let bt = bodytrack(s, None);
        // rgbyuv/rot-cc have the largest footprints, streamcluster and
        // tinyjpeg the smallest — as in Table I.
        assert!(addrs(&rg) > addrs(&bt) / 2);
        assert!(addrs(&sc) < 200);
        assert!(addrs(&tj) < 1000);
        assert!(addrs(&bt) > 40_000);
    }

    #[test]
    fn access_counts_scale_with_scale() {
        let count = |sc: f64| {
            let w = rotate(Scale(sc), None);
            let vm = Interp::new(&w.program);
            let mut t = CollectTracer::new();
            vm.run_seq(&mut t);
            t.events.iter().filter(|e| e.as_access().is_some()).count()
        };
        let c1 = count(0.1);
        let c2 = count(0.2);
        assert!(c2 > c1 * 3 / 2, "{c1} {c2}");
    }

    #[test]
    fn parallel_variant_strides_are_disjoint_per_thread() {
        let w = rotate(Scale(0.05), Some(4));
        let vm = Interp::new(&w.program);
        use dp_types::{ThreadId, TraceEvent};
        use parking_lot::Mutex;
        #[derive(Default)]
        struct F(Mutex<Vec<TraceEvent>>);
        impl crate::tracer::TracerFactory for F {
            type Tracer = CollectTracer;
            fn tracer(&self, _t: ThreadId) -> CollectTracer {
                CollectTracer::new()
            }
            fn join(&self, _t: ThreadId, tr: CollectTracer) {
                self.0.lock().extend(tr.events);
            }
        }
        let fac = F::default();
        vm.run_mt(&fac);
        let evs = fac.0.into_inner();
        // dst_img writes: each (thread, addr) pair unique to one thread
        let dst = &w.program.arrays[1];
        assert_eq!(w.program.interner.resolve(dst.name), "dst_img");
        let mut owner: std::collections::HashMap<u64, u16> = Default::default();
        for a in evs.iter().filter_map(|e| e.as_access()) {
            if a.kind.is_write() && a.addr >= dst.base && a.addr < dst.base + dst.len * 8 {
                let prev = owner.insert(a.addr, a.thread);
                if let Some(p) = prev {
                    assert_eq!(p, a.thread, "stripe overlap at {:#x}", a.addr);
                }
            }
        }
        let threads: FxHashSet<_> = owner.values().copied().collect();
        assert_eq!(threads.len(), 4);
    }

    #[test]
    fn locked_progress_updates_happen_once_per_worker() {
        let w = tinyjpeg(Scale(0.1), Some(4));
        let vm = Interp::new(&w.program);
        use dp_types::ThreadId;
        use parking_lot::Mutex;
        #[derive(Default)]
        struct F(Mutex<u64>);
        impl crate::tracer::TracerFactory for F {
            type Tracer = CollectTracer;
            fn tracer(&self, _t: ThreadId) -> CollectTracer {
                CollectTracer::new()
            }
            fn join(&self, _t: ThreadId, tr: CollectTracer) {
                *self.0.lock() += tr.events.len() as u64;
            }
        }
        let fac = F::default();
        vm.run_mt(&fac);
        // Deterministic final value despite concurrency: the lock works.
        let sink = w
            .program
            .scalars
            .iter()
            .position(|s| w.program.interner.resolve(s.name) == "pixel_sink")
            .unwrap();
        let _ = sink;
        assert!(*fac.0.lock() > 0);
    }
}
