//! Synthetic stress programs.
//!
//! - [`uniform`] — a configurable stream over `n_addrs` distinct addresses
//!   with `n_accesses` total accesses, for validating Formula 2 (E2) and
//!   for the store microbenchmarks (E10).
//! - [`skewed`] — Zipf-flavoured reuse: a few very hot addresses, a long
//!   cold tail. This is the load-imbalance pattern that motivates the
//!   hot-address redistribution of Section IV-A.
//! - [`racy_counter`] / [`locked_counter`] — the minimal pair for the
//!   data-race experiment (E12): identical programs except that one
//!   protects its shared counter with a lock and the other does not.
//! - [`lifetime_reuse`] — allocates, frees, and reallocates the same
//!   address range, exercising variable-lifetime analysis (Section III-B).

use super::{Scale, Suite, Workload, WorkloadMeta};
use crate::builder::{c, imod, rnd, tid, ProgramBuilder};

fn meta(name: &str, parallel: bool, nthreads: u32) -> WorkloadMeta {
    WorkloadMeta { name: name.to_owned(), suite: Suite::Synthetic, parallel, nthreads }
}

/// Reads/writes spread uniformly over `n_addrs` addresses, `n_accesses`
/// accesses in total (half reads, half writes, random order).
pub fn uniform(n_addrs: u64, n_accesses: u64) -> Workload {
    let mut b = ProgramBuilder::new("uniform");
    let a = b.array("data", n_addrs.max(4));
    let n = (n_accesses / 2).max(2) as i64;
    let len = n_addrs.max(4) as i64;
    let program = b.main(|f| {
        f.for_loop("stream", false, c(0), c(n), |f, _| {
            let i = rnd(c(len));
            let v = f.ld(a, i.clone());
            f.store(a, rnd(c(len)), v + c(1));
        });
    });
    Workload { program, meta: meta("uniform", false, 0) }
}

/// 90% of accesses hit `n_hot` addresses, the rest spread over the tail.
pub fn skewed(n_addrs: u64, n_hot: u64, n_accesses: u64) -> Workload {
    let mut b = ProgramBuilder::new("skewed");
    let a = b.array("data", n_addrs.max(8));
    let len = n_addrs.max(8) as i64;
    let hot = n_hot.clamp(1, n_addrs) as i64;
    let n = (n_accesses / 2).max(2) as i64;
    let program = b.main(|f| {
        f.for_loop("stream", false, c(0), c(n), |f, _| {
            // 9 in 10 iterations touch the hot set.
            let coin = rnd(c(10));
            f.if_(
                crate::builder::lt(coin, c(9)),
                |f| {
                    let i = rnd(c(hot));
                    let v = f.ld(a, i.clone());
                    f.store(a, i, v + c(1));
                },
                |f| {
                    let i = rnd(c(len));
                    let v = f.ld(a, i.clone());
                    f.store(a, i, v + c(1));
                },
            );
        });
    });
    Workload { program, meta: meta("skewed", false, 0) }
}

/// Like [`skewed`], but the hot addresses are `stride` elements apart so
/// they all land on the *same* profiling worker under modulo routing —
/// the worst-case imbalance that hot-address redistribution
/// (Section IV-A) exists to fix.
pub fn skewed_strided(n_addrs: u64, n_hot: u64, n_accesses: u64, stride: u64) -> Workload {
    let len = n_addrs.max(n_hot * stride + 1) as i64;
    let mut b = ProgramBuilder::new("skewed-strided");
    let a = b.array("data", len as u64);
    let hot = n_hot.max(1) as i64;
    let st = stride.max(1) as i64;
    let n = (n_accesses / 2).max(2) as i64;
    let program = b.main(|f| {
        f.for_loop("stream", false, c(0), c(n), |f, _| {
            let coin = rnd(c(10));
            f.if_(
                crate::builder::lt(coin, c(9)),
                |f| {
                    let i = rnd(c(hot)) * c(st);
                    let v = f.ld(a, i.clone());
                    f.store(a, i, v + c(1));
                },
                |f| {
                    let i = rnd(c(len));
                    let v = f.ld(a, i.clone());
                    f.store(a, i, v + c(1));
                },
            );
        });
    });
    Workload { program, meta: meta("skewed-strided", false, 0) }
}

/// `nthreads` threads increment a shared counter `iters` times each
/// **without** any lock — a textbook data race. The profiler should
/// observe timestamp reversals on the counter's address (Section V-B).
pub fn racy_counter(scale: Scale, nthreads: u32) -> Workload {
    let iters = scale.n(20_000);
    let mut b = ProgramBuilder::new("racy-counter");
    let counter = b.scalar("shared_counter");
    let pad = b.array("private_pad", nthreads.max(1) as u64);
    let worker = b.named_func("racy_worker", move |f| {
        f.for_loop("bump", false, c(0), c(iters), |f, _| {
            let v = f.lds(counter) + c(1);
            f.store_scalar(counter, v);
            // some private traffic so chunks interleave realistically
            let t = f.ld(pad, tid()) + c(1);
            f.store(pad, tid(), t);
        });
    });
    let program = b.main(|f| f.spawn(nthreads, worker));
    Workload { program, meta: meta("racy-counter", true, nthreads) }
}

/// Same as [`racy_counter`] but the increment sits in a lock region: the
/// dependences are enforced and no reversal may be reported.
pub fn locked_counter(scale: Scale, nthreads: u32) -> Workload {
    let iters = scale.n(20_000);
    let mut b = ProgramBuilder::new("locked-counter");
    let counter = b.scalar("shared_counter");
    let pad = b.array("private_pad", nthreads.max(1) as u64);
    let m = b.mutex();
    let worker = b.named_func("locked_worker", move |f| {
        f.for_loop("bump", false, c(0), c(iters), |f, _| {
            f.lock(m);
            let v = f.lds(counter) + c(1);
            f.store_scalar(counter, v);
            f.unlock(m);
            let t = f.ld(pad, tid()) + c(1);
            f.store(pad, tid(), t);
        });
    });
    let program = b.main(|f| f.spawn(nthreads, worker));
    Workload { program, meta: meta("locked-counter", true, nthreads) }
}

/// Writes array `gen0`, frees it, then allocates `gen1` over the same
/// addresses and reads it. Without lifetime analysis the profiler would
/// fabricate RAW dependences from `gen1`'s reads back to `gen0`'s writes.
pub fn lifetime_reuse(n: u64) -> Workload {
    let n = n.max(8);
    let mut b = ProgramBuilder::new("lifetime-reuse");
    let gen0 = b.array("gen0", n);
    let gen1 = b.array_reusing("gen1", gen0);
    let sink = b.scalar("sink");
    let ni = n as i64;
    let program = b.main(|f| {
        f.for_loop("write_gen0", false, c(0), c(ni), |f, i| {
            f.store(gen0, i.clone(), i);
        });
        f.free(gen0);
        f.for_loop("read_gen1", false, c(0), c(ni), |f, i| {
            let v = f.lds(sink) + f.ld(gen1, imod(i, c(ni)));
            f.store_scalar(sink, v);
        });
    });
    Workload { program, meta: meta("lifetime-reuse", false, 0) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::tracer::CollectTracer;

    #[test]
    fn uniform_touches_requested_volume() {
        let w = uniform(500, 10_000);
        let vm = Interp::new(&w.program);
        let mut t = CollectTracer::new();
        vm.run_seq(&mut t);
        let n = t.events.iter().filter(|e| e.as_access().is_some()).count();
        assert!((10_000..13_000).contains(&n), "{n}");
    }

    #[test]
    fn skewed_concentrates_on_hot_set() {
        let w = skewed(10_000, 4, 40_000);
        let vm = Interp::new(&w.program);
        let mut t = CollectTracer::new();
        vm.run_seq(&mut t);
        let base = w.program.arrays[0].base;
        let hot_end = base + 4 * 8;
        let (mut hot, mut total) = (0u64, 0u64);
        for a in t.events.iter().filter_map(|e| e.as_access()) {
            total += 1;
            if a.addr >= base && a.addr < hot_end {
                hot += 1;
            }
        }
        assert!(hot * 10 > total * 7, "hot {hot} / total {total}");
    }

    #[test]
    fn lifetime_reuse_frees_between_generations() {
        use dp_types::TraceEvent;
        let w = lifetime_reuse(32);
        let vm = Interp::new(&w.program);
        let mut t = CollectTracer::new();
        vm.run_seq(&mut t);
        let dealloc_pos =
            t.events.iter().position(|e| matches!(e, TraceEvent::Dealloc { .. })).unwrap();
        // all writes before the dealloc, all gen1 reads after
        let writes_after = t.events[dealloc_pos..]
            .iter()
            .filter_map(|e| e.as_access())
            .filter(|a| a.kind.is_write())
            .count();
        // only the scalar accumulator writes remain after the free
        let scalar_addr = w.program.scalars[0].addr;
        assert!(t.events[dealloc_pos..]
            .iter()
            .filter_map(|e| e.as_access())
            .filter(|a| a.kind.is_write())
            .all(|a| a.addr == scalar_addr));
        assert!(writes_after > 0);
    }
}
