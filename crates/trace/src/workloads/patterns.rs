//! Reusable loop patterns with known dependence structure.
//!
//! Each helper emits one static loop into a function body and documents
//! what a dependence test must conclude about it:
//!
//! | pattern | loop-carried RAW? | OpenMP-parallelizable? | identified by dep test? |
//! |---|---|---|---|
//! | [`init`] | no | yes | yes |
//! | [`elementwise`] | no | yes | yes |
//! | [`stencil`] | no (reads prior loop's writes) | yes | yes |
//! | [`gather`] | no | yes | yes |
//! | [`scatter_perm`] | no (permutation indices) | yes | yes |
//! | [`reduction`] | yes (on the accumulator) | yes, via `reduction` clause | **no** |
//! | [`histogram`] | yes (data-dependent) | yes, via `atomic` | **no** |
//! | [`recurrence`] | yes | no | no |
//!
//! The gap between "OpenMP-parallelizable" and "identified by a dependence
//! test" is exactly the `# OMP` − `# identified` difference of Table II.

use crate::builder::{c, imod, FuncBuilder};
use crate::ir::{ArrayId, Expr, ScalarId};
use dp_types::LoopId;

/// `A[i] = expr(i)` — pure initialization, trivially parallel.
pub fn init(f: &mut FuncBuilder<'_>, name: &str, omp: bool, a: ArrayId, n: i64) -> LoopId {
    f.for_loop(name, omp, c(0), c(n), |f, i| {
        f.store(a, i.clone(), i * c(3) + c(1));
    })
}

/// `A[i] = A[i] op k` — read-then-write of the same element; only
/// intra-iteration WAR, still parallel.
pub fn elementwise(f: &mut FuncBuilder<'_>, name: &str, omp: bool, a: ArrayId, n: i64) -> LoopId {
    f.for_loop(name, omp, c(0), c(n), |f, i| {
        let v = f.ld(a, i.clone()) + c(7);
        f.store(a, i, v);
    })
}

/// `D[i] = S[i] + S[(i+1) mod n]` — reads a *different* array written by an
/// earlier loop: loop-independent RAW only; parallel.
pub fn stencil(
    f: &mut FuncBuilder<'_>,
    name: &str,
    omp: bool,
    dst: ArrayId,
    src: ArrayId,
    n: i64,
) -> LoopId {
    f.for_loop(name, omp, c(0), c(n), |f, i| {
        let v = f.ld(src, i.clone()) + f.ld(src, imod(i.clone() + c(1), c(n)));
        f.store(dst, i, v);
    })
}

/// `D[i] = S[IDX[i]]` — dynamically calculated indices (the case static
/// analysis must approximate pessimistically); parallel.
pub fn gather(
    f: &mut FuncBuilder<'_>,
    name: &str,
    omp: bool,
    dst: ArrayId,
    src: ArrayId,
    idx: ArrayId,
    n: i64,
) -> LoopId {
    f.for_loop(name, omp, c(0), c(n), |f, i| {
        let j = f.ld(idx, i.clone());
        let v = f.ld(src, j);
        f.store(dst, i, v);
    })
}

/// `D[P[i]] = S[i]` where `P` holds a permutation — a scatter that *is*
/// parallel, but only a dynamic test can see it.
pub fn scatter_perm(
    f: &mut FuncBuilder<'_>,
    name: &str,
    omp: bool,
    dst: ArrayId,
    src: ArrayId,
    perm: ArrayId,
    n: i64,
) -> LoopId {
    f.for_loop(name, omp, c(0), c(n), |f, i| {
        let j = f.ld(perm, i.clone());
        let v = f.ld(src, i);
        f.store(dst, j, v);
    })
}

/// Fills `perm` with the permutation `i -> (i*stride) mod n` (`stride`
/// coprime with `n` guarantees bijectivity; pass e.g. a prime ≠ factors
/// of n).
pub fn fill_perm(
    f: &mut FuncBuilder<'_>,
    name: &str,
    perm: ArrayId,
    n: i64,
    stride: i64,
) -> LoopId {
    f.for_loop(name, true, c(0), c(n), |f, i| {
        f.store(perm, i.clone(), imod(i * c(stride), c(n)));
    })
}

/// `acc += S[i]` — loop-carried RAW on the accumulator: parallelizable in
/// OpenMP only via a `reduction` clause, so a dependence test must report
/// it *not* parallelizable. These are the loops DiscoPoP misses in IS, CG
/// and FT (Table II).
pub fn reduction(
    f: &mut FuncBuilder<'_>,
    name: &str,
    omp: bool,
    acc: ScalarId,
    src: ArrayId,
    n: i64,
) -> LoopId {
    f.for_loop(name, omp, c(0), c(n), |f, i| {
        let v = f.lds(acc) + f.ld(src, i);
        f.store_scalar(acc, v);
    })
}

/// `H[K[i] mod m] += 1` — data-dependent loop-carried RAW (keys repeat);
/// OpenMP parallelizes it with atomics, a dependence test rejects it.
pub fn histogram(
    f: &mut FuncBuilder<'_>,
    name: &str,
    omp: bool,
    hist: ArrayId,
    keys: ArrayId,
    m: i64,
    n: i64,
) -> LoopId {
    f.for_loop(name, omp, c(0), c(n), |f, i| {
        let k = imod(f.ld(keys, i), c(m));
        let v = f.ld(hist, k.clone()) + c(1);
        f.store(hist, k, v);
    })
}

/// `A[i] = A[i-1] + k` — a true recurrence; sequential in every version.
pub fn recurrence(f: &mut FuncBuilder<'_>, name: &str, a: ArrayId, n: i64) -> LoopId {
    f.for_loop(name, false, c(1), c(n), |f, i| {
        let v = f.ld(a, i.clone() - c(1)) + c(1);
        f.store(a, i, v);
    })
}

/// A parallel-range version of a loop body: iterates `lo..hi` given as
/// expressions (used by the pthread workload variants, where each thread
/// covers `[tid*n/T, (tid+1)*n/T)`).
pub fn range_elementwise(
    f: &mut FuncBuilder<'_>,
    name: &str,
    omp: bool,
    a: ArrayId,
    lo: Expr,
    hi: Expr,
) -> LoopId {
    f.for_loop(name, omp, lo, hi, |f, i| {
        let v = f.ld(a, i.clone()) + c(7);
        f.store(a, i, v);
    })
}

/// `bands` static loops, each owning one contiguous slice of `arr` and
/// touching it with its own source lines (`A[i] = A[i] + b`).
///
/// This models what large codebases look like to the profiler: many
/// distinct store/load sites, each covering a subset of the address
/// space (the paper's h264dec has 42 kLOC and 31 138 distinct
/// dependences). The per-band line diversity is what makes signature
/// collisions *observable* as false positives (wrong source line) and
/// false negatives (a small band's true pair vanishing entirely) in the
/// Table I experiment.
pub fn banded(
    f: &mut FuncBuilder<'_>,
    prefix: &str,
    omp: bool,
    arr: ArrayId,
    n: i64,
    bands: i64,
) -> Vec<LoopId> {
    let bands = bands.clamp(1, n.max(1));
    let chunk = (n / bands).max(1);
    let mut ids = Vec::with_capacity(bands as usize);
    for b in 0..bands {
        let lo = b * chunk;
        let hi = if b == bands - 1 { n } else { lo + chunk };
        ids.push(f.for_loop(&format!("{prefix}_band{b}"), omp, c(lo), c(hi), |f, i| {
            let v = f.ld(arr, i.clone()) + c(b + 1);
            f.store(arr, i, v);
        }));
        // A band-boundary fixup touching a single element: a dependence
        // pair with exactly ONE dynamic instance. Real programs are full
        // of such rare-path pairs, and they are precisely what signature
        // collisions erase — the false-negative mass of Table I.
        let v = f.ld(arr, c(lo)) * c(2);
        f.store(arr, c(lo), v);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::interp::Interp;
    use crate::tracer::{CollectTracer, NullTracer};

    #[test]
    fn scatter_perm_writes_every_element_once() {
        let n = 16i64;
        let mut b = ProgramBuilder::new("t");
        let src = b.array("src", n as u64);
        let dst = b.array("dst", n as u64);
        let perm = b.array("perm", n as u64);
        let p = b.main(|f| {
            init(f, "init", true, src, n);
            fill_perm(f, "perm", perm, n, 5);
            scatter_perm(f, "scatter", true, dst, src, perm, n);
        });
        let vm = Interp::new(&p);
        let mut t = CollectTracer::new();
        vm.run_seq(&mut t);
        // Each dst element written exactly once → the permutation is valid.
        let dst_base = p.arrays[dst as usize].base;
        let mut writes: Vec<_> = t
            .events
            .iter()
            .filter_map(|e| e.as_access())
            .filter(|a| a.kind.is_write() && a.addr >= dst_base && a.addr < dst_base + 8 * 16)
            .map(|a| a.addr)
            .collect();
        writes.sort_unstable();
        writes.dedup();
        assert_eq!(writes.len(), 16);
    }

    #[test]
    fn reduction_accumulates() {
        let n = 10i64;
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", n as u64);
        let s = b.scalar("acc");
        let p = b.main(|f| {
            init(f, "init", true, a, n); // a[i] = 3i+1
            reduction(f, "red", true, s, a, n);
        });
        let vm = Interp::new(&p);
        vm.run_seq(&mut NullTracer);
        let expect: i64 = (0..10).map(|i| 3 * i + 1).sum();
        assert_eq!(vm.scalar_value(s), expect);
    }

    #[test]
    fn histogram_counts_sum_to_n() {
        let n = 50i64;
        let m = 8i64;
        let mut b = ProgramBuilder::new("t");
        let keys = b.array("keys", n as u64);
        let hist = b.array("hist", m as u64);
        let p = b.main(|f| {
            init(f, "keys", true, keys, n);
            histogram(f, "hist", true, hist, keys, m, n);
        });
        let vm = Interp::new(&p);
        vm.run_seq(&mut NullTracer);
        let total: i64 = (0..m as usize).map(|i| vm.array_value(hist, i)).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn recurrence_chains() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        let p = b.main(|f| {
            recurrence(f, "rec", a, 8);
        });
        let vm = Interp::new(&p);
        vm.run_seq(&mut NullTracer);
        assert_eq!(vm.array_value(a, 7), 7);
        assert!(!p.loops[0].omp);
    }
}
