//! SPLASH-2x minis for communication-pattern detection (Figure 9).
//!
//! Four kernels with the four canonical shared-memory communication
//! topologies of the characterization study the paper's Section VII-B
//! compares against (Barrow-Williams et al., IISWC'09):
//!
//! | kernel | topology |
//! |---|---|
//! | [`water_spatial`] | ring nearest-neighbour (banded matrix, Figure 9) |
//! | [`ocean`] | 2-D grid nearest-neighbour (banded + off-diagonal bands) |
//! | [`fft`] | all-to-all transpose (dense matrix) |
//! | [`lu_contig`] | rotating one-to-many broadcast (dense columns) |
//!
//! All kernels synchronize with fork, barriers and one lock, so none of
//! them may trigger the profiler's race detection.

use super::{Scale, Suite, Workload, WorkloadMeta};
use crate::builder::{c, imod, tid, ProgramBuilder};

fn meta(name: &str, nthreads: u32) -> WorkloadMeta {
    WorkloadMeta { name: name.to_owned(), suite: Suite::Splash, parallel: true, nthreads }
}

/// All four communication kernels (for the comm-suite experiment).
pub fn comm_suite(scale: Scale, nthreads: u32) -> Vec<Workload> {
    vec![
        water_spatial(scale, nthreads),
        ocean(scale, nthreads),
        fft(scale, nthreads),
        lu_contig(scale, nthreads),
    ]
}

/// Builds the water-spatial mini with `nthreads` worker threads arranged
/// in a ring of spatial boxes.
pub fn water_spatial(scale: Scale, nthreads: u32) -> Workload {
    assert!(nthreads >= 2, "water-spatial needs at least two boxes");
    let box_elems = scale.n(2000);
    let steps = 4i64;
    let t = nthreads as i64;
    let total = box_elems * t;
    let mut b = ProgramBuilder::new("water-spatial");
    let mols = b.array("molecules", total as u64);
    let forces = b.array("forces", total as u64);
    let energy = b.scalar("global_energy");
    let m = b.mutex();

    let worker = b.named_func("water_worker", move |f| {
        let my_base = tid() * c(box_elems);
        f.for_loop("steps", false, c(0), c(steps), |f, _| {
            // Intra-box force computation (private to this thread).
            f.for_loop("intra_forces", true, c(0), c(box_elems), |f, i| {
                let idx = my_base.clone() + i;
                let v = f.ld(mols, idx.clone()) + c(3);
                f.store(forces, idx, v);
            });
            // Boundary exchange: read the *neighbour* box's edge
            // molecules (cross-thread RAW to tid±1, ring topology).
            f.for_loop("boundary", true, c(0), c(box_elems / 8), |f, i| {
                let right = imod((tid() + c(1)) * c(box_elems) + i.clone(), c(total));
                let left = imod((tid() + c(t - 1)) * c(box_elems) + i.clone(), c(total));
                let v = f.ld(mols, right) + f.ld(mols, left);
                let idx = my_base.clone() + i;
                let cur = f.ld(forces, idx.clone());
                f.store(forces, idx, cur + v);
            });
            f.barrier();
            // Position update: write own molecules (read next step by the
            // neighbours — the producer side of the pattern).
            f.for_loop("update", true, c(0), c(box_elems), |f, i| {
                let idx = my_base.clone() + i;
                let v = f.ld(forces, idx.clone());
                f.store(mols, idx, v);
            });
            // Locked global energy accumulation (all-to-all background).
            f.lock(m);
            let e = f.lds(energy) + f.ld(forces, my_base.clone());
            f.store_scalar(energy, e);
            f.unlock(m);
            f.barrier();
        });
    });

    let program = b.main(|f| {
        f.for_loop("init_mols", true, c(0), c(total), |f, i| {
            f.store(mols, i.clone(), i);
        });
        f.spawn(nthreads, worker);
    });
    Workload { program, meta: meta("water-spatial", nthreads) }
}

/// ocean — 2-D grid decomposition: each worker owns a tile of the grid
/// and reads the boundary rows/columns of its four grid neighbours
/// (non-wrapping edges). Communication: banded (east/west) plus
/// off-diagonal bands at distance `cols` (north/south).
pub fn ocean(scale: Scale, nthreads: u32) -> Workload {
    assert!(nthreads >= 4 && nthreads.is_multiple_of(2), "ocean needs an even thread grid >= 4");
    let cols = nthreads as i64 / 2; // 2 x (t/2) process grid
    let tile = scale.n(1500);
    let steps = 3i64;
    let t = nthreads as i64;
    let total = tile * t;
    let mut b = ProgramBuilder::new("ocean");
    let grid = b.array("grid", total as u64);
    let work = b.array("work", total as u64);
    let worker = b.named_func("ocean_worker", move |f| {
        let my_base = tid() * c(tile);
        f.for_loop("timestep", false, c(0), c(steps), |f, _| {
            // Relax own tile.
            f.for_loop("relax", true, c(0), c(tile), |f, i| {
                let idx = my_base.clone() + i;
                let v = f.ld(grid, idx.clone()) + c(1);
                f.store(work, idx, v);
            });
            // Read the boundary strips of the 4 grid neighbours (if they
            // exist; non-wrapping edges modelled with a same-tile fallback
            // through min/max clamping).
            f.for_loop("halo", true, c(0), c(tile / 8), |f, i| {
                let row = crate::builder::div(tid(), c(cols));
                let col = imod(tid(), c(cols));
                // east / west neighbours within the row:
                let east = crate::builder::emin(col.clone() + c(1), c(cols - 1));
                let west = crate::builder::emax(col.clone() - c(1), c(0));
                // north / south rows (clamped):
                let north = crate::builder::emax(row.clone() - c(1), c(0));
                let south = crate::builder::emin(row.clone() + c(1), c(1));
                let nb = |r: crate::ir::Expr, cl: crate::ir::Expr| (r * c(cols) + cl) * c(tile);
                let v = f.ld(grid, nb(row.clone(), east) + i.clone())
                    + f.ld(grid, nb(row.clone(), west) + i.clone())
                    + f.ld(grid, nb(north, col.clone()) + i.clone())
                    + f.ld(grid, nb(south, col) + i.clone());
                let idx = my_base.clone() + i;
                let cur = f.ld(work, idx.clone());
                f.store(work, idx, cur + v);
            });
            f.barrier();
            // Publish own tile for the next step.
            f.for_loop("publish", true, c(0), c(tile), |f, i| {
                let idx = my_base.clone() + i;
                let v = f.ld(work, idx.clone());
                f.store(grid, idx, v);
            });
            f.barrier();
        });
    });
    let program = b.main(|f| {
        f.for_loop("init_grid", true, c(0), c(total), |f, i| {
            f.store(grid, i.clone(), i);
        });
        f.spawn(nthreads, worker);
    });
    Workload { program, meta: meta("ocean", nthreads) }
}

/// fft — transpose-based FFT: every thread writes its own block, then
/// reads a strided slice of *every* block (the transpose). Communication:
/// dense all-to-all.
pub fn fft(scale: Scale, nthreads: u32) -> Workload {
    assert!(nthreads >= 2);
    let block = scale.n(1200);
    let t = nthreads as i64;
    let total = block * t;
    let stages = 3i64;
    let mut b = ProgramBuilder::new("fft");
    let data = b.array("data", total as u64);
    let scratch = b.array("scratch", total as u64);
    let worker = b.named_func("fft_worker", move |f| {
        let my_base = tid() * c(block);
        f.for_loop("stage", false, c(0), c(stages), |f, _| {
            // Butterfly within own block.
            f.for_loop("butterfly", true, c(0), c(block), |f, i| {
                let idx = my_base.clone() + i;
                let v = f.ld(data, idx.clone()) + c(5);
                f.store(data, idx, v);
            });
            f.barrier();
            // Transpose: gather element `tid` of every block-row.
            f.for_loop("transpose", true, c(0), c(block / 4), |f, i| {
                let src_block = imod(i.clone(), c(t));
                let src = src_block * c(block) + imod(i.clone() * c(7), c(block));
                let v = f.ld(data, src);
                f.store(scratch, my_base.clone() + i, v);
            });
            f.barrier();
        });
    });
    let program = b.main(|f| {
        f.for_loop("init_data", true, c(0), c(total), |f, i| {
            f.store(data, i.clone(), i);
        });
        f.spawn(nthreads, worker);
    });
    Workload { program, meta: meta("fft", nthreads) }
}

/// lu-contig — blocked LU: each step, the owner of the diagonal block
/// (rotating over threads) factors and publishes the pivot block; all
/// other threads read it to update their trailing blocks. Communication:
/// rotating one-to-many broadcast.
pub fn lu_contig(scale: Scale, nthreads: u32) -> Workload {
    assert!(nthreads >= 2);
    let block = scale.n(1000);
    let t = nthreads as i64;
    let steps = 2 * t; // enough rotations to visit every owner twice
    let total = block * t;
    let mut b = ProgramBuilder::new("lu-contig");
    let mat = b.array("matrix", total as u64);
    let pivot = b.array("pivot_block", block as u64);
    let worker = b.named_func("lu_worker", move |f| {
        let my_base = tid() * c(block);
        f.for_loop("kstep", false, c(0), c(steps), |f, k| {
            let owner = imod(k.clone(), c(t));
            // The diagonal owner publishes the pivot block.
            f.if_(
                crate::builder::eq(tid(), owner.clone()),
                |f| {
                    f.for_loop("factor", true, c(0), c(block / 4), |f, i| {
                        let v = f.ld(mat, my_base.clone() + i.clone()) + c(1);
                        f.store(pivot, i, v);
                    });
                },
                |_| {},
            );
            f.barrier();
            // Everyone else consumes it to update their trailing block.
            f.if_(
                crate::builder::eq(tid(), owner),
                |_| {},
                |f| {
                    f.for_loop("update_trailing", true, c(0), c(block / 4), |f, i| {
                        let p = f.ld(pivot, i.clone());
                        let idx = my_base.clone() + i;
                        let cur = f.ld(mat, idx.clone());
                        f.store(mat, idx, cur + p);
                    });
                },
            );
            f.barrier();
        });
    });
    let program = b.main(|f| {
        f.for_loop("init_matrix", true, c(0), c(total), |f, i| {
            f.store(mat, i.clone(), i);
        });
        f.spawn(nthreads, worker);
    });
    Workload { program, meta: meta("lu-contig", nthreads) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::tracer::CollectTracer;
    use dp_types::{ThreadId, TraceEvent};
    use parking_lot::Mutex;

    #[derive(Default)]
    struct F(Mutex<Vec<TraceEvent>>);
    impl crate::tracer::TracerFactory for F {
        type Tracer = CollectTracer;
        fn tracer(&self, _t: ThreadId) -> CollectTracer {
            CollectTracer::new()
        }
        fn join(&self, _t: ThreadId, tr: CollectTracer) {
            self.0.lock().extend(tr.events);
        }
    }

    #[test]
    fn neighbours_read_each_others_boxes() {
        let w = water_spatial(Scale(0.05), 4);
        let vm = Interp::new(&w.program);
        let fac = F::default();
        vm.run_mt(&fac);
        let evs = fac.0.into_inner();
        let mols = &w.program.arrays[0];
        let box_elems = mols.len / 4;
        // Find a read by thread 1 (rank 0) of rank 1's box.
        let mut cross = 0u64;
        for a in evs.iter().filter_map(|e| e.as_access()) {
            if !a.kind.is_write() && a.addr >= mols.base && a.addr < mols.base + mols.len * 8 {
                let elem = (a.addr - mols.base) / 8;
                let owner_rank = (elem / box_elems) as u16;
                let reader_rank = a.thread - 1;
                if owner_rank != reader_rank {
                    cross += 1;
                }
            }
        }
        assert!(cross > 0, "no cross-box reads observed");
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indexing a matrix by (row, col) reads clearer
mod topology_tests {
    use super::*;
    use crate::interp::Interp;
    use crate::tracer::CollectFactory;
    use dp_types::TraceEvent;
    use std::collections::HashMap;

    /// Ground-truth producer→consumer matrix from the raw event stream.
    fn true_matrix(w: &Workload, nthreads: u32) -> Vec<Vec<u64>> {
        let vm = Interp::new(&w.program);
        let fac = CollectFactory::default();
        vm.run_mt(&fac);
        let mut evs = fac.events.into_inner();
        evs.sort_by_key(|e| e.ts());
        let n = nthreads as usize + 1;
        let mut last: HashMap<u64, u16> = HashMap::new();
        let mut m = vec![vec![0u64; n]; n];
        for e in &evs {
            if let TraceEvent::Access(a) = e {
                if a.kind.is_write() {
                    last.insert(a.addr, a.thread);
                } else if let Some(&wr) = last.get(&a.addr) {
                    if wr != a.thread {
                        m[wr as usize][a.thread as usize] += 1;
                    }
                }
            }
        }
        m
    }

    #[test]
    fn fft_is_all_to_all() {
        let t = 4u32;
        let m = true_matrix(&fft(Scale(0.05), t), t);
        // every worker pair communicates
        for p in 1..=t as usize {
            for c in 1..=t as usize {
                if p != c {
                    assert!(m[p][c] > 0, "no flow {p}->{c}");
                }
            }
        }
    }

    #[test]
    fn lu_broadcasts_from_every_owner() {
        let t = 3u32;
        let m = true_matrix(&lu_contig(Scale(0.05), t), t);
        // each owner's pivot block is read by both others
        for p in 1..=t as usize {
            let consumers = (1..=t as usize).filter(|&c| c != p && m[p][c] > 0).count();
            assert_eq!(consumers, t as usize - 1, "owner {p} not broadcasting");
        }
    }

    #[test]
    fn ocean_grid_neighbours_dominate() {
        let t = 6u32; // 2 x 3 grid
        let cols = 3i64;
        let m = true_matrix(&ocean(Scale(0.05), t), t);
        let (mut nb, mut far) = (0u64, 0u64);
        for p in 1..=t as usize {
            for cns in 1..=t as usize {
                if p == cns {
                    continue;
                }
                let (pr, pc) = (((p - 1) as i64) / cols, ((p - 1) as i64) % cols);
                let (cr, cc) = (((cns - 1) as i64) / cols, ((cns - 1) as i64) % cols);
                let dist = (pr - cr).abs() + (pc - cc).abs();
                if dist == 1 {
                    nb += m[p][cns];
                } else {
                    far += m[p][cns];
                }
            }
        }
        assert!(nb > 0);
        assert!(nb > far * 5, "grid banding not dominant: nb={nb} far={far}");
    }
}
