//! Source locations in `fileID:line` form.
//!
//! The paper prints dependences as e.g. `1:60`, meaning line 60 of file 1
//! (Figure 1). Signature slots store a source location packed into a small
//! integer (Section III-B: "each slot of the array is three bytes long ...
//! so that the source line number ... can be stored in it"). We pack
//! `file:8 bits, line:24 bits` into a `u32`, reserving the all-zero value
//! for "empty slot".

use core::fmt;

/// A `file:line` source location.
///
/// `file == 0, line == 0` is *not* a valid location; packed form `0` is the
/// signature's empty-slot sentinel. File ids start at 1 by convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceLoc {
    /// File identifier (1-based; 0 only in the sentinel).
    pub file: u8,
    /// Line number within the file (24 bits available when packed).
    pub line: u32,
}

/// Largest line number representable in packed form (24 bits).
pub const MAX_LINE: u32 = (1 << 24) - 1;

impl SourceLoc {
    /// Creates a location. Panics (debug) if `line` exceeds [`MAX_LINE`].
    #[inline]
    pub fn new(file: u8, line: u32) -> Self {
        debug_assert!(line <= MAX_LINE, "line {line} exceeds 24-bit packed range");
        SourceLoc { file, line }
    }

    /// Packs into the 32-bit signature-slot representation.
    /// Guaranteed non-zero for any valid location (file ≥ 1 or line ≥ 1).
    #[inline]
    pub fn pack(self) -> u32 {
        ((self.file as u32) << 24) | (self.line & MAX_LINE)
    }

    /// Unpacks a non-zero packed value produced by [`SourceLoc::pack`].
    #[inline]
    pub fn unpack(packed: u32) -> Self {
        SourceLoc { file: (packed >> 24) as u8, line: packed & MAX_LINE }
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// Shorthand constructor used pervasively in tests and workload builders.
#[inline]
pub fn loc(file: u8, line: u32) -> SourceLoc {
    SourceLoc::new(file, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for (f, l) in [(1u8, 60u32), (1, 74), (4, 58), (255, MAX_LINE), (1, 1)] {
            let s = SourceLoc::new(f, l);
            assert_eq!(SourceLoc::unpack(s.pack()), s);
        }
    }

    #[test]
    fn packed_nonzero_for_valid_locations() {
        assert_ne!(SourceLoc::new(1, 0).pack(), 0);
        assert_ne!(SourceLoc::new(0, 1).pack(), 0);
        assert_ne!(SourceLoc::new(1, 60).pack(), 0);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(SourceLoc::new(1, 60).to_string(), "1:60");
        assert_eq!(SourceLoc::new(4, 58).to_string(), "4:58");
    }

    #[test]
    fn ordering_is_file_then_line() {
        assert!(SourceLoc::new(1, 99) < SourceLoc::new(2, 1));
        assert!(SourceLoc::new(1, 10) < SourceLoc::new(1, 11));
    }
}
