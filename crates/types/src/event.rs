//! The instrumentation event stream.
//!
//! A profiled run is, from the profiler's perspective, nothing but a stream
//! of [`TraceEvent`]s per target thread. Memory accesses dominate the
//! stream; loop events carry the runtime control-flow information of
//! Section III (BGN/END records, iteration counts) and drive the
//! loop-carried classification used by the parallelism-discovery
//! application (Section VII-A); deallocation events drive the
//! variable-lifetime analysis of Section III-B.

use crate::access::MemAccess;
use crate::ids::{Address, LoopId, ThreadId, Timestamp};
use crate::loc::SourceLoc;

/// One event of the instrumentation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instrumented memory access.
    Access(MemAccess),
    /// Control enters a loop (`BGN loop` in the output). Emitted once per
    /// dynamic loop instance, before the first iteration.
    LoopBegin {
        /// Static loop id.
        loop_id: LoopId,
        /// Location of the loop header.
        loc: SourceLoc,
        /// Thread executing the loop.
        thread: ThreadId,
        /// Timestamp at entry.
        ts: Timestamp,
    },
    /// A new iteration of the innermost active loop begins. The first
    /// iteration of an instance is also announced (`iter == 0`).
    LoopIter {
        /// Static loop id.
        loop_id: LoopId,
        /// Iteration number within the current instance, from 0.
        iter: u64,
        /// Thread executing the loop.
        thread: ThreadId,
        /// Timestamp at the iteration boundary.
        ts: Timestamp,
    },
    /// Control leaves a loop (`END loop <iterations>` in the output).
    LoopEnd {
        /// Static loop id.
        loop_id: LoopId,
        /// Location of the loop exit.
        loc: SourceLoc,
        /// Iterations executed by this instance.
        iters: u64,
        /// Thread executing the loop.
        thread: ThreadId,
        /// Timestamp at exit.
        ts: Timestamp,
    },
    /// Control enters a function (drives the dynamic execution / call
    /// tree representation of the Section VIII framework).
    CallBegin {
        /// Static function id.
        func: u32,
        /// Thread performing the call.
        thread: ThreadId,
        /// Timestamp at entry.
        ts: Timestamp,
    },
    /// Control returns from a function.
    CallEnd {
        /// Static function id.
        func: u32,
        /// Thread performing the return.
        thread: ThreadId,
        /// Timestamp at exit.
        ts: Timestamp,
    },
    /// A contiguous address range was deallocated; the variable-lifetime
    /// analysis removes the range from the signatures so a later, unrelated
    /// allocation reusing the addresses does not manufacture false
    /// dependences (Section III-B).
    Dealloc {
        /// First address of the range.
        base: Address,
        /// Number of addressable slots (8-byte granules) in the range.
        len: u64,
        /// Thread performing the deallocation.
        thread: ThreadId,
        /// Timestamp of the deallocation.
        ts: Timestamp,
    },
}

impl TraceEvent {
    /// The target-program thread that produced this event.
    pub fn thread(&self) -> ThreadId {
        match *self {
            TraceEvent::Access(a) => a.thread,
            TraceEvent::LoopBegin { thread, .. }
            | TraceEvent::LoopIter { thread, .. }
            | TraceEvent::LoopEnd { thread, .. }
            | TraceEvent::CallBegin { thread, .. }
            | TraceEvent::CallEnd { thread, .. }
            | TraceEvent::Dealloc { thread, .. } => thread,
        }
    }

    /// The timestamp of the event.
    pub fn ts(&self) -> Timestamp {
        match *self {
            TraceEvent::Access(a) => a.ts,
            TraceEvent::LoopBegin { ts, .. }
            | TraceEvent::LoopIter { ts, .. }
            | TraceEvent::LoopEnd { ts, .. }
            | TraceEvent::CallBegin { ts, .. }
            | TraceEvent::CallEnd { ts, .. }
            | TraceEvent::Dealloc { ts, .. } => ts,
        }
    }

    /// Returns the contained access, if this is an access event.
    pub fn as_access(&self) -> Option<&MemAccess> {
        match self {
            TraceEvent::Access(a) => Some(a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::loc;

    #[test]
    fn accessors() {
        let a = TraceEvent::Access(MemAccess::read(0x8, 5, loc(1, 60), 1, 2));
        assert_eq!(a.thread(), 2);
        assert_eq!(a.ts(), 5);
        assert!(a.as_access().is_some());

        let b = TraceEvent::LoopBegin { loop_id: 1, loc: loc(1, 60), thread: 3, ts: 9 };
        assert_eq!(b.thread(), 3);
        assert_eq!(b.ts(), 9);
        assert!(b.as_access().is_none());

        let d = TraceEvent::Dealloc { base: 0x100, len: 8, thread: 0, ts: 11 };
        assert_eq!(d.thread(), 0);
        assert_eq!(d.ts(), 11);
    }

    #[test]
    fn event_is_compact() {
        // Events flow through queues in chunks; keep them cache-friendly.
        assert!(std::mem::size_of::<TraceEvent>() <= 40);
    }
}
