//! A fast, non-cryptographic hasher for the profiler's hot maps.
//!
//! This is the classic "Fx" multiply-rotate hash used by rustc. The
//! profiler touches maps on every memory access (access statistics,
//! redistribution rules, perfect signatures), where SipHash's quality is
//! wasted; Fx hashing of integer keys is essentially free. The *signature*
//! itself uses a different, single multiplicative hash (see `dp-sig`) —
//! this module is only for ordinary `HashMap`s.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// rustc's Fx hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn h(v: u64) -> u64 {
        let b = FxBuildHasher::default();
        let mut s = b.build_hasher();
        s.write_u64(v);
        s.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&77], 154);
    }

    #[test]
    fn spreads_sequential_addresses() {
        // Sequential 8-byte-stride addresses (typical array walk) must not
        // collapse into a handful of buckets. Fx maps an arithmetic input
        // sequence to an arithmetic hash sequence, so mod a power of two it
        // occupies a subgroup — acceptable (rustc relies on exactly this
        // behaviour), as long as the subgroup is large. Mixing the high
        // half (as done by consumers that fold the full 64 bits) must give
        // near-uniform spread.
        let mut low = vec![0u32; 1024];
        let mut mixed = vec![0u32; 1024];
        for i in 0..4096u64 {
            let v = h(0x1000 + i * 8);
            low[(v as usize) % 1024] += 1;
            mixed[((v ^ (v >> 32)) as usize) % 1024] += 1;
        }
        assert!(low.iter().filter(|&&c| c > 0).count() >= 64);
        let max = *mixed.iter().max().unwrap();
        assert!(max <= 24, "worst mixed bucket too heavy: {max}");
    }

    #[test]
    fn byte_stream_matches_word_stream_is_not_required_but_stable() {
        let b = FxBuildHasher::default();
        let mut s1 = b.build_hasher();
        s1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut s2 = b.build_hasher();
        s2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(s1.finish(), s2.finish());
    }
}
