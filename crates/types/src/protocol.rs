//! `DPSV` version 2 — the length-prefixed, checksummed frame protocol the
//! networked profiling service speaks.
//!
//! The paper's pipeline decouples event production from dependence
//! analysis; this protocol carries that decoupling across a socket. A
//! client (`depprof push`) streams the instrumentation event stream of a
//! recorded trace to a server (`depprof serve`), which feeds it into a
//! profiling engine and returns the dependence report.
//!
//! ## Wire layout
//!
//! Each direction of a connection starts with a 5-byte preamble — the
//! magic `DPSV` and a version byte — followed by a sequence of frames.
//! A frame is exactly the section unit the `DPCK` checkpoint container
//! uses ([`crate::wire::write_section`]):
//!
//! ```text
//! preamble := "DPSV" version:u8
//! frame    := tag:u8 len:u32 payload[len] checksum:u8
//! ```
//!
//! with the checksum being [`xor_fold`](crate::wire::xor_fold) over tag
//! and payload. Sharing the framing unit means a torn, bit-flipped or
//! truncated frame corrupts — and is detected — exactly like a damaged
//! checkpoint section, and one property-test suite covers both.
//!
//! ## Frames
//!
//! | tag | frame        | direction | payload |
//! |-----|--------------|-----------|---------|
//! | 1   | `Hello`      | C → S     | session name, opaque engine spec, checkpoint interval, variable-name table |
//! | 2   | `HelloAck`   | S → C     | session id, resume position |
//! | 3   | `Chunk`      | C → S     | absolute stream position of the first access + batched memory accesses |
//! | 4   | `LoopEvent`  | C → S     | absolute stream position + one non-access trace event |
//! | 5   | `Sync`       | C → S     | client-chosen nonce; the server answers with `SyncAck` |
//! | 6   | `Finish`     | C → S     | empty; server finalizes and replies `Report` |
//! | 7   | `StatsRequest` | C → S   | empty; server replies `Stats` |
//! | 8   | `Stats`      | S → C     | per-session metrics as JSON |
//! | 9   | `Report`     | S → C     | the rendered dependence report |
//! | 10  | `Error`      | S → C     | numeric code + message; the connection closes after it |
//! | 11  | `SyncAck`    | S → C     | the `Sync` nonce plus the server's durable stream position (watermark) |
//! | 12  | `Busy`       | S → C     | typed backpressure: retry the `Hello` after `retry_after_ms` |
//! | 13  | `Query`      | C → S     | ask for a live analysis snapshot: correlation id + [`query_kind`] selector |
//! | 14  | `QueryResult`| S → C     | the snapshot: echoed id + kind, JSON report answered from incremental state |
//!
//! `Query` (new in v2) may arrive at any point between `HelloAck` and
//! `Finish`; the server answers from the online analysis state it folds
//! as chunks merge, so a query never stalls the feed behind a full
//! re-analysis. The first `Query` of a session lazily enables delta
//! tracking — sessions that never query pay nothing.
//!
//! `Chunk` and `LoopEvent` frames are *positional*: they carry the
//! absolute index of their first event in the session's logical event
//! stream. A server that already profiled `N` events skips anything
//! below `N` exactly — resend overlap after a reconnect and wire-level
//! duplicate delivery both dedupe to exactly-once profiling.
//!
//! The engine spec inside `Hello` is an opaque blob by design: this crate
//! cannot see the profiler's configuration types, so the spec is encoded
//! and decoded by `dp-core` and merely carried here — the same pattern
//! the checkpoint container uses for its CONFIG section.

use crate::access::MemAccess;
use crate::event::TraceEvent;
use crate::loc::SourceLoc;
use crate::wire::{read_section, write_section, ByteReader, ByteWriter, WireError};
use crate::AccessKind;
use std::fmt;
use std::io::{self, Read, Write};

/// Connection preamble magic.
pub const PROTOCOL_MAGIC: [u8; 4] = *b"DPSV";
/// Current protocol version. v2 added the `Query`/`QueryResult` frames
/// (live analysis snapshots); everything a v1 peer could say is
/// unchanged.
pub const PROTOCOL_VERSION: u8 = 2;

/// Default upper bound on a frame's payload length. A frame header
/// announcing more than this is rejected before any allocation — the
/// bounded read buffer that keeps a malicious or corrupt length prefix
/// from ballooning server memory.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_CHUNK: u8 = 3;
const TAG_LOOP_EVENT: u8 = 4;
const TAG_SYNC: u8 = 5;
const TAG_FINISH: u8 = 6;
const TAG_STATS_REQUEST: u8 = 7;
const TAG_STATS: u8 = 8;
const TAG_REPORT: u8 = 9;
const TAG_ERROR: u8 = 10;
const TAG_SYNC_ACK: u8 = 11;
const TAG_BUSY: u8 = 12;
const TAG_QUERY: u8 = 13;
const TAG_QUERY_RESULT: u8 = 14;

/// Selectors carried by [`Frame::Query`]: which live-analysis sections
/// the client wants in the [`Frame::QueryResult`] JSON.
pub mod query_kind {
    /// Loop classification, communication matrix and race hints.
    pub const ALL: u8 = 0;
    /// Table-II loop classification only.
    pub const LOOPS: u8 = 1;
    /// Communication matrix only.
    pub const COMM: u8 = 2;
    /// Race hints only.
    pub const RACES: u8 = 3;
}

/// Error codes carried by [`Frame::Error`].
pub mod error_code {
    /// The server is at its concurrent-session cap.
    pub const AT_CAPACITY: u16 = 1;
    /// A frame arrived malformed or out of protocol order.
    pub const BAD_FRAME: u16 = 2;
    /// The server is shutting down (signal); in-flight sessions were
    /// checkpointed and can be resumed by reconnecting.
    pub const SHUTDOWN: u16 = 3;
    /// The profiling engine rejected the session configuration or failed.
    pub const ENGINE: u16 = 4;
    /// The session was hibernated to the checkpoint store after sitting
    /// idle; reconnecting with the same `Hello` rehydrates it exactly.
    pub const HIBERNATED: u16 = 5;
}

/// Everything that can go wrong speaking DPSV.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying stream failed.
    Io(io::Error),
    /// A frame or payload was structurally damaged (truncated mid-frame,
    /// checksum mismatch, impossible field value).
    Wire(WireError),
    /// The peer's preamble does not start with `DPSV`.
    BadMagic,
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// A frame carried a tag the protocol does not define.
    UnknownFrame {
        /// The undefined tag byte.
        tag: u8,
    },
    /// A frame header announced a payload longer than the reader's
    /// bound; the stream cannot be resynchronized and must close.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// The reader's configured maximum.
        max: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol i/o error: {e}"),
            ProtocolError::Wire(e) => write!(f, "malformed frame: {e}"),
            ProtocolError::BadMagic => write!(f, "peer is not speaking DPSV (bad magic)"),
            ProtocolError::UnsupportedVersion(v) => {
                write!(f, "unsupported DPSV version {v} (this build speaks {PROTOCOL_VERSION})")
            }
            ProtocolError::UnknownFrame { tag } => write!(f, "unknown frame tag {tag}"),
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte bound")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Wire(e)
    }
}

/// The `Hello` frame a client opens its session with.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hello {
    /// Session name. Identifies the session for resume: reconnecting
    /// with the name of a checkpointed session continues it.
    pub session: String,
    /// Opaque engine specification (encoded/decoded by `dp-core`).
    pub spec: Vec<u8>,
    /// Checkpoint the session every this many events (0 = the server's
    /// default policy).
    pub checkpoint_every: u64,
    /// Variable-name table, in id order, so the served report resolves
    /// names exactly like an offline replay of the same trace.
    pub names: Vec<String>,
}

/// One DPSV frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session opening (client → server).
    Hello(Hello),
    /// Session accepted (server → client).
    HelloAck {
        /// Server-assigned session id (unique within the server run).
        session_id: u64,
        /// Events the server has already profiled for this session name
        /// (restored from a checkpoint); the client skips this many.
        resume_from: u64,
    },
    /// A batch of memory accesses — the bulk of the stream.
    Chunk {
        /// Absolute index of the first access in the session's logical
        /// event stream. The server skips any prefix it has already
        /// profiled, so resends and duplicates dedupe exactly.
        base: u64,
        /// The batched accesses.
        accesses: Vec<MemAccess>,
    },
    /// One non-access event (loop boundary, call boundary, dealloc),
    /// in-order relative to surrounding chunks.
    LoopEvent {
        /// Absolute index of this event in the session's logical stream.
        seq: u64,
        /// The event itself (never [`TraceEvent::Access`]).
        ev: TraceEvent,
    },
    /// Watermark probe: the server answers with [`Frame::SyncAck`] once
    /// every frame before it has been consumed.
    Sync {
        /// Caller-chosen correlation value.
        nonce: u64,
    },
    /// End of stream; the server finalizes the session and replies with
    /// [`Frame::Report`].
    Finish,
    /// Ask the server for the session's metrics snapshot.
    StatsRequest,
    /// Per-session metrics, JSON-encoded (server → client).
    Stats {
        /// Stable-keyed JSON object.
        json: String,
    },
    /// The rendered dependence report (server → client, after `Finish`).
    Report {
        /// Report text, byte-identical to an offline replay's output.
        text: String,
    },
    /// Terminal failure notice (server → client).
    Error {
        /// One of [`error_code`]'s constants.
        code: u16,
        /// Human-readable description.
        message: String,
    },
    /// Answer to [`Frame::Sync`]: the nonce plus the server's event
    /// position — the durable watermark a retrying client can trust.
    SyncAck {
        /// The `Sync` frame's nonce, for correlation.
        nonce: u64,
        /// Events the server has consumed for this session so far.
        position: u64,
    },
    /// Typed backpressure (server → client): the server is at its
    /// live-session cap; retry the same `Hello` after the hint elapses.
    /// The connection closes after this frame.
    Busy {
        /// Suggested delay before reconnecting, in milliseconds.
        retry_after_ms: u64,
    },
    /// Mid-session analysis snapshot request (client → server, v2).
    /// Answered from the server's incremental analysis state with a
    /// [`Frame::QueryResult`]; never stalls the event feed.
    Query {
        /// Caller-chosen correlation value, echoed in the result.
        id: u64,
        /// One of [`query_kind`]'s selectors.
        kind: u8,
    },
    /// Live analysis snapshot (server → client, v2).
    QueryResult {
        /// The `Query` frame's correlation id.
        id: u64,
        /// The selector the snapshot answers (echoed).
        kind: u8,
        /// The requested report sections as a JSON object.
        json: String,
    },
}

fn put_access(w: &mut ByteWriter, a: &MemAccess) {
    w.u8(a.kind.is_write() as u8);
    w.u64(a.addr);
    w.u64(a.ts);
    w.u32(a.loc.pack());
    w.u32(a.var);
    w.u16(a.thread);
}

fn get_access(r: &mut ByteReader<'_>) -> Result<MemAccess, WireError> {
    let kind = match r.u8()? {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        _ => return Err(WireError::Invalid("access kind byte must be 0 or 1")),
    };
    Ok(MemAccess {
        addr: r.u64()?,
        ts: r.u64()?,
        loc: SourceLoc::unpack(r.u32()?),
        var: r.u32()?,
        thread: r.u16()?,
        kind,
    })
}

// LoopEvent sub-tags (accesses travel in Chunk frames, never here).
const EV_LOOP_BEGIN: u8 = 2;
const EV_LOOP_ITER: u8 = 3;
const EV_LOOP_END: u8 = 4;
const EV_CALL_BEGIN: u8 = 5;
const EV_CALL_END: u8 = 6;
const EV_DEALLOC: u8 = 7;

fn put_event(w: &mut ByteWriter, ev: &TraceEvent) -> Result<(), WireError> {
    match *ev {
        TraceEvent::Access(_) => {
            return Err(WireError::Invalid("accesses travel in Chunk frames, not LoopEvent"))
        }
        TraceEvent::LoopBegin { loop_id, loc, thread, ts } => {
            w.u8(EV_LOOP_BEGIN);
            w.u32(loop_id);
            w.u32(loc.pack());
            w.u16(thread);
            w.u64(ts);
        }
        TraceEvent::LoopIter { loop_id, iter, thread, ts } => {
            w.u8(EV_LOOP_ITER);
            w.u32(loop_id);
            w.u64(iter);
            w.u16(thread);
            w.u64(ts);
        }
        TraceEvent::LoopEnd { loop_id, loc, iters, thread, ts } => {
            w.u8(EV_LOOP_END);
            w.u32(loop_id);
            w.u32(loc.pack());
            w.u64(iters);
            w.u16(thread);
            w.u64(ts);
        }
        TraceEvent::CallBegin { func, thread, ts } => {
            w.u8(EV_CALL_BEGIN);
            w.u32(func);
            w.u16(thread);
            w.u64(ts);
        }
        TraceEvent::CallEnd { func, thread, ts } => {
            w.u8(EV_CALL_END);
            w.u32(func);
            w.u16(thread);
            w.u64(ts);
        }
        TraceEvent::Dealloc { base, len, thread, ts } => {
            w.u8(EV_DEALLOC);
            w.u64(base);
            w.u64(len);
            w.u16(thread);
            w.u64(ts);
        }
    }
    Ok(())
}

fn get_event(r: &mut ByteReader<'_>) -> Result<TraceEvent, WireError> {
    Ok(match r.u8()? {
        EV_LOOP_BEGIN => TraceEvent::LoopBegin {
            loop_id: r.u32()?,
            loc: SourceLoc::unpack(r.u32()?),
            thread: r.u16()?,
            ts: r.u64()?,
        },
        EV_LOOP_ITER => TraceEvent::LoopIter {
            loop_id: r.u32()?,
            iter: r.u64()?,
            thread: r.u16()?,
            ts: r.u64()?,
        },
        EV_LOOP_END => TraceEvent::LoopEnd {
            loop_id: r.u32()?,
            loc: SourceLoc::unpack(r.u32()?),
            iters: r.u64()?,
            thread: r.u16()?,
            ts: r.u64()?,
        },
        EV_CALL_BEGIN => TraceEvent::CallBegin { func: r.u32()?, thread: r.u16()?, ts: r.u64()? },
        EV_CALL_END => TraceEvent::CallEnd { func: r.u32()?, thread: r.u16()?, ts: r.u64()? },
        EV_DEALLOC => {
            TraceEvent::Dealloc { base: r.u64()?, len: r.u64()?, thread: r.u16()?, ts: r.u64()? }
        }
        _ => return Err(WireError::Invalid("unknown LoopEvent sub-tag")),
    })
}

fn get_string(r: &mut ByteReader<'_>) -> Result<String, WireError> {
    String::from_utf8(r.blob()?.to_vec()).map_err(|_| WireError::Invalid("string is not UTF-8"))
}

impl Frame {
    /// The frame's wire tag.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Hello(_) => TAG_HELLO,
            Frame::HelloAck { .. } => TAG_HELLO_ACK,
            Frame::Chunk { .. } => TAG_CHUNK,
            Frame::LoopEvent { .. } => TAG_LOOP_EVENT,
            Frame::Sync { .. } => TAG_SYNC,
            Frame::Finish => TAG_FINISH,
            Frame::StatsRequest => TAG_STATS_REQUEST,
            Frame::Stats { .. } => TAG_STATS,
            Frame::Report { .. } => TAG_REPORT,
            Frame::Error { .. } => TAG_ERROR,
            Frame::SyncAck { .. } => TAG_SYNC_ACK,
            Frame::Busy { .. } => TAG_BUSY,
            Frame::Query { .. } => TAG_QUERY,
            Frame::QueryResult { .. } => TAG_QUERY_RESULT,
        }
    }

    /// Encodes the payload (everything between the length prefix and the
    /// checksum). Fails only for a [`Frame::LoopEvent`] holding an access.
    pub fn encode_payload(&self) -> Result<Vec<u8>, WireError> {
        let mut w = ByteWriter::new();
        match self {
            Frame::Hello(h) => {
                w.blob(h.session.as_bytes());
                w.blob(&h.spec);
                w.u64(h.checkpoint_every);
                w.u32(h.names.len() as u32);
                for n in &h.names {
                    w.blob(n.as_bytes());
                }
            }
            Frame::HelloAck { session_id, resume_from } => {
                w.u64(*session_id);
                w.u64(*resume_from);
            }
            Frame::Chunk { base, accesses } => {
                w.u64(*base);
                w.u32(accesses.len() as u32);
                for a in accesses {
                    put_access(&mut w, a);
                }
            }
            Frame::LoopEvent { seq, ev } => {
                w.u64(*seq);
                put_event(&mut w, ev)?;
            }
            Frame::Sync { nonce } => w.u64(*nonce),
            Frame::Finish | Frame::StatsRequest => {}
            Frame::Stats { json } => w.blob(json.as_bytes()),
            Frame::Report { text } => w.blob(text.as_bytes()),
            Frame::Error { code, message } => {
                w.u16(*code);
                w.blob(message.as_bytes());
            }
            Frame::SyncAck { nonce, position } => {
                w.u64(*nonce);
                w.u64(*position);
            }
            Frame::Busy { retry_after_ms } => w.u64(*retry_after_ms),
            Frame::Query { id, kind } => {
                w.u64(*id);
                w.u8(*kind);
            }
            Frame::QueryResult { id, kind, json } => {
                w.u64(*id);
                w.u8(*kind);
                w.blob(json.as_bytes());
            }
        }
        Ok(w.into_bytes())
    }

    /// Decodes a frame from its tag and payload. Every malformation is a
    /// typed error; trailing bytes after a well-formed payload are
    /// rejected (a frame is exactly its announced content).
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Frame, ProtocolError> {
        let mut r = ByteReader::new(payload);
        let frame = match tag {
            TAG_HELLO => {
                let session = get_string(&mut r)?;
                let spec = r.blob()?.to_vec();
                let checkpoint_every = r.u64()?;
                let n = r.u32()? as usize;
                if n > payload.len() {
                    // Each name costs at least a length prefix, so a count
                    // beyond the payload size is impossible — reject before
                    // reserving anything.
                    return Err(WireError::Invalid("name count exceeds payload size").into());
                }
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(get_string(&mut r)?);
                }
                Frame::Hello(Hello { session, spec, checkpoint_every, names })
            }
            TAG_HELLO_ACK => Frame::HelloAck { session_id: r.u64()?, resume_from: r.u64()? },
            TAG_CHUNK => {
                let base = r.u64()?;
                let n = r.u32()? as usize;
                if n.saturating_mul(ACCESS_WIRE_BYTES) > r.remaining() {
                    return Err(WireError::Invalid("access count exceeds payload size").into());
                }
                let mut accesses = Vec::with_capacity(n);
                for _ in 0..n {
                    accesses.push(get_access(&mut r)?);
                }
                Frame::Chunk { base, accesses }
            }
            TAG_LOOP_EVENT => Frame::LoopEvent { seq: r.u64()?, ev: get_event(&mut r)? },
            TAG_SYNC => Frame::Sync { nonce: r.u64()? },
            TAG_FINISH => Frame::Finish,
            TAG_STATS_REQUEST => Frame::StatsRequest,
            TAG_STATS => Frame::Stats { json: get_string(&mut r)? },
            TAG_REPORT => Frame::Report { text: get_string(&mut r)? },
            TAG_ERROR => Frame::Error { code: r.u16()?, message: get_string(&mut r)? },
            TAG_SYNC_ACK => Frame::SyncAck { nonce: r.u64()?, position: r.u64()? },
            TAG_BUSY => Frame::Busy { retry_after_ms: r.u64()? },
            TAG_QUERY => Frame::Query { id: r.u64()?, kind: r.u8()? },
            TAG_QUERY_RESULT => {
                Frame::QueryResult { id: r.u64()?, kind: r.u8()?, json: get_string(&mut r)? }
            }
            tag => return Err(ProtocolError::UnknownFrame { tag }),
        };
        if !r.is_done() {
            return Err(WireError::Invalid("trailing bytes after frame payload").into());
        }
        Ok(frame)
    }
}

/// Bytes one access occupies inside a `Chunk` payload.
pub const ACCESS_WIRE_BYTES: usize = 1 + 8 + 8 + 4 + 4 + 2;

/// Writes the connection preamble (`DPSV` + version).
pub fn write_preamble(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&PROTOCOL_MAGIC)?;
    w.write_all(&[PROTOCOL_VERSION])
}

/// Reads and validates the peer's preamble.
pub fn read_preamble(r: &mut impl Read) -> Result<(), ProtocolError> {
    let mut hdr = [0u8; 5];
    r.read_exact(&mut hdr).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Wire(WireError::Truncated)
        } else {
            ProtocolError::Io(e)
        }
    })?;
    if hdr[..4] != PROTOCOL_MAGIC {
        return Err(ProtocolError::BadMagic);
    }
    if hdr[4] != PROTOCOL_VERSION {
        return Err(ProtocolError::UnsupportedVersion(hdr[4]));
    }
    Ok(())
}

/// Writes one frame (section framing + checksum) to the stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), ProtocolError> {
    let payload = frame.encode_payload()?;
    let mut out = ByteWriter::new();
    write_section(&mut out, frame.tag(), &payload);
    w.write_all(&out.into_bytes())?;
    Ok(())
}

/// Reads one frame from the stream, bounding the payload at `max_bytes`.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF at a frame
/// boundary); EOF inside a frame is a typed
/// [`WireError::Truncated`] — the network analogue of the trace
/// format's torn-record classification.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> Result<Option<Frame>, ProtocolError> {
    let mut head = [0u8; 5];
    match r.read_exact(&mut head[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    read_mid_frame(r, &mut head, max_bytes).map(Some)
}

/// Reads the remainder of a frame whose tag byte was already consumed —
/// for servers that poll the first byte with a read timeout (to observe
/// a shutdown flag between frames) and then finish the frame blocking.
pub fn resume_frame(r: &mut impl Read, tag: u8, max_bytes: usize) -> Result<Frame, ProtocolError> {
    let mut head = [0u8; 5];
    head[0] = tag;
    read_mid_frame(r, &mut head, max_bytes)
}

fn read_mid_frame(
    r: &mut impl Read,
    head: &mut [u8; 5],
    max_bytes: usize,
) -> Result<Frame, ProtocolError> {
    let eof_is_torn = |e: io::Error| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Wire(WireError::Truncated)
        } else {
            ProtocolError::Io(e)
        }
    };
    r.read_exact(&mut head[1..]).map_err(eof_is_torn)?;
    let tag = head[0];
    let len = u32::from_le_bytes(head[1..].try_into().unwrap()) as usize;
    let max = MAX_FRAME_BYTES.min(max_bytes.max(1));
    if len > max {
        return Err(ProtocolError::FrameTooLarge { len, max });
    }
    let mut body = vec![0u8; len + 1]; // payload + checksum byte
    r.read_exact(&mut body).map_err(eof_is_torn)?;
    // Re-assemble the section and run it through the shared validator so
    // frame and checkpoint-section corruption take the same code path.
    let mut section = ByteWriter::new();
    section.u8(tag);
    section.u32(len as u32);
    section.bytes(&body);
    let bytes = section.into_bytes();
    let mut reader = ByteReader::new(&bytes);
    let (tag, payload) = read_section(&mut reader)?;
    Frame::decode(tag, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::loc;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello(Hello {
                session: "sess-1".into(),
                spec: vec![1, 2, 3],
                checkpoint_every: 1000,
                names: vec!["*".into(), "alpha".into()],
            }),
            Frame::HelloAck { session_id: 42, resume_from: 12_345 },
            Frame::Chunk {
                base: 1_000_000,
                accesses: vec![
                    MemAccess::write(0xdead_beef, 3, loc(2, 60), 7, 1),
                    MemAccess::read(0xdead_beef, 4, loc(2, 61), 7, 2),
                ],
            },
            Frame::LoopEvent {
                seq: 11,
                ev: TraceEvent::LoopBegin { loop_id: 3, loc: loc(1, 10), thread: 0, ts: 1 },
            },
            Frame::LoopEvent {
                seq: 12,
                ev: TraceEvent::LoopIter { loop_id: 3, iter: 9, thread: 0, ts: 2 },
            },
            Frame::LoopEvent {
                seq: 13,
                ev: TraceEvent::LoopEnd {
                    loop_id: 3,
                    loc: loc(1, 20),
                    iters: 10,
                    thread: 0,
                    ts: 3,
                },
            },
            Frame::LoopEvent { seq: 14, ev: TraceEvent::CallBegin { func: 5, thread: 1, ts: 4 } },
            Frame::LoopEvent { seq: 15, ev: TraceEvent::CallEnd { func: 5, thread: 1, ts: 5 } },
            Frame::LoopEvent {
                seq: 16,
                ev: TraceEvent::Dealloc { base: 0x100, len: 64, thread: 0, ts: 6 },
            },
            Frame::Sync { nonce: 7 },
            Frame::Finish,
            Frame::StatsRequest,
            Frame::Stats { json: "{\"events\":1}".into() },
            Frame::Report { text: "BGN loop ...".into() },
            Frame::Error { code: error_code::AT_CAPACITY, message: "server full".into() },
            Frame::SyncAck { nonce: 7, position: 1_000_002 },
            Frame::Busy { retry_after_ms: 250 },
            Frame::Query { id: 9, kind: query_kind::ALL },
            Frame::QueryResult { id: 9, kind: query_kind::LOOPS, json: "{\"loops\":[]}".into() },
        ]
    }

    #[test]
    fn every_frame_roundtrips() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        for f in sample_frames() {
            write_frame(&mut buf, &f).unwrap();
        }
        let mut r = &buf[..];
        read_preamble(&mut r).unwrap();
        for expect in sample_frames() {
            let got = read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap();
            assert_eq!(got, expect);
        }
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn preamble_rejects_wrong_magic_and_version() {
        assert!(matches!(read_preamble(&mut &b"DPCK\x01"[..]), Err(ProtocolError::BadMagic)));
        assert!(matches!(
            read_preamble(&mut &b"DPSV\x09"[..]),
            Err(ProtocolError::UnsupportedVersion(9))
        ));
        assert!(matches!(
            read_preamble(&mut &b"DP"[..]),
            Err(ProtocolError::Wire(WireError::Truncated))
        ));
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.push(TAG_CHUNK);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let got = read_frame(&mut &buf[..], 1024);
        assert!(matches!(got, Err(ProtocolError::FrameTooLarge { max: 1024, .. })), "{got:?}");
    }

    #[test]
    fn truncation_inside_a_frame_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Sync { nonce: 1 }).unwrap();
        for cut in 1..buf.len() {
            let got = read_frame(&mut &buf[..cut], MAX_FRAME_BYTES);
            assert!(
                matches!(got, Err(ProtocolError::Wire(WireError::Truncated))),
                "cut at {cut}: {got:?}"
            );
        }
    }

    #[test]
    fn bit_flips_fail_checksum_or_typed() {
        let mut clean = Vec::new();
        let chunk =
            Frame::Chunk { base: 0, accesses: vec![MemAccess::read(8, 1, loc(1, 1), 0, 0)] };
        write_frame(&mut clean, &chunk).unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x20;
            // Never a panic; always a typed error or (for a tag flip that
            // still checksums, impossible here) a different frame.
            let _ = read_frame(&mut &bad[..], MAX_FRAME_BYTES);
        }
        // Payload flips specifically must be caught by the checksum.
        let mut bad = clean.clone();
        bad[6] ^= 0x01;
        assert!(matches!(
            read_frame(&mut &bad[..], MAX_FRAME_BYTES),
            Err(ProtocolError::Wire(WireError::Checksum { .. }))
        ));
    }

    #[test]
    fn access_in_loop_event_is_rejected() {
        let f = Frame::LoopEvent {
            seq: 0,
            ev: TraceEvent::Access(MemAccess::read(8, 1, loc(1, 1), 0, 0)),
        };
        assert!(f.encode_payload().is_err());
    }

    #[test]
    fn unknown_tag_is_typed() {
        let mut out = ByteWriter::new();
        write_section(&mut out, 200, b"whatever");
        let got = read_frame(&mut &out.into_bytes()[..], MAX_FRAME_BYTES);
        assert!(matches!(got, Err(ProtocolError::UnknownFrame { tag: 200 })), "{got:?}");
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut payload = Frame::Sync { nonce: 3 }.encode_payload().unwrap();
        payload.push(0);
        assert!(matches!(
            Frame::decode(TAG_SYNC, &payload),
            Err(ProtocolError::Wire(WireError::Invalid(_)))
        ));
    }
}
