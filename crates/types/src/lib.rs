//! Shared types for the `depprof` data-dependence profiler.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! - [`SourceLoc`] — a `file:line` source location, packable into a `u32`
//!   exactly like the slots of the paper's signature (Section III-B).
//! - [`MemAccess`] / [`AccessKind`] — one instrumented memory access.
//! - [`TraceEvent`] — the full instrumentation event stream (accesses plus
//!   the control-flow and lifetime events of Section III).
//! - [`DepType`] / [`Dependence`] — profiled data dependences in the
//!   `<sink, type, source>` triple representation of Section III-A.
//! - [`Interner`] — variable-name interning so accesses carry a cheap
//!   [`VarId`] instead of a string.
//! - [`fxhash`] — the fast non-cryptographic hasher used by all hot maps.

#![warn(missing_docs)]

pub mod access;
pub mod dep;
pub mod event;
pub mod fxhash;
pub mod ids;
pub mod interner;
pub mod loc;
pub mod protocol;
pub mod sink;
pub mod wire;

pub use access::{AccessKind, MemAccess};
pub use dep::{DepEdge, DepFlags, DepType, Dependence, SinkKey};
pub use event::TraceEvent;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{Address, LoopId, MutexId, ThreadId, Timestamp, VarId};
pub use interner::Interner;
pub use loc::SourceLoc;
pub use protocol::{Frame, Hello, ProtocolError};
pub use sink::{Tracer, TracerFactory};
pub use wire::{
    atomic_write, read_section, write_section, xor_fold, ByteReader, ByteWriter, WireError,
};
