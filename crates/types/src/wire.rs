//! Minimal binary wire codec shared by the trace format and the
//! checkpoint format.
//!
//! Both on-disk formats of this repository — trace files (`dp-trace`,
//! format v2) and checkpoint files (`dp-core::checkpoint`, `DPCK` v1) —
//! use the same primitives: little-endian fixed-width integers, a
//! per-record XOR checksum byte ([`xor_fold`]), and crash-safe file
//! replacement ([`atomic_write`]). They live here because `dp-types` is
//! the one crate everything else already depends on (`dp-sig` cannot see
//! `dp-core`, and `dp-core` only dev-depends on `dp-trace`).

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Folds a record body into its one-byte XOR checksum, seeded with the
/// record tag so a tag/body swap cannot cancel out. This is exactly the
/// checksum trace format v2 stores after every record; checkpoint
/// sections reuse it unchanged.
#[inline]
pub fn xor_fold(tag: u8, body: &[u8]) -> u8 {
    body.iter().fold(tag, |x, b| x ^ b)
}

/// Errors surfaced while decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced payload did.
    Truncated,
    /// A section or record checksum did not match its payload.
    Checksum {
        /// Byte offset of the damaged section/record.
        offset: usize,
    },
    /// A structurally valid buffer holds an impossible value.
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated mid-field"),
            WireError::Checksum { offset } => {
                write!(f, "checksum mismatch at byte offset {offset}")
            }
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes verbatim.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed (`u32`) byte string.
    pub fn blob(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.bytes(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-style little-endian decoder over a byte slice. Every read is
/// bounds-checked and fails typed ([`WireError::Truncated`]) instead of
/// panicking, so torn checkpoint files decode into errors, not aborts.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once the whole buffer has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed (`u32`) byte string written by
    /// [`ByteWriter::blob`].
    pub fn blob(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

/// Appends one tagged, checksummed section to `out`:
/// `tag u8 | len u32 | payload[len] | checksum u8`, where the checksum is
/// [`xor_fold`] over tag and payload. This is the framing unit shared by
/// the `DPCK` checkpoint container and the `DPSV` network protocol — one
/// writer, one reader, one corruption model.
pub fn write_section(out: &mut ByteWriter, tag: u8, payload: &[u8]) {
    out.u8(tag);
    out.u32(payload.len() as u32);
    out.bytes(payload);
    out.u8(xor_fold(tag, payload));
}

/// Reads one section written by [`write_section`], validating its
/// checksum. Returns the tag and a borrowed payload slice. Fails typed:
/// [`WireError::Truncated`] when the buffer ends inside the section,
/// [`WireError::Checksum`] (with the section's byte offset) when the
/// payload was damaged.
pub fn read_section<'a>(r: &mut ByteReader<'a>) -> Result<(u8, &'a [u8]), WireError> {
    let offset = r.pos();
    let tag = r.u8()?;
    let len = r.u32()? as usize;
    let payload = r.take(len)?;
    let sum = r.u8()?;
    if xor_fold(tag, payload) != sum {
        return Err(WireError::Checksum { offset });
    }
    Ok((tag, payload))
}

/// Writes `bytes` to `path` crash-safely: the data goes to a sibling
/// temporary file first (same directory, so the rename cannot cross a
/// filesystem), is fsynced, and is then atomically renamed over `path`.
/// A crash at any instant leaves either the complete old file or the
/// complete new file — never a torn mixture.
///
/// Every file-bound artifact of the CLI (checkpoints, `--stats` output,
/// reports, BENCH json) goes through this helper.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself; failures here are non-fatal (the
        // data is already durable, only the directory entry may lag).
        if let Some(d) = dir {
            if let Ok(dh) = std::fs::File::open(d) {
                let _ = dh.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = ByteWriter::new();
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.blob(b"payload");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.blob().unwrap(), b"payload");
        assert!(r.is_done());
    }

    #[test]
    fn truncated_reads_fail_typed() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        // A failed read must not consume anything.
        assert_eq!(r.u8().unwrap(), 3);
        assert!(r.is_done());
        assert_eq!(r.u8(), Err(WireError::Truncated));
    }

    #[test]
    fn blob_length_is_bounds_checked() {
        let mut w = ByteWriter::new();
        w.u32(1000); // announces 1000 bytes, delivers none
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).blob(), Err(WireError::Truncated));
    }

    #[test]
    fn xor_fold_detects_single_bit_flips() {
        let body = b"some record payload";
        let sum = xor_fold(7, body);
        let mut flipped = body.to_vec();
        flipped[3] ^= 0x10;
        assert_ne!(sum, xor_fold(7, &flipped));
        // Tag participates too.
        assert_ne!(sum, xor_fold(8, body));
    }

    #[test]
    fn section_roundtrip_and_corruption() {
        let mut w = ByteWriter::new();
        write_section(&mut w, 7, b"hello");
        write_section(&mut w, 9, b"");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_section(&mut r).unwrap(), (7, &b"hello"[..]));
        assert_eq!(read_section(&mut r).unwrap(), (9, &b""[..]));
        assert!(r.is_done());
        // Truncation anywhere inside a section is typed, never a panic.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let mut sections = 0;
            loop {
                match read_section(&mut r) {
                    Ok(_) => sections += 1,
                    Err(WireError::Truncated) => break,
                    Err(e) => panic!("cut at {cut}: unexpected {e}"),
                }
            }
            assert!(sections <= 1, "cut at {cut}");
        }
        // Any single-bit flip in the payload or checksum is detected.
        for bit in 0..8 {
            let mut b = bytes.clone();
            b[8] ^= 1 << bit; // inside "hello"
            let mut r = ByteReader::new(&b);
            assert_eq!(read_section(&mut r), Err(WireError::Checksum { offset: 0 }));
        }
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("dp-wire-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second generation").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second generation");
        // No temp residue.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
