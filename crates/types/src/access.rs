//! Instrumented memory accesses.

use crate::ids::{Address, ThreadId, Timestamp, VarId};
use crate::loc::SourceLoc;

/// Whether a memory access reads or writes its address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// One instrumented memory access — the unit the profiler consumes.
///
/// This corresponds to one call of the `push_read`/`push_write`
/// instrumentation functions in Figure 4 of the paper: the address, the
/// access kind, the source location and variable name of the accessing
/// statement, the target-program thread that performed it, and the global
/// timestamp taken inside the access's lock region (Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Accessed address.
    pub addr: Address,
    /// Global timestamp (drawn while the access's lock region is held).
    pub ts: Timestamp,
    /// Source location of the accessing statement.
    pub loc: SourceLoc,
    /// Interned name of the accessed variable.
    pub var: VarId,
    /// Target-program thread performing the access.
    pub thread: ThreadId,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Convenience constructor for a read access.
    #[inline]
    pub fn read(
        addr: Address,
        ts: Timestamp,
        loc: SourceLoc,
        var: VarId,
        thread: ThreadId,
    ) -> Self {
        MemAccess { addr, ts, loc, var, thread, kind: AccessKind::Read }
    }

    /// Convenience constructor for a write access.
    #[inline]
    pub fn write(
        addr: Address,
        ts: Timestamp,
        loc: SourceLoc,
        var: VarId,
        thread: ThreadId,
    ) -> Self {
        MemAccess { addr, ts, loc, var, thread, kind: AccessKind::Write }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::loc;

    #[test]
    fn constructors_set_kind() {
        let r = MemAccess::read(0x10, 1, loc(1, 60), 2, 0);
        let w = MemAccess::write(0x10, 2, loc(1, 61), 2, 0);
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(w.kind, AccessKind::Write);
        assert!(!r.kind.is_write());
        assert!(w.kind.is_write());
    }

    #[test]
    fn access_is_small() {
        // The event stream carries billions of these; keep them compact.
        assert!(std::mem::size_of::<MemAccess>() <= 32);
    }
}
