//! Small identifier newtypes used throughout the profiler.

/// A memory address in the (possibly simulated) address space of the
/// profiled program. The profiler never dereferences addresses — it only
/// hashes and compares them — so a plain `u64` is the full story.
pub type Address = u64;

/// Identifier of a thread of the *target* program (not a profiler worker).
/// Thread 0 is the main thread, matching the `|0|` notation of Figure 3.
pub type ThreadId = u16;

/// A global, strictly increasing timestamp assigned to every memory access.
///
/// For sequential targets this is just a counter; for multi-threaded
/// targets it is drawn from a shared atomic counter *inside the lock region
/// protecting the access* (Section V, Figure 4), so that a worker observing
/// decreasing timestamps for one address has proof the access/push pair was
/// not atomic — i.e. a potential data race (Section V-B).
pub type Timestamp = u64;

/// Interned variable (or allocation) name; resolves via
/// [`Interner`](crate::Interner).
pub type VarId = u32;

/// Static identifier of a loop in the target program. Loop metadata
/// (source range, OpenMP annotation ground truth) lives in the trace
/// substrate; the profiler only needs the id to attribute iterations.
pub type LoopId = u32;

/// Identifier of an explicit lock of the target program (Section V-A:
/// the profiler currently requires explicit locking primitives).
pub type MutexId = u32;
