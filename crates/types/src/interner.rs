//! Variable-name interning.
//!
//! The profiler reports variable names in every dependence record
//! (`{RAW 1:59|temp1}`, Figure 1), but carrying a `String` in every
//! [`MemAccess`](crate::MemAccess) would dwarf the access itself. The trace
//! substrate interns each distinct name once and the event stream carries a
//! 4-byte [`VarId`].

use crate::fxhash::FxHashMap;
use crate::ids::VarId;

/// A simple append-only string interner.
///
/// Interning is done by the (single) instrumentation front-end while
/// building a program, so the interner is not itself thread-safe; the
/// resolved table is shared read-only with the report writer afterwards.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<String>,
    index: FxHashMap<String, VarId>,
}

impl Interner {
    /// Creates an empty interner. Id 0 is pre-assigned to `"*"`, the
    /// paper's placeholder for "no variable" (used in `{INIT *}` records).
    pub fn new() -> Self {
        let mut i = Interner { names: Vec::new(), index: FxHashMap::default() };
        let star = i.intern("*");
        debug_assert_eq!(star, 0);
        i
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as VarId;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Resolves an id back to its name. Panics on an id this interner
    /// never produced.
    pub fn resolve(&self, id: VarId) -> &str {
        &self.names[id as usize]
    }

    /// Resolves, returning `None` for foreign ids.
    pub fn get(&self, id: VarId) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names (including the pre-assigned `"*"`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if only the placeholder is present.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Approximate heap footprint in bytes, for the memory accounting of
    /// Figures 7/8.
    pub fn memory_usage(&self) -> usize {
        self.names.iter().map(|s| s.capacity() + std::mem::size_of::<String>()).sum::<usize>()
            + self.index.capacity()
                * (std::mem::size_of::<String>() + std::mem::size_of::<VarId>() + 8)
    }
}

/// The id of the `"*"` placeholder variable, valid for every
/// [`Interner`] (it is pre-assigned in [`Interner::new`]).
pub const VAR_STAR: VarId = 0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_is_zero() {
        let i = Interner::new();
        assert_eq!(i.resolve(VAR_STAR), "*");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("temp1");
        let b = i.intern("temp2");
        assert_ne!(a, b);
        assert_eq!(i.intern("temp1"), a);
        assert_eq!(i.resolve(a), "temp1");
        assert_eq!(i.resolve(b), "temp2");
        assert_eq!(i.len(), 3); // "*", temp1, temp2
    }

    #[test]
    fn get_on_foreign_id() {
        let i = Interner::new();
        assert_eq!(i.get(99), None);
    }
}
