//! Data-dependence representation (Section III-A of the paper).
//!
//! A dependence is a triple `<sink, type, source>`:
//!
//! - `type` is RAW, WAR or WAW; the special type INIT marks the first write
//!   to an address;
//! - `sink` is the *later* access: `(fileID:line [, threadID])`;
//! - `source` is the *earlier* access: `(fileID:line [, threadID], variable)`.
//!
//! Dependences with the same sink are aggregated in the output (Figure 1),
//! and identical dependences are merged — on NAS this shrank the output by
//! five orders of magnitude (Section III-B).

use crate::ids::{LoopId, ThreadId, VarId};
use crate::loc::SourceLoc;
use core::fmt;

/// A tiny const-friendly bitflags implementation (avoids an extra
/// dependency for three flags).
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $($(#[$fmeta:meta])* const $flag:ident = $val:expr;)*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name($ty);

        impl $name {
            $($(#[$fmeta])* pub const $flag: $name = $name($val);)*

            /// The empty flag set.
            pub const fn empty() -> Self { $name(0) }
            /// True if no flags are set.
            pub const fn is_empty(self) -> bool { self.0 == 0 }
            /// True if every flag in `other` is set in `self`.
            pub const fn contains(self, other: Self) -> bool {
                (self.0 & other.0) == other.0
            }
            /// Set union.
            pub const fn union(self, other: Self) -> Self { $name(self.0 | other.0) }
            /// Raw bits.
            pub const fn bits(self) -> $ty { self.0 }
            /// Reconstructs a flag set from raw bits, keeping only bits
            /// that correspond to a defined flag (unknown bits — e.g.
            /// from a checkpoint written by a newer build — are dropped).
            pub const fn from_bits_truncate(bits: $ty) -> Self {
                $name(bits & (0 $(| $val)*))
            }
        }

        impl core::ops::BitOr for $name {
            type Output = Self;
            fn bitor(self, rhs: Self) -> Self { self.union(rhs) }
        }
        impl core::ops::BitOrAssign for $name {
            fn bitor_assign(&mut self, rhs: Self) { self.0 |= rhs.0; }
        }
    };
}

/// Dependence type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepType {
    /// Read after write (true dependence).
    Raw,
    /// Write after read (anti dependence).
    War,
    /// Write after write (output dependence).
    Waw,
    /// First write to an address ("INIT" in the paper's output).
    Init,
}

impl fmt::Display for DepType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DepType::Raw => "RAW",
            DepType::War => "WAR",
            DepType::Waw => "WAW",
            DepType::Init => "INIT",
        })
    }
}

bitflags_lite! {
    /// Extra qualifiers attached to a dependence edge.
    pub struct DepFlags: u8 {
        /// Observed crossing a loop-iteration boundary (loop-carried) for
        /// the innermost enclosing loop recorded in `carrier`.
        const LOOP_CARRIED = 1 << 0;
        /// Also observed *within* a single iteration. A dependence may be
        /// both (different dynamic instances).
        const INTRA_ITERATION = 1 << 1;
        /// The worker observed a timestamp reversal for this address:
        /// the access/push pair was not atomic, exposing a potential data
        /// race (Section V-B).
        const REVERSED = 1 << 2;
    }
}

/// The aggregation key of the output: every dependence with the same sink
/// (location + thread) is printed on one line (Figure 1/Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SinkKey {
    /// Sink source location.
    pub loc: SourceLoc,
    /// Sink thread (always 0 for sequential targets).
    pub thread: ThreadId,
}

/// One aggregated dependence edge: `{TYPE source|var}` plus qualifiers.
///
/// `Ord` gives the deterministic output order used by the report writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DepEdge {
    /// Dependence type.
    pub dtype: DepType,
    /// Source (earlier access) location. For INIT this equals the sink.
    pub source_loc: SourceLoc,
    /// Source thread.
    pub source_thread: ThreadId,
    /// Variable occupying the address (interned).
    pub var: VarId,
    /// Innermost loop for which this dependence was seen loop-carried,
    /// if any.
    pub carrier: Option<LoopId>,
    /// Qualifier flags.
    pub flags: DepFlags,
}

/// A fully-resolved dependence: sink plus edge. This is the unit the
/// accuracy evaluation (Table I) compares between the signature profiler
/// and the perfect-signature baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dependence {
    /// Aggregation key (later access).
    pub sink: SinkKey,
    /// Edge payload (type, earlier access, variable).
    pub edge: DepEdge,
}

impl Dependence {
    /// Identity used for set comparison in the accuracy evaluation:
    /// `(type, sink, source, var)` — qualifier flags and carriers are
    /// ignored, matching the paper's notion of "a dependence".
    pub fn identity(&self) -> (DepType, SourceLoc, ThreadId, SourceLoc, ThreadId, VarId) {
        (
            self.edge.dtype,
            self.sink.loc,
            self.sink.thread,
            self.edge.source_loc,
            self.edge.source_thread,
            self.edge.var,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::loc;

    #[test]
    fn dep_type_display_matches_paper() {
        assert_eq!(DepType::Raw.to_string(), "RAW");
        assert_eq!(DepType::War.to_string(), "WAR");
        assert_eq!(DepType::Waw.to_string(), "WAW");
        assert_eq!(DepType::Init.to_string(), "INIT");
    }

    #[test]
    fn flags_algebra() {
        let f = DepFlags::LOOP_CARRIED | DepFlags::REVERSED;
        assert!(f.contains(DepFlags::LOOP_CARRIED));
        assert!(f.contains(DepFlags::REVERSED));
        assert!(!f.contains(DepFlags::INTRA_ITERATION));
        assert!(DepFlags::empty().is_empty());
        let mut g = DepFlags::empty();
        g |= DepFlags::INTRA_ITERATION;
        assert!(g.contains(DepFlags::INTRA_ITERATION));
    }

    #[test]
    fn bits_round_trip_and_truncate() {
        let f = DepFlags::LOOP_CARRIED | DepFlags::REVERSED;
        assert_eq!(DepFlags::from_bits_truncate(f.bits()), f);
        // Undefined high bits are dropped, not preserved.
        assert_eq!(
            DepFlags::from_bits_truncate(0xFF),
            DepFlags::LOOP_CARRIED | DepFlags::INTRA_ITERATION | DepFlags::REVERSED
        );
    }

    #[test]
    fn identity_ignores_flags_and_carrier() {
        let mk = |flags, carrier| Dependence {
            sink: SinkKey { loc: loc(1, 63), thread: 0 },
            edge: DepEdge {
                dtype: DepType::Raw,
                source_loc: loc(1, 59),
                source_thread: 0,
                var: 7,
                carrier,
                flags,
            },
        };
        let a = mk(DepFlags::empty(), None);
        let b = mk(DepFlags::LOOP_CARRIED, Some(3));
        assert_eq!(a.identity(), b.identity());
        assert_ne!(a, b);
    }

    #[test]
    fn edge_ordering_is_deterministic() {
        let e1 = DepEdge {
            dtype: DepType::Raw,
            source_loc: loc(1, 59),
            source_thread: 0,
            var: 1,
            carrier: None,
            flags: DepFlags::empty(),
        };
        let e2 = DepEdge { source_loc: loc(1, 67), ..e1 };
        assert!(e1 < e2);
    }
}
