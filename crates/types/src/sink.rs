//! The tracer contract between instrumentation front-ends and profiling
//! engines.
//!
//! Front-ends (the MiniVM interpreter, the `TracedVec` API) call
//! [`Tracer::event`] for every instrumented action; engines (serial,
//! parallel, multi-threaded) implement it. The trait lives here, in the
//! shared vocabulary crate, so substrates and engines need not depend on
//! each other.

use crate::event::TraceEvent;
use crate::ids::ThreadId;

/// Consumes the instrumentation event stream of one target thread.
pub trait Tracer {
    /// True if events should be generated at all. Front-ends skip event
    /// construction *and timestamp generation* when false, so a disabled
    /// tracer measures native (uninstrumented) execution — the denominator
    /// of every slowdown figure.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Delivers one event.
    fn event(&mut self, ev: TraceEvent);

    /// Flush hook invoked immediately *before* a target lock is released,
    /// at barriers, and at thread exit. Chunked tracers push their pending
    /// chunks to the worker queues here, which places the push inside the
    /// lock region — the access/push atomicity of Figure 4 of the paper.
    /// Default: no-op.
    #[inline]
    fn sync_point(&mut self) {}
}

/// Hands out per-target-thread tracers for multi-threaded runs and
/// collects them back at join time.
pub trait TracerFactory: Sync {
    /// Tracer type given to each target thread.
    type Tracer: Tracer + Send;

    /// Creates the tracer for target thread `tid`. Called once per thread,
    /// including `tid == 0` (the main thread).
    fn tracer(&self, tid: ThreadId) -> Self::Tracer;

    /// Returns a thread's tracer when the thread finishes (flush point).
    fn join(&self, tid: ThreadId, tracer: Self::Tracer);
}

impl<T: Tracer + ?Sized> Tracer for &mut T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn event(&mut self, ev: TraceEvent) {
        (**self).event(ev)
    }

    #[inline]
    fn sync_point(&mut self) {
        (**self).sync_point()
    }
}
