//! Microbenchmarks of the access stores (Section III-B): the per-access
//! cost of signatures vs. the exact alternatives — the mechanism behind
//! the paper's "hash table approach is about 1.5–3.7× slower" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dp_sig::{
    AccessStore, CompactSlot, ExtendedSlot, HashHistory, PerfectSignature, ShadowMemory, SigEntry,
    Signature,
};
use dp_types::loc::loc;
use std::hint::black_box;

const N_ADDRS: u64 = 50_000;
const OPS: u64 = 200_000;

/// Mixed put/get workload over a pseudo-random address stream.
fn drive<S: AccessStore>(store: &mut S) -> u64 {
    let mut rng = 0x1234_5678u64;
    let mut hits = 0u64;
    let entry = SigEntry::new(loc(1, 42), 0, 1);
    for _ in 0..OPS {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let addr = 0x10_0000 + ((rng >> 24) % N_ADDRS) * 8;
        if rng & 1 == 0 {
            store.put(addr, entry);
        } else if store.get(addr).is_some() {
            hits += 1;
        }
    }
    hits
}

fn bench_stores(c: &mut Criterion) {
    let mut g = c.benchmark_group("access_store");
    g.throughput(Throughput::Elements(OPS));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.warm_up_time(std::time::Duration::from_millis(300));

    g.bench_function(BenchmarkId::new("signature", "extended16B"), |b| {
        let mut s = Signature::<ExtendedSlot>::new(N_ADDRS as usize * 4);
        b.iter(|| black_box(drive(&mut s)));
    });
    g.bench_function(BenchmarkId::new("signature", "compact4B"), |b| {
        let mut s = Signature::<CompactSlot>::new(N_ADDRS as usize * 4);
        b.iter(|| black_box(drive(&mut s)));
    });
    g.bench_function(BenchmarkId::new("perfect", "fx-map"), |b| {
        let mut s = PerfectSignature::with_capacity(N_ADDRS as usize);
        b.iter(|| black_box(drive(&mut s)));
    });
    g.bench_function(BenchmarkId::new("hash-history", "chained"), |b| {
        let mut s = HashHistory::new(N_ADDRS as usize / 4);
        b.iter(|| black_box(drive(&mut s)));
    });
    g.bench_function(BenchmarkId::new("shadow", "two-level"), |b| {
        let mut s = ShadowMemory::new();
        b.iter(|| black_box(drive(&mut s)));
    });
    g.finish();
}

fn bench_lifetime_removal(c: &mut Criterion) {
    let mut g = c.benchmark_group("lifetime_removal");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1000));
    g.bench_function("signature_range_remove_4k", |b| {
        let mut s = Signature::<ExtendedSlot>::new(1 << 18);
        let entry = SigEntry::new(loc(1, 1), 0, 1);
        b.iter(|| {
            for i in 0..4096u64 {
                s.put(0x1000 + i * 8, entry);
            }
            for i in 0..4096u64 {
                s.remove(0x1000 + i * 8);
            }
            black_box(s.occupied())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_stores, bench_lifetime_removal);
criterion_main!(benches);
