//! Queue microbenchmarks (Section IV): per-operation cost of the
//! lock-free rings vs. the mutex queue — the source of Figure 5's
//! lock-free vs. lock-based gap.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dp_queue::{spsc_ring, LockQueue, MpmcQueue};
use std::hint::black_box;

const OPS: u64 = 100_000;

fn bench_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_pingpong_1thread");
    g.throughput(Throughput::Elements(OPS));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.warm_up_time(std::time::Duration::from_millis(300));

    g.bench_function("spsc_ring", |b| {
        let (p, cons) = spsc_ring::<u64>(1024);
        b.iter(|| {
            for i in 0..OPS {
                p.push(i).unwrap();
                black_box(cons.pop());
            }
        });
    });
    g.bench_function("mpmc_vyukov", |b| {
        let q = MpmcQueue::new(1024);
        b.iter(|| {
            for i in 0..OPS {
                q.push(i).unwrap();
                black_box(q.pop());
            }
        });
    });
    g.bench_function("lock_queue", |b| {
        let q = LockQueue::new(1024);
        b.iter(|| {
            for i in 0..OPS {
                q.push(i).unwrap();
                black_box(q.pop());
            }
        });
    });
    g.finish();
}

fn bench_batched(c: &mut Criterion) {
    // The pipeline amortizes queue traffic over chunk_capacity events;
    // this measures the amortized pattern: fill 64, drain 64.
    let mut g = c.benchmark_group("queue_batch64");
    g.throughput(Throughput::Elements(OPS));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1500));

    g.bench_function("mpmc_vyukov", |b| {
        let q = MpmcQueue::new(1024);
        b.iter(|| {
            for _ in 0..OPS / 64 {
                for i in 0..64u64 {
                    q.push(i).unwrap();
                }
                while black_box(q.pop()).is_some() {}
            }
        });
    });
    g.bench_function("lock_queue", |b| {
        let q = LockQueue::new(1024);
        b.iter(|| {
            for _ in 0..OPS / 64 {
                for i in 0..64u64 {
                    q.push(i).unwrap();
                }
                while black_box(q.pop()).is_some() {}
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_single_thread, bench_batched);
criterion_main!(benches);
