//! End-to-end engine benchmarks: the full profiling cost per event for
//! each engine configuration, on a fixed recorded event stream (so the
//! interpreter cost is excluded and the numbers isolate the profiler).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dp_core::parallel::{LockBasedProfiler, LockFreeProfiler, SpscProfiler};
use dp_core::{ParallelProfiler, ProfilerConfig, SequentialProfiler};
use dp_sig::{ExtendedSlot, PerfectSignature, Signature};
use dp_trace::workloads::{synth, Scale};
use dp_trace::{CollectTracer, Interp};
use dp_types::{TraceEvent, Tracer};
use std::hint::black_box;

fn events() -> Vec<TraceEvent> {
    let w = synth::uniform(20_000, 200_000);
    let vm = Interp::new(&w.program);
    let mut t = CollectTracer::new();
    vm.run_seq(&mut t);
    t.events
}

fn bench_engines(c: &mut Criterion) {
    let evs = events();
    let mut g = c.benchmark_group("profiler_engines");
    g.throughput(Throughput::Elements(evs.len() as u64));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(2000));
    g.warm_up_time(std::time::Duration::from_millis(300));

    g.bench_function("serial_signature", |b| {
        b.iter(|| {
            let mut p = SequentialProfiler::with_signature(1 << 17);
            for e in &evs {
                p.on_event(e);
            }
            black_box(p.finish().stats.deps_merged)
        });
    });
    g.bench_function("serial_perfect", |b| {
        b.iter(|| {
            let mut p = SequentialProfiler::perfect();
            for e in &evs {
                p.on_event(e);
            }
            black_box(p.finish().stats.deps_merged)
        });
    });
    g.bench_function("parallel_lockfree_4w", |b| {
        b.iter(|| {
            let cfg = ProfilerConfig::default().with_workers(4).with_slots(1 << 17);
            let slots = cfg.slots_per_worker();
            let mut p: LockFreeProfiler<Signature<ExtendedSlot>> =
                ParallelProfiler::new(cfg, move || Signature::new(slots));
            for e in &evs {
                p.event(*e);
            }
            black_box(p.finish().stats.deps_merged)
        });
    });
    g.bench_function("parallel_spsc_4w", |b| {
        b.iter(|| {
            let cfg = ProfilerConfig::default().with_workers(4).with_slots(1 << 17);
            let slots = cfg.slots_per_worker();
            let mut p: SpscProfiler<Signature<ExtendedSlot>> =
                ParallelProfiler::new(cfg, move || Signature::new(slots));
            for e in &evs {
                p.event(*e);
            }
            black_box(p.finish().stats.deps_merged)
        });
    });
    g.bench_function("parallel_lockbased_4w", |b| {
        b.iter(|| {
            let cfg = ProfilerConfig::default().with_workers(4).with_slots(1 << 17);
            let slots = cfg.slots_per_worker();
            let mut p: LockBasedProfiler<Signature<ExtendedSlot>> =
                ParallelProfiler::new(cfg, move || Signature::new(slots));
            for e in &evs {
                p.event(*e);
            }
            black_box(p.finish().stats.deps_merged)
        });
    });
    g.finish();
}

fn bench_merge_and_interp(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1500));

    // Interpreter-only baseline: the "native execution" denominator.
    let w = synth::uniform(20_000, 200_000);
    g.bench_function("interp_null_tracer", |b| {
        let vm = Interp::new(&w.program);
        b.iter(|| vm.run_seq(&mut dp_trace::NullTracer));
    });

    // Worker-map merge cost (the final step of Figure 2).
    let kmeans = &dp_trace::workloads::starbench_suite(Scale(0.1))[1];
    let vm = Interp::new(&kmeans.program);
    let mut prof = SequentialProfiler::perfect();
    vm.run_seq(&mut prof);
    let result = prof.finish();
    g.bench_function("depstore_merge", |b| {
        b.iter(|| {
            let mut global = dp_core::DepStore::new();
            global.merge(black_box(result.deps.clone()));
            black_box(global.merged_len())
        });
    });
    let _ = PerfectSignature::new();
    g.finish();
}

criterion_group!(benches, bench_engines, bench_merge_and_interp);
criterion_main!(benches);
