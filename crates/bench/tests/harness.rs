//! Harness-level integration tests: recipes dir ↔ registry coverage,
//! runner determinism, and the regression gate on synthetic baselines.

use dp_bench::gate;
use dp_bench::recipe::Recipe;
use dp_bench::result::{BenchResult, MetricRow, ResultError, SCHEMA_VERSION};
use dp_bench::runner::Runner;
use dp_bench::scenario;
use std::path::Path;

fn recipes_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("recipes")
}

#[test]
fn every_committed_recipe_parses_and_names_a_registered_scenario() {
    let recipes = Recipe::load_dir(&recipes_dir()).expect("recipes dir loads");
    assert!(recipes.len() >= 19, "expected all experiment recipes, got {}", recipes.len());
    for (path, r) in &recipes {
        assert!(
            scenario::find(&r.scenario).is_some(),
            "{}: scenario '{}' is not registered",
            path.display(),
            r.scenario
        );
        // Quick scale must be small enough for CI smoke runs.
        assert!(r.effective_scale(true) <= 0.05, "{}: quick scale too large", path.display());
        // Round-trips through canonical TOML.
        assert_eq!(&Recipe::from_toml_str(&r.to_toml()).unwrap(), r, "{}", path.display());
    }
}

#[test]
fn every_registered_scenario_has_a_recipe() {
    let recipes = Recipe::load_dir(&recipes_dir()).expect("recipes dir loads");
    for s in scenario::registry() {
        assert!(
            recipes.iter().any(|(_, r)| r.scenario == s.id()),
            "scenario '{}' ({}) has no recipe under crates/bench/recipes/",
            s.id(),
            s.experiment()
        );
    }
    // Recipe names are unique (they name result artifacts).
    let mut names: Vec<&str> = recipes.iter().map(|(_, r)| r.name.as_str()).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(before, names.len(), "duplicate recipe name");
}

#[test]
fn runner_is_deterministic_on_non_timing_fields() {
    // table2 is pure replay analysis: same recipe + seed must reproduce
    // every non-timing field bit-for-bit.
    let recipe = Recipe::from_toml_str(
        "name = \"det\"\nscenario = \"table2\"\nworkload = \"nas\"\nscale = 0.02\n",
    )
    .unwrap();
    let runner = Runner::new(true);
    let a = runner.run(&recipe).unwrap().result;
    let b = runner.run(&recipe).unwrap().result;
    assert_eq!(a.non_timing_fingerprint(), b.non_timing_fingerprint());
    assert!(!a.rows.is_empty());
}

fn synthetic(recipe: &str, rate: f64) -> BenchResult {
    BenchResult {
        schema_version: SCHEMA_VERSION,
        recipe: recipe.into(),
        scenario: "spsc".into(),
        git_rev: "test0000".into(),
        seed: 42,
        scale: 0.03,
        quick: true,
        rows: vec![MetricRow {
            label: "bt/spsc".into(),
            events: Some(10_000),
            events_per_sec: Some(rate),
            ..Default::default()
        }],
        summary_events_per_sec: Some(rate),
    }
}

#[test]
fn gate_passes_within_threshold_and_fails_beyond() {
    let baseline = synthetic("spsc", 1_000_000.0);
    let slightly_slower = synthetic("spsc", 800_000.0);
    let much_slower = synthetic("spsc", 300_000.0);
    let ok = gate::compare(&baseline, &slightly_slower, 50.0).unwrap();
    assert!(ok.pass, "{ok}");
    let bad = gate::compare(&baseline, &much_slower, 50.0).unwrap();
    assert!(!bad.pass, "{bad}");
    // An inflated baseline (the acceptance-criteria probe) must fail.
    let inflated = synthetic("spsc", 100_000_000.0);
    let fresh = synthetic("spsc", 1_000_000.0);
    assert!(!gate::compare(&inflated, &fresh, 50.0).unwrap().pass);
}

#[test]
fn unversioned_baseline_is_a_typed_error() {
    // The pre-v1 artifact shape the old flag-soup binary wrote.
    let legacy = r#"{
      "experiment": "spsc-transport-comparison",
      "quick": true,
      "workloads": [{"name": "BT", "transports": []}]
    }"#;
    match BenchResult::from_json(legacy) {
        Err(ResultError::Unversioned) => {}
        other => panic!("wanted ResultError::Unversioned, got {other:?}"),
    }
}

#[test]
fn committed_baselines_are_versioned_and_gateable() {
    // The repo-root baselines the CI gate runs against.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for name in ["BENCH_spsc.json", "BENCH_server.json"] {
        let path = root.join(name);
        let baseline =
            BenchResult::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(baseline.schema_version, SCHEMA_VERSION);
        assert!(
            baseline.summary_events_per_sec.is_some(),
            "{name}: no summary events/sec to gate on"
        );
        assert!(
            Recipe::load_dir(&recipes_dir())
                .unwrap()
                .iter()
                .any(|(_, r)| r.name == baseline.recipe),
            "{name}: baseline recipe '{}' has no committed recipe file",
            baseline.recipe
        );
    }
}
