//! Plain-text table formatting for the experiment harness.

/// A simple left-padded text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with per-column width alignment.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats bytes as a human-readable MB value.
pub fn mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio as `12.3x`.
pub fn times(x: f64) -> String {
    if x.is_nan() {
        "n/a".into()
    } else {
        format!("{x:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with(" 1"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(mb(1024 * 1024), "1.0");
        assert_eq!(times(2.0), "2.0x");
        assert_eq!(times(f64::NAN), "n/a");
    }
}
