//! `BenchResult` v1 — the one versioned JSON schema every benchmark
//! artifact uses.
//!
//! Every `BENCH_*.json` the harness emits (and every baseline `gate`
//! consumes) is a serialized [`BenchResult`]: schema version, recipe id,
//! git revision, seed, and a list of [`MetricRow`]s carrying the metrics
//! the ISSUE/ROADMAP trajectory tracks — events/sec, wall-clock, RTT
//! percentiles, memory high-water, degradation counters — plus
//! per-scenario deterministic `checks` (accuracy numbers, identical-deps
//! flags, dependence counts).
//!
//! Timing fields (`wall_ms`, `events_per_sec`, `rtt_*`) vary run to run;
//! everything else must be a pure function of (recipe, seed, code). The
//! [`BenchResult::non_timing_fingerprint`] projection captures exactly
//! the deterministic part and is what the runner determinism test pins.

use crate::json::{Json, JsonError};
use std::collections::BTreeMap;
use std::fmt;

/// Current result schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// One measured row of a benchmark result (a workload × matrix point).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricRow {
    /// Row label, e.g. `"kmeans/spsc"` or `"clients=16"`.
    pub label: String,
    /// Events processed (deterministic).
    pub events: Option<u64>,
    /// Wall-clock milliseconds (timing).
    pub wall_ms: Option<f64>,
    /// Throughput in events per second (timing).
    pub events_per_sec: Option<f64>,
    /// Sync round-trip p50 in microseconds (timing, server scenarios).
    pub rtt_p50_us: Option<f64>,
    /// Sync round-trip p99 in microseconds (timing, server scenarios).
    pub rtt_p99_us: Option<f64>,
    /// Peak resident bytes attributed to the profiler (deterministic for
    /// a fixed recipe: store sizes are configuration-driven).
    pub mem_high_water_bytes: Option<u64>,
    /// Events lost to degradation (deterministic under an inert fault
    /// plan: 0).
    pub degraded_events: Option<u64>,
    /// Scenario-specific deterministic facts (FPR/FNR, identical-deps,
    /// merge factors, …), keyed in sorted order.
    pub checks: BTreeMap<String, String>,
}

impl MetricRow {
    /// A row with only a label set.
    pub fn new(label: impl Into<String>) -> Self {
        MetricRow { label: label.into(), ..Default::default() }
    }

    /// Adds a deterministic check fact.
    pub fn check(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.checks.insert(key.to_string(), value.to_string());
        self
    }
}

/// A complete benchmark result under schema v1.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Always [`SCHEMA_VERSION`] for freshly produced results.
    pub schema_version: u64,
    /// Recipe name this result was produced from.
    pub recipe: String,
    /// Scenario id the recipe named.
    pub scenario: String,
    /// `git rev-parse --short HEAD` at run time (or `"unknown"`).
    pub git_rev: String,
    /// Deterministic seed the run used.
    pub seed: u64,
    /// Effective workload scale.
    pub scale: f64,
    /// Whether quick overrides were applied.
    pub quick: bool,
    /// Measured rows.
    pub rows: Vec<MetricRow>,
    /// Headline throughput (events/sec) `gate` compares, when the
    /// scenario measures one.
    pub summary_events_per_sec: Option<f64>,
}

/// Typed failure when reading a result file.
#[derive(Debug)]
pub enum ResultError {
    /// The file is not valid JSON.
    Json(JsonError),
    /// The document has no `schema_version` field — a pre-v1 artifact.
    Unversioned,
    /// The document declares a schema version this build cannot read.
    SchemaVersion(u64),
    /// A required field is missing or has the wrong type.
    Malformed(&'static str),
    /// Filesystem error.
    Io(std::io::Error),
}

impl fmt::Display for ResultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResultError::Json(e) => write!(f, "{e}"),
            ResultError::Unversioned => write!(
                f,
                "result file has no 'schema_version' field (pre-v1 artifact); \
                 regenerate it with 'dp-bench run'"
            ),
            ResultError::SchemaVersion(v) => write!(
                f,
                "result file declares schema_version {v}, this build reads {SCHEMA_VERSION}"
            ),
            ResultError::Malformed(field) => write!(f, "result file field '{field}' is malformed"),
            ResultError::Io(e) => write!(f, "result I/O error: {e}"),
        }
    }
}

impl std::error::Error for ResultError {}

impl From<std::io::Error> for ResultError {
    fn from(e: std::io::Error) -> Self {
        ResultError::Io(e)
    }
}

impl From<JsonError> for ResultError {
    fn from(e: JsonError) -> Self {
        ResultError::Json(e)
    }
}

fn opt_f64(fields: &mut Vec<(&str, Json)>, key: &'static str, v: Option<f64>) {
    if let Some(x) = v {
        fields.push((key, Json::num(round6(x))));
    }
}

/// Clamp noisy float output to 6 decimals so artifacts stay diffable.
fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

impl BenchResult {
    /// Serializes to pretty JSON with stable key order.
    pub fn to_json(&self) -> String {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                let mut fields: Vec<(&str, Json)> = vec![("label", Json::str(&r.label))];
                if let Some(e) = r.events {
                    fields.push(("events", Json::num(e as f64)));
                }
                opt_f64(&mut fields, "wall_ms", r.wall_ms);
                opt_f64(&mut fields, "events_per_sec", r.events_per_sec);
                opt_f64(&mut fields, "rtt_p50_us", r.rtt_p50_us);
                opt_f64(&mut fields, "rtt_p99_us", r.rtt_p99_us);
                if let Some(m) = r.mem_high_water_bytes {
                    fields.push(("mem_high_water_bytes", Json::num(m as f64)));
                }
                if let Some(d) = r.degraded_events {
                    fields.push(("degraded_events", Json::num(d as f64)));
                }
                if !r.checks.is_empty() {
                    let checks =
                        r.checks.iter().map(|(k, v)| (k.clone(), Json::str(v.clone()))).collect();
                    fields.push(("checks", Json::Obj(checks)));
                }
                Json::obj(fields)
            })
            .collect();
        let mut fields: Vec<(&str, Json)> = vec![
            ("schema_version", Json::num(self.schema_version as f64)),
            ("recipe", Json::str(&self.recipe)),
            ("scenario", Json::str(&self.scenario)),
            ("git_rev", Json::str(&self.git_rev)),
            ("seed", Json::num(self.seed as f64)),
            ("scale", Json::num(self.scale)),
            ("quick", Json::Bool(self.quick)),
            ("rows", Json::Arr(rows)),
        ];
        let mut summary: Vec<(&str, Json)> = Vec::new();
        opt_f64(&mut summary, "events_per_sec", self.summary_events_per_sec);
        fields.push(("summary", Json::obj(summary)));
        Json::obj(fields).render_pretty()
    }

    /// Parses a result document, enforcing the schema version.
    pub fn from_json(src: &str) -> Result<BenchResult, ResultError> {
        let doc = Json::parse(src)?;
        let version = match doc.get("schema_version") {
            None => return Err(ResultError::Unversioned),
            Some(v) => v.as_u64().ok_or(ResultError::Malformed("schema_version"))?,
        };
        if version != SCHEMA_VERSION {
            return Err(ResultError::SchemaVersion(version));
        }
        let field_str = |key: &'static str| -> Result<String, ResultError> {
            doc.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or(ResultError::Malformed(key))
        };
        let rows_json =
            doc.get("rows").and_then(|v| v.as_arr()).ok_or(ResultError::Malformed("rows"))?;
        let mut rows = Vec::with_capacity(rows_json.len());
        for r in rows_json {
            let label = r
                .get("label")
                .and_then(|v| v.as_str())
                .ok_or(ResultError::Malformed("rows[].label"))?;
            let mut row = MetricRow::new(label);
            row.events = r.get("events").and_then(|v| v.as_u64());
            row.wall_ms = r.get("wall_ms").and_then(|v| v.as_f64());
            row.events_per_sec = r.get("events_per_sec").and_then(|v| v.as_f64());
            row.rtt_p50_us = r.get("rtt_p50_us").and_then(|v| v.as_f64());
            row.rtt_p99_us = r.get("rtt_p99_us").and_then(|v| v.as_f64());
            row.mem_high_water_bytes = r.get("mem_high_water_bytes").and_then(|v| v.as_u64());
            row.degraded_events = r.get("degraded_events").and_then(|v| v.as_u64());
            if let Some(Json::Obj(checks)) = r.get("checks") {
                for (k, v) in checks {
                    row.checks.insert(
                        k.clone(),
                        v.as_str().ok_or(ResultError::Malformed("rows[].checks"))?.to_string(),
                    );
                }
            }
            rows.push(row);
        }
        Ok(BenchResult {
            schema_version: version,
            recipe: field_str("recipe")?,
            scenario: field_str("scenario")?,
            git_rev: field_str("git_rev")?,
            seed: doc.get("seed").and_then(|v| v.as_u64()).ok_or(ResultError::Malformed("seed"))?,
            scale: doc
                .get("scale")
                .and_then(|v| v.as_f64())
                .ok_or(ResultError::Malformed("scale"))?,
            quick: doc
                .get("quick")
                .and_then(|v| v.as_bool())
                .ok_or(ResultError::Malformed("quick"))?,
            rows,
            summary_events_per_sec: doc
                .get("summary")
                .and_then(|s| s.get("events_per_sec"))
                .and_then(|v| v.as_f64()),
        })
    }

    /// Loads a result file.
    pub fn load(path: &std::path::Path) -> Result<BenchResult, ResultError> {
        BenchResult::from_json(&std::fs::read_to_string(path)?)
    }

    /// The deterministic projection of this result: everything except
    /// timing fields and the git revision. Two runs of the same recipe
    /// with the same seed must produce identical fingerprints.
    pub fn non_timing_fingerprint(&self) -> String {
        let mut s = format!(
            "schema={} recipe={} scenario={} seed={} scale={} quick={}\n",
            self.schema_version, self.recipe, self.scenario, self.seed, self.scale, self.quick
        );
        for r in &self.rows {
            s.push_str(&format!(
                "row label={} events={:?} mem={:?} degraded={:?} checks={:?}\n",
                r.label, r.events, r.mem_high_water_bytes, r.degraded_events, r.checks
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchResult {
        BenchResult {
            schema_version: SCHEMA_VERSION,
            recipe: "spsc-quick".into(),
            scenario: "spsc".into(),
            git_rev: "abc1234".into(),
            seed: 42,
            scale: 0.03,
            quick: true,
            rows: vec![
                MetricRow {
                    label: "kmeans/spsc".into(),
                    events: Some(123456),
                    wall_ms: Some(12.5),
                    events_per_sec: Some(9_876_543.0),
                    mem_high_water_bytes: Some(1 << 20),
                    degraded_events: Some(0),
                    ..Default::default()
                }
                .check("identical_deps", "true"),
                MetricRow::new("clients=4"),
            ],
            summary_events_per_sec: Some(9_876_543.0),
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let parsed = BenchResult::from_json(&r.to_json()).unwrap();
        assert_eq!(r, parsed);
    }

    #[test]
    fn unversioned_rejected_with_typed_error() {
        let legacy = r#"{"experiment": "spsc-transport-comparison", "workloads": []}"#;
        assert!(matches!(BenchResult::from_json(legacy), Err(ResultError::Unversioned)));
    }

    #[test]
    fn future_schema_rejected() {
        let doc = sample().to_json().replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(matches!(BenchResult::from_json(&doc), Err(ResultError::SchemaVersion(99))));
    }

    #[test]
    fn fingerprint_ignores_timing() {
        let a = sample();
        let mut b = sample();
        b.rows[0].wall_ms = Some(99.9);
        b.rows[0].events_per_sec = Some(1.0);
        b.git_rev = "fffffff".into();
        assert_eq!(a.non_timing_fingerprint(), b.non_timing_fingerprint());
        let mut c = sample();
        c.rows[0].events = Some(1);
        assert_ne!(a.non_timing_fingerprint(), c.non_timing_fingerprint());
    }
}
