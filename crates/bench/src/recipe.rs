//! Benchmark recipes: what to run, at which scale, over which matrix.
//!
//! A [`Recipe`] is declared in a TOML file under `crates/bench/recipes/`
//! and names a registered scenario (E1–E16), a workload family, a scale,
//! repetition/warmup counts, a deterministic seed, and an
//! engine/transport/worker matrix. An optional `[quick]` table overrides
//! scale and repetitions for CI smoke runs (`--quick`).
//!
//! The workspace is offline, so the parser below implements the TOML
//! subset the recipes need — `key = value` pairs (strings, integers,
//! floats, booleans, homogeneous arrays), one level of `[tables]`, and
//! `#` comments — with typed errors. Unknown fields are rejected so a
//! typo in a recipe fails loudly instead of silently running defaults.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Engines a recipe matrix may request.
pub const ENGINES: &[&str] = &["serial", "parallel", "mt"];
/// Transports a recipe matrix may request.
pub const TRANSPORTS: &[&str] = &["spsc", "mpmc", "lock"];
/// Workload families a recipe may name.
pub const WORKLOADS: &[&str] = &["nas", "starbench", "mixed", "splash", "synthetic"];

/// A declarative benchmark recipe (one TOML file).
#[derive(Debug, Clone, PartialEq)]
pub struct Recipe {
    /// Unique recipe name (also the `recipe` field of results).
    pub name: String,
    /// Registered scenario id (e.g. `spsc`, `table1`).
    pub scenario: String,
    /// Workload family the scenario draws from.
    pub workload: String,
    /// Workload scale multiplier (1.0 = default minis).
    pub scale: f64,
    /// Timed repetitions; the best (min wall / max rate) is reported.
    pub repetitions: u32,
    /// Untimed warmup runs before the repetitions.
    pub warmup: u32,
    /// Deterministic seed threaded to the scenario.
    pub seed: u64,
    /// Engine / transport / worker / client matrix.
    pub matrix: Matrix,
    /// Overrides applied when running with `--quick`.
    pub quick: QuickOverride,
    /// Per-row absolute budgets, as `"<row> <metric> <=|>= <bound>"`
    /// specs — parsed/evaluated by [`crate::gate::RowGate`].
    pub gates: Vec<String>,
}

/// The execution matrix of a recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Engines to exercise (`serial` / `parallel` / `mt`).
    pub engines: Vec<String>,
    /// Transports to exercise (`spsc` / `mpmc` / `lock`).
    pub transports: Vec<String>,
    /// Profiling worker counts.
    pub workers: Vec<usize>,
    /// Concurrent client counts (server scenarios).
    pub clients: Vec<usize>,
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix {
            engines: vec!["parallel".into()],
            transports: vec!["spsc".into()],
            workers: vec![4],
            clients: vec![1],
        }
    }
}

/// The `[quick]` override table of a recipe.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuickOverride {
    /// Scale used under `--quick` (defaults to min(scale, 0.05)).
    pub scale: Option<f64>,
    /// Repetitions used under `--quick` (defaults to 1).
    pub repetitions: Option<u32>,
    /// Client counts used under `--quick` (defaults to the matrix's).
    pub clients: Option<Vec<usize>>,
}

/// Typed recipe failure.
#[derive(Debug)]
pub enum RecipeError {
    /// TOML syntax error with a 1-based line number.
    Syntax {
        /// Line the parser choked on.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A field the schema does not know (typo guard).
    UnknownField(String),
    /// A required field is missing.
    MissingField(&'static str),
    /// The matrix names an unknown engine/transport or an empty/zero axis.
    InvalidMatrix(String),
    /// A `gates` entry does not parse as a row-gate spec.
    InvalidGate(String),
    /// The top-level `scenario`/`workload` value is not recognized.
    InvalidValue {
        /// Offending field.
        field: &'static str,
        /// Offending value.
        value: String,
    },
    /// Filesystem error while loading.
    Io(std::io::Error),
}

impl fmt::Display for RecipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecipeError::Syntax { line, msg } => write!(f, "TOML syntax error, line {line}: {msg}"),
            RecipeError::UnknownField(k) => write!(f, "unknown recipe field '{k}'"),
            RecipeError::MissingField(k) => write!(f, "missing required recipe field '{k}'"),
            RecipeError::InvalidMatrix(m) => write!(f, "invalid matrix: {m}"),
            RecipeError::InvalidGate(g) => write!(f, "invalid {g}"),
            RecipeError::InvalidValue { field, value } => {
                write!(f, "invalid value '{value}' for recipe field '{field}'")
            }
            RecipeError::Io(e) => write!(f, "recipe I/O error: {e}"),
        }
    }
}

impl std::error::Error for RecipeError {}

impl From<std::io::Error> for RecipeError {
    fn from(e: std::io::Error) -> Self {
        RecipeError::Io(e)
    }
}

// ------------------------------------------------------------- TOML subset

/// A parsed TOML value (subset: scalars + homogeneous scalar arrays).
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Arr(Vec<TomlValue>),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Arr(_) => "array",
        }
    }
}

/// `(table, key) -> value` pairs; the root table uses `""`.
type TomlDoc = Vec<(String, String, TomlValue)>;

fn parse_toml(src: &str) -> Result<TomlDoc, RecipeError> {
    let mut doc = Vec::new();
    let mut table = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest.strip_suffix(']').ok_or(RecipeError::Syntax {
                line: line_no,
                msg: "unterminated table header".into(),
            })?;
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(RecipeError::Syntax {
                    line: line_no,
                    msg: format!("bad table name '{name}'"),
                });
            }
            table = name.to_string();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or(RecipeError::Syntax { line: line_no, msg: "expected 'key = value'".into() })?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(RecipeError::Syntax { line: line_no, msg: format!("bad key '{key}'") });
        }
        let value = parse_value(value.trim(), line_no)?;
        doc.push((table.clone(), key.to_string(), value));
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting `"..."` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str, line: usize) -> Result<TomlValue, RecipeError> {
    let syntax = |msg: String| RecipeError::Syntax { line, msg };
    if let Some(rest) = s.strip_prefix('"') {
        let inner = rest.strip_suffix('"').ok_or_else(|| syntax("unterminated string".into()))?;
        if inner.contains('"') {
            return Err(syntax("embedded quote in string".into()));
        }
        return Ok(TomlValue::Str(inner.to_string()));
    }
    if let Some(rest) = s.strip_prefix('[') {
        let inner = rest.strip_suffix(']').ok_or_else(|| syntax("unterminated array".into()))?;
        let mut items = Vec::new();
        let inner = inner.trim();
        if !inner.is_empty() {
            for part in inner.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue; // tolerate a trailing comma
                }
                match parse_value(part, line)? {
                    TomlValue::Arr(_) => return Err(syntax("nested arrays unsupported".into())),
                    v => items.push(v),
                }
            }
        }
        return Ok(TomlValue::Arr(items));
    }
    match s {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(TomlValue::Int(i));
    }
    if let Ok(f) = s.parse::<f64>() {
        return Ok(TomlValue::Float(f));
    }
    Err(syntax(format!("cannot parse value '{s}'")))
}

// ------------------------------------------------------------ field access

fn want_str(v: &TomlValue, field: &'static str) -> Result<String, RecipeError> {
    match v {
        TomlValue::Str(s) => Ok(s.clone()),
        other => {
            Err(RecipeError::InvalidValue { field, value: format!("<{}>", other.type_name()) })
        }
    }
}

fn want_f64(v: &TomlValue, field: &'static str) -> Result<f64, RecipeError> {
    match v {
        TomlValue::Float(f) => Ok(*f),
        TomlValue::Int(i) => Ok(*i as f64),
        other => {
            Err(RecipeError::InvalidValue { field, value: format!("<{}>", other.type_name()) })
        }
    }
}

fn want_u32(v: &TomlValue, field: &'static str) -> Result<u32, RecipeError> {
    match v {
        TomlValue::Int(i) if *i >= 0 && *i <= u32::MAX as i64 => Ok(*i as u32),
        other => {
            Err(RecipeError::InvalidValue { field, value: format!("<{}>", other.type_name()) })
        }
    }
}

fn want_u64(v: &TomlValue, field: &'static str) -> Result<u64, RecipeError> {
    match v {
        TomlValue::Int(i) if *i >= 0 => Ok(*i as u64),
        other => {
            Err(RecipeError::InvalidValue { field, value: format!("<{}>", other.type_name()) })
        }
    }
}

fn want_str_arr(v: &TomlValue, field: &'static str) -> Result<Vec<String>, RecipeError> {
    match v {
        TomlValue::Arr(items) => items.iter().map(|i| want_str(i, field)).collect(),
        other => {
            Err(RecipeError::InvalidValue { field, value: format!("<{}>", other.type_name()) })
        }
    }
}

fn want_usize_arr(v: &TomlValue, field: &'static str) -> Result<Vec<usize>, RecipeError> {
    match v {
        TomlValue::Arr(items) => items
            .iter()
            .map(|i| match i {
                TomlValue::Int(n) if *n >= 0 => Ok(*n as usize),
                other => Err(RecipeError::InvalidValue {
                    field,
                    value: format!("<{}>", other.type_name()),
                }),
            })
            .collect(),
        other => {
            Err(RecipeError::InvalidValue { field, value: format!("<{}>", other.type_name()) })
        }
    }
}

// ----------------------------------------------------------------- Recipe

impl Recipe {
    /// Parses a recipe from TOML source, rejecting unknown fields and
    /// validating the matrix.
    pub fn from_toml_str(src: &str) -> Result<Recipe, RecipeError> {
        let doc = parse_toml(src)?;
        let mut name = None;
        let mut scenario = None;
        let mut workload = None;
        let mut scale = 0.25f64;
        let mut repetitions = 1u32;
        let mut warmup = 0u32;
        let mut seed = 42u64;
        let mut matrix = Matrix::default();
        let mut quick = QuickOverride::default();
        let mut gates = Vec::new();
        for (table, key, value) in &doc {
            match (table.as_str(), key.as_str()) {
                ("", "name") => name = Some(want_str(value, "name")?),
                ("", "gates") => gates = want_str_arr(value, "gates")?,
                ("", "scenario") => scenario = Some(want_str(value, "scenario")?),
                ("", "workload") => workload = Some(want_str(value, "workload")?),
                ("", "scale") => scale = want_f64(value, "scale")?,
                ("", "repetitions") => repetitions = want_u32(value, "repetitions")?,
                ("", "warmup") => warmup = want_u32(value, "warmup")?,
                ("", "seed") => seed = want_u64(value, "seed")?,
                ("matrix", "engines") => matrix.engines = want_str_arr(value, "matrix.engines")?,
                ("matrix", "transports") => {
                    matrix.transports = want_str_arr(value, "matrix.transports")?
                }
                ("matrix", "workers") => matrix.workers = want_usize_arr(value, "matrix.workers")?,
                ("matrix", "clients") => matrix.clients = want_usize_arr(value, "matrix.clients")?,
                ("quick", "scale") => quick.scale = Some(want_f64(value, "quick.scale")?),
                ("quick", "repetitions") => {
                    quick.repetitions = Some(want_u32(value, "quick.repetitions")?)
                }
                ("quick", "clients") => {
                    quick.clients = Some(want_usize_arr(value, "quick.clients")?)
                }
                ("", k) => return Err(RecipeError::UnknownField(k.to_string())),
                (t, k) => return Err(RecipeError::UnknownField(format!("{t}.{k}"))),
            }
        }
        let r = Recipe {
            name: name.ok_or(RecipeError::MissingField("name"))?,
            scenario: scenario.ok_or(RecipeError::MissingField("scenario"))?,
            workload: workload.ok_or(RecipeError::MissingField("workload"))?,
            scale,
            repetitions,
            warmup,
            seed,
            matrix,
            quick,
            gates,
        };
        r.validate()?;
        Ok(r)
    }

    /// Loads one recipe file.
    pub fn load(path: &Path) -> Result<Recipe, RecipeError> {
        Recipe::from_toml_str(&std::fs::read_to_string(path)?)
    }

    /// Loads every `*.toml` recipe in a directory, sorted by file name.
    pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Recipe)>, RecipeError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "toml"))
            .collect();
        paths.sort();
        let mut out = Vec::with_capacity(paths.len());
        for p in paths {
            let r = Recipe::load(&p).map_err(|e| match e {
                RecipeError::Syntax { line, msg } => {
                    RecipeError::Syntax { line, msg: format!("{}: {msg}", p.display()) }
                }
                other => other,
            })?;
            out.push((p, r));
        }
        Ok(out)
    }

    fn validate(&self) -> Result<(), RecipeError> {
        if !WORKLOADS.contains(&self.workload.as_str()) {
            return Err(RecipeError::InvalidValue {
                field: "workload",
                value: self.workload.clone(),
            });
        }
        if self.repetitions == 0 {
            return Err(RecipeError::InvalidValue { field: "repetitions", value: "0".into() });
        }
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(RecipeError::InvalidValue {
                field: "scale",
                value: format!("{}", self.scale),
            });
        }
        let m = &self.matrix;
        if m.engines.is_empty() {
            return Err(RecipeError::InvalidMatrix("engines axis is empty".into()));
        }
        for e in &m.engines {
            if !ENGINES.contains(&e.as_str()) {
                return Err(RecipeError::InvalidMatrix(format!("unknown engine '{e}'")));
            }
        }
        if m.transports.is_empty() {
            return Err(RecipeError::InvalidMatrix("transports axis is empty".into()));
        }
        for t in &m.transports {
            if !TRANSPORTS.contains(&t.as_str()) {
                return Err(RecipeError::InvalidMatrix(format!("unknown transport '{t}'")));
            }
        }
        let dup: BTreeSet<&String> = m.transports.iter().collect();
        if dup.len() != m.transports.len() {
            return Err(RecipeError::InvalidMatrix("duplicate transport".into()));
        }
        if m.workers.is_empty() || m.workers.contains(&0) {
            return Err(RecipeError::InvalidMatrix(
                "workers must be non-empty and non-zero".into(),
            ));
        }
        if m.clients.is_empty() || m.clients.contains(&0) {
            return Err(RecipeError::InvalidMatrix(
                "clients must be non-empty and non-zero".into(),
            ));
        }
        for spec in &self.gates {
            crate::gate::RowGate::parse(spec).map_err(RecipeError::InvalidGate)?;
        }
        Ok(())
    }

    /// The parsed per-row budgets (validation already guaranteed every
    /// spec parses).
    pub fn row_gates(&self) -> Vec<crate::gate::RowGate> {
        self.gates.iter().map(|s| crate::gate::RowGate::parse(s).expect("validated gate")).collect()
    }

    /// Effective scale under quick/full mode.
    pub fn effective_scale(&self, quick: bool) -> f64 {
        if quick {
            self.quick.scale.unwrap_or_else(|| self.scale.min(0.05))
        } else {
            self.scale
        }
    }

    /// Effective repetitions under quick/full mode.
    pub fn effective_repetitions(&self, quick: bool) -> u32 {
        if quick {
            self.quick.repetitions.unwrap_or(1)
        } else {
            self.repetitions
        }
    }

    /// Effective client counts under quick/full mode.
    pub fn effective_clients(&self, quick: bool) -> Vec<usize> {
        if quick {
            self.quick.clients.clone().unwrap_or_else(|| self.matrix.clients.clone())
        } else {
            self.matrix.clients.clone()
        }
    }

    /// Serializes back to canonical TOML (round-trips through
    /// [`Recipe::from_toml_str`]).
    pub fn to_toml(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("name = \"{}\"\n", self.name));
        s.push_str(&format!("scenario = \"{}\"\n", self.scenario));
        s.push_str(&format!("workload = \"{}\"\n", self.workload));
        s.push_str(&format!("scale = {}\n", toml_float(self.scale)));
        s.push_str(&format!("repetitions = {}\n", self.repetitions));
        s.push_str(&format!("warmup = {}\n", self.warmup));
        s.push_str(&format!("seed = {}\n", self.seed));
        if !self.gates.is_empty() {
            s.push_str(&format!("gates = [{}]\n", quote_list(&self.gates)));
        }
        s.push_str("\n[matrix]\n");
        s.push_str(&format!("engines = [{}]\n", quote_list(&self.matrix.engines)));
        s.push_str(&format!("transports = [{}]\n", quote_list(&self.matrix.transports)));
        s.push_str(&format!("workers = [{}]\n", int_list(&self.matrix.workers)));
        s.push_str(&format!("clients = [{}]\n", int_list(&self.matrix.clients)));
        let q = &self.quick;
        if q.scale.is_some() || q.repetitions.is_some() || q.clients.is_some() {
            s.push_str("\n[quick]\n");
            if let Some(sc) = q.scale {
                s.push_str(&format!("scale = {}\n", toml_float(sc)));
            }
            if let Some(r) = q.repetitions {
                s.push_str(&format!("repetitions = {r}\n"));
            }
            if let Some(c) = &q.clients {
                s.push_str(&format!("clients = [{}]\n", int_list(c)));
            }
        }
        s
    }
}

/// A float literal that always parses back as a float (never bare int).
fn toml_float(f: f64) -> String {
    if f.fract() == 0.0 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn quote_list(items: &[String]) -> String {
    items.iter().map(|s| format!("\"{s}\"")).collect::<Vec<_>>().join(", ")
}

fn int_list(items: &[usize]) -> String {
    items.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# E15 quick recipe
name = "spsc-quick"
scenario = "spsc"
workload = "mixed"
scale = 0.25
repetitions = 3
warmup = 1
seed = 7
gates = ["kmeans/spsc events_per_sec >= 1000", "kmeans/spsc wall_ms <= 60000"]

[matrix]
engines = ["parallel"]
transports = ["spsc", "mpmc", "lock"]
workers = [4]
clients = [1]

[quick]
scale = 0.03
repetitions = 1
"#;

    #[test]
    fn parses_full_recipe() {
        let r = Recipe::from_toml_str(GOOD).unwrap();
        assert_eq!(r.name, "spsc-quick");
        assert_eq!(r.matrix.transports, ["spsc", "mpmc", "lock"]);
        assert_eq!(r.effective_scale(true), 0.03);
        assert_eq!(r.effective_scale(false), 0.25);
        assert_eq!(r.effective_repetitions(false), 3);
        assert_eq!(r.effective_repetitions(true), 1);
    }

    #[test]
    fn toml_roundtrip() {
        let r = Recipe::from_toml_str(GOOD).unwrap();
        let again = Recipe::from_toml_str(&r.to_toml()).unwrap();
        assert_eq!(r, again);
    }

    #[test]
    fn unknown_field_rejected() {
        let src = GOOD.replace("warmup = 1", "warump = 1");
        match Recipe::from_toml_str(&src) {
            Err(RecipeError::UnknownField(k)) => assert_eq!(k, "warump"),
            other => panic!("wanted UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn unknown_table_field_rejected() {
        let src = GOOD.replace("workers = [4]", "wrokers = [4]");
        match Recipe::from_toml_str(&src) {
            Err(RecipeError::UnknownField(k)) => assert_eq!(k, "matrix.wrokers"),
            other => panic!("wanted UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn invalid_matrix_rejected() {
        for (from, to, needle) in [
            ("transports = [\"spsc\", \"mpmc\", \"lock\"]", "transports = []", "empty"),
            (
                "transports = [\"spsc\", \"mpmc\", \"lock\"]",
                "transports = [\"carrier-pigeon\"]",
                "unknown transport",
            ),
            ("workers = [4]", "workers = [0]", "non-zero"),
            ("engines = [\"parallel\"]", "engines = [\"steam\"]", "unknown engine"),
        ] {
            let src = GOOD.replace(from, to);
            match Recipe::from_toml_str(&src) {
                Err(RecipeError::InvalidMatrix(m)) => {
                    assert!(m.contains(needle), "{m} !~ {needle}")
                }
                other => panic!("wanted InvalidMatrix for {to}, got {other:?}"),
            }
        }
    }

    #[test]
    fn gates_parse_and_invalid_specs_rejected() {
        let r = Recipe::from_toml_str(GOOD).unwrap();
        let gates = r.row_gates();
        assert_eq!(gates.len(), 2);
        assert_eq!(gates[0].row, "kmeans/spsc");
        assert_eq!(gates[0].metric, "events_per_sec");
        let src = GOOD
            .replace("\"kmeans/spsc wall_ms <= 60000\"", "\"kmeans/spsc made_up_metric <= 60000\"");
        match Recipe::from_toml_str(&src) {
            Err(RecipeError::InvalidGate(g)) => assert!(g.contains("made_up_metric"), "{g}"),
            other => panic!("wanted InvalidGate, got {other:?}"),
        }
    }

    #[test]
    fn missing_required_field() {
        let src = GOOD.replace("scenario = \"spsc\"", "");
        assert!(matches!(Recipe::from_toml_str(&src), Err(RecipeError::MissingField("scenario"))));
    }

    #[test]
    fn syntax_errors_carry_line() {
        match Recipe::from_toml_str("name = \"x\"\nscenario ~ bad\n") {
            Err(RecipeError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("wanted Syntax, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_defaults() {
        let r = Recipe::from_toml_str(
            "name = \"m\" # inline\nscenario = \"merge\"\nworkload = \"nas\"\n",
        )
        .unwrap();
        assert_eq!(r.name, "m");
        assert_eq!(r.seed, 42);
        assert_eq!(r.matrix, Matrix::default());
    }
}
