//! Measurement logic for every registered scenario (see DESIGN.md,
//! E1–E16).
//!
//! Each function implements one table/figure of the paper (or a later
//! PR's experiment) and returns a [`ScenarioOutput`]: the rendered text
//! table plus structured [`MetricRow`]s the runner folds into a
//! `BenchResult`. Workload sizes are controlled by the recipe's scale
//! (1.0 = the default mini size, which corresponds to the paper's setup
//! scaled by ~10⁻³ in accesses and ~10⁻² in addresses; signature sizes
//! are scaled by the same ~10⁻² so Formula 2's load factor matches the
//! paper's).

use crate::fmt::{mb, times, Table};
use crate::measure::{slowdown, time, Timed};
use crate::result::MetricRow;
use crate::scenario::{ScenarioCtx, ScenarioOutput};
use dp_core::parallel::{LockBasedProfiler, LockFreeProfiler};
use dp_core::{
    AnyParallelProfiler, DefaultSig, MtProfiler, ParallelProfiler, ProfileResult, ProfilerConfig,
    SequentialProfiler, TransportKind,
};
use dp_sig::{predicted_fpr, AccessStore, ExtendedSlot, HashHistory, ShadowMemory, Signature};
use dp_trace::workloads::{
    nas_suite, splash, starbench_parallel_suite, starbench_suite, synth, Scale, Workload,
};
use dp_trace::{CollectTracer, Interp, NullFactory, NullTracer};
use dp_types::TraceEvent;
use std::time::Duration;

/// Legacy experiment configuration, now derived from a [`ScenarioCtx`].
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Workload scale multiplier (1.0 = default minis).
    pub scale: f64,
    /// Quick mode: smaller workload subset — used by the CI quick
    /// recipes, where the point is "does it run and produce sane JSON",
    /// not publishable numbers.
    pub quick: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig { scale: 0.25, quick: false }
    }
}

impl From<&ScenarioCtx> for ExpConfig {
    fn from(ctx: &ScenarioCtx) -> Self {
        ExpConfig { scale: ctx.scale, quick: ctx.quick }
    }
}

impl ExpConfig {
    fn wl_scale(&self) -> Scale {
        Scale(self.scale)
    }

    /// Table I signature sizes, scaled to keep n/m at the paper's values:
    /// paper (10⁶, 10⁷, 10⁸) with addresses scaled ~10⁻² → (10⁴, 10⁵, 10⁶).
    fn table1_slots(&self) -> [usize; 3] {
        let f = self.scale;
        [
            ((10_000.0 * f) as usize).max(512),
            ((100_000.0 * f) as usize).max(4096),
            ((1_000_000.0 * f) as usize).max(32_768),
        ]
    }

    /// Total signature slots for performance/memory runs (the paper's
    /// 10⁸-total configuration, scaled ~10⁻²).
    fn perf_slots(&self) -> usize {
        ((1_000_000.0 * self.scale) as usize).max(32_768)
    }
}

// ---------------------------------------------------------------- helpers

fn native_seq(w: &Workload) -> Duration {
    let vm = Interp::new(&w.program);
    time(|| vm.run_seq(&mut NullTracer)).elapsed
}

fn native_mt(w: &Workload) -> Duration {
    let vm = Interp::new(&w.program);
    time(|| vm.run_mt(&NullFactory)).elapsed
}

fn record_events(w: &Workload) -> Vec<TraceEvent> {
    let vm = Interp::new(&w.program);
    let mut t = CollectTracer::new();
    vm.run_seq(&mut t);
    t.events
}

fn replay<S: AccessStore>(
    events: &[TraceEvent],
    mut prof: SequentialProfiler<S>,
) -> Timed<ProfileResult> {
    time(move || {
        for ev in events {
            prof.on_event(ev);
        }
        prof.finish()
    })
}

fn serial_sig(w: &Workload, slots: usize) -> Timed<ProfileResult> {
    let vm = Interp::new(&w.program);
    let mut prof = SequentialProfiler::with_signature(slots);
    let t = time(|| {
        vm.run_seq(&mut prof);
    });
    Timed { value: prof.finish(), elapsed: t.elapsed }
}

fn parallel_lockfree(w: &Workload, cfg: ProfilerConfig) -> Timed<ProfileResult> {
    let vm = Interp::new(&w.program);
    let slots = cfg.slots_per_worker();
    let mut prof: LockFreeProfiler<DefaultSig> =
        ParallelProfiler::new(cfg, move || Signature::<ExtendedSlot>::new(slots));
    let t = time(|| {
        vm.run_seq(&mut prof);
    });
    Timed { value: prof.finish(), elapsed: t.elapsed }
}

fn parallel_lockbased(w: &Workload, cfg: ProfilerConfig) -> Timed<ProfileResult> {
    let vm = Interp::new(&w.program);
    let slots = cfg.slots_per_worker();
    let mut prof: LockBasedProfiler<DefaultSig> =
        ParallelProfiler::new(cfg, move || Signature::<ExtendedSlot>::new(slots));
    let t = time(|| {
        vm.run_seq(&mut prof);
    });
    Timed { value: prof.finish(), elapsed: t.elapsed }
}

fn parallel_with(w: &Workload, cfg: ProfilerConfig, kind: TransportKind) -> Timed<ProfileResult> {
    let vm = Interp::new(&w.program);
    let slots = cfg.slots_per_worker();
    let mut prof: AnyParallelProfiler<DefaultSig> =
        AnyParallelProfiler::new(cfg.with_transport(kind), move || {
            Signature::<ExtendedSlot>::new(slots)
        });
    let t = time(|| {
        vm.run_seq(&mut prof);
    });
    Timed { value: prof.finish(), elapsed: t.elapsed }
}

fn mt_profile(w: &Workload, cfg: ProfilerConfig) -> Timed<ProfileResult> {
    let vm = Interp::new(&w.program);
    let prof = MtProfiler::new(cfg);
    let t = time(|| {
        vm.run_mt(&prof);
    });
    Timed { value: prof.finish(), elapsed: t.elapsed }
}

fn mt_profile_shadow(w: &Workload, cfg: ProfilerConfig) -> ProfileResult {
    let vm = Interp::new(&w.program);
    let prof = MtProfiler::with_store_factory(cfg, ShadowMemory::new);
    vm.run_mt(&prof);
    prof.finish()
}

fn perf_cfg(workers: usize, total_slots: usize) -> ProfilerConfig {
    ProfilerConfig::default().with_workers(workers).with_slots(total_slots)
}

/// A structured row for one timed engine run: events, wall-clock,
/// throughput, memory high-water, degradation counter.
fn perf_row(label: impl Into<String>, t: &Timed<ProfileResult>) -> MetricRow {
    let secs = t.elapsed.as_secs_f64();
    MetricRow {
        label: label.into(),
        events: Some(t.value.stats.accesses),
        wall_ms: Some(secs * 1e3),
        events_per_sec: if secs > 0.0 { Some(t.value.stats.accesses as f64 / secs) } else { None },
        mem_high_water_bytes: Some(t.value.memory.total() as u64),
        degraded_events: Some(t.value.stats.dropped_events),
        ..Default::default()
    }
}

/// A synthetic stream in which address `i` is written at line `2i+1` and
/// read at line `2i+2`, `rounds` times, in a seed-dependent
/// stride-permuted order. Every address contributes its own dependence
/// pair, so collision effects are directly visible in FPR *and* FNR.
fn per_address_line_stream(n_addrs: u64, rounds: u64, seed: u64) -> Vec<TraceEvent> {
    use dp_types::{loc::loc, MemAccess};
    let mut evs = Vec::with_capacity((n_addrs * rounds * 2) as usize);
    let mut ts = 0u64;
    // An odd stride visits every residue; folding the seed in makes the
    // visit order a pure function of the recipe's seed.
    let stride = (2654435761u64 ^ seed.wrapping_mul(0x9e3779b97f4a7c15)) | 1;
    for _ in 0..rounds {
        for k in 0..n_addrs {
            let i = (k.wrapping_mul(stride)) % n_addrs;
            let addr = 0x40_0000 + i * 8;
            ts += 1;
            evs.push(TraceEvent::Access(MemAccess::write(
                addr,
                ts,
                loc(1, (2 * i + 1) as u32),
                1,
                0,
            )));
            ts += 1;
            evs.push(TraceEvent::Access(MemAccess::read(
                addr,
                ts,
                loc(1, (2 * i + 2) as u32),
                1,
                0,
            )));
        }
    }
    evs
}

// ------------------------------------------------------------ experiments

/// E1 / Table I — FPR and FNR of profiled dependences for Starbench under
/// three signature sizes, against the perfect-signature baseline.
pub fn table1(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let slots = cfg.table1_slots();
    let mut t = Table::new(&[
        "program",
        "#addresses",
        "#accesses",
        "#deps",
        &format!("FPR@{}", slots[0]),
        &format!("FNR@{}", slots[0]),
        &format!("FPR@{}", slots[1]),
        &format!("FNR@{}", slots[1]),
        &format!("FPR@{}", slots[2]),
        &format!("FNR@{}", slots[2]),
    ]);
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 6];
    let suite = starbench_suite(cfg.wl_scale());
    let n = suite.len() as f64;
    for w in &suite {
        let events = record_events(w);
        let accesses = events.iter().filter(|e| e.as_access().is_some()).count();
        let base = replay(&events, SequentialProfiler::perfect()).value;
        let deps = dp_analysis::compare(&base, &base).baseline;
        let mut cells = vec![
            w.meta.name.clone(),
            w.program.address_footprint().to_string(),
            accesses.to_string(),
            deps.to_string(),
        ];
        let mut row = MetricRow::new(&w.meta.name)
            .check("deps", deps)
            .check("addresses", w.program.address_footprint());
        row.events = Some(accesses as u64);
        for (i, &m) in slots.iter().enumerate() {
            let sig = replay(
                &events,
                SequentialProfiler::with_stores(
                    Signature::<ExtendedSlot>::new(m),
                    Signature::<ExtendedSlot>::new(m),
                ),
            )
            .value;
            let acc = dp_analysis::compare(&base, &sig);
            cells.push(format!("{:.2}", acc.fpr()));
            cells.push(format!("{:.2}", acc.fnr()));
            row = row
                .check(&format!("fpr@{m}"), format!("{:.2}", acc.fpr()))
                .check(&format!("fnr@{m}"), format!("{:.2}", acc.fnr()));
            sums[i * 2] += acc.fpr();
            sums[i * 2 + 1] += acc.fnr();
        }
        t.row(&cells);
        rows.push(row);
    }
    let mut avg = vec!["average".to_string(), "-".into(), "-".into(), "-".into()];
    avg.extend(sums.iter().map(|s| format!("{:.2}", s / n)));
    t.row(&avg);
    let text = format!(
        "Table I (E1): dependence accuracy vs. signature size\n\
         (paper: avg FPR/FNR 24.47/5.42 @1e6, 4.71/0.71 @1e7, 0.35/0.04 @1e8;\n\
         slot counts here are scaled by the same factor as the address sets)\n\n{}",
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E2 / Formula 2 — predicted slot-occupancy probability vs. measured
/// dependence FPR/FNR as the signature size sweeps.
///
/// The stream gives every address its own source lines (as a large code
/// base does), so a collision manufactures a visibly wrong dependence
/// (false positive) and erases the true pair (false negative).
pub fn formula2(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let n_addrs = ((40_000.0 * cfg.scale) as u64).max(2_000);
    let events = per_address_line_stream(n_addrs, 6, ctx.seed);
    let base = replay(&events, SequentialProfiler::perfect()).value;
    let mut t = Table::new(&[
        "slots",
        "load n/m",
        "predicted P_fp (F.2)",
        "measured dep FPR %",
        "measured FNR %",
    ]);
    let mut rows = Vec::new();
    for shift in [0u32, 1, 2, 3, 4, 6, 8] {
        let m = ((n_addrs as usize) << 4) >> shift; // 16n down to n/16
        let sig = replay(
            &events,
            SequentialProfiler::with_stores(
                Signature::<ExtendedSlot>::new(m),
                Signature::<ExtendedSlot>::new(m),
            ),
        )
        .value;
        let acc = dp_analysis::compare(&base, &sig);
        t.row(&[
            m.to_string(),
            format!("{:.3}", n_addrs as f64 / m as f64),
            format!("{:.4}", predicted_fpr(m, n_addrs)),
            format!("{:.2}", acc.fpr()),
            format!("{:.2}", acc.fnr()),
        ]);
        let mut row = MetricRow::new(format!("slots={m}"))
            .check("load", format!("{:.3}", n_addrs as f64 / m as f64))
            .check("predicted_fpr", format!("{:.4}", predicted_fpr(m, n_addrs)))
            .check("fpr", format!("{:.2}", acc.fpr()))
            .check("fnr", format!("{:.2}", acc.fnr()));
        row.events = Some(events.len() as u64);
        rows.push(row);
    }
    let text = format!(
        "Formula 2 validation (E2): accuracy degrades with load factor n/m as predicted\n\
         (per-address-line stream over {n_addrs} addresses, seed {}; the measured rates\n\
         sit above the per-slot P_fp because one dependence must survive every round)\n\n{}",
        ctx.seed,
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E3 / Figure 5 — slowdowns: serial, lock-based and lock-free pipelines
/// at the recipe's two worker counts (paper: 8T and 16T), for sequential
/// NAS + Starbench.
pub fn fig5(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let slots = cfg.perf_slots();
    let w1 = ctx.workers.first().copied().unwrap_or(8);
    let w2 = ctx.workers.get(1).copied().unwrap_or(16);
    let mut t = Table::new(&[
        "program",
        "native ms",
        "serial",
        &format!("{w1}T lock-based"),
        &format!("{w1}T lock-free"),
        &format!("{w2}T lock-free"),
    ]);
    let mut rows = Vec::new();
    let mut group_avgs = Vec::new();
    for (label, suite) in
        [("NAS", nas_suite(cfg.wl_scale())), ("Starbench", starbench_suite(cfg.wl_scale()))]
    {
        let mut sums = [0.0f64; 4];
        for w in &suite {
            let base = native_seq(w);
            let serial = serial_sig(w, slots);
            let lock1 = parallel_lockbased(w, perf_cfg(w1, slots));
            let free1 = parallel_lockfree(w, perf_cfg(w1, slots));
            let free2 = parallel_lockfree(w, perf_cfg(w2, slots));
            let sl = [
                slowdown(serial.elapsed, base),
                slowdown(lock1.elapsed, base),
                slowdown(free1.elapsed, base),
                slowdown(free2.elapsed, base),
            ];
            for (s, v) in sums.iter_mut().zip(sl) {
                *s += v;
            }
            t.row(&[
                w.meta.name.clone(),
                format!("{:.1}", base.as_secs_f64() * 1e3),
                times(sl[0]),
                times(sl[1]),
                times(sl[2]),
                times(sl[3]),
            ]);
            rows.push(perf_row(format!("{}/serial", w.meta.name), &serial));
            rows.push(perf_row(format!("{}/{w1}T-lockbased", w.meta.name), &lock1));
            rows.push(perf_row(format!("{}/{w1}T-lockfree", w.meta.name), &free1));
            rows.push(perf_row(format!("{}/{w2}T-lockfree", w.meta.name), &free2));
        }
        let n = suite.len() as f64;
        let avgs: Vec<f64> = sums.iter().map(|s| s / n).collect();
        t.row(&[
            format!("{label}-average"),
            "-".into(),
            times(avgs[0]),
            times(avgs[1]),
            times(avgs[2]),
            times(avgs[3]),
        ]);
        group_avgs.push((label, avgs));
    }
    let text = format!(
        "Figure 5 (E3): profiling slowdown, sequential targets\n\
         (paper averages: serial 190x/191x, 8T lock-free 97x/101x, 16T 78x/93x,\n\
         lock-free vs lock-based 1.6x/1.3x; this host has {} hardware thread(s) —\n\
         pipeline parallelism cannot materialize below 2 cores, see EXPERIMENTS.md)\n\n{}",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E4 / Figure 6 — slowdown profiling *parallel* Starbench (4 target
/// threads) at the recipe's two profiling-thread counts.
pub fn fig6(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let slots = cfg.perf_slots();
    let w1 = ctx.workers.first().copied().unwrap_or(8);
    let w2 = ctx.workers.get(1).copied().unwrap_or(16);
    let mut t = Table::new(&[
        "program",
        "native ms (4T)",
        &format!("{w1}T profiling"),
        &format!("{w2}T profiling"),
    ]);
    let mut rows = Vec::new();
    let suite = starbench_parallel_suite(cfg.wl_scale(), 4);
    let mut sums = [0.0f64; 2];
    for w in &suite {
        let base = native_mt(w);
        let p1 = mt_profile(w, perf_cfg(w1, slots));
        let p2 = mt_profile(w, perf_cfg(w2, slots));
        let sl = [slowdown(p1.elapsed, base), slowdown(p2.elapsed, base)];
        sums[0] += sl[0];
        sums[1] += sl[1];
        t.row(&[
            w.meta.name.clone(),
            format!("{:.1}", base.as_secs_f64() * 1e3),
            times(sl[0]),
            times(sl[1]),
        ]);
        rows.push(perf_row(format!("{}/{w1}T", w.meta.name), &p1));
        rows.push(perf_row(format!("{}/{w2}T", w.meta.name), &p2));
    }
    let n = suite.len() as f64;
    t.row(&["average".into(), "-".into(), times(sums[0] / n), times(sums[1] / n)]);
    let text = format!(
        "Figure 6 (E4): profiling slowdown, parallel Starbench (pthread-style, 4 target threads)\n\
         (paper averages: 346x with 8T, 261x with 16T)\n\n{}",
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E5 / Figure 7 — memory consumption, sequential targets: shadow-memory
/// naive baseline vs. lock-free signatures at two worker counts.
pub fn fig7(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let slots = cfg.perf_slots();
    let w1 = ctx.workers.first().copied().unwrap_or(8);
    let w2 = ctx.workers.get(1).copied().unwrap_or(16);
    let mut t = Table::new(&[
        "program",
        "naive MB (shadow)",
        &format!("{w1}T lock-free MB"),
        &format!("{w2}T lock-free MB"),
    ]);
    let mut rows = Vec::new();
    for suite in [nas_suite(cfg.wl_scale()), starbench_suite(cfg.wl_scale())] {
        let mut sums = [0usize; 3];
        let n = suite.len();
        let mut label = "";
        for w in &suite {
            label = if w.meta.suite == dp_trace::workloads::Suite::Nas {
                "NAS-average"
            } else {
                "Starbench-average"
            };
            let events = record_events(w);
            let naive = replay(
                &events,
                SequentialProfiler::with_stores(ShadowMemory::new(), ShadowMemory::new()),
            )
            .value;
            let m1 = parallel_lockfree(w, perf_cfg(w1, slots)).value;
            let m2 = parallel_lockfree(w, perf_cfg(w2, slots)).value;
            let mems = [naive.memory.total(), m1.memory.total(), m2.memory.total()];
            for (s, m) in sums.iter_mut().zip(mems) {
                *s += m;
            }
            t.row(&[w.meta.name.clone(), mb(mems[0]), mb(mems[1]), mb(mems[2])]);
            for (cfg_label, mem) in [
                ("shadow", mems[0]),
                (&format!("{w1}T")[..], mems[1]),
                (&format!("{w2}T")[..], mems[2]),
            ] {
                let mut row = MetricRow::new(format!("{}/{cfg_label}", w.meta.name));
                row.mem_high_water_bytes = Some(mem as u64);
                rows.push(row);
            }
        }
        t.row(&[label.to_string(), mb(sums[0] / n), mb(sums[1] / n), mb(sums[2] / n)]);
    }
    // The crossover demonstration: shadow memory grows with the target's
    // address footprint while the signature total stays fixed — the core
    // space argument of Section III-B, visible only once footprints
    // exceed the signature budget.
    let mut sweep = Table::new(&["target footprint (addrs)", "shadow MB", "signature MB (fixed)"]);
    for n in [100_000u64, 1_000_000, 4_000_000] {
        let w = synth::uniform(n, n / 4);
        let events = record_events(&w);
        let shadow = replay(
            &events,
            SequentialProfiler::with_stores(ShadowMemory::new(), ShadowMemory::new()),
        )
        .value;
        let sig = replay(
            &events,
            SequentialProfiler::with_stores(
                Signature::<ExtendedSlot>::new(slots),
                Signature::<ExtendedSlot>::new(slots),
            ),
        )
        .value;
        sweep.row(&[n.to_string(), mb(shadow.memory.signatures), mb(sig.memory.signatures)]);
        let mut row = MetricRow::new(format!("footprint={n}/shadow"));
        row.mem_high_water_bytes = Some(shadow.memory.signatures as u64);
        rows.push(row);
        let mut row = MetricRow::new(format!("footprint={n}/signature"));
        row.mem_high_water_bytes = Some(sig.memory.signatures as u64);
        rows.push(row);
    }
    let text = format!(
        "Figure 7 (E5): profiler memory, sequential targets\n\
         (paper: naive shadow memory exceeds signatures; 473/505 MB @8T,\n\
         649/1390 MB @16T for NAS/Starbench at the unscaled sizes)\n\n{}\n\
         Footprint sweep — why signatures (store memory only):\n\n{}",
        t.render(),
        sweep.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E6 / Figure 8 — memory consumption, parallel Starbench targets.
pub fn fig8(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let slots = cfg.perf_slots();
    let w1 = ctx.workers.first().copied().unwrap_or(8);
    let w2 = ctx.workers.get(1).copied().unwrap_or(16);
    let mut t =
        Table::new(&["program", "naive MB (shadow)", &format!("{w1}T MB"), &format!("{w2}T MB")]);
    let mut rows = Vec::new();
    let suite = starbench_parallel_suite(cfg.wl_scale(), 4);
    let mut sums = [0usize; 3];
    for w in &suite {
        let naive = mt_profile_shadow(w, perf_cfg(2, slots));
        let m1 = mt_profile(w, perf_cfg(w1, slots)).value;
        let m2 = mt_profile(w, perf_cfg(w2, slots)).value;
        let mems = [naive.memory.total(), m1.memory.total(), m2.memory.total()];
        for (s, m) in sums.iter_mut().zip(mems) {
            *s += m;
        }
        t.row(&[w.meta.name.clone(), mb(mems[0]), mb(mems[1]), mb(mems[2])]);
        for (cfg_label, mem) in [
            ("shadow", mems[0]),
            (&format!("{w1}T")[..], mems[1]),
            (&format!("{w2}T")[..], mems[2]),
        ] {
            let mut row = MetricRow::new(format!("{}/{cfg_label}", w.meta.name));
            row.mem_high_water_bytes = Some(mem as u64);
            rows.push(row);
        }
    }
    let n = suite.len();
    t.row(&["average".into(), mb(sums[0] / n), mb(sums[1] / n), mb(sums[2] / n)]);
    let text = format!(
        "Figure 8 (E6): profiler memory, parallel Starbench targets (4 target threads)\n\
         (paper: 995 MB @8T, 1920 MB @16T at unscaled sizes)\n\n{}",
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E7 / Table II — parallelizable-loop detection in NAS.
pub fn table2(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let mut t = Table::new(&[
        "program",
        "# OMP",
        "# identified (DP)",
        "# identified (sig)",
        "# missed (sig)",
    ]);
    let mut rows = Vec::new();
    let mut tot = [0usize; 4];
    for w in nas_suite(cfg.wl_scale()) {
        let events = record_events(&w);
        let metas: Vec<dp_analysis::LoopMeta> = w
            .program
            .loops
            .iter()
            .map(|l| dp_analysis::LoopMeta { id: l.id, name: l.name.clone(), omp: l.omp })
            .collect();
        // DP column: the perfect-signature engine (DiscoPoP's own profiler
        // "no wrong dependences, equivalent to a perfect signature").
        let dp = replay(&events, SequentialProfiler::perfect()).value;
        // sig column: our signature profiler, sufficiently large.
        let sig = replay(&events, SequentialProfiler::with_signature(1 << 20)).value;
        let vd = dp_analysis::classify_loops(&dp, &metas);
        let vs = dp_analysis::classify_loops(&sig, &metas);
        let omp = metas.iter().filter(|m| m.omp).count();
        let id_dp: Vec<_> =
            vd.iter().filter(|v| v.meta.omp && v.identified()).map(|v| v.meta.id).collect();
        let id_sig: Vec<_> =
            vs.iter().filter(|v| v.meta.omp && v.identified()).map(|v| v.meta.id).collect();
        let missed = id_dp.iter().filter(|i| !id_sig.contains(i)).count();
        tot[0] += omp;
        tot[1] += id_dp.len();
        tot[2] += id_sig.len();
        tot[3] += missed;
        t.row(&[
            w.meta.name.clone(),
            omp.to_string(),
            id_dp.len().to_string(),
            id_sig.len().to_string(),
            missed.to_string(),
        ]);
        let mut row = MetricRow::new(&w.meta.name)
            .check("omp", omp)
            .check("identified_dp", id_dp.len())
            .check("identified_sig", id_sig.len())
            .check("missed", missed);
        row.events = Some(events.len() as u64);
        rows.push(row);
    }
    t.row(&[
        "Overall".into(),
        tot[0].to_string(),
        tot[1].to_string(),
        tot[2].to_string(),
        tot[3].to_string(),
    ]);
    let text = format!(
        "Table II (E7): detection of parallelizable loops in NAS\n\
         (paper: 147 OMP, 136 identified by DP and by signatures, 0 missed)\n\n{}",
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E8 / Figure 9 — communication pattern of water-spatial.
pub fn fig9(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let nthreads = 8;
    let w = splash::water_spatial(cfg.wl_scale(), nthreads);
    // Section VII: "If not stated, we always use signatures big enough to
    // produce dependences without false positives and false negatives."
    let ample = (w.program.address_footprint() as usize * 64).next_power_of_two();
    let r = mt_profile(&w, perf_cfg(8, ample));
    let m = dp_analysis::communication_matrix(&r.value, nthreads as usize + 1);
    let mut detail = String::new();
    for p in 1..=nthreads as u16 {
        for c in 1..=nthreads as u16 {
            if m.get(p, c) > 0 {
                detail.push_str(&format!("  t{p} -> t{c}: {}\n", m.get(p, c)));
            }
        }
    }
    let rows = vec![perf_row("water-spatial", &r).check("cross_thread_volume", m.total())];
    let text = format!(
        "Figure 9 (E8): communication pattern of water-spatial ({nthreads} threads)\n\
         (producers on rows, consumers on columns; near-neighbour banding as in the paper)\n\n{}\n{}",
        m.render_ascii(),
        detail
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E9 — output-size reduction by merging identical dependences.
pub fn merge(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let mut t = Table::new(&[
        "program",
        "dynamic deps",
        "merged deps",
        "merge factor",
        "est. unmerged MB",
        "report KB",
    ]);
    let mut rows = Vec::new();
    // A plain-text record is ~32 bytes, matching the paper's file-size
    // framing (6.1 GB -> 53 KB).
    const REC_BYTES: u64 = 32;
    let mut worst = 0.0f64;
    for w in nas_suite(cfg.wl_scale()) {
        let r = serial_sig(&w, cfg.perf_slots());
        let report = dp_core::report::render(&r.value, &w.program.interner, false);
        let factor = r.value.merge_factor();
        worst = worst.max(factor);
        t.row(&[
            w.meta.name.clone(),
            r.value.stats.deps_built.to_string(),
            r.value.stats.deps_merged.to_string(),
            format!("{factor:.0}"),
            format!("{:.1}", (r.value.stats.deps_built * REC_BYTES) as f64 / 1e6),
            format!("{:.1}", report.len() as f64 / 1e3),
        ]);
        rows.push(
            perf_row(&w.meta.name, &r)
                .check("deps_built", r.value.stats.deps_built)
                .check("deps_merged", r.value.stats.deps_merged)
                .check("merge_factor", format!("{factor:.0}"))
                .check("report_bytes", report.len()),
        );
    }
    let text = format!(
        "Merging identical dependences (E9)\n\
         (paper: NAS output shrinks 6.1 GB -> 53 KB, ~1e5x; factors here scale\n\
         with the ~1e-3 access scaling of the minis)\n\n{}",
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E10 — signature vs. hash-table vs. shadow-memory engine speed.
pub fn ablate_hash(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let n_addrs = ((100_000.0 * cfg.scale) as u64).max(10_000);
    let w = synth::uniform(n_addrs, n_addrs * 20);
    let events = record_events(&w);
    let sig = replay(
        &events,
        SequentialProfiler::with_stores(
            Signature::<ExtendedSlot>::new((n_addrs * 4) as usize),
            Signature::<ExtendedSlot>::new((n_addrs * 4) as usize),
        ),
    );
    let hash = replay(
        &events,
        SequentialProfiler::with_stores(
            HashHistory::new((n_addrs / 4) as usize),
            HashHistory::new((n_addrs / 4) as usize),
        ),
    );
    let shadow =
        replay(&events, SequentialProfiler::with_stores(ShadowMemory::new(), ShadowMemory::new()));
    let perfect = replay(&events, SequentialProfiler::perfect());
    let mut t = Table::new(&["store", "time ms", "vs signature", "memory MB"]);
    let mut rows = Vec::new();
    let base = sig.elapsed;
    for (name, run) in [
        ("signature", &sig),
        ("hash table (chained)", &hash),
        ("perfect (Fx map)", &perfect),
        ("shadow memory", &shadow),
    ] {
        t.row(&[
            name.to_string(),
            format!("{:.1}", run.elapsed.as_secs_f64() * 1e3),
            times(slowdown(run.elapsed, base)),
            mb(run.value.memory.signatures),
        ]);
        let mut row = perf_row(name, run);
        row.mem_high_water_bytes = Some(run.value.memory.signatures as u64);
        rows.push(row);
    }
    let text = format!(
        "Store ablation (E10): signature vs. alternatives on a uniform stream\n\
         over {n_addrs} addresses (paper: hash table 1.5-3.7x slower than signatures)\n\n{}",
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E12 — data-race detection: racy vs. locked counter.
pub fn races(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let mut out = String::from(
        "Race detection (E12): timestamp reversals (Section V-B)\n\
         A locked counter must report 0 reversals; an unlocked one usually\n\
         reports many (subject to actual interleaving on this host).\n\n",
    );
    let mut t = Table::new(&["program", "reversed deps", "race hints", "accesses"]);
    let mut rows = Vec::new();
    for w in [synth::locked_counter(cfg.wl_scale(), 4), synth::racy_counter(cfg.wl_scale(), 4)] {
        let r = mt_profile(&w, perf_cfg(4, cfg.perf_slots()));
        let hints = dp_analysis::find_races(&r.value);
        t.row(&[
            w.meta.name.clone(),
            r.value.stats.reversed.to_string(),
            hints.len().to_string(),
            r.value.stats.accesses.to_string(),
        ]);
        rows.push(
            perf_row(&w.meta.name, &r)
                .check("reversed", r.value.stats.reversed)
                .check("race_hints", hints.len()),
        );
    }
    out.push_str(&t.render());
    ScenarioOutput { text: out, rows, summary_events_per_sec: None }
}

/// E13a — chunk-size sweep (lock-free, 8 workers, kmeans).
pub fn ablate_chunk(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let w = &starbench_suite(cfg.wl_scale())[1]; // kmeans
    let base = native_seq(w);
    let mut t = Table::new(&["chunk capacity", "slowdown", "chunks pushed"]);
    let mut rows = Vec::new();
    for cap in [64usize, 256, 1024, 4096] {
        let c = perf_cfg(ctx.primary_workers().max(8), cfg.perf_slots()).with_chunk_capacity(cap);
        let r = parallel_lockfree(w, c);
        t.row(&[
            cap.to_string(),
            times(slowdown(r.elapsed, base)),
            r.value.stats.chunks_pushed.to_string(),
        ]);
        rows.push(
            perf_row(format!("chunk={cap}"), &r)
                .check("chunks_pushed", r.value.stats.chunks_pushed),
        );
    }
    ScenarioOutput {
        text: format!("Chunk-size ablation (E13a) on kmeans\n\n{}", t.render()),
        rows,
        summary_events_per_sec: None,
    }
}

/// E13b — redistribution on/off on a skewed workload.
pub fn ablate_redist(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let n = ((200_000.0 * cfg.scale) as u64).max(20_000);
    // Hot addresses 8 elements apart: all map to the same worker under
    // modulo-8 routing — the pathological imbalance of Section IV-A.
    let w = synth::skewed_strided(n, 8, n * 10, 8);
    let base = native_seq(&w);
    let mut t = Table::new(&[
        "redistribution",
        "slowdown",
        "rounds",
        "moved addrs",
        "load imbalance (max/mean)",
    ]);
    let mut rows = Vec::new();
    for on in [false, true] {
        let mut c = perf_cfg(8, cfg.perf_slots()).with_redistribution(on);
        c.redistribute_every = 500;
        let r = parallel_lockfree(&w, c);
        t.row(&[
            if on { "on" } else { "off" }.into(),
            times(slowdown(r.elapsed, base)),
            r.value.stats.redistributions.to_string(),
            r.value.stats.redistributed_addrs.to_string(),
            format!("{:.2}", r.value.load_imbalance()),
        ]);
        rows.push(
            perf_row(if on { "redistribution=on" } else { "redistribution=off" }, &r)
                .check("rounds", r.value.stats.redistributions)
                .check("moved_addrs", r.value.stats.redistributed_addrs),
        );
    }
    let text = format!(
        "Redistribution ablation (E13b): skewed stream, 90% of accesses on 8 hot\n\
         addresses that modulo-route to a single worker\n\n{}",
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E13c — compact (4 B) vs. extended (16 B) slots.
pub fn ablate_slots(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let w = &starbench_suite(cfg.wl_scale())[5]; // rotate
    let events = record_events(w);
    let m = cfg.perf_slots();
    let compact = replay(
        &events,
        SequentialProfiler::with_stores(
            Signature::<dp_sig::CompactSlot>::new(m),
            Signature::<dp_sig::CompactSlot>::new(m),
        ),
    );
    let extended = replay(
        &events,
        SequentialProfiler::with_stores(
            Signature::<ExtendedSlot>::new(m),
            Signature::<ExtendedSlot>::new(m),
        ),
    );
    let mut t = Table::new(&["slot layout", "time ms", "sig memory MB", "carried info"]);
    t.row(&[
        "compact (4 B)".into(),
        format!("{:.1}", compact.elapsed.as_secs_f64() * 1e3),
        mb(compact.value.memory.signatures),
        "no".into(),
    ]);
    t.row(&[
        "extended (16 B)".into(),
        format!("{:.1}", extended.elapsed.as_secs_f64() * 1e3),
        mb(extended.value.memory.signatures),
        "yes".into(),
    ]);
    let mut rows = Vec::new();
    for (label, run) in [("compact", &compact), ("extended", &extended)] {
        let mut row = perf_row(label, run);
        row.mem_high_water_bytes = Some(run.value.memory.signatures as u64);
        rows.push(row);
    }
    let text = format!(
        "Slot-layout ablation (E13c) on rotate: the paper's 4-byte slots vs. the\n\
         extended slots required for thread ids, loop-carried classification and\n\
         race detection\n\n{}",
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E8b — the full communication-topology suite: the paper's Figure 9
/// method applied to four kernels with known, distinct topologies
/// (ring, 2-D grid, all-to-all, rotating broadcast). Each matrix is
/// derived purely from the profiler's cross-thread RAW records.
pub fn comm_suite(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let nthreads = 6u32;
    let mut out = String::from(
        "Communication-topology suite (E8b): Figure 9's method across four kernels\n\n",
    );
    let mut rows = Vec::new();
    for w in splash::comm_suite(cfg.wl_scale(), nthreads) {
        let ample = (w.program.address_footprint() as usize * 64).next_power_of_two();
        let r = mt_profile(&w, perf_cfg(8, ample));
        let m = dp_analysis::communication_matrix(&r.value, nthreads as usize + 1);
        out.push_str(&format!(
            "== {} (total cross-thread volume {}) ==\n{}\n",
            w.meta.name,
            m.total(),
            m.render_ascii()
        ));
        rows.push(perf_row(&w.meta.name, &r).check("cross_thread_volume", m.total()));
    }
    ScenarioOutput { text: out, rows, summary_events_per_sec: None }
}

/// E13d — set-based (section-level) profiling vs. statement-level detail
/// (Section VI-B1: "the performance of the profiler can be further
/// improved by performing set-based profiling, which tells whether a data
/// dependence exists between two code sections instead of two statements
/// ... all these optimizations will decrease the generality").
pub fn ablate_sections(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let w = &starbench_suite(cfg.wl_scale())[10]; // h264dec: most statements
    let events = record_events(w);
    let m = cfg.perf_slots();
    let mut t = Table::new(&["granularity", "time ms", "distinct deps", "store KB"]);
    let mut rows = Vec::new();
    for (label, shift) in
        [("statement (paper)", 0u8), ("section: 16 lines", 4), ("section: 256 lines", 8)]
    {
        let r = replay(
            &events,
            SequentialProfiler::with_options(
                Signature::<ExtendedSlot>::new(m),
                Signature::<ExtendedSlot>::new(m),
                dp_core::AlgoOptions { section_shift: shift, ..Default::default() },
            ),
        );
        t.row(&[
            label.to_string(),
            format!("{:.1}", r.elapsed.as_secs_f64() * 1e3),
            r.value.stats.deps_merged.to_string(),
            format!("{:.1}", r.value.memory.dep_store as f64 / 1e3),
        ]);
        rows.push(
            perf_row(format!("shift={shift}"), &r)
                .check("deps_merged", r.value.stats.deps_merged)
                .check("dep_store_bytes", r.value.memory.dep_store),
        );
    }
    let text = format!(
        "Set-based profiling ablation (E13d) on h264dec: coarser sections shrink\n\
         the dependence store at the cost of the statement-level detail most\n\
         analyses need — the generality/speed trade-off the paper declines\n\n{}",
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E14 — signature vs. SD3-style stride compression: the paper's primary
/// comparator compresses strided accesses with an FSM (Section II). The
/// signature is input-oblivious; stride compression shines on affine
/// walks and degenerates on irregular access, and it gives up timestamps
/// (no loop-carried classification / race detection).
pub fn ablate_sd3(ctx: &ScenarioCtx) -> ScenarioOutput {
    use dp_sig::StrideStore;
    let cfg = ExpConfig::from(ctx);
    let mut t =
        Table::new(&["workload", "store", "time ms", "store memory KB", "dep FPR %", "dep FNR %"]);
    let mut rows = Vec::new();
    let strided = &starbench_suite(cfg.wl_scale())[5]; // rotate: affine walks
    let n_rand = ((50_000.0 * cfg.scale) as u64).max(5_000);
    let random = synth::uniform(n_rand, n_rand * 8);
    for (label, w) in [("strided (rotate)", strided), ("random (uniform)", &random)] {
        let events = record_events(w);
        let base = replay(&events, SequentialProfiler::perfect()).value;
        let m = cfg.perf_slots();
        let sig = replay(
            &events,
            SequentialProfiler::with_stores(
                Signature::<ExtendedSlot>::new(m),
                Signature::<ExtendedSlot>::new(m),
            ),
        );
        let sd3 = replay(
            &events,
            SequentialProfiler::with_stores(StrideStore::new(), StrideStore::new()),
        );
        for (store, run) in [("signature", &sig), ("stride (SD3-style)", &sd3)] {
            let acc = dp_analysis::compare(&base, &run.value);
            t.row(&[
                label.to_string(),
                store.to_string(),
                format!("{:.1}", run.elapsed.as_secs_f64() * 1e3),
                format!("{:.0}", run.value.memory.signatures as f64 / 1e3),
                format!("{:.2}", acc.fpr()),
                format!("{:.2}", acc.fnr()),
            ]);
            rows.push(
                perf_row(format!("{label}/{store}"), run)
                    .check("fpr", format!("{:.2}", acc.fpr()))
                    .check("fnr", format!("{:.2}", acc.fnr())),
            );
        }
    }
    let text = format!(
        "Signature vs. SD3-style stride compression (E14)\n\
         (Section II: SD3 \"reduces the memory overhead by compressing strided\n\
         accesses using a finite state machine\"; the signature is\n\
         application-oblivious — the paper's central design argument)\n\n{}",
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: None }
}

/// E15 / SPSC transport comparison — profiles sequential MiniVM
/// workloads end-to-end over the recipe's transport matrix (default:
/// SPSC ring, lock-free MPMC, lock-based) and checks that the merged
/// dependence sets are bit-identical across transports. The summary
/// events/sec over the first transport is what `dp-bench gate` tracks.
pub fn spsc(ctx: &ScenarioCtx) -> ScenarioOutput {
    let cfg = ExpConfig::from(ctx);
    let slots = cfg.perf_slots();
    let workers = ctx.primary_workers();
    let kinds: Vec<TransportKind> = if ctx.transports.is_empty() {
        vec![TransportKind::Spsc, TransportKind::Mpmc, TransportKind::Lock]
    } else {
        ctx.transports.clone()
    };
    let mut header: Vec<String> = vec!["program".into(), "native ms".into()];
    header.extend(kinds.iter().map(|k| format!("{} Mev/s", k.name())));
    header.push("first/second".into());
    header.push("deps identical".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    let suite: Vec<Workload> = if cfg.quick {
        nas_suite(cfg.wl_scale())
            .into_iter()
            .take(2)
            .chain(starbench_suite(cfg.wl_scale()).into_iter().take(2))
            .collect()
    } else {
        nas_suite(cfg.wl_scale()).into_iter().chain(starbench_suite(cfg.wl_scale())).collect()
    };
    let mut rows = Vec::new();
    let mut speedup_sum = 0.0f64;
    let mut primary_events = 0u64;
    let mut primary_secs = 0.0f64;
    for w in &suite {
        let base = native_seq(w);
        let mut elapsed = vec![0.0f64; kinds.len()];
        let mut rates = vec![0.0f64; kinds.len()];
        let mut sets: Vec<Vec<_>> = Vec::with_capacity(kinds.len());
        let mut runs = Vec::with_capacity(kinds.len());
        for (i, &k) in kinds.iter().enumerate() {
            let r = parallel_with(w, perf_cfg(workers, slots), k);
            elapsed[i] = r.elapsed.as_secs_f64();
            rates[i] = r.value.stats.accesses as f64 / elapsed[i] / 1e6;
            let mut set: Vec<_> = r.value.deps.dependences().map(|(d, e)| (d, e.count)).collect();
            set.sort();
            sets.push(set);
            runs.push(r);
        }
        let identical = sets.windows(2).all(|w| w[0] == w[1]);
        let speedup = if kinds.len() > 1 { elapsed[1] / elapsed[0] } else { 1.0 };
        speedup_sum += speedup;
        primary_events += runs[0].value.stats.accesses;
        primary_secs += elapsed[0];
        let mut cells = vec![w.meta.name.clone(), format!("{:.1}", base.as_secs_f64() * 1e3)];
        cells.extend(rates.iter().map(|r| format!("{r:.2}")));
        cells.push(times(speedup));
        cells.push(if identical { "yes".into() } else { "NO".into() });
        t.row(&cells);
        for (k, r) in kinds.iter().zip(&runs) {
            rows.push(
                perf_row(format!("{}/{}", w.meta.name, k.name()), r)
                    .check("identical_deps", identical),
            );
        }
    }
    let avg_speedup = speedup_sum / suite.len() as f64;
    let summary =
        if primary_secs > 0.0 { Some(primary_events as f64 / primary_secs) } else { None };
    let text = format!(
        "SPSC transport comparison (E15): sequential targets, {workers} workers\n\
         (same engine, same signatures; only the per-worker channel differs,\n\
         so the throughput gap is the transport's synchronization cost.\n\
         avg first-vs-second transport speedup: {})\n\n{}",
        times(avg_speedup),
        t.render()
    );
    ScenarioOutput { text, rows, summary_events_per_sec: summary }
}

// ---------------------------------------------------------------------
// E16: server throughput — the service layer under concurrent load
// ---------------------------------------------------------------------

/// One client's contribution to an E16 round: stream the shared event
/// set to the server with a `Sync` round-trip every `sync_every`
/// chunks, returning the measured round-trip times.
fn e16_client(
    addr: std::net::SocketAddr,
    id: usize,
    events: &[TraceEvent],
    names: Vec<String>,
    sync_every: usize,
) -> Vec<Duration> {
    use dp_types::protocol::{self, Frame, Hello, MAX_FRAME_BYTES};

    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).ok();
    protocol::write_preamble(&mut conn).unwrap();
    protocol::read_preamble(&mut conn).unwrap();
    protocol::write_frame(
        &mut conn,
        &Frame::Hello(Hello {
            session: format!("e16-{id}"),
            spec: dp_core::SessionSpec::default().encode(),
            checkpoint_every: 0,
            names,
        }),
    )
    .unwrap();
    use std::io::Write as _;
    conn.flush().unwrap();
    assert!(matches!(
        protocol::read_frame(&mut conn, MAX_FRAME_BYTES).unwrap(),
        Some(Frame::HelloAck { .. })
    ));

    let mut chunker = dp_trace::FrameChunker::new(256);
    let mut rtts = Vec::new();
    let mut chunks = 0usize;
    let mut nonce = 0u64;
    for ev in events {
        for frame in chunker.push(*ev) {
            let was_chunk = matches!(frame, Frame::Chunk { .. });
            protocol::write_frame(&mut conn, &frame).unwrap();
            if was_chunk {
                chunks += 1;
                if chunks.is_multiple_of(sync_every) {
                    // The SyncAck measures the full frame round trip:
                    // our queued writes drain, the server profiles them,
                    // decodes the Sync and acks its watermark.
                    nonce += 1;
                    let t0 = std::time::Instant::now();
                    protocol::write_frame(&mut conn, &Frame::Sync { nonce }).unwrap();
                    conn.flush().unwrap();
                    match protocol::read_frame(&mut conn, MAX_FRAME_BYTES).unwrap() {
                        Some(Frame::SyncAck { nonce: n, .. }) => assert_eq!(n, nonce),
                        other => panic!("wanted SyncAck, got {other:?}"),
                    }
                    rtts.push(t0.elapsed());
                }
            }
        }
    }
    if let Some(frame) = chunker.flush() {
        protocol::write_frame(&mut conn, &frame).unwrap();
    }
    protocol::write_frame(&mut conn, &Frame::Finish).unwrap();
    conn.flush().unwrap();
    match protocol::read_frame(&mut conn, MAX_FRAME_BYTES).unwrap() {
        Some(Frame::Report { .. }) => {}
        other => panic!("wanted Report, got {other:?}"),
    }
    rtts
}

fn percentile_us(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e6
}

/// E16: `dp-server` throughput over loopback TCP — aggregate events/sec
/// and `Sync` round-trip latency (p50/p99) as the concurrent client
/// count grows (the recipe's `matrix.clients` axis). Every client
/// streams the same recorded trace into its own session, so the engine
/// work scales with the client count while the accept loop, session cap
/// and per-connection threads are shared.
pub fn server_throughput(ctx: &ScenarioCtx) -> ScenarioOutput {
    use dp_server::{Server, ServerConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let cfg = ExpConfig::from(ctx);
    // One recorded workload, shared by every client in every round.
    let w = &starbench_suite(cfg.wl_scale())[0];
    let mut collect = CollectTracer::new();
    Interp::new(&w.program).run_seq(&mut collect);
    let events = Arc::new(collect.events);
    let names: Vec<String> = (0..w.program.interner.len())
        .map(|i| w.program.interner.resolve(i as u32).to_owned())
        .collect();

    let client_counts: Vec<usize> =
        if ctx.clients.is_empty() { vec![1, 4] } else { ctx.clients.clone() };
    let sync_every = 8;

    static STOP: AtomicBool = AtomicBool::new(false);

    let mut t =
        Table::new(&["clients", "events total", "wall ms", "Mev/s", "sync p50 us", "sync p99 us"]);
    let mut rows = Vec::new();
    let mut best_evps = 0.0f64;
    for &n in &client_counts {
        STOP.store(false, Ordering::SeqCst);
        let server = Server::bind_tcp(
            "127.0.0.1:0",
            ServerConfig { max_sessions: n.max(1), ..ServerConfig::default() },
        )
        .expect("bind");
        let addr = server.local_addr().unwrap();
        let server_thread = std::thread::spawn(move || server.run(&STOP).unwrap());

        let t0 = std::time::Instant::now();
        let clients: Vec<_> = (0..n)
            .map(|id| {
                let events = Arc::clone(&events);
                let names = names.clone();
                std::thread::spawn(move || e16_client(addr, id, &events, names, sync_every))
            })
            .collect();
        let mut rtts: Vec<Duration> = Vec::new();
        for c in clients {
            rtts.extend(c.join().expect("client thread"));
        }
        let wall = t0.elapsed();
        STOP.store(true, Ordering::SeqCst);
        server_thread.join().unwrap();

        rtts.sort();
        let total_events = events.len() as u64 * n as u64;
        let evps = total_events as f64 / wall.as_secs_f64();
        best_evps = best_evps.max(evps);
        let p50 = percentile_us(&rtts, 0.50);
        let p99 = percentile_us(&rtts, 0.99);
        t.row(&[
            n.to_string(),
            total_events.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.2}", evps / 1e6),
            format!("{p50:.1}"),
            format!("{p99:.1}"),
        ]);
        let mut row = MetricRow::new(format!("clients={n}"));
        row.events = Some(total_events);
        row.wall_ms = Some(wall.as_secs_f64() * 1e3);
        row.events_per_sec = Some(evps);
        row.rtt_p50_us = Some(p50);
        row.rtt_p99_us = Some(p99);
        rows.push(row.check("sync_samples", rtts.len()));
    }

    let text = format!(
        "Server throughput (E16): {} over loopback TCP, one session per client\n\
         (aggregate ingest rate and Sync round-trip latency; each client\n\
         streams the same recorded trace into its own serial engine)\n\n{}",
        w.meta.name,
        t.render()
    );
    let summary = if best_evps > 0.0 { Some(best_evps) } else { None };
    ScenarioOutput { text, rows, summary_events_per_sec: summary }
}

// ------------------------------------------ E17: differential fuzzing

/// E17: a seeded fuzz campaign as a benchmark — oracle throughput
/// (generated accesses replayed through all eight engine legs per
/// second) plus the campaign's deterministic verdicts: divergence count
/// and the Formula-2 accuracy aggregate.
pub fn fuzz_campaign(ctx: &ScenarioCtx) -> ScenarioOutput {
    use dp_fuzz::{run_fuzz, FuzzOpts};

    // scale 1.0 ≙ a 1000-seed campaign; the committed recipe runs 100
    // seeds full / 20 seeds quick.
    let seeds = ((1000.0 * ctx.scale) as u64).max(8);
    let opts = FuzzOpts {
        seeds,
        start_seed: ctx.seed,
        quick: ctx.quick,
        // The web-scale Zipf stream is its own stress (and dominates
        // quick wall-clock); only the full run includes it.
        webscale: !ctx.quick,
        workers: ctx.primary_workers().min(4),
        ..FuzzOpts::default()
    };
    let timed = time(|| run_fuzz(&opts, &mut |_| {}));
    let report = timed.value;
    let evps = report.total_accesses as f64 / timed.elapsed.as_secs_f64();

    let mut t = Table::new(&["seeds", "seq", "mt", "accesses", "wall ms", "kev/s", "divergences"]);
    t.row(&[
        report.seeds.to_string(),
        report.sequential.to_string(),
        report.mt.to_string(),
        report.total_accesses.to_string(),
        format!("{:.1}", timed.elapsed.as_secs_f64() * 1e3),
        format!("{:.1}", evps / 1e3),
        report.divergences.len().to_string(),
    ]);

    let mut row = MetricRow::new(format!("campaign/seeds={seeds}"));
    row.events = Some(report.total_accesses);
    row.wall_ms = Some(timed.elapsed.as_secs_f64() * 1e3);
    row.events_per_sec = Some(evps);
    let row = row
        .check("divergences", report.divergences.len())
        .check("webscale_failures", report.webscale_failures.len())
        .check("accuracy_within_formula2", report.accuracy_within_formula2())
        .check("mean_fpr_pct", format!("{:.2}", report.mean_fpr()))
        .check("mean_fnr_pct", format!("{:.2}", report.mean_fnr()))
        .check("formula2_dep_bound_pct", format!("{:.2}", report.mean_dep_bound()));

    let text = format!(
        "Differential fuzzing (E17): seeded MiniVM programs replayed through\n\
         serial, parallel (spsc/mpmc/lock), served and resumed engines; every\n\
         leg must agree dependence-for-dependence\n\n{}\n\
         accuracy: mean FPR {:.2}% / FNR {:.2}% vs Formula-2 dep-level bound {:.2}% — {}\n",
        t.render(),
        report.mean_fpr(),
        report.mean_fnr(),
        report.mean_dep_bound(),
        if report.accuracy_within_formula2() { "within bound" } else { "EXCEEDED" },
    );
    ScenarioOutput { text, rows: vec![row], summary_events_per_sec: Some(evps) }
}

// ------------------------------------------ E18: chaos goodput

/// E18: goodput under an adversarial network — `push_with_retry`
/// against a checkpointing server while a seeded client-side
/// [`ChaosStream`](dp_server::ChaosStream) kills the connection every N
/// frames (and, at the harshest point, also duplicates every data frame
/// and fragments I/O). Each severity reports goodput (unique events
/// profiled per wall second), duplicated work (events resent across
/// reconnects) and mean recovery latency per reconnect — and asserts
/// the final report is byte-identical to the clean run's, which is the
/// exactly-once contract measured end to end.
pub fn chaos_goodput(ctx: &ScenarioCtx) -> ScenarioOutput {
    use dp_server::{
        push_with_retry, ChaosStream, NetFaultPlan, PushOptions, RetryPolicy, Server, ServerConfig,
    };
    use std::sync::atomic::{AtomicBool, Ordering};

    let cfg = ExpConfig::from(ctx);
    let w = &starbench_suite(cfg.wl_scale())[0];
    let mut collect = CollectTracer::new();
    Interp::new(&w.program).run_seq(&mut collect);
    let events = collect.events;
    let names: Vec<String> = (0..w.program.interner.len())
        .map(|i| w.program.interner.resolve(i as u32).to_owned())
        .collect();

    let ckpt = std::env::temp_dir().join(format!("dp-bench-e18-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    std::fs::create_dir_all(&ckpt).expect("e18 checkpoint dir");

    // (label, reset the connection every N written frames, harsh extras).
    // Frames, not chunks: loop events ride in their own frames, so the
    // per-connection budget is what a flaky link would actually allow.
    let severities: &[(&str, Option<u64>, bool)] = if ctx.quick {
        &[("clean", None, false), ("reset/512", Some(512), false)]
    } else {
        &[
            ("clean", None, false),
            ("reset/4096", Some(4096), false),
            ("reset/1024", Some(1024), false),
            ("reset/256+dup", Some(256), true),
        ]
    };

    static STOP: AtomicBool = AtomicBool::new(false);
    STOP.store(false, Ordering::SeqCst);
    let server = Server::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 4,
            checkpoint_dir: Some(ckpt.clone()),
            checkpoint_every: 512,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run(&STOP).unwrap());

    // Tight backoff: the sweep measures protocol overhead, not sleeps.
    // The attempt budget is sized for the harshest severity (a reconnect
    // every 8 frames across the whole stream).
    let policy =
        RetryPolicy { max_attempts: 100_000, base_delay_ms: 1, max_delay_ms: 8, seed: ctx.seed };

    let mut t = Table::new(&[
        "severity",
        "reconnects",
        "resent",
        "recover ms",
        "wall ms",
        "goodput kev/s",
        "identical",
    ]);
    let mut rows = Vec::new();
    let mut clean_report: Option<String> = None;
    let mut clean_evps = 0.0f64;
    for (label, reset, harsh) in severities {
        let mut plan = NetFaultPlan::new().with_seed(ctx.seed | 1);
        if let Some(k) = reset {
            plan = plan.with_reset_at_frames(*k);
        }
        if *harsh {
            plan = plan.with_dup_every(3).with_short_io();
        }
        let opts = PushOptions {
            session: format!("e18-{label}"),
            // A modest signature keeps the per-reconnect checkpoint
            // cycle about the service layer, not signature capacity.
            spec: dp_core::SessionSpec { slots: 1 << 16, ..Default::default() },
            chunk_events: 64,
            sync_every_chunks: 16,
            ..PushOptions::default()
        };
        let t0 = std::time::Instant::now();
        let r = push_with_retry(
            || {
                let c = std::net::TcpStream::connect(addr)?;
                c.set_nodelay(true).ok();
                Ok(ChaosStream::new(c, plan.clone()))
            },
            &names,
            &events,
            &opts,
            &policy,
        )
        .expect("push survives the fault plan");
        let wall = t0.elapsed();

        // Goodput counts *unique* events — the profile's worth of work —
        // against the wall clock that includes every reconnect.
        let goodput = events.len() as f64 / wall.as_secs_f64();
        let identical = match &clean_report {
            None => {
                clean_report = Some(r.outcome.report.clone());
                clean_evps = goodput;
                true
            }
            Some(want) => want == &r.outcome.report,
        };
        let recover_per_reconnect =
            if r.reconnects > 0 { r.recovery_ms_total as f64 / r.reconnects as f64 } else { 0.0 };
        t.row(&[
            label.to_string(),
            r.reconnects.to_string(),
            r.events_resent.to_string(),
            format!("{recover_per_reconnect:.1}"),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.1}", goodput / 1e3),
            if identical { "yes".into() } else { "NO".into() },
        ]);
        let mut row = MetricRow::new(format!("chaos/{label}"));
        row.events = Some(events.len() as u64);
        row.wall_ms = Some(wall.as_secs_f64() * 1e3);
        row.events_per_sec = Some(goodput);
        rows.push(
            row.check("reconnects", r.reconnects)
                .check("busy_waits", r.busy_waits)
                .check("events_resent", r.events_resent)
                .check("recovery_ms_per_reconnect", format!("{recover_per_reconnect:.1}"))
                .check("report_identical_to_clean", identical),
        );
    }
    STOP.store(true, Ordering::SeqCst);
    server_thread.join().unwrap();
    let _ = std::fs::remove_dir_all(&ckpt);

    let text = format!(
        "Chaos goodput (E18): {} pushed through a seeded fault injector,\n\
         retry/resume client vs checkpointing server over loopback TCP\n\
         (goodput = unique events per wall second including recovery;\n\
         every severity must reproduce the clean run's report exactly)\n\n{}",
        w.meta.name,
        t.render()
    );
    let summary = if clean_evps > 0.0 { Some(clean_evps) } else { None };
    ScenarioOutput { text, rows, summary_events_per_sec: summary }
}

// ------------------------------------------ E19: online analysis

/// One E19 client: streams the shared events into its own session and,
/// at the requested rate, interleaves live `Query` frames (kind `ALL`)
/// answered from the server's incremental analysis state. Returns the
/// measured query round trips and the final snapshot JSON (one query is
/// always issued after the last chunk when querying is enabled, so even
/// a sub-second quick run samples the latency path).
fn e19_client(
    addr: std::net::SocketAddr,
    label: &str,
    events: &[TraceEvent],
    names: Vec<String>,
    query_interval: Option<Duration>,
) -> (Vec<Duration>, Option<String>) {
    use dp_types::protocol::{self, query_kind, Frame, Hello, MAX_FRAME_BYTES};
    use std::io::Write as _;

    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).ok();
    protocol::write_preamble(&mut conn).unwrap();
    protocol::read_preamble(&mut conn).unwrap();
    protocol::write_frame(
        &mut conn,
        &Frame::Hello(Hello {
            session: format!("e19-{label}"),
            spec: dp_core::SessionSpec::default().encode(),
            checkpoint_every: 0,
            names,
        }),
    )
    .unwrap();
    conn.flush().unwrap();
    assert!(matches!(
        protocol::read_frame(&mut conn, MAX_FRAME_BYTES).unwrap(),
        Some(Frame::HelloAck { .. })
    ));

    let query = |conn: &mut std::net::TcpStream, id: u64| -> (Duration, String) {
        let t0 = std::time::Instant::now();
        protocol::write_frame(conn, &Frame::Query { id, kind: query_kind::ALL }).unwrap();
        conn.flush().unwrap();
        match protocol::read_frame(conn, MAX_FRAME_BYTES).unwrap() {
            Some(Frame::QueryResult { id: got, json, .. }) => {
                assert_eq!(got, id);
                (t0.elapsed(), json)
            }
            other => panic!("wanted QueryResult, got {other:?}"),
        }
    };

    let mut chunker = dp_trace::FrameChunker::new(256);
    let mut rtts = Vec::new();
    let mut last_json = None;
    let mut next_id = 0u64;
    let mut last_query = std::time::Instant::now();
    for ev in events {
        for frame in chunker.push(*ev) {
            let was_chunk = matches!(frame, Frame::Chunk { .. });
            protocol::write_frame(&mut conn, &frame).unwrap();
            if was_chunk {
                if let Some(interval) = query_interval {
                    if last_query.elapsed() >= interval {
                        next_id += 1;
                        let (rtt, json) = query(&mut conn, next_id);
                        rtts.push(rtt);
                        last_json = Some(json);
                        last_query = std::time::Instant::now();
                    }
                }
            }
        }
    }
    if let Some(frame) = chunker.flush() {
        protocol::write_frame(&mut conn, &frame).unwrap();
    }
    if query_interval.is_some() {
        next_id += 1;
        let (rtt, json) = query(&mut conn, next_id);
        rtts.push(rtt);
        last_json = Some(json);
    }
    protocol::write_frame(&mut conn, &Frame::Finish).unwrap();
    conn.flush().unwrap();
    match protocol::read_frame(&mut conn, MAX_FRAME_BYTES).unwrap() {
        Some(Frame::Report { .. }) => {}
        other => panic!("wanted Report, got {other:?}"),
    }
    (rtts, last_json)
}

/// E19: online-analysis cost — feed throughput and live-query latency
/// as mid-session `Query` frames are interleaved at 0, 1 and 10 Hz.
/// The 0 Hz row is the pure-ingest baseline; the per-row overhead check
/// reports how much feed throughput each query rate costs (the paper's
/// on-the-fly design goal: watching must not stall the feed). Query
/// round trips include folding the pending deltas into the incremental
/// state and serializing the Table-II/comm/race snapshot.
pub fn online_analysis(ctx: &ScenarioCtx) -> ScenarioOutput {
    use dp_server::{Server, ServerConfig};
    use std::sync::atomic::{AtomicBool, Ordering};

    let cfg = ExpConfig::from(ctx);
    let w = &starbench_suite(cfg.wl_scale())[0];
    let mut collect = CollectTracer::new();
    Interp::new(&w.program).run_seq(&mut collect);
    let events = collect.events;
    let names: Vec<String> = (0..w.program.interner.len())
        .map(|i| w.program.interner.resolve(i as u32).to_owned())
        .collect();

    let rates: &[(&str, Option<u64>)] =
        &[("q0hz", None), ("q1hz", Some(1000)), ("q10hz", Some(100))];

    static STOP: AtomicBool = AtomicBool::new(false);

    let mut t = Table::new(&[
        "rate",
        "events",
        "queries",
        "wall ms",
        "Mev/s",
        "overhead %",
        "query p50 us",
        "query p99 us",
    ]);
    let mut rows = Vec::new();
    let mut baseline_evps = 0.0f64;
    for (label, interval_ms) in rates {
        STOP.store(false, Ordering::SeqCst);
        let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr().unwrap();
        let server_thread = std::thread::spawn(move || server.run(&STOP).unwrap());

        let t0 = std::time::Instant::now();
        let (mut rtts, last_json) =
            e19_client(addr, label, &events, names.clone(), interval_ms.map(Duration::from_millis));
        let wall = t0.elapsed();
        STOP.store(true, Ordering::SeqCst);
        server_thread.join().unwrap();

        rtts.sort();
        let evps = events.len() as f64 / wall.as_secs_f64();
        if interval_ms.is_none() {
            baseline_evps = evps;
        }
        // Positive = the query rate cost feed throughput vs the 0 Hz
        // baseline measured in the same scenario invocation.
        let overhead_pct =
            if baseline_evps > 0.0 { (baseline_evps - evps) / baseline_evps * 100.0 } else { 0.0 };
        let p50 = percentile_us(&rtts, 0.50);
        let p99 = percentile_us(&rtts, 0.99);
        let snapshot_ok = last_json
            .as_deref()
            .is_none_or(|j| j.contains("\"loops\":") && j.contains("\"position\":"));
        t.row(&[
            label.to_string(),
            events.len().to_string(),
            rtts.len().to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.2}", evps / 1e6),
            format!("{overhead_pct:+.1}"),
            format!("{p50:.1}"),
            format!("{p99:.1}"),
        ]);
        let mut row = MetricRow::new(format!("watch/{label}"));
        row.events = Some(events.len() as u64);
        row.wall_ms = Some(wall.as_secs_f64() * 1e3);
        row.events_per_sec = Some(evps);
        if !rtts.is_empty() {
            row.rtt_p50_us = Some(p50);
            row.rtt_p99_us = Some(p99);
        }
        rows.push(
            row.check("queries", rtts.len())
                .check("overhead_pct_vs_idle", format!("{overhead_pct:.1}"))
                .check("final_snapshot_well_formed", snapshot_ok),
        );
    }

    let text = format!(
        "Online analysis (E19): {} streamed into dp-server while live Query\n\
         frames sample the incremental loop/comm/race state mid-session\n\
         (0 Hz = pure-ingest baseline; overhead is the feed-throughput cost\n\
         of answering queries from incremental state without a stall)\n\n{}",
        w.meta.name,
        t.render()
    );
    let summary = if baseline_evps > 0.0 { Some(baseline_evps) } else { None };
    ScenarioOutput { text, rows, summary_events_per_sec: summary }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioCtx {
        ScenarioCtx {
            recipe: "tiny".into(),
            scale: 0.02,
            quick: true,
            seed: 42,
            workers: vec![4, 8],
            transports: vec![TransportKind::Spsc, TransportKind::Mpmc, TransportKind::Lock],
            clients: vec![1, 2],
        }
    }

    #[test]
    fn table2_matches_paper_at_tiny_scale() {
        let s = table2(&tiny());
        let overall: Vec<&str> =
            s.text.lines().find(|l| l.contains("Overall")).unwrap().split_whitespace().collect();
        assert_eq!(overall, ["Overall", "147", "136", "136", "0"], "{}", s.text);
        assert_eq!(s.rows.len(), 8, "one row per NAS program");
    }

    #[test]
    fn formula2_runs_and_rows_are_deterministic() {
        let a = formula2(&tiny());
        let b = formula2(&tiny());
        assert!(a.text.contains("predicted"));
        assert_eq!(a.rows.len(), 7);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.checks, rb.checks, "same seed must reproduce accuracy numbers");
        }
        // A different seed permutes the stream; the rows still parse.
        let mut other = tiny();
        other.seed = 1979;
        assert_eq!(formula2(&other).rows.len(), 7);
    }

    #[test]
    fn fig9_shows_neighbour_traffic() {
        let s = fig9(&tiny());
        assert!(s.text.contains("t1 -> t2") || s.text.contains("t2 -> t1"), "{}", s.text);
    }

    #[test]
    fn merge_factors_large() {
        let s = merge(&tiny());
        assert!(s.text.contains("BT"));
        assert!(s.rows.iter().all(|r| r.checks.contains_key("merge_factor")));
    }

    #[test]
    fn online_analysis_rows_and_overhead() {
        let s = online_analysis(&tiny());
        assert_eq!(s.rows.len(), 3, "{}", s.text);
        assert_eq!(s.rows[0].label, "watch/q0hz");
        assert_eq!(s.rows[0].checks["queries"], "0");
        assert!(s.rows[0].rtt_p99_us.is_none(), "0 Hz row must not report query latency");
        for row in &s.rows[1..] {
            assert!(row.checks["queries"].parse::<u64>().unwrap() >= 1, "{}", row.label);
            assert!(row.rtt_p99_us.unwrap() > 0.0);
            assert_eq!(row.checks["final_snapshot_well_formed"], "true");
        }
        assert!(s.summary_events_per_sec.unwrap() > 0.0);
    }

    #[test]
    fn spsc_comparison_deps_identical_and_summary_present() {
        let s = spsc(&tiny());
        assert!(!s.text.contains("NO"), "dependence sets diverged across transports:\n{}", s.text);
        assert!(s.rows.iter().all(|r| r.checks["identical_deps"] == "true"));
        assert!(s.summary_events_per_sec.unwrap() > 0.0);
        // 4 quick workloads × 3 transports
        assert_eq!(s.rows.len(), 12);
    }
}
