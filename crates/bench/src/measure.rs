//! Timing helpers.

use std::time::{Duration, Instant};

/// A measured quantity with its wall-clock duration.
#[derive(Debug, Clone)]
pub struct Timed<T> {
    /// The computed value.
    pub value: T,
    /// Elapsed wall time.
    pub elapsed: Duration,
}

/// Times a closure once.
pub fn time<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let value = f();
    Timed { value, elapsed: start.elapsed() }
}

/// Runs `f` `n` times and returns the *minimum* duration (robust against
/// scheduler noise on the shared CI machine) along with the last value.
pub fn time_best_of<T>(n: usize, mut f: impl FnMut() -> T) -> Timed<T> {
    assert!(n >= 1);
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..n {
        let t = time(&mut f);
        if t.elapsed < best {
            best = t.elapsed;
        }
        last = Some(t.value);
    }
    Timed { value: last.unwrap(), elapsed: best }
}

/// Slowdown of `measured` relative to `baseline` (the paper's ×-factors).
pub fn slowdown(measured: Duration, baseline: Duration) -> f64 {
    let b = baseline.as_secs_f64();
    if b <= 0.0 {
        f64::NAN
    } else {
        measured.as_secs_f64() / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures() {
        let t = time(|| 21 * 2);
        assert_eq!(t.value, 42);
    }

    #[test]
    fn best_of_returns_min() {
        let mut calls = 0;
        let t = time_best_of(3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 3);
        assert_eq!(t.value, 3);
    }

    #[test]
    fn slowdown_ratio() {
        assert!((slowdown(Duration::from_secs(2), Duration::from_secs(1)) - 2.0).abs() < 1e-9);
        assert!(slowdown(Duration::from_secs(1), Duration::ZERO).is_nan());
    }
}
