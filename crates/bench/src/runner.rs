//! The [`Runner`]: executes a recipe against its registered scenario and
//! folds the output into a versioned [`BenchResult`].
//!
//! The runner owns everything that is *not* measurement: warmup runs,
//! repetitions, best-of merging of timing fields, git-revision stamping,
//! and serialization. Scenarios stay pure measurement functions.

use crate::recipe::Recipe;
use crate::result::{BenchResult, MetricRow, SCHEMA_VERSION};
use crate::scenario::{self, ScenarioCtx, ScenarioOutput};
use std::fmt;

/// Typed runner failure.
#[derive(Debug)]
pub enum RunnerError {
    /// The recipe names a scenario that is not in the registry.
    UnknownScenario(String),
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::UnknownScenario(id) => {
                write!(f, "recipe names unknown scenario '{id}' (see 'dp-bench list')")
            }
        }
    }
}

impl std::error::Error for RunnerError {}

/// What one recipe execution produced: the structured result plus the
/// last repetition's rendered text.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The versioned result (timing fields merged best-of across
    /// repetitions).
    pub result: BenchResult,
    /// Human-readable table(s) from the final repetition.
    pub text: String,
}

/// Executes recipes.
#[derive(Debug, Clone, Default)]
pub struct Runner {
    /// Run recipes with quick overrides applied.
    pub quick: bool,
}

impl Runner {
    /// A runner in full or quick mode.
    pub fn new(quick: bool) -> Runner {
        Runner { quick }
    }

    /// Executes one recipe: warmup runs (discarded), then
    /// `effective_repetitions` measured runs merged best-of on timing
    /// fields. Non-timing fields must agree across repetitions by
    /// construction (same seed, same scale); the merge keeps the last
    /// repetition's values for them.
    pub fn run(&self, recipe: &Recipe) -> Result<RunOutcome, RunnerError> {
        let scn = scenario::find(&recipe.scenario)
            .ok_or_else(|| RunnerError::UnknownScenario(recipe.scenario.clone()))?;
        let ctx = ScenarioCtx::from_recipe(recipe, self.quick);
        for _ in 0..recipe.warmup {
            let _ = scn.run(&ctx);
        }
        let reps = recipe.effective_repetitions(self.quick);
        let mut merged: Option<ScenarioOutput> = None;
        for _ in 0..reps {
            let out = scn.run(&ctx);
            merged = Some(match merged {
                None => out,
                Some(prev) => merge_outputs(prev, out),
            });
        }
        let out = merged.unwrap_or_default();
        let result = BenchResult {
            schema_version: SCHEMA_VERSION,
            recipe: recipe.name.clone(),
            scenario: scn.id().to_string(),
            git_rev: git_rev(),
            seed: recipe.seed,
            scale: ctx.scale,
            quick: self.quick,
            rows: out.rows,
            summary_events_per_sec: out.summary_events_per_sec,
        };
        Ok(RunOutcome { result, text: out.text })
    }

    /// Runs every recipe in order, propagating the first hard failure.
    pub fn run_all<'a>(
        &self,
        recipes: impl IntoIterator<Item = &'a Recipe>,
    ) -> Result<Vec<RunOutcome>, RunnerError> {
        recipes.into_iter().map(|r| self.run(r)).collect()
    }
}

/// Folds a later repetition into the accumulated output: keeps the new
/// text and non-timing fields, takes the best (min wall / max rate / min
/// RTT) of timing fields per row label.
fn merge_outputs(prev: ScenarioOutput, mut next: ScenarioOutput) -> ScenarioOutput {
    for row in &mut next.rows {
        if let Some(old) = prev.rows.iter().find(|r| r.label == row.label) {
            merge_row(row, old);
        }
    }
    next.summary_events_per_sec = match (prev.summary_events_per_sec, next.summary_events_per_sec) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => b.or(a),
    };
    next
}

fn merge_row(row: &mut MetricRow, old: &MetricRow) {
    row.wall_ms = min_opt(row.wall_ms, old.wall_ms);
    row.events_per_sec = max_opt(row.events_per_sec, old.events_per_sec);
    row.rtt_p50_us = min_opt(row.rtt_p50_us, old.rtt_p50_us);
    row.rtt_p99_us = min_opt(row.rtt_p99_us, old.rtt_p99_us);
}

fn min_opt(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

fn max_opt(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, y) => x.or(y),
    }
}

/// `git rev-parse --short HEAD`, or `"unknown"` outside a work tree.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Lists scenarios that exist in the registry (for `dp-bench list`).
pub fn describe_registry() -> Vec<(&'static str, &'static str, &'static str)> {
    scenario::registry().iter().map(|s| (s.id(), s.experiment(), s.title())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_recipe(scenario: &str) -> Recipe {
        Recipe::from_toml_str(&format!(
            "name = \"t-{scenario}\"\nscenario = \"{scenario}\"\nworkload = \"mixed\"\n\
             scale = 0.02\nrepetitions = 2\n"
        ))
        .unwrap()
    }

    #[test]
    fn unknown_scenario_is_typed() {
        let mut r = quick_recipe("merge");
        r.scenario = "does-not-exist".into();
        let err = Runner::new(true).run(&r).unwrap_err();
        assert!(matches!(err, RunnerError::UnknownScenario(_)));
        assert!(err.to_string().contains("does-not-exist"));
    }

    #[test]
    fn run_produces_versioned_result() {
        let out = Runner::new(true).run(&quick_recipe("merge")).unwrap();
        assert_eq!(out.result.schema_version, SCHEMA_VERSION);
        assert_eq!(out.result.scenario, "merge");
        assert!(!out.result.rows.is_empty());
        assert!(out.text.contains("merge factor") || out.text.contains("Merging"));
        // Round-trips through the schema (timing floats are rounded to
        // 6 decimals on write, so compare the serialized forms).
        let parsed = BenchResult::from_json(&out.result.to_json()).unwrap();
        assert_eq!(parsed.to_json(), out.result.to_json());
        assert_eq!(parsed.non_timing_fingerprint(), out.result.non_timing_fingerprint());
    }

    #[test]
    fn merge_keeps_best_timing() {
        let mk = |wall: f64, rate: f64| ScenarioOutput {
            text: "t".into(),
            rows: vec![MetricRow {
                label: "x".into(),
                wall_ms: Some(wall),
                events_per_sec: Some(rate),
                events: Some(10),
                ..Default::default()
            }],
            summary_events_per_sec: Some(rate),
        };
        let merged = merge_outputs(mk(5.0, 200.0), mk(8.0, 125.0));
        assert_eq!(merged.rows[0].wall_ms, Some(5.0));
        assert_eq!(merged.rows[0].events_per_sec, Some(200.0));
        assert_eq!(merged.summary_events_per_sec, Some(200.0));
        assert_eq!(merged.rows[0].events, Some(10));
    }
}
