//! The [`Reporter`]: renders a [`BenchResult`] (or a batch of them) as
//! text, JSON, or markdown.

use crate::fmt::Table;
use crate::result::BenchResult;
use std::fmt;

/// Output format for `dp-bench` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Plain text tables (default; what the legacy binary printed).
    #[default]
    Text,
    /// The schema-v1 JSON document itself.
    Json,
    /// GitHub-flavoured markdown tables (for CI job summaries).
    Markdown,
}

impl std::str::FromStr for Format {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "markdown" | "md" => Ok(Format::Markdown),
            other => Err(format!("unknown format '{other}' (text|json|markdown)")),
        }
    }
}

/// Renders benchmark results.
#[derive(Debug, Clone, Copy, Default)]
pub struct Reporter {
    /// Selected output format.
    pub format: Format,
}

impl Reporter {
    /// A reporter for the given format.
    pub fn new(format: Format) -> Reporter {
        Reporter { format }
    }

    /// Renders one result. `text` is the scenario's own rendered tables,
    /// used verbatim for [`Format::Text`].
    pub fn render(&self, result: &BenchResult, text: &str) -> String {
        match self.format {
            Format::Text => text.to_string(),
            Format::Json => result.to_json(),
            Format::Markdown => render_markdown(result),
        }
    }

    /// Renders a one-line summary for run-all progress output.
    pub fn summary_line(&self, result: &BenchResult) -> String {
        let rate = match result.summary_events_per_sec {
            Some(r) => format!("{:.2} Mev/s", r / 1e6),
            None => "-".to_string(),
        };
        format!(
            "{:<16} {:<14} rows={:<3} summary={}",
            result.recipe,
            result.scenario,
            result.rows.len(),
            rate
        )
    }
}

fn fmt_opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "-".to_string(),
    }
}

fn render_markdown(r: &BenchResult) -> String {
    let mut out = String::new();
    let _ = writeln_md(
        &mut out,
        format!(
            "### {} ({}) — rev {}, scale {}, seed {}{}\n",
            r.recipe,
            r.scenario,
            r.git_rev,
            r.scale,
            r.seed,
            if r.quick { ", quick" } else { "" }
        ),
    );
    out.push_str("| label | events | wall ms | events/s | rtt p50 us | rtt p99 us | mem bytes | degraded | checks |\n");
    out.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for row in &r.rows {
        let checks =
            row.checks.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(", ");
        let _ = writeln_md(
            &mut out,
            format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                row.label,
                row.events.map(|e| e.to_string()).unwrap_or_else(|| "-".into()),
                fmt_opt(row.wall_ms, 1),
                fmt_opt(row.events_per_sec, 0),
                fmt_opt(row.rtt_p50_us, 1),
                fmt_opt(row.rtt_p99_us, 1),
                row.mem_high_water_bytes.map(|m| m.to_string()).unwrap_or_else(|| "-".into()),
                row.degraded_events.map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
                checks
            ),
        );
    }
    if let Some(s) = r.summary_events_per_sec {
        let _ = writeln_md(&mut out, format!("\n**summary: {:.0} events/s**", s));
    }
    out
}

fn writeln_md(out: &mut String, line: String) -> fmt::Result {
    use fmt::Write;
    writeln!(out, "{line}")
}

/// Side-by-side comparison of two results (`dp-bench diff`): per-label
/// timing deltas plus any non-timing fields that changed.
pub fn render_diff(base: &BenchResult, new: &BenchResult) -> String {
    let mut t = Table::new(&[
        "label",
        "base ev/s",
        "new ev/s",
        "delta %",
        "base wall ms",
        "new wall ms",
        "non-timing",
    ]);
    for row in &new.rows {
        let old = base.rows.iter().find(|r| r.label == row.label);
        let (b_rate, b_wall, drift) = match old {
            Some(o) => {
                let drift = o.events != row.events
                    || o.mem_high_water_bytes != row.mem_high_water_bytes
                    || o.degraded_events != row.degraded_events
                    || o.checks != row.checks;
                (o.events_per_sec, o.wall_ms, if drift { "CHANGED" } else { "same" })
            }
            None => (None, None, "NEW"),
        };
        let delta = match (b_rate, row.events_per_sec) {
            (Some(b), Some(n)) if b > 0.0 => format!("{:+.1}", (n - b) / b * 100.0),
            _ => "-".to_string(),
        };
        t.row(&[
            row.label.clone(),
            fmt_opt(b_rate, 0),
            fmt_opt(row.events_per_sec, 0),
            delta,
            fmt_opt(b_wall, 1),
            fmt_opt(row.wall_ms, 1),
            drift.to_string(),
        ]);
    }
    for row in &base.rows {
        if !new.rows.iter().any(|r| r.label == row.label) {
            t.row(&[
                row.label.clone(),
                fmt_opt(row.events_per_sec, 0),
                "-".into(),
                "-".into(),
                fmt_opt(row.wall_ms, 1),
                "-".into(),
                "REMOVED".into(),
            ]);
        }
    }
    let summary = match (base.summary_events_per_sec, new.summary_events_per_sec) {
        (Some(b), Some(n)) if b > 0.0 => {
            format!("summary events/s: {b:.0} -> {n:.0} ({:+.1}%)", (n - b) / b * 100.0)
        }
        _ => "summary events/s: n/a".to_string(),
    };
    format!(
        "diff {} @{} vs @{}\n\n{}\n{}",
        new.recipe,
        base.git_rev,
        new.git_rev,
        t.render(),
        summary
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{MetricRow, SCHEMA_VERSION};

    fn sample(rate: f64) -> BenchResult {
        BenchResult {
            schema_version: SCHEMA_VERSION,
            recipe: "spsc-quick".into(),
            scenario: "spsc".into(),
            git_rev: "abc1234".into(),
            seed: 42,
            scale: 0.02,
            quick: true,
            rows: vec![MetricRow {
                label: "bt/spsc".into(),
                events: Some(1000),
                wall_ms: Some(2.0),
                events_per_sec: Some(rate),
                ..Default::default()
            }
            .check("identical_deps", "true")],
            summary_events_per_sec: Some(rate),
        }
    }

    #[test]
    fn formats_parse_and_render() {
        let r = sample(500_000.0);
        assert_eq!("md".parse::<Format>().unwrap(), Format::Markdown);
        assert!("bogus".parse::<Format>().is_err());
        assert_eq!(Reporter::new(Format::Text).render(&r, "the tables"), "the tables");
        assert!(Reporter::new(Format::Json).render(&r, "").contains("\"schema_version\": 1"));
        let md = Reporter::new(Format::Markdown).render(&r, "");
        assert!(md.contains("| bt/spsc |"));
        assert!(md.contains("identical_deps=true"));
    }

    #[test]
    fn diff_flags_regression_and_drift() {
        let base = sample(1_000_000.0);
        let mut new = sample(500_000.0);
        new.rows[0].events = Some(999);
        let d = render_diff(&base, &new);
        assert!(d.contains("-50.0"), "{d}");
        assert!(d.contains("CHANGED"), "{d}");
        assert!(d.contains("summary events/s"), "{d}");
    }
}
