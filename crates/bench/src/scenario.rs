//! The [`Scenario`] trait and the E1–E16 registry.
//!
//! Each experiment of the paper (plus the transport/server experiments
//! added by later PRs) is a registered [`Scenario`] implementation. A
//! scenario receives a [`ScenarioCtx`] — the recipe with quick overrides
//! already applied — and returns a [`ScenarioOutput`]: the rendered
//! human-readable table plus structured [`MetricRow`]s that the
//! [`crate::runner::Runner`] folds into a `BenchResult`.
//!
//! Adding an experiment means implementing the trait, adding one line to
//! [`registry`], and dropping a recipe TOML under `crates/bench/recipes/`
//! — no CLI wiring.

use crate::recipe::Recipe;
use crate::result::MetricRow;
use dp_core::TransportKind;

/// The resolved execution context a scenario runs under.
#[derive(Debug, Clone)]
pub struct ScenarioCtx {
    /// Recipe name (for labels/diagnostics).
    pub recipe: String,
    /// Effective workload scale.
    pub scale: f64,
    /// Quick mode (smaller workload subsets where scenarios support it).
    pub quick: bool,
    /// Deterministic seed.
    pub seed: u64,
    /// Worker counts from the matrix (first entry is the primary).
    pub workers: Vec<usize>,
    /// Transports from the matrix.
    pub transports: Vec<TransportKind>,
    /// Client counts from the matrix (server scenarios).
    pub clients: Vec<usize>,
}

impl ScenarioCtx {
    /// Builds the context from a recipe, applying quick overrides.
    pub fn from_recipe(recipe: &Recipe, quick: bool) -> ScenarioCtx {
        let transports = recipe
            .matrix
            .transports
            .iter()
            .map(|t| match t.as_str() {
                "spsc" => TransportKind::Spsc,
                "mpmc" => TransportKind::Mpmc,
                // `Recipe::validate` already rejected anything else.
                _ => TransportKind::Lock,
            })
            .collect();
        ScenarioCtx {
            recipe: recipe.name.clone(),
            scale: recipe.effective_scale(quick),
            quick,
            seed: recipe.seed,
            workers: recipe.matrix.workers.clone(),
            transports,
            clients: recipe.effective_clients(quick),
        }
    }

    /// The primary worker count (first matrix entry).
    pub fn primary_workers(&self) -> usize {
        self.workers.first().copied().unwrap_or(4)
    }
}

/// What a scenario run produced.
#[derive(Debug, Clone, Default)]
pub struct ScenarioOutput {
    /// Rendered table(s) for humans, as the legacy experiment binary
    /// printed them.
    pub text: String,
    /// Structured rows for the result schema.
    pub rows: Vec<MetricRow>,
    /// Headline events/sec the gate compares (None for accuracy-only
    /// scenarios).
    pub summary_events_per_sec: Option<f64>,
}

/// A registered benchmark scenario.
pub trait Scenario: Sync {
    /// Stable scenario id recipes reference (e.g. `"spsc"`).
    fn id(&self) -> &'static str;
    /// The experiment number in DESIGN.md's index (e.g. `"E15"`).
    fn experiment(&self) -> &'static str;
    /// One-line human description.
    fn title(&self) -> &'static str;
    /// Executes the scenario under the given context.
    fn run(&self, ctx: &ScenarioCtx) -> ScenarioOutput;
}

macro_rules! scenarios {
    ($($strukt:ident { id: $id:literal, exp: $exp:literal, title: $title:literal, run: $f:path }),+ $(,)?) => {
        $(
            struct $strukt;
            impl Scenario for $strukt {
                fn id(&self) -> &'static str { $id }
                fn experiment(&self) -> &'static str { $exp }
                fn title(&self) -> &'static str { $title }
                fn run(&self, ctx: &ScenarioCtx) -> ScenarioOutput { $f(ctx) }
            }
        )+
        /// Every registered scenario, in experiment order.
        pub fn registry() -> &'static [&'static dyn Scenario] {
            &[$(&$strukt),+]
        }
    };
}

use crate::experiments as exp;

scenarios! {
    Table1 { id: "table1", exp: "E1", title: "Table I: dependence FPR/FNR vs signature size", run: exp::table1 },
    Formula2 { id: "formula2", exp: "E2", title: "Formula 2: predicted vs measured accuracy over load factor", run: exp::formula2 },
    Fig5 { id: "fig5", exp: "E3", title: "Figure 5: profiling slowdown, sequential targets", run: exp::fig5 },
    Fig6 { id: "fig6", exp: "E4", title: "Figure 6: profiling slowdown, parallel Starbench", run: exp::fig6 },
    Fig7 { id: "fig7", exp: "E5", title: "Figure 7: profiler memory, sequential targets", run: exp::fig7 },
    Fig8 { id: "fig8", exp: "E6", title: "Figure 8: profiler memory, parallel targets", run: exp::fig8 },
    Table2 { id: "table2", exp: "E7", title: "Table II: parallelizable-loop detection in NAS", run: exp::table2 },
    Fig9 { id: "fig9", exp: "E8", title: "Figure 9: communication pattern of water-spatial", run: exp::fig9 },
    CommSuite { id: "comm-suite", exp: "E8b", title: "Communication topologies: ring/grid/all-to-all/broadcast", run: exp::comm_suite },
    Merge { id: "merge", exp: "E9", title: "Output-size reduction by merging identical dependences", run: exp::merge },
    AblateHash { id: "ablate-hash", exp: "E10", title: "Store ablation: signature vs hash table vs shadow memory", run: exp::ablate_hash },
    Races { id: "races", exp: "E12", title: "Race detection: timestamp reversals, racy vs locked", run: exp::races },
    AblateChunk { id: "ablate-chunk", exp: "E13a", title: "Chunk-size sweep", run: exp::ablate_chunk },
    AblateRedist { id: "ablate-redist", exp: "E13b", title: "Redistribution on/off on a skewed workload", run: exp::ablate_redist },
    AblateSlots { id: "ablate-slots", exp: "E13c", title: "Compact vs extended slot layout", run: exp::ablate_slots },
    AblateSections { id: "ablate-sections", exp: "E13d", title: "Set-based (section-level) profiling ablation", run: exp::ablate_sections },
    AblateSd3 { id: "ablate-sd3", exp: "E14", title: "Signature vs SD3-style stride compression", run: exp::ablate_sd3 },
    Spsc { id: "spsc", exp: "E15", title: "SPSC vs MPMC vs lock-based transport comparison", run: exp::spsc },
    Server { id: "server", exp: "E16", title: "Server throughput and Sync RTT vs client count", run: exp::server_throughput },
    FuzzCampaign { id: "fuzz", exp: "E17", title: "Differential fuzzing: all engine legs agree on seeded MiniVM programs", run: exp::fuzz_campaign },
    ChaosGoodput { id: "chaos", exp: "E18", title: "Chaos goodput: retry/resume client vs seeded network faults", run: exp::chaos_goodput },
    OnlineAnalysis { id: "online-analysis", exp: "E19", title: "Online analysis: live query latency and feed-throughput overhead", run: exp::online_analysis },
}

/// Looks up a scenario by id.
pub fn find(id: &str) -> Option<&'static dyn Scenario> {
    registry().iter().copied().find(|s| s.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_findable() {
        let reg = registry();
        assert!(reg.len() >= 19);
        for s in reg {
            assert_eq!(find(s.id()).unwrap().experiment(), s.experiment());
        }
        let mut ids: Vec<_> = reg.iter().map(|s| s.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len(), "duplicate scenario id");
    }

    #[test]
    fn ctx_applies_quick_overrides() {
        let mut r = crate::recipe::Recipe::from_toml_str(
            "name = \"x\"\nscenario = \"spsc\"\nworkload = \"mixed\"\nscale = 0.5\n",
        )
        .unwrap();
        r.quick.scale = Some(0.01);
        let full = ScenarioCtx::from_recipe(&r, false);
        let quick = ScenarioCtx::from_recipe(&r, true);
        assert_eq!(full.scale, 0.5);
        assert_eq!(quick.scale, 0.01);
        assert_eq!(full.primary_workers(), 4);
    }
}
