//! The regression gate: compares a fresh run's headline throughput
//! against a committed baseline and decides pass/fail.
//!
//! The comparison is deliberately one-dimensional — summary events/sec,
//! with a generous percentage threshold — because quick-recipe runs on
//! shared CI runners are noisy. Non-timing drift (different event
//! counts, changed checks) is reported but does not fail the gate; the
//! deterministic fields are already pinned by unit tests.

use crate::result::BenchResult;
use std::fmt;

/// Typed gate failure (configuration/input errors — *not* a regression;
/// regressions are a [`GateReport`] with `pass == false`).
#[derive(Debug)]
pub enum GateError {
    /// Baseline and current results come from different recipes.
    RecipeMismatch {
        /// Recipe the baseline was produced from.
        baseline: String,
        /// Recipe of the fresh result.
        current: String,
    },
    /// The baseline has no summary events/sec to compare against.
    NoBaselineSummary(String),
    /// The fresh run produced no summary events/sec.
    NoCurrentSummary(String),
    /// Threshold must be a positive finite percentage.
    BadThreshold(f64),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::RecipeMismatch { baseline, current } => write!(
                f,
                "baseline is from recipe '{baseline}' but current result is from '{current}'"
            ),
            GateError::NoBaselineSummary(r) => {
                write!(f, "baseline for recipe '{r}' has no summary events/sec to gate on")
            }
            GateError::NoCurrentSummary(r) => {
                write!(f, "fresh run of recipe '{r}' produced no summary events/sec")
            }
            GateError::BadThreshold(t) => {
                write!(f, "threshold must be a positive percentage, got {t}")
            }
        }
    }
}

impl std::error::Error for GateError {}

/// The gate's verdict for one baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Recipe under test.
    pub recipe: String,
    /// Baseline summary events/sec.
    pub baseline_events_per_sec: f64,
    /// Fresh summary events/sec.
    pub current_events_per_sec: f64,
    /// Relative change in percent (negative = slower than baseline).
    pub delta_pct: f64,
    /// Allowed regression in percent.
    pub threshold_pct: f64,
    /// Whether the gate passes.
    pub pass: bool,
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate {}: baseline {:.0} ev/s, current {:.0} ev/s, delta {:+.1}% \
             (threshold -{:.1}%) -> {}",
            self.recipe,
            self.baseline_events_per_sec,
            self.current_events_per_sec,
            self.delta_pct,
            self.threshold_pct,
            if self.pass { "PASS" } else { "FAIL" }
        )
    }
}

/// Compares a fresh result against a baseline: fails when throughput
/// dropped by more than `threshold_pct` percent. Improvements and
/// within-threshold noise pass.
pub fn compare(
    baseline: &BenchResult,
    current: &BenchResult,
    threshold_pct: f64,
) -> Result<GateReport, GateError> {
    if !threshold_pct.is_finite() || threshold_pct <= 0.0 {
        return Err(GateError::BadThreshold(threshold_pct));
    }
    if baseline.recipe != current.recipe {
        return Err(GateError::RecipeMismatch {
            baseline: baseline.recipe.clone(),
            current: current.recipe.clone(),
        });
    }
    let base = baseline
        .summary_events_per_sec
        .filter(|v| *v > 0.0)
        .ok_or_else(|| GateError::NoBaselineSummary(baseline.recipe.clone()))?;
    let cur = current
        .summary_events_per_sec
        .filter(|v| *v > 0.0)
        .ok_or_else(|| GateError::NoCurrentSummary(current.recipe.clone()))?;
    let delta_pct = (cur - base) / base * 100.0;
    Ok(GateReport {
        recipe: current.recipe.clone(),
        baseline_events_per_sec: base,
        current_events_per_sec: cur,
        delta_pct,
        threshold_pct,
        pass: delta_pct >= -threshold_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SCHEMA_VERSION;

    fn result(recipe: &str, rate: Option<f64>) -> BenchResult {
        BenchResult {
            schema_version: SCHEMA_VERSION,
            recipe: recipe.into(),
            scenario: "spsc".into(),
            git_rev: "abc1234".into(),
            seed: 42,
            scale: 0.02,
            quick: true,
            rows: vec![],
            summary_events_per_sec: rate,
        }
    }

    #[test]
    fn within_threshold_passes_beyond_fails() {
        let base = result("spsc-quick", Some(1_000_000.0));
        // 40% drop under a 50% threshold: pass.
        let ok = compare(&base, &result("spsc-quick", Some(600_000.0)), 50.0).unwrap();
        assert!(ok.pass, "{ok}");
        // 60% drop: fail.
        let bad = compare(&base, &result("spsc-quick", Some(400_000.0)), 50.0).unwrap();
        assert!(!bad.pass, "{bad}");
        assert!((bad.delta_pct - -60.0).abs() < 1e-9);
        // Improvements always pass.
        let fast = compare(&base, &result("spsc-quick", Some(5_000_000.0)), 50.0).unwrap();
        assert!(fast.pass);
    }

    #[test]
    fn typed_errors() {
        let base = result("spsc-quick", Some(1.0));
        assert!(matches!(
            compare(&base, &result("server-quick", Some(1.0)), 50.0),
            Err(GateError::RecipeMismatch { .. })
        ));
        assert!(matches!(
            compare(&result("r", None), &result("r", Some(1.0)), 50.0),
            Err(GateError::NoBaselineSummary(_))
        ));
        assert!(matches!(
            compare(&base, &result("spsc-quick", None), 50.0),
            Err(GateError::NoCurrentSummary(_))
        ));
        assert!(matches!(compare(&base, &base, 0.0), Err(GateError::BadThreshold(_))));
        assert!(matches!(compare(&base, &base, f64::NAN), Err(GateError::BadThreshold(_))));
    }
}
