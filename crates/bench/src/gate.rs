//! The regression gate: compares a fresh run's headline throughput
//! against a committed baseline and decides pass/fail.
//!
//! The comparison is deliberately one-dimensional — summary events/sec,
//! with a generous percentage threshold — because quick-recipe runs on
//! shared CI runners are noisy. Non-timing drift (different event
//! counts, changed checks) is reported but does not fail the gate; the
//! deterministic fields are already pinned by unit tests.

use crate::result::{BenchResult, MetricRow};
use std::fmt;

/// Typed gate failure (configuration/input errors — *not* a regression;
/// regressions are a [`GateReport`] with `pass == false`).
#[derive(Debug)]
pub enum GateError {
    /// Baseline and current results come from different recipes.
    RecipeMismatch {
        /// Recipe the baseline was produced from.
        baseline: String,
        /// Recipe of the fresh result.
        current: String,
    },
    /// The baseline has no summary events/sec to compare against.
    NoBaselineSummary(String),
    /// The fresh run produced no summary events/sec.
    NoCurrentSummary(String),
    /// Threshold must be a positive finite percentage.
    BadThreshold(f64),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::RecipeMismatch { baseline, current } => write!(
                f,
                "baseline is from recipe '{baseline}' but current result is from '{current}'"
            ),
            GateError::NoBaselineSummary(r) => {
                write!(f, "baseline for recipe '{r}' has no summary events/sec to gate on")
            }
            GateError::NoCurrentSummary(r) => {
                write!(f, "fresh run of recipe '{r}' produced no summary events/sec")
            }
            GateError::BadThreshold(t) => {
                write!(f, "threshold must be a positive percentage, got {t}")
            }
        }
    }
}

impl std::error::Error for GateError {}

/// The gate's verdict for one baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Recipe under test.
    pub recipe: String,
    /// Baseline summary events/sec.
    pub baseline_events_per_sec: f64,
    /// Fresh summary events/sec.
    pub current_events_per_sec: f64,
    /// Relative change in percent (negative = slower than baseline).
    pub delta_pct: f64,
    /// Allowed regression in percent.
    pub threshold_pct: f64,
    /// Whether the gate passes.
    pub pass: bool,
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate {}: baseline {:.0} ev/s, current {:.0} ev/s, delta {:+.1}% \
             (threshold -{:.1}%) -> {}",
            self.recipe,
            self.baseline_events_per_sec,
            self.current_events_per_sec,
            self.delta_pct,
            self.threshold_pct,
            if self.pass { "PASS" } else { "FAIL" }
        )
    }
}

// ----------------------------------------------------------- row gates

/// The comparison direction of a [`RowGate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOp {
    /// Metric must be `<=` the bound (latency/time budgets).
    Le,
    /// Metric must be `>=` the bound (throughput floors).
    Ge,
}

/// One declarative per-row budget from a recipe's `gates` array.
///
/// A recipe declares absolute budgets as `"<row> <metric> <op> <bound>"`
/// specs — e.g. `"watch/q1hz rtt_p99_us <= 250000"` bounds E19's 1 Hz
/// query latency, `"clients=1 rtt_p99_us <= 500000"` bounds E16's Sync
/// round trip. Unlike the baseline comparison (relative, one summary
/// number), row gates are absolute and per row, so a regression report
/// names exactly which row blew which budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RowGate {
    /// Row label the gate applies to (must exist in the fresh result).
    pub row: String,
    /// Metric name: `wall_ms`, `events_per_sec`, `rtt_p50_us` or
    /// `rtt_p99_us`.
    pub metric: String,
    /// Comparison direction.
    pub op: GateOp,
    /// The budget.
    pub bound: f64,
}

/// Metric names a [`RowGate`] may reference.
pub const GATE_METRICS: &[&str] = &["wall_ms", "events_per_sec", "rtt_p50_us", "rtt_p99_us"];

impl RowGate {
    /// Parses a `"<row> <metric> <op> <bound>"` spec. The row label is
    /// everything before the last three whitespace-separated fields, so
    /// labels may contain `=`, `/` or spaces.
    pub fn parse(spec: &str) -> Result<RowGate, String> {
        let fields: Vec<&str> = spec.split_whitespace().collect();
        if fields.len() < 4 {
            return Err(format!("gate spec '{spec}': want '<row> <metric> <=|>= <bound>'"));
        }
        let bound: f64 = fields[fields.len() - 1]
            .parse()
            .map_err(|_| format!("gate spec '{spec}': bad bound '{}'", fields[fields.len() - 1]))?;
        if !bound.is_finite() || bound < 0.0 {
            return Err(format!("gate spec '{spec}': bound must be finite and >= 0"));
        }
        let op = match fields[fields.len() - 2] {
            "<=" => GateOp::Le,
            ">=" => GateOp::Ge,
            other => return Err(format!("gate spec '{spec}': unknown operator '{other}'")),
        };
        let metric = fields[fields.len() - 3];
        if !GATE_METRICS.contains(&metric) {
            return Err(format!(
                "gate spec '{spec}': unknown metric '{metric}' (want one of {})",
                GATE_METRICS.join(", ")
            ));
        }
        let row = fields[..fields.len() - 3].join(" ");
        Ok(RowGate { row, metric: metric.to_string(), op, bound })
    }

    fn metric_of(&self, row: &MetricRow) -> Option<f64> {
        match self.metric.as_str() {
            "wall_ms" => row.wall_ms,
            "events_per_sec" => row.events_per_sec,
            "rtt_p50_us" => row.rtt_p50_us,
            "rtt_p99_us" => row.rtt_p99_us,
            _ => None,
        }
    }
}

impl fmt::Display for RowGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            GateOp::Le => "<=",
            GateOp::Ge => ">=",
        };
        write!(f, "{} {} {op} {}", self.row, self.metric, self.bound)
    }
}

/// The verdict of one [`RowGate`] against a fresh result.
#[derive(Debug, Clone, PartialEq)]
pub struct RowGateReport {
    /// The gate that was evaluated.
    pub gate: RowGate,
    /// The measured value (`None` when the row or metric is missing —
    /// which fails the gate, so typos surface loudly).
    pub measured: Option<f64>,
    /// Whether the budget holds.
    pub pass: bool,
}

impl fmt::Display for RowGateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.measured {
            Some(v) => write!(
                f,
                "row gate [{}]: measured {v:.1} -> {}",
                self.gate,
                if self.pass { "PASS" } else { "FAIL" }
            ),
            None => write!(f, "row gate [{}]: row or metric missing in result -> FAIL", self.gate),
        }
    }
}

/// Evaluates every row gate against the fresh result. A gate whose row
/// or metric is absent is reported as failed rather than skipped.
pub fn check_rows(gates: &[RowGate], current: &BenchResult) -> Vec<RowGateReport> {
    gates
        .iter()
        .map(|g| {
            let measured =
                current.rows.iter().find(|r| r.label == g.row).and_then(|r| g.metric_of(r));
            let pass = measured.is_some_and(|v| match g.op {
                GateOp::Le => v <= g.bound,
                GateOp::Ge => v >= g.bound,
            });
            RowGateReport { gate: g.clone(), measured, pass }
        })
        .collect()
}

/// Compares a fresh result against a baseline: fails when throughput
/// dropped by more than `threshold_pct` percent. Improvements and
/// within-threshold noise pass.
pub fn compare(
    baseline: &BenchResult,
    current: &BenchResult,
    threshold_pct: f64,
) -> Result<GateReport, GateError> {
    if !threshold_pct.is_finite() || threshold_pct <= 0.0 {
        return Err(GateError::BadThreshold(threshold_pct));
    }
    if baseline.recipe != current.recipe {
        return Err(GateError::RecipeMismatch {
            baseline: baseline.recipe.clone(),
            current: current.recipe.clone(),
        });
    }
    let base = baseline
        .summary_events_per_sec
        .filter(|v| *v > 0.0)
        .ok_or_else(|| GateError::NoBaselineSummary(baseline.recipe.clone()))?;
    let cur = current
        .summary_events_per_sec
        .filter(|v| *v > 0.0)
        .ok_or_else(|| GateError::NoCurrentSummary(current.recipe.clone()))?;
    let delta_pct = (cur - base) / base * 100.0;
    Ok(GateReport {
        recipe: current.recipe.clone(),
        baseline_events_per_sec: base,
        current_events_per_sec: cur,
        delta_pct,
        threshold_pct,
        pass: delta_pct >= -threshold_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SCHEMA_VERSION;

    fn result(recipe: &str, rate: Option<f64>) -> BenchResult {
        BenchResult {
            schema_version: SCHEMA_VERSION,
            recipe: recipe.into(),
            scenario: "spsc".into(),
            git_rev: "abc1234".into(),
            seed: 42,
            scale: 0.02,
            quick: true,
            rows: vec![],
            summary_events_per_sec: rate,
        }
    }

    #[test]
    fn within_threshold_passes_beyond_fails() {
        let base = result("spsc-quick", Some(1_000_000.0));
        // 40% drop under a 50% threshold: pass.
        let ok = compare(&base, &result("spsc-quick", Some(600_000.0)), 50.0).unwrap();
        assert!(ok.pass, "{ok}");
        // 60% drop: fail.
        let bad = compare(&base, &result("spsc-quick", Some(400_000.0)), 50.0).unwrap();
        assert!(!bad.pass, "{bad}");
        assert!((bad.delta_pct - -60.0).abs() < 1e-9);
        // Improvements always pass.
        let fast = compare(&base, &result("spsc-quick", Some(5_000_000.0)), 50.0).unwrap();
        assert!(fast.pass);
    }

    #[test]
    fn row_gate_spec_roundtrip_and_errors() {
        let g = RowGate::parse("watch/q1hz rtt_p99_us <= 250000").unwrap();
        assert_eq!(g.row, "watch/q1hz");
        assert_eq!(g.metric, "rtt_p99_us");
        assert_eq!(g.op, GateOp::Le);
        assert_eq!(RowGate::parse(&g.to_string()).unwrap(), g);
        // Row labels may contain '=' and spaces.
        let g = RowGate::parse("clients=16 events_per_sec >= 1000").unwrap();
        assert_eq!(g.row, "clients=16");
        assert_eq!(g.op, GateOp::Ge);
        for bad in [
            "too short",
            "row nonsense_metric <= 5",
            "row wall_ms == 5",
            "row wall_ms <= banana",
            "row wall_ms <= -1",
        ] {
            assert!(RowGate::parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn row_gates_report_each_violation() {
        let mut r = result("online", Some(1.0));
        let mut row = MetricRow::new("watch/q1hz");
        row.rtt_p99_us = Some(300_000.0);
        row.events_per_sec = Some(2_000_000.0);
        r.rows.push(row);
        let gates = vec![
            RowGate::parse("watch/q1hz rtt_p99_us <= 250000").unwrap(),
            RowGate::parse("watch/q1hz events_per_sec >= 1000000").unwrap(),
            RowGate::parse("watch/q99hz rtt_p99_us <= 250000").unwrap(),
        ];
        let reports = check_rows(&gates, &r);
        assert_eq!(reports.len(), 3);
        assert!(!reports[0].pass, "blown latency budget must fail: {}", reports[0]);
        assert_eq!(reports[0].measured, Some(300_000.0));
        assert!(reports[1].pass, "{}", reports[1]);
        assert!(!reports[2].pass, "missing row must fail loudly: {}", reports[2]);
        assert_eq!(reports[2].measured, None);
    }

    #[test]
    fn typed_errors() {
        let base = result("spsc-quick", Some(1.0));
        assert!(matches!(
            compare(&base, &result("server-quick", Some(1.0)), 50.0),
            Err(GateError::RecipeMismatch { .. })
        ));
        assert!(matches!(
            compare(&result("r", None), &result("r", Some(1.0)), 50.0),
            Err(GateError::NoBaselineSummary(_))
        ));
        assert!(matches!(
            compare(&base, &result("spsc-quick", None), 50.0),
            Err(GateError::NoCurrentSummary(_))
        ));
        assert!(matches!(compare(&base, &base, 0.0), Err(GateError::BadThreshold(_))));
        assert!(matches!(compare(&base, &base, f64::NAN), Err(GateError::BadThreshold(_))));
    }
}
