//! `dp-bench` — the recipe-driven benchmark CLI.
//!
//! ```text
//! dp-bench list
//! dp-bench run <recipe> [--quick] [--format text|json|markdown] [--out FILE]
//! dp-bench run-all [--quick] [--format ...] [--out-dir DIR]
//! dp-bench diff <baseline.json> <new.json>
//! dp-bench gate --baseline FILE [--current FILE] [--threshold-pct X] [--out FILE]
//! ```
//!
//! `<recipe>` is a recipe name (looked up in the recipes directory,
//! `--recipes-dir`, default `crates/bench/recipes/` with a fallback to
//! the directory baked in at compile time) or a path to a `.toml` file.
//!
//! Exit codes: `0` success / gate pass, `1` gate regression, `2` usage
//! or runtime error, `3` baseline schema error (unversioned or
//! incompatible `schema_version`).

use dp_bench::gate;
use dp_bench::recipe::Recipe;
use dp_bench::report::{render_diff, Format, Reporter};
use dp_bench::result::{BenchResult, ResultError};
use dp_bench::runner::{describe_registry, Runner};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: dp-bench <list|run|run-all|diff|gate> [options]
  list                             show registered scenarios and recipes
  run <recipe>                     execute one recipe
  run-all                          execute every recipe in the recipes dir
  diff <base.json> <new.json>      compare two result files
  gate --baseline FILE             re-run the baseline's recipe and compare
options:
  --quick                 apply the recipe's [quick] overrides
  --recipes-dir DIR       recipe directory (default crates/bench/recipes)
  --format F              text|json|markdown (run/run-all, default text)
  --out FILE              also write the result JSON here (run/gate)
  --out-dir DIR           write BENCH_<recipe>.json per recipe (run-all)
  --current FILE          gate against this result instead of re-running
  --threshold-pct X       allowed events/sec regression in percent (default 50)";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("dp-bench: {msg}");
    ExitCode::from(2)
}

struct Opts {
    positional: Vec<String>,
    quick: bool,
    recipes_dir: Option<String>,
    format: Format,
    out: Option<String>,
    out_dir: Option<String>,
    baseline: Option<String>,
    current: Option<String>,
    threshold_pct: f64,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        positional: Vec::new(),
        quick: false,
        recipes_dir: None,
        format: Format::Text,
        out: None,
        out_dir: None,
        baseline: None,
        current: None,
        threshold_pct: 50.0,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs an argument"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => o.quick = true,
            "--recipes-dir" => o.recipes_dir = Some(value(&mut i, "--recipes-dir")?),
            "--format" => o.format = value(&mut i, "--format")?.parse()?,
            "--out" => o.out = Some(value(&mut i, "--out")?),
            "--out-dir" => o.out_dir = Some(value(&mut i, "--out-dir")?),
            "--baseline" => o.baseline = Some(value(&mut i, "--baseline")?),
            "--current" => o.current = Some(value(&mut i, "--current")?),
            "--threshold-pct" => {
                let v = value(&mut i, "--threshold-pct")?;
                o.threshold_pct =
                    v.parse().map_err(|_| format!("--threshold-pct: not a number: '{v}'"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            pos => o.positional.push(pos.to_string()),
        }
        i += 1;
    }
    Ok(o)
}

/// The recipes directory: `--recipes-dir`, else `crates/bench/recipes`
/// relative to the working directory (the repo-root invocation CI uses),
/// else the copy next to this crate's sources.
fn recipes_dir(opt: &Option<String>) -> PathBuf {
    if let Some(d) = opt {
        return PathBuf::from(d);
    }
    let from_root = PathBuf::from("crates/bench/recipes");
    if from_root.is_dir() {
        return from_root;
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/recipes"))
}

/// Resolves a recipe argument: a `.toml` path, or a name matched against
/// recipe names (and file stems) in the recipes directory.
fn resolve_recipe(arg: &str, dir: &Path) -> Result<Recipe, String> {
    let as_path = Path::new(arg);
    // Only a file can be a recipe path: a bare name like `fuzz` must fall
    // through to name lookup even when a same-named directory exists.
    if as_path.extension().is_some_and(|e| e == "toml") || as_path.is_file() {
        return Recipe::load(as_path).map_err(|e| format!("{arg}: {e}"));
    }
    let all = Recipe::load_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for (path, r) in &all {
        if r.name == arg || path.file_stem().is_some_and(|s| s == arg) {
            return Ok(r.clone());
        }
    }
    Err(format!(
        "no recipe '{arg}' in {} (known: {})",
        dir.display(),
        all.iter().map(|(_, r)| r.name.as_str()).collect::<Vec<_>>().join(", ")
    ))
}

fn write_out(path: &str, result: &BenchResult) -> Result<(), String> {
    dp_types::wire::atomic_write(Path::new(path), result.to_json().as_bytes())
        .map_err(|e| format!("writing {path}: {e}"))
}

fn cmd_list(opts: &Opts) -> ExitCode {
    println!("registered scenarios:");
    for (id, exp, title) in describe_registry() {
        println!("  {id:<16} {exp:<5} {title}");
    }
    let dir = recipes_dir(&opts.recipes_dir);
    match Recipe::load_dir(&dir) {
        Ok(recipes) => {
            println!("\nrecipes in {}:", dir.display());
            for (path, r) in recipes {
                println!(
                    "  {:<18} scenario={:<16} scale={:<6} quick-scale={:<6} ({})",
                    r.name,
                    r.scenario,
                    r.scale,
                    r.effective_scale(true),
                    path.file_name().unwrap_or_default().to_string_lossy()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("{}: {e}", dir.display())),
    }
}

fn cmd_run(opts: &Opts) -> ExitCode {
    let Some(arg) = opts.positional.first() else {
        return fail("run needs a recipe name or path");
    };
    let recipe = match resolve_recipe(arg, &recipes_dir(&opts.recipes_dir)) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let outcome = match Runner::new(opts.quick).run(&recipe) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    println!("{}", Reporter::new(opts.format).render(&outcome.result, &outcome.text));
    if let Some(path) = &opts.out {
        if let Err(e) = write_out(path, &outcome.result) {
            return fail(e);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_run_all(opts: &Opts) -> ExitCode {
    let dir = recipes_dir(&opts.recipes_dir);
    let recipes = match Recipe::load_dir(&dir) {
        Ok(r) if !r.is_empty() => r,
        Ok(_) => return fail(format!("no recipes in {}", dir.display())),
        Err(e) => return fail(format!("{}: {e}", dir.display())),
    };
    let runner = Runner::new(opts.quick);
    let reporter = Reporter::new(opts.format);
    for (_, recipe) in &recipes {
        let outcome = match runner.run(recipe) {
            Ok(o) => o,
            Err(e) => return fail(format!("recipe '{}': {e}", recipe.name)),
        };
        eprintln!("{}", reporter.summary_line(&outcome.result));
        println!("{}", reporter.render(&outcome.result, &outcome.text));
        if let Some(d) = &opts.out_dir {
            if let Err(e) = std::fs::create_dir_all(d).map_err(|e| e.to_string()).and_then(|()| {
                write_out(&format!("{d}/BENCH_{}.json", recipe.name), &outcome.result)
            }) {
                return fail(e);
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_diff(opts: &Opts) -> ExitCode {
    let [base, new] = &opts.positional[..] else {
        return fail("diff needs two result files");
    };
    match (BenchResult::load(Path::new(base)), BenchResult::load(Path::new(new))) {
        (Ok(b), Ok(n)) => {
            println!("{}", render_diff(&b, &n));
            ExitCode::SUCCESS
        }
        (Err(e), _) => fail(format!("{base}: {e}")),
        (_, Err(e)) => fail(format!("{new}: {e}")),
    }
}

fn cmd_gate(opts: &Opts) -> ExitCode {
    let Some(baseline_path) = &opts.baseline else {
        return fail("gate needs --baseline FILE");
    };
    let baseline = match BenchResult::load(Path::new(baseline_path)) {
        Ok(b) => b,
        Err(e @ (ResultError::Unversioned | ResultError::SchemaVersion(_))) => {
            eprintln!("dp-bench: {baseline_path}: {e}");
            return ExitCode::from(3);
        }
        Err(e) => return fail(format!("{baseline_path}: {e}")),
    };
    // The recipe also carries the per-row budgets, so it is resolved
    // even when `--current` skips the re-run; a missing recipe file is
    // only fatal when a fresh run needs it.
    let recipe = resolve_recipe(&baseline.recipe, &recipes_dir(&opts.recipes_dir));
    let current = match &opts.current {
        Some(path) => match BenchResult::load(Path::new(path)) {
            Ok(c) => c,
            Err(e) => return fail(format!("{path}: {e}")),
        },
        None => {
            // Re-run the baseline's recipe in quick mode (the gate's
            // whole point: fresh numbers on this rev).
            let recipe = match &recipe {
                Ok(r) => r,
                Err(e) => return fail(e),
            };
            match Runner::new(true).run(recipe) {
                Ok(o) => o.result,
                Err(e) => return fail(e),
            }
        }
    };
    if let Some(path) = &opts.out {
        if let Err(e) = write_out(path, &current) {
            return fail(e);
        }
    }
    let row_reports = match &recipe {
        Ok(r) => gate::check_rows(&r.row_gates(), &current),
        Err(e) => {
            eprintln!("dp-bench: note: row gates skipped ({e})");
            Vec::new()
        }
    };
    match gate::compare(&baseline, &current, opts.threshold_pct) {
        Ok(report) => {
            println!("{report}");
            let mut rows_pass = true;
            for rr in &row_reports {
                println!("{rr}");
                rows_pass &= rr.pass;
            }
            if report.pass && rows_pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => fail(e),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dp-bench: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match cmd {
        "list" => cmd_list(&opts),
        "run" => cmd_run(&opts),
        "run-all" => cmd_run_all(&opts),
        "diff" => cmd_diff(&opts),
        "gate" => cmd_gate(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail(format!("unknown subcommand '{other}'\n{USAGE}")),
    }
}
