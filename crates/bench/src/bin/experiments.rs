//! Experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p dp-bench --release --bin experiments -- <experiment> [--scale F]
//! ```
//!
//! Experiments: `table1 formula2 fig5 fig6 fig7 fig8 table2 fig9 merge
//! ablate-hash races ablate-chunk ablate-redist ablate-slots ablate-sections
//! spsc server all`.
//! `--scale` multiplies workload sizes (default 0.25; EXPERIMENTS.md
//! records runs at the default). `--quick` shrinks the workload subset
//! (CI smoke). `spsc` compares the SPSC/MPMC/lock-based transports and
//! writes machine-readable results to `--out` (default `BENCH_spsc.json`);
//! `server` measures dp-server ingest throughput and Sync round-trip
//! latency vs client count (default `BENCH_server.json`).

use dp_bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = String::from("all");
    let mut cfg = exp::ExpConfig::default();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale needs a float argument");
                    std::process::exit(2);
                });
            }
            "--quick" => {
                cfg.quick = true;
                cfg.scale = cfg.scale.min(0.05);
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path argument");
                    std::process::exit(2);
                }));
            }
            name => which = name.to_string(),
        }
        i += 1;
    }
    let out = match which.as_str() {
        "table1" => exp::table1(cfg),
        "formula2" => exp::formula2(cfg),
        "fig5" => exp::fig5(cfg),
        "fig6" => exp::fig6(cfg),
        "fig7" => exp::fig7(cfg),
        "fig8" => exp::fig8(cfg),
        "table2" => exp::table2(cfg),
        "fig9" => exp::fig9(cfg),
        "comm-suite" => exp::comm_suite(cfg),
        "merge" => exp::merge(cfg),
        "ablate-hash" => exp::ablate_hash(cfg),
        "races" => exp::races(cfg),
        "ablate-chunk" => exp::ablate_chunk(cfg),
        "ablate-redist" => exp::ablate_redist(cfg),
        "ablate-slots" => exp::ablate_slots(cfg),
        "ablate-sections" => exp::ablate_sections(cfg),
        "ablate-sd3" => exp::ablate_sd3(cfg),
        "spsc" => exp::spsc(cfg, Some(out.as_deref().unwrap_or("BENCH_spsc.json"))),
        "server" => {
            exp::server_throughput(cfg, Some(out.as_deref().unwrap_or("BENCH_server.json")))
        }
        "all" => exp::all(cfg),
        other => {
            eprintln!(
                "unknown experiment '{other}'; choose from: table1 formula2 fig5 fig6 fig7 \
                 fig8 table2 fig9 merge ablate-hash races ablate-chunk ablate-redist \
                 ablate-slots ablate-sections spsc server all"
            );
            std::process::exit(2);
        }
    };
    println!("{out}");
}
