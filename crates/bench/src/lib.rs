//! `dp-bench` — recipe-driven benchmark harness.
//!
//! The harness is split the way the ROADMAP's CI direction asks for:
//!
//! * [`recipe`] — declarative TOML recipes (`crates/bench/recipes/`)
//!   naming a scenario, workload, scale, matrix, and quick overrides;
//! * [`scenario`] — the [`scenario::Scenario`] trait and the E1–E16
//!   registry; the measurement code itself lives in [`experiments`];
//! * [`runner`] — executes recipes (warmup, repetitions, best-of
//!   merging, git-rev stamping) into versioned results;
//! * [`result`] — the `BenchResult` v1 JSON schema every `BENCH_*.json`
//!   artifact uses;
//! * [`report`] — text/JSON/markdown rendering and `diff`;
//! * [`gate`] — the CI regression gate comparing fresh runs against
//!   committed baselines.
//!
//! The `dp-bench` binary (`src/bin/dp_bench.rs`) wires these into
//! `run`/`run-all`/`list`/`diff`/`gate` subcommands. Criterion
//! microbenchmarks live under `benches/`; [`fmt`] and [`measure`] hold
//! the helpers both share.

#![warn(missing_docs)]

pub mod experiments;
pub mod fmt;
pub mod gate;
pub mod json;
pub mod measure;
pub mod recipe;
pub mod report;
pub mod result;
pub mod runner;
pub mod scenario;

pub use measure::{time, Timed};
