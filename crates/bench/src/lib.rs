//! `dp-bench` — experiment harness and shared measurement helpers.
//!
//! The `experiments` binary (`src/bin/experiments.rs`) regenerates every
//! table and figure of the paper; Criterion microbenchmarks live under
//! `benches/`. This library holds the pieces both share: timing helpers,
//! table formatting, and the canonical experiment configurations
//! (signature sizes, worker counts, workload scales) so that the numbers
//! in EXPERIMENTS.md are reproducible from one place.

#![warn(missing_docs)]

pub mod experiments;
pub mod fmt;
pub mod measure;

pub use measure::{time, Timed};
