//! A minimal JSON value: parser and stable-order writer.
//!
//! The workspace is fully offline (no serde); every JSON artifact the
//! harness reads or writes goes through this module so `BenchResult`
//! files, `gate` baselines and `diff` inputs share one code path. The
//! parser accepts standard JSON; the writer emits keys in insertion
//! order so results are stable and diff-friendly.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (preserved on parse and emit).
    Obj(Vec<(String, Json)>),
}

/// Parse failure with a byte offset for context.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// Human-readable reason.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (None on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace), keys in stored order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation, keys in stored order.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&fmt_num(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                write_escaped(out, &fields[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                fields[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

/// Shared array/object body writer (brackets, commas, indentation).
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Formats a number the way the old hand-rolled emitters did: integers
/// without a fractional part, everything else via the shortest roundtrip
/// representation Rust provides.
fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { offset: self.i, msg: msg.to_string() }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our artifacts.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.b[self.i..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

/// Convenience constructors for building documents.
impl Json {
    /// An object from (key, value) pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let doc = r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5}}"#;
        let v = Json::parse(doc).unwrap();
        let again = Json::parse(&v.render()).unwrap();
        assert_eq!(v, again);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2.5));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn pretty_parses_back() {
        let v = Json::obj(vec![
            ("schema_version", Json::num(1.0)),
            ("rows", Json::Arr(vec![Json::obj(vec![("label", Json::str("bt"))])])),
        ]);
        let pretty = v.render_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"rows\""));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(1234567.0).render(), "1234567");
        assert_eq!(Json::num(0.5).render(), "0.5");
    }
}
